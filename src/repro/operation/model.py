"""Operational CFP — ``C_op = C_src,use x E_use`` (paper Section 3.3(1))."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.grid import carbon_intensity_kg_per_kwh
from repro.errors import require_non_negative
from repro.operation.energy import OperatingProfile, annual_use_energy_kwh


@dataclass(frozen=True)
class OperationResult:
    """Per-chip-year operational footprint."""

    kg_per_year: float
    energy_kwh_per_year: float
    carbon_intensity_kg_per_kwh: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for reporting."""
        return {
            "kg_per_year": self.kg_per_year,
            "energy_kwh_per_year": self.energy_kwh_per_year,
            "carbon_intensity_kg_per_kwh": self.carbon_intensity_kg_per_kwh,
        }


@dataclass(frozen=True)
class OperationModel:
    """Use-phase carbon model.

    Attributes:
        energy_source: Grid region / :class:`GridRegion` / numeric
            g CO2e/kWh of the deployment site (``C_src,use``).
        profile: Operating profile (duty cycle, idle power, PUE).
    """

    energy_source: object = "green_datacenter"
    profile: OperatingProfile = field(default_factory=OperatingProfile)

    def per_chip_year_kg(self, power_w: float) -> float:
        """Operational kg CO2e per chip per deployed year."""
        return self.assess_chip_year(power_w).kg_per_year

    def assess_chip_year(self, power_w: float) -> OperationResult:
        """Operational footprint of one chip for one deployed year."""
        require_non_negative(power_w, "power_w")
        intensity = carbon_intensity_kg_per_kwh(self.energy_source)
        energy = annual_use_energy_kwh(power_w, self.profile)
        return OperationResult(
            kg_per_year=intensity * energy,
            energy_kwh_per_year=energy,
            carbon_intensity_kg_per_kwh=intensity,
        )

    def over_lifetime_kg(self, power_w: float, years: float) -> float:
        """Operational kg CO2e for one chip over ``years`` of deployment."""
        require_non_negative(years, "years")
        return self.per_chip_year_kg(power_w) * years
