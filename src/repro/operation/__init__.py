"""Operational (use-phase) carbon model (paper Section 3.3(1))."""

from repro.operation.energy import OperatingProfile, annual_use_energy_kwh
from repro.operation.model import OperationModel, OperationResult

__all__ = [
    "OperatingProfile",
    "OperationModel",
    "OperationResult",
    "annual_use_energy_kwh",
]
