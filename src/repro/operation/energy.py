"""Use-phase energy accounting.

The paper models use-phase energy as "a function of peak power and duty
cycles" [5].  We make the profile explicit: active power at a duty cycle
plus idle power the rest of the time, multiplied by an infrastructure
overhead (PUE) when the part is deployed in a datacenter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import require_fraction, require_non_negative, require_positive
from repro.units import HOURS_PER_YEAR, watts_to_kw


@dataclass(frozen=True)
class OperatingProfile:
    """How a deployed chip spends its hours.

    Attributes:
        duty_cycle: Fraction of time at active power.
        idle_fraction_of_peak: Idle power as a fraction of active power
            drawn during the remaining hours (0 = powered off when idle).
        pue: Power usage effectiveness of the hosting facility (1.0 for
            edge devices, ~1.1-1.6 for datacenters).
    """

    duty_cycle: float = 0.30
    idle_fraction_of_peak: float = 0.10
    pue: float = 1.2

    def __post_init__(self) -> None:
        require_fraction(self.duty_cycle, "duty_cycle")
        require_fraction(self.idle_fraction_of_peak, "idle_fraction_of_peak")
        require_positive(self.pue, "pue")

    def effective_duty(self) -> float:
        """Duty-equivalent fraction including idle draw and PUE."""
        active = self.duty_cycle
        idle = (1.0 - self.duty_cycle) * self.idle_fraction_of_peak
        return (active + idle) * self.pue


def annual_use_energy_kwh(power_w: float, profile: OperatingProfile) -> float:
    """Energy one chip draws per deployed year, in kWh.

    Args:
        power_w: Active (peak/TDP) power in watts.
        profile: Operating profile.
    """
    require_non_negative(power_w, "power_w")
    return watts_to_kw(power_w) * profile.effective_duty() * HOURS_PER_YEAR
