"""Command-line interface: ``greenfpga``.

Subcommands:

* ``greenfpga list`` — list experiments, domains and industry devices.
* ``greenfpga run <experiment> [--csv-dir DIR]`` — run a paper experiment
  and print its report (optionally exporting CSVs).
* ``greenfpga compare --domain dnn --apps 5 --lifetime 2 --volume 1e6`` —
  one-off FPGA-vs-ASIC comparison.
* ``greenfpga mc --draws 1000000`` — columnar Monte-Carlo over the
  Table 1 uncertainty ranges (the parameter-space pipeline: draws are
  sampled straight into NumPy columns, no per-draw objects).
* ``greenfpga mc --draws 100000000 --stream`` — the same study through
  the streaming reduction pipeline: draws are generated, evaluated and
  reduced chunk-by-chunk (``--chunk-rows``) on ``--mc-workers`` spawn
  processes, so any draw count runs in bounded memory; prints draws/s
  and the peak process-tree RSS.
* ``greenfpga serve-bench [--clients N]`` — measure async serving
  throughput (micro-batched concurrent clients vs serialized dispatch).

Engine options (shared by every subcommand):

* ``--workers N`` — farm scalar cache misses to N worker processes.
* ``--no-vectorize`` — disable the NumPy vector kernel (pure scalar
  path; mainly for debugging and perf comparisons).
* ``--cache-stats`` — print the shared engine's cache counters after
  the command, showing how much of the run was served from warmth.
* ``--cache-shards N`` — hash shards of the result store.
* ``--cache-file PATH`` — load the result store from PATH (if it
  exists) before the command and save it back afterwards, so cache
  warmth survives across CLI runs.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.devices.catalog import DOMAIN_NAMES, list_industry_devices
from repro.engine import configure_default_engine, default_engine
from repro.reporting.table import format_table


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="greenfpga",
        description="GreenFPGA: FPGA vs ASIC lifecycle carbon-footprint analysis",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="evaluate scalar cache misses on N worker processes",
    )
    parser.add_argument(
        "--no-vectorize",
        action="store_true",
        help="disable the NumPy vector kernel (scalar path only)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print evaluation-engine cache statistics after the command",
    )
    parser.add_argument(
        "--cache-shards",
        type=int,
        default=None,
        metavar="N",
        help="hash shards of the result store (default 8)",
    )
    parser.add_argument(
        "--cache-file",
        default=None,
        metavar="PATH",
        help="persist the result store to PATH (.npz) across CLI runs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments, domains and devices")

    run = sub.add_parser("run", help="run a paper experiment by id (e.g. fig4)")
    run.add_argument("experiment", help="experiment id, e.g. fig4, table2")
    run.add_argument("--csv-dir", default=None, help="directory for CSV export")

    compare = sub.add_parser("compare", help="compare FPGA vs ASIC for a domain")
    compare.add_argument("--domain", default="dnn", choices=list(DOMAIN_NAMES))
    compare.add_argument("--apps", type=int, default=5, help="number of applications")
    compare.add_argument("--lifetime", type=float, default=2.0, help="app lifetime, years")
    compare.add_argument("--volume", type=float, default=1.0e6, help="units per app")

    mc = sub.add_parser(
        "mc",
        help="columnar Monte-Carlo over the Table 1 uncertainty ranges",
    )
    mc.add_argument("--domain", default="dnn", choices=list(DOMAIN_NAMES))
    mc.add_argument("--draws", type=int, default=100_000,
                    help="Monte-Carlo draws (columns, not objects)")
    mc.add_argument("--seed", type=int, default=2024, help="RNG seed")
    mc.add_argument("--apps", type=int, default=5, help="number of applications")
    mc.add_argument("--lifetime", type=float, default=2.0,
                    help="app lifetime, years")
    mc.add_argument("--volume", type=float, default=1.0e6, help="units per app")
    mc.add_argument(
        "--stream",
        action="store_true",
        help=(
            "streaming reduction: draws are generated, evaluated and "
            "reduced chunk-by-chunk in bounded memory (multi-core by "
            "default), summarising any draw count without materializing it"
        ),
    )
    mc.add_argument(
        "--chunk-rows", type=int, default=None, metavar="N",
        help=(
            "rows per streamed chunk (bounds peak memory; rounded up to "
            "the reducer block, 16384 for the default bundle)"
        ),
    )
    mc.add_argument("--mc-workers", type=int, default=None, metavar="N",
                    help="streaming worker processes (default: all cores)")
    mc.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help=(
            "durable execution: atomically journal merged reducer "
            "partials to PATH and resume a killed run from it "
            "(bit-identical to an uninterrupted run; requires --stream)"
        ),
    )
    mc.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help=(
            "rows per durable checkpoint unit (default: ~1/64th of the "
            "draws, flushed on a 5 s cadence; requires --checkpoint)"
        ),
    )

    serve = sub.add_parser(
        "serve-bench",
        help="benchmark the async batch-serving front-end",
    )
    serve.add_argument("--clients", type=int, default=8, help="concurrent clients")
    serve.add_argument("--requests", type=int, default=16,
                       help="requests per client")
    serve.add_argument("--cells", type=int, default=100,
                       help="scenario cells per request")
    serve.add_argument("--window-ms", type=float, default=2.0,
                       help="micro-batching window, milliseconds")

    audit = sub.add_parser(
        "audit",
        help="static invariant lint + registry parity audit",
    )
    layer = audit.add_mutually_exclusive_group()
    layer.add_argument("--lint-only", action="store_true",
                       help="run only the AST lint layer")
    layer.add_argument("--parity-only", action="store_true",
                       help="run only the registry parity layer")
    audit.add_argument(
        "--parity-values", type=int, default=None, metavar="N",
        help=(
            "perturbation values per registry column (default: 2 when "
            "BENCH_QUICK is set and nonzero, else 4)"
        ),
    )
    audit.add_argument("--root", default=None, metavar="DIR",
                       help="lint a tree other than the installed repro package")
    audit.add_argument(
        "--checks", default=None, metavar="IDS",
        help="comma-separated checker ids to run (e.g. GF-RNG,GF-EXC)",
    )
    audit.add_argument("--baseline", default=None, metavar="PATH",
                       help="suppression baseline (default: the committed one)")
    audit.add_argument(
        "--update-baseline", action="store_true",
        help=(
            "rewrite the baseline from the current findings (new entries "
            "get TODO justifications that must be hand-edited)"
        ),
    )
    audit.add_argument("--json", default=None, metavar="PATH",
                       help="also write the machine-readable report to PATH")
    return parser


def _configure_engine(args: argparse.Namespace) -> None:
    """Apply the engine options to the shared default engine."""
    options: dict[str, object] = {}
    if args.workers is not None:
        options["workers"] = args.workers
    if args.no_vectorize:
        options["vectorize"] = False
    if args.cache_shards is not None:
        options["cache_shards"] = args.cache_shards
    if args.cache_file is not None:
        options["cache_file"] = args.cache_file
    if options:
        configure_default_engine(**options)


def _print_cache_stats() -> None:
    stats = default_engine().cache_stats
    rows = [
        {
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": f"{stats.hit_rate:.1%}",
            "size": stats.size,
            "maxsize": stats.maxsize,
        }
    ]
    print()
    print(format_table(rows, title="evaluation-engine cache"))


def _cmd_list() -> int:
    from repro.experiments.registry import list_experiments

    print("experiments:")
    for exp_id, description in list_experiments():
        print(f"  {exp_id:<8} {description}")
    print("domains:", ", ".join(DOMAIN_NAMES))
    print("industry devices:", ", ".join(list_industry_devices()))
    return 0


def _cmd_run(experiment: str, csv_dir: str | None) -> int:
    from repro.experiments.registry import run_experiment

    report = run_experiment(experiment, csv_dir=csv_dir)
    print(report.render())
    return 0


def _cmd_compare(domain: str, apps: int, lifetime: float, volume: float) -> int:
    scenario = Scenario(
        num_apps=apps, app_lifetime_years=lifetime, volume=int(volume)
    )
    comparator = PlatformComparator.for_domain(domain)
    result = default_engine().evaluate(comparator, scenario)
    rows = [
        {"platform": "FPGA", **result.fpga.footprint.as_dict()},
        {"platform": "ASIC", **result.asic.footprint.as_dict()},
    ]
    print(format_table(rows, title=f"{domain}: N_app={apps}, T_i={lifetime}y, N_vol={volume:g}"))
    print(f"\nFPGA:ASIC ratio = {result.ratio:.3f}  ->  winner: {result.winner.upper()}")
    return 0


def _cmd_mc(
    domain: str,
    draws: int,
    seed: int,
    apps: int,
    lifetime: float,
    volume: float,
    stream: bool,
    chunk_rows: int | None,
    mc_workers: int | None,
    checkpoint: str | None = None,
    checkpoint_every: int | None = None,
) -> int:
    import time

    from repro.analysis.montecarlo import monte_carlo_batch
    from repro.engine.resources import PeakRssSampler
    from repro.engine.vector import Checkpoint
    from repro.experiments.ext_uncertainty import distributions

    scenario = Scenario(
        num_apps=apps, app_lifetime_years=lifetime, volume=int(volume)
    )
    comparator = PlatformComparator.for_domain(domain)
    engine = default_engine()
    ckpt = (
        Checkpoint(checkpoint, every_rows=checkpoint_every)
        if checkpoint is not None else None
    )
    start = time.perf_counter()
    with PeakRssSampler() as rss:
        result = monte_carlo_batch(
            comparator, scenario, distributions(), n_samples=draws, seed=seed,
            engine=engine, reduce=True if stream else None,
            chunk_rows=chunk_rows, workers=mc_workers, checkpoint=ckpt,
        )
    elapsed = time.perf_counter() - start
    rows = [
        {"metric": name, "value": f"{value:.6g}"}
        for name, value in result.summary().items()
    ]
    mode = "streaming reduction" if stream else "materialized"
    print(format_table(
        rows,
        title=(
            f"{domain}: {draws} Monte-Carlo draws over Table 1 ranges "
            f"(seed {seed}, {mode})"
        ),
    ))
    if stream:
        # Reduce-only streaming serves through the fused kernel tier
        # (REPRO_KERNEL-selectable); materialized runs keep the chain.
        pipeline = (
            f"streaming reduction, {engine.stream_workers(mc_workers)} "
            f"worker(s), {engine.kernel_tier_name} kernel"
        )
    else:
        pipeline = "columnar parameter-space pipeline, numpy-chain kernel"
    print(
        f"\n{draws} draws in {elapsed:.3f} s "
        f"({draws / elapsed:,.0f} draws/s, {pipeline}); "
        f"peak RSS {rss.peak_mb:,.0f} MB"
    )
    return 0


def _cmd_serve_bench(
    clients: int,
    requests: int,
    cells: int,
    window_ms: float,
    cache_file: str | None,
) -> int:
    from repro.engine.service import serving_benchmark

    report = serving_benchmark(
        clients=clients,
        requests_per_client=requests,
        cells_per_request=cells,
        batch_window_s=window_ms / 1000.0,
        cache_file=cache_file,
    )
    rows = [
        {"phase": name, **metrics} for name, metrics in report["phases"].items()
    ]
    print(format_table(
        rows,
        title=(
            f"async serving: {report['total_scenarios']} scenarios, "
            f"{clients} clients, window {window_ms:g} ms"
        ),
    ))
    print(
        f"\nwarm concurrent vs windowed serialized dispatch: "
        f"{report['speedup_concurrent_vs_windowed_serialized_warm']:.2f}x  "
        f"adaptive vs eager serialized: "
        f"{report['adaptive_serialized_over_eager_warm']:.2f}x  "
        f"(persisted entries: {report['persisted_entries']}, "
        f"warm rows recomputed: {report['warm_concurrent_rows_recomputed']})"
    )
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    import os
    from pathlib import Path

    from repro.audit.baseline import (
        DEFAULT_BASELINE_PATH,
        Baseline,
        write_baseline,
    )
    from repro.audit.checks import all_checkers
    from repro.audit.linter import run_lint
    from repro.audit.parity import run_parity
    from repro.audit.report import AuditReport

    lint_report = None
    if not args.parity_only:
        checks = all_checkers()
        if args.checks is not None:
            wanted = {c.strip() for c in args.checks.split(",") if c.strip()}
            unknown = wanted - {c.id for c in checks}
            if unknown:
                print(f"unknown checker id(s): {', '.join(sorted(unknown))}",
                      file=sys.stderr)
                return 2
            checks = tuple(c for c in checks if c.id in wanted)
        baseline_path = (
            Path(args.baseline) if args.baseline is not None
            else DEFAULT_BASELINE_PATH
        )
        baseline = (
            Baseline.load(baseline_path) if baseline_path.exists()
            else Baseline(())
        )
        lint_kwargs: dict[str, object] = {"checks": checks, "baseline": baseline}
        if args.root is not None:
            lint_kwargs["root"] = Path(args.root)
        lint_report = run_lint(**lint_kwargs)
        if args.update_baseline:
            write_baseline(
                [*lint_report.findings, *lint_report.suppressed], baseline_path
            )
            print(f"baseline rewritten: {baseline_path}")

    parity_report = None
    if not args.lint_only:
        values = args.parity_values
        if values is None:
            quick = os.environ.get("BENCH_QUICK", "")
            values = 2 if quick not in ("", "0") else 4
        parity_report = run_parity(values_per_column=values)

    report = AuditReport(lint=lint_report, parity=parity_report)
    print(report.render())
    if args.json is not None:
        report.write_json(Path(args.json))
        print(f"json report: {args.json}")
    if args.update_baseline:
        return 0
    return 0 if report.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "mc" and not args.stream and (
        args.chunk_rows is not None or args.mc_workers is not None
        or args.checkpoint is not None
    ):
        # Without --stream these knobs would be silently ignored and
        # the run would materialize the full batch single-pipeline.
        parser.error("--chunk-rows/--mc-workers/--checkpoint require --stream")
    if args.command == "mc" and (
        args.checkpoint_every is not None and args.checkpoint is None
    ):
        parser.error("--checkpoint-every requires --checkpoint")
    _configure_engine(args)
    if args.command == "list":
        code = _cmd_list()
    elif args.command == "run":
        code = _cmd_run(args.experiment, args.csv_dir)
    elif args.command == "compare":
        code = _cmd_compare(args.domain, args.apps, args.lifetime, args.volume)
    elif args.command == "mc":
        code = _cmd_mc(
            args.domain, args.draws, args.seed, args.apps, args.lifetime,
            args.volume, args.stream, args.chunk_rows, args.mc_workers,
            args.checkpoint, args.checkpoint_every,
        )
    elif args.command == "serve-bench":
        code = _cmd_serve_bench(
            args.clients, args.requests, args.cells, args.window_ms,
            args.cache_file,
        )
    elif args.command == "audit":
        code = _cmd_audit(args)
    else:
        raise AssertionError(f"unhandled command {args.command!r}")
    if args.cache_stats:
        _print_cache_stats()
    if args.cache_file is not None and args.command != "serve-bench":
        # serve-bench persists the benchmark store itself; saving the
        # untouched default engine here would overwrite that warmth.
        default_engine().save_cache(args.cache_file)
    return code


if __name__ == "__main__":
    sys.exit(main())
