"""Exception hierarchy for the GreenFPGA reproduction."""

from __future__ import annotations


class GreenFpgaError(Exception):
    """Base class for every error raised by this package."""


class ParameterError(GreenFpgaError, ValueError):
    """A model input is out of its physically meaningful range."""


class ConfigError(GreenFpgaError, ValueError):
    """A configuration file or parameter set could not be interpreted."""


class StoreCorruptError(ParameterError):
    """A persisted result-store file is unusable: truncated, corrupted,
    or written in an incompatible format version.

    Subclasses :class:`ParameterError` for backward compatibility with
    callers that treated a format mismatch as a parameter problem;
    engines catch this specifically to log-and-start-cold instead of
    crashing (a stale cache is a performance artefact, never ground
    truth).
    """


class CheckpointMismatchError(ParameterError):
    """A checkpoint file belongs to a *different* job than the resume.

    Raised when the persisted job identity (source digest, seed, chunk
    size, reduction schema) disagrees with the run asking to resume.
    Unlike :class:`StoreCorruptError` — where the engine logs and
    starts cold, because a stale cache is only a performance artefact —
    this is raised to the caller: silently restarting a *different*
    job from scratch (or worse, merging foreign partials) would return
    a wrong answer with no warning.
    """


class ServeError(GreenFpgaError, RuntimeError):
    """Base class for network-serving failures (protocol, workers)."""


class UnknownEntityError(GreenFpgaError, KeyError):
    """A registry lookup (node, grid region, device, material) failed."""

    def __init__(self, kind: str, name: str, known: list[str]):
        self.kind = kind
        self.name = name
        self.known = sorted(known)
        super().__init__(
            f"unknown {kind} {name!r}; known {kind}s: {', '.join(self.known)}"
        )


class CapacityError(GreenFpgaError, ValueError):
    """An application cannot be mapped onto the given device."""


class ExperimentError(GreenFpgaError, RuntimeError):
    """An experiment failed to produce the expected artefacts."""


def require(condition: bool, message: str) -> None:
    """Raise :class:`ParameterError` unless ``condition`` holds."""
    if not condition:
        raise ParameterError(message)


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    require(value > 0.0, f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0 and return it."""
    require(value >= 0.0, f"{name} must be >= 0, got {value!r}")
    return value


def require_fraction(value: float, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it."""
    require(0.0 <= value <= 1.0, f"{name} must be in [0, 1], got {value!r}")
    return value
