"""One-at-a-time (tornado) sensitivity analysis.

For each Table 1 knob, evaluate the FPGA:ASIC ratio at the knob's low and
high bound with everything else at baseline.  The resulting spans, sorted
by width, form the classic tornado chart and rank which assumptions drive
the sustainability verdict.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.analysis.montecarlo import ParameterDistribution
from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.engine import EvaluationEngine, resolve_engine


@dataclass(frozen=True)
class SensitivityEntry:
    """Ratio span induced by one knob."""

    name: str
    low_value: float
    high_value: float
    ratio_at_low: float
    ratio_at_high: float

    @property
    def span(self) -> float:
        """Absolute ratio span (tornado bar width)."""
        return abs(self.ratio_at_high - self.ratio_at_low)

    @property
    def flips_winner(self) -> bool:
        """True when the knob alone can change which platform wins."""
        return (self.ratio_at_low - 1.0) * (self.ratio_at_high - 1.0) < 0.0


@dataclass(frozen=True)
class SensitivityResult:
    """All knobs' spans, plus the baseline ratio."""

    baseline_ratio: float
    entries: tuple[SensitivityEntry, ...]

    def sorted_by_span(self) -> list[SensitivityEntry]:
        """Entries from widest to narrowest span (tornado order)."""
        return sorted(self.entries, key=lambda e: e.span, reverse=True)

    def rows(self) -> list[dict[str, float | str | bool]]:
        """Flat rows for reporting."""
        return [
            {
                "parameter": e.name,
                "low": e.low_value,
                "high": e.high_value,
                "ratio_at_low": e.ratio_at_low,
                "ratio_at_high": e.ratio_at_high,
                "span": e.span,
                "flips_winner": e.flips_winner,
            }
            for e in self.sorted_by_span()
        ]


def tornado(
    comparator: PlatformComparator,
    scenario: Scenario,
    distributions: Sequence[ParameterDistribution],
    engine: EvaluationEngine | None = None,
) -> SensitivityResult:
    """One-at-a-time sensitivity of the ratio to each knob's range.

    The baseline and every knob's low/high endpoint are assessed as one
    array-land batch through ``engine``
    (:meth:`~repro.engine.EvaluationEngine.evaluate_pairs_batch`):
    endpoints become parameter-space rows evaluated by the vector
    kernels — no per-endpoint ``ComparisonResult`` objects — and cached
    in the sharded store under extraction-mode row digests, so a
    repeated tornado over the same knobs and scenario is served from
    warmth.  Ratios agree with the scalar object path to
    ``rtol <= 1e-12``.
    """
    pairs: list[tuple[PlatformComparator, Scenario]] = [(comparator, scenario)]
    for dist in distributions:
        pairs.append((dist.apply(comparator, dist.low), scenario))
        pairs.append((dist.apply(comparator, dist.high), scenario))
    batch = resolve_engine(engine).evaluate_pairs_batch(pairs)
    ratios = batch.ratios
    baseline = float(ratios[0])
    entries = []
    for index, dist in enumerate(distributions):
        entries.append(
            SensitivityEntry(
                name=dist.name,
                low_value=dist.low,
                high_value=dist.high,
                ratio_at_low=float(ratios[1 + 2 * index]),
                ratio_at_high=float(ratios[2 + 2 * index]),
            )
        )
    return SensitivityResult(baseline_ratio=baseline, entries=tuple(entries))
