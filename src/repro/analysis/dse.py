"""Carbon-aware design-space exploration (extension).

The paper positions GreenFPGA next to carbon-aware DSE platforms (its
ref [16]).  This module provides that workflow on top of the lifecycle
models: enumerate a grid of :class:`~repro.config.Parameters` overrides
(fab location, recycled sourcing, grid, duty cycle, node...), assess a
scenario under every configuration, and return the ranked results plus
the Pareto front over user-chosen objectives.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Callable, Iterator, Mapping, Sequence
from dataclasses import dataclass

from repro.config import Parameters
from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.devices.catalog import DomainSpec, get_domain
from repro.engine import EvaluationEngine, resolve_engine
from repro.engine.engine import build_suite_cached
from repro.engine.vector import (
    ParameterBatch,
    ParetoReducer,
    ScenarioBatch,
    StreamingReduction,
    TopKReducer,
    VectorizedEvaluator,
)
from repro.errors import ParameterError


class FrozenOverrides(Mapping):
    """Immutable, hashable mapping of grid overrides.

    Preserves insertion order (the grid's axis order) and supports every
    read-only ``dict`` operation, so existing callers doing
    ``point.overrides["duty_cycle"]`` or ``dict(point.overrides)`` keep
    working — while :class:`DesignPoint` becomes properly hashable.
    """

    __slots__ = ("_items", "_lookup")

    def __init__(self, overrides: "Mapping | Sequence[tuple[str, object]]") -> None:
        items = overrides.items() if isinstance(overrides, Mapping) else overrides
        object.__setattr__(self, "_items", tuple((str(k), v) for k, v in items))
        object.__setattr__(self, "_lookup", dict(self._items))
        if len(self._lookup) != len(self._items):
            raise ParameterError("duplicate override keys in FrozenOverrides")

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("FrozenOverrides is immutable")

    def __getitem__(self, key: str) -> object:
        return self._lookup[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._lookup)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        # Order-insensitive, matching __eq__: the same configuration
        # reached through grids with different axis order must collide.
        return hash(frozenset(self._items))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Mapping):
            return self._lookup == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v!r}" for k, v in self._items)
        return f"FrozenOverrides({body})"


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration of the design space.

    ``overrides`` is normalised to :class:`FrozenOverrides` on
    construction, so points are hashable (usable in sets/dicts) even
    when built from a plain ``dict``.
    """

    overrides: Mapping
    fpga_total_kg: float
    asic_total_kg: float
    ratio: float

    def __post_init__(self) -> None:
        if not isinstance(self.overrides, FrozenOverrides):
            object.__setattr__(self, "overrides", FrozenOverrides(self.overrides))

    @property
    def best_total_kg(self) -> float:
        """CFP of the greener platform under this configuration."""
        return min(self.fpga_total_kg, self.asic_total_kg)

    @property
    def winner(self) -> str:
        """Greener platform under this configuration."""
        return "fpga" if self.ratio < 1.0 else "asic"

    def as_row(self) -> dict[str, object]:
        """Flat row for reporting."""
        row: dict[str, object] = dict(self.overrides)
        row.update(
            {
                "fpga_total_kg": self.fpga_total_kg,
                "asic_total_kg": self.asic_total_kg,
                "ratio": self.ratio,
                "winner": self.winner,
            }
        )
        return row


def _dominates(a: tuple[float, ...], b: tuple[float, ...]) -> bool:
    """Whether objective vector ``a`` Pareto-dominates ``b`` (minimising)."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


@dataclass(frozen=True)
class DseResult:
    """All evaluated design points, ranked by greenest outcome.

    ``streamed=True`` marks a result built by the streaming reduction
    path: ``points`` then holds only the top-k greenest configurations
    united with the full Pareto front over
    ``(fpga_total_kg, asic_total_kg)`` — :meth:`best` and
    :meth:`pareto_front` *for those default objectives* are exact
    against the materialized grid, while :meth:`ranked` and fronts over
    other objectives see the kept subset only.
    """

    points: tuple[DesignPoint, ...]
    streamed: bool = False

    @classmethod
    def from_stream(
        cls,
        top: TopKReducer,
        pareto: ParetoReducer,
        overrides_at: Callable[[int], Mapping],
    ) -> "DseResult":
        """The streaming-backed constructor.

        Rebuilds :class:`DesignPoint` objects for the union of the
        top-k and Pareto-front rows (deduplicated by grid index, in
        index order), resolving each kept row's overrides through
        ``overrides_at`` — only the kept points ever exist as objects.
        The global front over the default objectives survives the
        truncation exactly: every kept-but-dominated point is dominated
        by a front member, which is also kept.
        """
        rows: dict[int, dict] = {}
        for row in top.rows() + pareto.rows():
            rows.setdefault(row["index"], row)
        points = tuple(
            DesignPoint(
                overrides=FrozenOverrides(overrides_at(index)),
                fpga_total_kg=rows[index]["fpga_total_kg"],
                asic_total_kg=rows[index]["asic_total_kg"],
                ratio=rows[index]["ratio"],
            )
            for index in sorted(rows)
        )
        return cls(points=points, streamed=True)

    def best(self) -> DesignPoint:
        """The configuration with the lowest best-platform CFP."""
        return min(self.points, key=lambda p: p.best_total_kg)

    def ranked(self) -> list[DesignPoint]:
        """Points sorted by best-platform CFP, greenest first."""
        return sorted(self.points, key=lambda p: p.best_total_kg)

    def pareto_front(
        self, objectives: Sequence[str] = ("fpga_total_kg", "asic_total_kg")
    ) -> list[DesignPoint]:
        """Non-dominated points, minimising every named objective.

        Objectives are attribute names of :class:`DesignPoint`.  Runs a
        sort-based pass: after sorting lexicographically by the objective
        vector, any dominator of a point precedes it, so each point only
        needs checking against the front accumulated so far (near-linear
        for typical fronts, versus the quadratic all-pairs scan).
        """
        if not objectives:
            raise ParameterError("objectives must not be empty")

        def values(point: DesignPoint) -> tuple[float, ...]:
            return tuple(float(getattr(point, obj)) for obj in objectives)

        decorated = sorted(
            ((values(p), i, p) for i, p in enumerate(self.points)),
            key=lambda item: (item[0], item[1]),
        )
        front: list[DesignPoint] = []
        front_values: list[tuple[float, ...]] = []
        for vals, _, point in decorated:
            if not any(_dominates(f, vals) for f in front_values):
                front.append(point)
                front_values.append(vals)
        return front


class GridChunkSource:
    """Chunkwise enumeration of a DSE grid — no materialized grid.

    The streaming twin of :func:`_grid_pairs`: combination ``i`` of the
    row-major grid (last axis fastest, matching
    :func:`itertools.product`) is decoded on demand by mixed-radix
    arithmetic, so a chunk materialises only its own comparators and
    parameter rows.  Picklable by construction (domain spec, scenario,
    grid values, base parameters), so spawn workers enumerate and
    evaluate their spans independently; suite construction is memoised
    per process through :func:`build_suite_cached`.
    """

    __slots__ = ("n", "spec", "scenario", "names", "values", "base")

    def __init__(
        self,
        spec: DomainSpec,
        scenario: Scenario,
        grid: Mapping[str, Sequence[object]],
        base: Parameters,
    ) -> None:
        if not grid:
            raise ParameterError("grid must not be empty")
        self.spec = spec
        self.scenario = scenario
        self.names = tuple(grid)
        self.values = tuple(tuple(grid[name]) for name in self.names)
        if any(not axis for axis in self.values):
            raise ParameterError("grid axes must not be empty")
        self.n = math.prod(len(axis) for axis in self.values)
        self.base = base

    def overrides_at(self, index: int) -> dict[str, object]:
        """Grid combination ``index`` in axis order (last axis fastest)."""
        digits: list[object] = []
        for axis in reversed(self.values):
            index, digit = divmod(index, len(axis))
            digits.append(axis[digit])
        return dict(zip(self.names, reversed(digits)))

    def chunk(self, start: int, stop: int) -> tuple[ParameterBatch, ScenarioBatch]:
        fpga_device = self.spec.fpga_device()
        asic_device = self.spec.asic_device()
        comparators = [
            PlatformComparator(
                fpga_device=fpga_device,
                asic_device=asic_device,
                suite=build_suite_cached(
                    self.base.with_overrides(**self.overrides_at(i))
                ),
            )
            for i in range(start, stop)
        ]
        return (
            ParameterBatch.from_comparators(comparators),
            ScenarioBatch.tile(self.scenario, stop - start),
        )


def _grid_pairs(
    domain: "DomainSpec | str",
    scenario: Scenario,
    grid: Mapping[str, Sequence[object]],
    base: Parameters | None,
    engine: EvaluationEngine | None,
) -> tuple[
    EvaluationEngine,
    list[FrozenOverrides],
    list[tuple[PlatformComparator, Scenario]],
]:
    """Enumerate the grid once for both :func:`explore` spellings.

    Returns the resolved engine plus the per-combination overrides and
    (comparator, scenario) pairs, with suite construction memoised
    through the engine.
    """
    if not grid:
        raise ParameterError("grid must not be empty")
    spec = domain if isinstance(domain, DomainSpec) else get_domain(domain)
    base = base if base is not None else Parameters()
    eng = resolve_engine(engine)

    names = list(grid)
    fpga_device = spec.fpga_device()
    asic_device = spec.asic_device()
    all_overrides: list[FrozenOverrides] = []
    pairs: list[tuple[PlatformComparator, Scenario]] = []
    for combo in itertools.product(*(grid[name] for name in names)):
        overrides = dict(zip(names, combo))
        suite = eng.suite_for(base.with_overrides(**overrides))
        comparator = PlatformComparator(
            fpga_device=fpga_device,
            asic_device=asic_device,
            suite=suite,
        )
        all_overrides.append(FrozenOverrides(overrides))
        pairs.append((comparator, scenario))
    return eng, all_overrides, pairs


def explore(
    domain: "DomainSpec | str",
    scenario: Scenario,
    grid: Mapping[str, Sequence[object]],
    base: Parameters | None = None,
    engine: EvaluationEngine | None = None,
) -> DseResult:
    """Evaluate every combination of ``grid`` overrides.

    Args:
        domain: Table 2 domain (or explicit spec) to compare under.
        scenario: Fixed deployment scenario.
        grid: Parameter-name -> candidate values.  Names must be
            :class:`~repro.config.Parameters` fields.
        base: Baseline parameters for everything not in the grid.
        engine: Batch evaluator; the shared default when not given.
            Suite construction per grid point is memoised through the
            engine, and the whole grid is assessed as one cached batch.

    Returns:
        A :class:`DseResult` with one point per grid combination.
    """
    eng, all_overrides, pairs = _grid_pairs(domain, scenario, grid, base, engine)
    comparisons = eng.evaluate_pairs(pairs)
    points = tuple(
        DesignPoint(
            overrides=overrides,
            fpga_total_kg=comparison.fpga.footprint.total,
            asic_total_kg=comparison.asic.footprint.total,
            ratio=comparison.ratio,
        )
        for overrides, comparison in zip(all_overrides, comparisons)
    )
    return DseResult(points=points)


def explore_batch(
    domain: "DomainSpec | str",
    scenario: Scenario,
    grid: Mapping[str, Sequence[object]],
    base: Parameters | None = None,
    engine: EvaluationEngine | None = None,
    *,
    reduce: "StreamingReduction | bool | None" = None,
    chunk_rows: "int | None" = None,
    top_k: int = 64,
    workers: "int | None" = None,
) -> DseResult:
    """Array-land :func:`explore`: the grid runs as one kernel batch.

    Grid enumeration and suite memoisation match :func:`explore`, but
    evaluation goes through the parameter-space pipeline — each
    configuration's suite becomes one model-parameter row of a
    :class:`~repro.engine.vector.ParameterBatch`, the sub-models are
    vectorised from the columns, and rows are cached in the engine's
    sharded store under vectorised column-fold digests — so no
    ``ComparisonResult`` is materialised per point and re-exploring a
    grid (or overlapping grids sharing configurations) is served from
    warmth.  The returned :class:`DseResult` carries the same
    :class:`DesignPoint` objects (totals/ratios within
    ``rtol <= 1e-12`` of :func:`explore`).

    With ``reduce=`` (``True`` for the default top-k + Pareto bundle,
    or a custom :class:`~repro.engine.vector.StreamingReduction` over
    ``top``/``pareto`` members) the grid *streams*: combinations are
    enumerated chunk-by-chunk (multi-core by default, spawn workers
    decoding their own spans), evaluated, and folded into streaming
    top-k and Pareto-front reducers — never materialising the grid, its
    comparators, or the result columns, and bypassing the result store.
    The returned :class:`DseResult` has ``streamed=True`` and holds the
    top-``top_k`` configurations united with the exact Pareto front
    over the default objectives (see :meth:`DseResult.from_stream`).
    """
    if reduce is not None and reduce is not False:
        eng = resolve_engine(engine)
        if not eng.vectorize:
            raise ParameterError("streaming DSE requires vectorize=True")
        if not VectorizedEvaluator.covers(scenario):
            raise ParameterError(
                "streaming DSE requires a kernel-covered scenario "
                "(uniform per-application lifetimes, integral volume)"
            )
        spec = domain if isinstance(domain, DomainSpec) else get_domain(domain)
        source = GridChunkSource(
            spec, scenario, grid, base if base is not None else Parameters()
        )
        reduction = (
            reduce if isinstance(reduce, StreamingReduction)
            else StreamingReduction(
                {"top": TopKReducer(k=top_k), "pareto": ParetoReducer()}
            )
        )
        missing = {"top", "pareto"} - reduction.reducers.keys()
        if missing:
            # Checked before streaming, not at result construction.
            raise ParameterError(
                f"streaming DSE reduction is missing members {sorted(missing)}"
            )
        # Grid chunks materialise comparator objects (fatter than pure
        # column rows), so the default chunk is smaller than the
        # Monte-Carlo streaming default.
        merged = eng.reduce_stream(
            source, reduction, chunk_rows=chunk_rows or 8192, workers=workers
        )
        return DseResult.from_stream(
            merged["top"], merged["pareto"], source.overrides_at
        )
    eng, all_overrides, pairs = _grid_pairs(domain, scenario, grid, base, engine)
    batch = eng.evaluate_pairs_batch(pairs)
    points = tuple(
        DesignPoint(
            overrides=overrides,
            fpga_total_kg=float(batch.fpga_totals[i]),
            asic_total_kg=float(batch.asic_totals[i]),
            ratio=float(batch.ratios[i]),
        )
        for i, overrides in enumerate(all_overrides)
    )
    return DseResult(points=points)
