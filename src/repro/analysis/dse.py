"""Carbon-aware design-space exploration (extension).

The paper positions GreenFPGA next to carbon-aware DSE platforms (its
ref [16]).  This module provides that workflow on top of the lifecycle
models: enumerate a grid of :class:`~repro.config.Parameters` overrides
(fab location, recycled sourcing, grid, duty cycle, node...), assess a
scenario under every configuration, and return the ranked results plus
the Pareto front over user-chosen objectives.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.config import Parameters
from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.devices.catalog import DomainSpec, get_domain
from repro.errors import ParameterError


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration of the design space."""

    overrides: dict[str, object]
    fpga_total_kg: float
    asic_total_kg: float
    ratio: float

    @property
    def best_total_kg(self) -> float:
        """CFP of the greener platform under this configuration."""
        return min(self.fpga_total_kg, self.asic_total_kg)

    @property
    def winner(self) -> str:
        """Greener platform under this configuration."""
        return "fpga" if self.ratio < 1.0 else "asic"

    def as_row(self) -> dict[str, object]:
        """Flat row for reporting."""
        row: dict[str, object] = dict(self.overrides)
        row.update(
            {
                "fpga_total_kg": self.fpga_total_kg,
                "asic_total_kg": self.asic_total_kg,
                "ratio": self.ratio,
                "winner": self.winner,
            }
        )
        return row


@dataclass(frozen=True)
class DseResult:
    """All evaluated design points, ranked by greenest outcome."""

    points: tuple[DesignPoint, ...]

    def best(self) -> DesignPoint:
        """The configuration with the lowest best-platform CFP."""
        return min(self.points, key=lambda p: p.best_total_kg)

    def ranked(self) -> list[DesignPoint]:
        """Points sorted by best-platform CFP, greenest first."""
        return sorted(self.points, key=lambda p: p.best_total_kg)

    def pareto_front(
        self, objectives: Sequence[str] = ("fpga_total_kg", "asic_total_kg")
    ) -> list[DesignPoint]:
        """Non-dominated points, minimising every named objective.

        Objectives are attribute names of :class:`DesignPoint`.
        """
        if not objectives:
            raise ParameterError("objectives must not be empty")

        def values(point: DesignPoint) -> tuple[float, ...]:
            return tuple(float(getattr(point, obj)) for obj in objectives)

        front: list[DesignPoint] = []
        for candidate in self.points:
            c_vals = values(candidate)
            dominated = False
            for other in self.points:
                if other is candidate:
                    continue
                o_vals = values(other)
                if all(o <= c for o, c in zip(o_vals, c_vals)) and any(
                    o < c for o, c in zip(o_vals, c_vals)
                ):
                    dominated = True
                    break
            if not dominated:
                front.append(candidate)
        return sorted(front, key=values)


def explore(
    domain: "DomainSpec | str",
    scenario: Scenario,
    grid: Mapping[str, Sequence[object]],
    base: Parameters | None = None,
) -> DseResult:
    """Evaluate every combination of ``grid`` overrides.

    Args:
        domain: Table 2 domain (or explicit spec) to compare under.
        scenario: Fixed deployment scenario.
        grid: Parameter-name -> candidate values.  Names must be
            :class:`~repro.config.Parameters` fields.
        base: Baseline parameters for everything not in the grid.

    Returns:
        A :class:`DseResult` with one point per grid combination.
    """
    if not grid:
        raise ParameterError("grid must not be empty")
    spec = domain if isinstance(domain, DomainSpec) else get_domain(domain)
    base = base if base is not None else Parameters()

    names = list(grid)
    points = []
    for combo in itertools.product(*(grid[name] for name in names)):
        overrides = dict(zip(names, combo))
        params = base.with_overrides(**overrides)
        suite = params.build_suite()
        comparator = PlatformComparator(
            fpga_device=spec.fpga_device(),
            asic_device=spec.asic_device(),
            suite=suite,
        )
        comparison = comparator.compare(scenario)
        points.append(
            DesignPoint(
                overrides=overrides,
                fpga_total_kg=comparison.fpga.footprint.total,
                asic_total_kg=comparison.asic.footprint.total,
                ratio=comparison.ratio,
            )
        )
    return DseResult(points=tuple(points))
