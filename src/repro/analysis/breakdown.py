"""Component breakdowns (paper Figs. 7, 10, 11).

Turns :class:`~repro.core.lifecycle.CarbonFootprint` decompositions into
stacked series across a sweep (Fig. 7) or per-device component tables
(Figs. 10-11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sweep import SweepResult
from repro.core.lifecycle import CarbonFootprint


@dataclass(frozen=True)
class ComponentBreakdown:
    """Per-component series for one platform across a sweep.

    Attributes:
        platform: ``"fpga"`` or ``"asic"``.
        axis: Swept axis name.
        values: Axis values.
        components: Component name -> per-point kg series, in
            :attr:`CarbonFootprint.COMPONENTS` order, plus ``embodied``,
            ``operational_total`` style aggregates available via rows().
    """

    platform: str
    axis: str
    values: tuple[float, ...]
    components: dict[str, tuple[float, ...]]

    def stacked_rows(self) -> list[dict[str, float]]:
        """One row per sweep point with every component column."""
        rows = []
        for index, value in enumerate(self.values):
            row = {self.axis: value}
            for name, series in self.components.items():
                row[name] = series[index]
            row["embodied"] = sum(
                self.components[c][index]
                for c in ("design", "manufacturing", "packaging", "eol")
            )
            row["total"] = sum(series[index] for series in self.components.values())
            rows.append(row)
        return rows


def breakdown_from_sweep(result: SweepResult, platform: str) -> ComponentBreakdown:
    """Extract a per-component breakdown for one platform from a sweep."""
    if platform not in ("fpga", "asic"):
        raise KeyError(f"platform must be 'fpga' or 'asic', got {platform!r}")
    footprints = [
        getattr(comparison, platform).footprint for comparison in result.comparisons
    ]
    components = {
        name: tuple(getattr(fp, name) for fp in footprints)
        for name in CarbonFootprint.COMPONENTS
    }
    return ComponentBreakdown(
        platform=platform,
        axis=result.axis,
        values=result.values,
        components=components,
    )


def breakdown_table(footprint: CarbonFootprint) -> list[tuple[str, float, float]]:
    """(component, kg, fraction-of-total) rows for one footprint.

    Used by the industry-testcase experiments (Figs. 10-11).
    """
    return [
        (name, getattr(footprint, name), footprint.fraction_of_total(name))
        for name in CarbonFootprint.COMPONENTS
    ]
