"""A2F / F2A crossover detection (paper Section 4.2).

The paper defines the **A2F** point as where the FPGA's CFP drops below
the ASIC's, and **F2A** as where it rises back above.  Along a sweep these
are the sign changes of ``C_FPGA - C_ASIC``; we locate each by linear
interpolation between the bracketing sweep points.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ParameterError


@dataclass(frozen=True)
class Crossover:
    """One crossover along a sweep.

    Attributes:
        kind: ``"A2F"`` (FPGA becomes greener) or ``"F2A"``.
        x: Interpolated axis value where the CFPs are equal.
        left_index: Sweep index immediately before the crossover.
    """

    kind: str
    x: float
    left_index: int


def find_crossovers(
    xs: Sequence[float],
    fpga_totals: Sequence[float],
    asic_totals: Sequence[float],
) -> list[Crossover]:
    """Locate every A2F/F2A crossover along a sweep.

    Args:
        xs: Monotonically increasing axis values.
        fpga_totals: FPGA total CFP at each x.
        asic_totals: ASIC total CFP at each x.

    Returns:
        Crossovers in axis order.  Points where the difference is exactly
        zero are treated as the boundary itself.
    """
    if not (len(xs) == len(fpga_totals) == len(asic_totals)):
        raise ParameterError("xs, fpga_totals and asic_totals must have equal length")
    if len(xs) < 2:
        return []
    for left, right in zip(xs, list(xs)[1:]):
        if right <= left:
            raise ParameterError("xs must be strictly increasing")

    diffs = [f - a for f, a in zip(fpga_totals, asic_totals)]
    crossovers: list[Crossover] = []
    # Track the last *nonzero* sign so that grid points where the curves
    # merely touch (diff == 0) don't spawn spurious crossovers: a real
    # crossing requires opposite nonzero signs on either side.
    prev_index: int | None = None
    for i, diff in enumerate(diffs):
        if diff == 0.0:
            continue
        if prev_index is not None:
            prev = diffs[prev_index]
            # Compare signs directly: prev * diff can underflow to zero
            # for subnormal differences and miss the sign change.
            if (prev > 0.0) != (diff > 0.0):
                frac = prev / (prev - diff)
                x_cross = xs[prev_index] + frac * (xs[i] - xs[prev_index])
                kind = "A2F" if prev > 0.0 else "F2A"
                crossovers.append(Crossover(kind, float(x_cross), prev_index))
        prev_index = i
    return crossovers


def first_crossover(
    xs: Sequence[float],
    fpga_totals: Sequence[float],
    asic_totals: Sequence[float],
    kind: str | None = None,
) -> Crossover | None:
    """First crossover (optionally of one ``kind``), or None."""
    for crossover in find_crossovers(xs, fpga_totals, asic_totals):
        if kind is None or crossover.kind == kind:
            return crossover
    return None
