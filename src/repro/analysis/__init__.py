"""Analysis machinery for the paper's evaluation (Section 4)."""

from repro.analysis.breakdown import ComponentBreakdown, breakdown_table
from repro.analysis.crossover import Crossover, find_crossovers
from repro.analysis.heatmap import HeatmapResult, pairwise_heatmap
from repro.analysis.montecarlo import (
    ColumnSamples,
    MonteCarloResult,
    ParameterDistribution,
    StreamingMonteCarloResult,
    monte_carlo,
    monte_carlo_batch,
    monte_carlo_reduction,
    monte_carlo_stream,
    sample_value_columns,
)
from repro.analysis.sensitivity import SensitivityResult, tornado
from repro.analysis.sweep import SweepResult, sweep

__all__ = [
    "ColumnSamples",
    "ComponentBreakdown",
    "Crossover",
    "HeatmapResult",
    "MonteCarloResult",
    "ParameterDistribution",
    "SensitivityResult",
    "StreamingMonteCarloResult",
    "SweepResult",
    "breakdown_table",
    "find_crossovers",
    "monte_carlo",
    "monte_carlo_batch",
    "monte_carlo_reduction",
    "monte_carlo_stream",
    "pairwise_heatmap",
    "sample_value_columns",
    "sweep",
    "tornado",
]
