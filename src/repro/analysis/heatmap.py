"""Pairwise-sweep heatmaps of the FPGA:ASIC CFP ratio (paper Fig. 8).

Two scenario axes vary while the third stays at its baseline; each cell
holds the ratio, and the iso-ratio = 1 contour is the sustainability
boundary the paper marks with pink dashes.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.analysis.sweep import SWEEP_AXES, _AXIS_APPLIERS, axis_batch
from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.engine import EvaluationEngine, ScenarioBatch, resolve_engine
from repro.errors import ParameterError


@dataclass(frozen=True)
class HeatmapResult:
    """Grid of FPGA:ASIC ratios over two scenario axes.

    Attributes:
        x_axis / y_axis: Varied axes (x varies along columns).
        x_values / y_values: Grid coordinates.
        ratios: 2-D array, ``ratios[i, j]`` at ``(y_values[i], x_values[j])``.
    """

    x_axis: str
    y_axis: str
    x_values: tuple[float, ...]
    y_values: tuple[float, ...]
    ratios: np.ndarray

    def fpga_sustainable_mask(self) -> np.ndarray:
        """Boolean grid, True where the FPGA is the greener platform."""
        return self.ratios < 1.0

    def boundary_cells(self) -> list[tuple[int, int]]:
        """Grid cells adjacent to the ratio = 1 contour.

        A cell is on the boundary when any 4-neighbour is on the other
        side of ratio 1 — a discrete version of the paper's pink dashes.
        """
        mask = self.fpga_sustainable_mask()
        cells: list[tuple[int, int]] = []
        n_rows, n_cols = mask.shape
        for i in range(n_rows):
            for j in range(n_cols):
                neighbours = []
                if i > 0:
                    neighbours.append(mask[i - 1, j])
                if i + 1 < n_rows:
                    neighbours.append(mask[i + 1, j])
                if j > 0:
                    neighbours.append(mask[i, j - 1])
                if j + 1 < n_cols:
                    neighbours.append(mask[i, j + 1])
                if any(n != mask[i, j] for n in neighbours):
                    cells.append((i, j))
        return cells

    def rows(self) -> list[dict[str, float]]:
        """Flat per-cell rows for CSV export."""
        out: list[dict[str, float]] = []
        for i, y in enumerate(self.y_values):
            for j, x in enumerate(self.x_values):
                out.append(
                    {self.x_axis: x, self.y_axis: y, "ratio": float(self.ratios[i, j])}
                )
        return out


def pairwise_heatmap(
    comparator: PlatformComparator,
    base_scenario: Scenario,
    x_axis: str,
    x_values: Sequence[float],
    y_axis: str,
    y_values: Sequence[float],
    engine: EvaluationEngine | None = None,
) -> HeatmapResult:
    """Compute the FPGA:ASIC ratio over a 2-D grid of scenario axes.

    The grid is evaluated as one batch through ``engine`` (the shared
    default when not given), so overlapping panels — e.g. the Fig. 8
    triple, whose baselines share a whole row/column of cells — reuse
    cached assessments instead of recomputing them.
    """
    for axis in (x_axis, y_axis):
        if axis not in _AXIS_APPLIERS:
            raise ParameterError(
                f"unknown heatmap axis {axis!r}; expected one of {SWEEP_AXES}"
            )
    if x_axis == y_axis:
        raise ParameterError("heatmap axes must differ")
    if not x_values or not y_values:
        raise ParameterError("heatmap axis values must not be empty")

    apply_x = _AXIS_APPLIERS[x_axis]
    apply_y = _AXIS_APPLIERS[y_axis]
    scenarios = [
        apply_x(apply_y(base_scenario, y), x) for y in y_values for x in x_values
    ]
    comparisons = resolve_engine(engine).evaluate_many(comparator, scenarios)
    ratios = np.array([c.ratio for c in comparisons], dtype=float).reshape(
        (len(y_values), len(x_values))
    )
    return HeatmapResult(
        x_axis=x_axis,
        y_axis=y_axis,
        x_values=tuple(float(v) for v in x_values),
        y_values=tuple(float(v) for v in y_values),
        ratios=ratios,
    )


def heatmap_columns(
    base_scenario: Scenario,
    x_axis: str,
    x_values: Sequence[float],
    y_axis: str,
    y_values: Sequence[float],
) -> ScenarioBatch:
    """Validated scenario columns for a full 2-D heatmap grid.

    Shared by :func:`pairwise_heatmap_batch` and the async serving layer
    (:meth:`repro.engine.service.AsyncEvaluationEngine.heatmap_batch`),
    so both spellings build — and therefore digest and cache — identical
    batches (x varies fastest, matching the scalar nesting).
    """
    for axis in (x_axis, y_axis):
        if axis not in _AXIS_APPLIERS:
            raise ParameterError(
                f"unknown heatmap axis {axis!r}; expected one of {SWEEP_AXES}"
            )
    if x_axis == y_axis:
        raise ParameterError("heatmap axes must differ")
    if len(x_values) == 0 or len(y_values) == 0:
        raise ParameterError("heatmap axis values must not be empty")
    base_lifetimes = base_scenario.lifetimes
    if any(t != base_lifetimes[0] for t in base_lifetimes):
        # Mirror the scalar path, which applies the y axis before the x
        # axis: with_num_apps on still-heterogeneous lifetimes raises.
        if "num_apps" in (x_axis, y_axis) and not (
            x_axis == "num_apps" and y_axis == "lifetime"
        ):
            raise ParameterError(
                "varying num_apps requires a uniform app lifetime; rebuild "
                "the scenario explicitly for heterogeneous lifetimes"
            )
    x_col = np.tile(np.asarray(x_values), len(y_values))
    y_col = np.repeat(np.asarray(y_values), len(x_values))
    return axis_batch(base_scenario, {x_axis: x_col, y_axis: y_col})


def pairwise_heatmap_batch(
    comparator: PlatformComparator,
    base_scenario: Scenario,
    x_axis: str,
    x_values: Sequence[float],
    y_axis: str,
    y_values: Sequence[float],
    engine: EvaluationEngine | None = None,
) -> HeatmapResult:
    """Array-land :func:`pairwise_heatmap`: one kernel call for the grid.

    The whole grid is built as scenario *columns* and evaluated by the
    vector kernel — no per-cell :class:`Scenario` or ``ComparisonResult``
    objects exist at any point, which is what makes dense (100x100+)
    grids run at array speed.  Ratios agree with :func:`pairwise_heatmap`
    bit-for-bit, and cells populate (and are served from) the engine's
    sharded result store: a warm grid is answered with one vectorised
    gather, and overlapping panels share cells with every other
    analysis, scalar callers included.
    """
    batch = heatmap_columns(base_scenario, x_axis, x_values, y_axis, y_values)
    result = resolve_engine(engine).evaluate_batch(comparator, batch)
    return HeatmapResult(
        x_axis=x_axis,
        y_axis=y_axis,
        x_values=tuple(float(v) for v in x_values),
        y_values=tuple(float(v) for v in y_values),
        ratios=result.ratios.reshape((len(y_values), len(x_values))),
    )
