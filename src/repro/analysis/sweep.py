"""One-dimensional scenario sweeps (paper Figs. 4-6).

A sweep varies one scenario axis (``num_apps``, ``lifetime`` or
``volume``), assesses both platforms at every point, and records total
CFPs and ratios ready for crossover analysis and plotting.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.comparison import ComparisonResult, PlatformComparator
from repro.core.scenario import Scenario
from repro.engine import EvaluationEngine, resolve_engine
from repro.errors import ParameterError

#: Axes a sweep can vary and how each value is applied to the scenario.
_AXIS_APPLIERS = {
    "num_apps": lambda scenario, value: scenario.with_num_apps(int(value)),
    "lifetime": lambda scenario, value: scenario.with_lifetime(float(value)),
    "volume": lambda scenario, value: scenario.with_volume(int(value)),
}

SWEEP_AXES = tuple(_AXIS_APPLIERS)


@dataclass(frozen=True)
class SweepResult:
    """Outcome of a one-dimensional sweep.

    Attributes:
        axis: Which scenario axis was varied.
        values: Axis values, in sweep order.
        comparisons: Full comparison at each axis value.
    """

    axis: str
    values: tuple[float, ...]
    comparisons: tuple[ComparisonResult, ...]

    @property
    def fpga_totals(self) -> tuple[float, ...]:
        """FPGA total CFP at each point (kg)."""
        return tuple(c.fpga.footprint.total for c in self.comparisons)

    @property
    def asic_totals(self) -> tuple[float, ...]:
        """ASIC total CFP at each point (kg)."""
        return tuple(c.asic.footprint.total for c in self.comparisons)

    @property
    def ratios(self) -> tuple[float, ...]:
        """FPGA:ASIC ratio at each point."""
        return tuple(c.ratio for c in self.comparisons)

    def winner_at(self, index: int) -> str:
        """Winning platform at sweep point ``index``."""
        return self.comparisons[index].winner

    def rows(self) -> list[dict[str, float | str]]:
        """Flat per-point rows for reporting/CSV."""
        out: list[dict[str, float | str]] = []
        for value, comparison in zip(self.values, self.comparisons):
            row: dict[str, float | str] = {self.axis: value}
            row.update(comparison.summary())
            out.append(row)
        return out


def sweep(
    comparator: PlatformComparator,
    base_scenario: Scenario,
    axis: str,
    values: Sequence[float],
    engine: EvaluationEngine | None = None,
) -> SweepResult:
    """Assess both platforms across ``values`` of one scenario axis.

    Args:
        comparator: Device pair + model suite to assess.
        base_scenario: Scenario whose other axes stay fixed.
        axis: One of :data:`SWEEP_AXES`.
        values: Axis values to visit (any order; preserved).
        engine: Batch evaluator; the shared default (with its cache)
            when not given.

    Raises:
        ParameterError: for an unknown axis or empty values.
    """
    if axis not in _AXIS_APPLIERS:
        raise ParameterError(f"unknown sweep axis {axis!r}; expected one of {SWEEP_AXES}")
    if not values:
        raise ParameterError("sweep values must not be empty")
    apply_axis = _AXIS_APPLIERS[axis]
    comparisons = resolve_engine(engine).evaluate_many(
        comparator, (apply_axis(base_scenario, value) for value in values)
    )
    return SweepResult(
        axis=axis,
        values=tuple(float(v) for v in values),
        comparisons=comparisons,
    )
