"""One-dimensional scenario sweeps (paper Figs. 4-6).

A sweep varies one scenario axis (``num_apps``, ``lifetime`` or
``volume``), assesses both platforms at every point, and records total
CFPs and ratios ready for crossover analysis and plotting.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.comparison import ComparisonResult, PlatformComparator
from repro.core.scenario import Scenario
from repro.engine import BatchResult, EvaluationEngine, ScenarioBatch, resolve_engine
from repro.errors import ParameterError

#: Axes a sweep can vary and how each value is applied to the scenario.
_AXIS_APPLIERS = {
    "num_apps": lambda scenario, value: scenario.with_num_apps(int(value)),
    "lifetime": lambda scenario, value: scenario.with_lifetime(float(value)),
    "volume": lambda scenario, value: scenario.with_volume(int(value)),
}

SWEEP_AXES = tuple(_AXIS_APPLIERS)


def axis_batch(
    base_scenario: Scenario,
    axis_values: "dict[str, np.ndarray]",
) -> ScenarioBatch:
    """Columnise ``base_scenario`` with one or more axes overridden.

    The array-land twin of applying :data:`_AXIS_APPLIERS` per value:
    ``axis_values`` maps axis names (:data:`SWEEP_AXES`) to equal-length
    arrays, every other scenario field rides along from the base.  A
    heterogeneous-lifetime base is supported only when the ``lifetime``
    axis is overridden (the column then defines every row's uniform
    lifetime, matching the scalar appliers); otherwise the batch cannot
    represent the ragged lifetimes — use the scalar entry point.
    """
    for axis in axis_values:
        if axis not in _AXIS_APPLIERS:
            raise ParameterError(
                f"unknown sweep axis {axis!r}; expected one of {SWEEP_AXES}"
            )
    base_lifetimes = base_scenario.lifetimes
    uniform = all(t == base_lifetimes[0] for t in base_lifetimes)
    if not uniform and "lifetime" not in axis_values:
        raise ParameterError(
            "batch sweeps require a uniform base app lifetime unless the "
            "lifetime axis is overridden; rebuild the scenario explicitly "
            "(or use the scalar entry point) for heterogeneous lifetimes"
        )
    num_apps = axis_values.get("num_apps", base_scenario.num_apps)
    lifetime = axis_values.get("lifetime", base_lifetimes[0])
    volume = axis_values.get("volume", base_scenario.volume)
    return ScenarioBatch.from_arrays(
        num_apps=np.asarray(num_apps, dtype=np.int64),
        lifetime=np.asarray(lifetime, dtype=np.float64),
        volume=np.asarray(volume, dtype=np.int64),
        evaluation_years=base_scenario.evaluation_years,
        app_size_mgates=base_scenario.app_size_mgates,
        enforce_chip_lifetime=base_scenario.enforce_chip_lifetime,
    )


@dataclass(frozen=True)
class SweepResult:
    """Outcome of a one-dimensional sweep.

    Attributes:
        axis: Which scenario axis was varied.
        values: Axis values, in sweep order.
        comparisons: Full comparison at each axis value.
    """

    axis: str
    values: tuple[float, ...]
    comparisons: tuple[ComparisonResult, ...]

    @property
    def fpga_totals(self) -> tuple[float, ...]:
        """FPGA total CFP at each point (kg)."""
        return tuple(c.fpga.footprint.total for c in self.comparisons)

    @property
    def asic_totals(self) -> tuple[float, ...]:
        """ASIC total CFP at each point (kg)."""
        return tuple(c.asic.footprint.total for c in self.comparisons)

    @property
    def ratios(self) -> tuple[float, ...]:
        """FPGA:ASIC ratio at each point."""
        return tuple(c.ratio for c in self.comparisons)

    def winner_at(self, index: int) -> str:
        """Winning platform at sweep point ``index``."""
        return self.comparisons[index].winner

    def rows(self) -> list[dict[str, float | str]]:
        """Flat per-point rows for reporting/CSV."""
        out: list[dict[str, float | str]] = []
        for value, comparison in zip(self.values, self.comparisons):
            row: dict[str, float | str] = {self.axis: value}
            row.update(comparison.summary())
            out.append(row)
        return out


def sweep(
    comparator: PlatformComparator,
    base_scenario: Scenario,
    axis: str,
    values: Sequence[float],
    engine: EvaluationEngine | None = None,
) -> SweepResult:
    """Assess both platforms across ``values`` of one scenario axis.

    Args:
        comparator: Device pair + model suite to assess.
        base_scenario: Scenario whose other axes stay fixed.
        axis: One of :data:`SWEEP_AXES`.
        values: Axis values to visit (any order; preserved).
        engine: Batch evaluator; the shared default (with its cache)
            when not given.

    Raises:
        ParameterError: for an unknown axis or empty values.
    """
    if axis not in _AXIS_APPLIERS:
        raise ParameterError(f"unknown sweep axis {axis!r}; expected one of {SWEEP_AXES}")
    if not values:
        raise ParameterError("sweep values must not be empty")
    apply_axis = _AXIS_APPLIERS[axis]
    comparisons = resolve_engine(engine).evaluate_many(
        comparator, (apply_axis(base_scenario, value) for value in values)
    )
    return SweepResult(
        axis=axis,
        values=tuple(float(v) for v in values),
        comparisons=comparisons,
    )


@dataclass(frozen=True)
class SweepBatch:
    """Array-land outcome of a one-dimensional sweep.

    The batch twin of :class:`SweepResult`: per-point quantities are
    NumPy arrays read straight off the vector kernel, and no
    :class:`ComparisonResult` is materialised anywhere.

    Attributes:
        axis: Which scenario axis was varied.
        values: Axis values, in sweep order (any order is preserved,
            including descending and single-point axes).
        batch: Full :class:`BatchResult` with totals, winners and
            per-component breakdowns.
    """

    axis: str
    values: np.ndarray
    batch: BatchResult

    @property
    def ratios(self) -> np.ndarray:
        """FPGA:ASIC ratio at each point."""
        return self.batch.ratios

    @property
    def fpga_totals(self) -> np.ndarray:
        """FPGA total CFP at each point (kg)."""
        return self.batch.fpga_totals

    @property
    def asic_totals(self) -> np.ndarray:
        """ASIC total CFP at each point (kg)."""
        return self.batch.asic_totals

    @property
    def winners(self) -> np.ndarray:
        """Winning platform at each point (``"fpga"`` / ``"asic"``)."""
        return self.batch.winners


def sweep_columns(
    base_scenario: Scenario, axis: str, values: Sequence[float]
) -> ScenarioBatch:
    """Validated scenario columns for a one-axis sweep.

    Shared by :func:`sweep_batch` and the async serving layer
    (:meth:`repro.engine.service.AsyncEvaluationEngine.sweep_batch`), so
    both spellings build — and therefore digest and cache — identical
    batches.
    """
    if axis not in _AXIS_APPLIERS:
        raise ParameterError(f"unknown sweep axis {axis!r}; expected one of {SWEEP_AXES}")
    if len(values) == 0:
        raise ParameterError("sweep values must not be empty")
    return axis_batch(base_scenario, {axis: np.asarray(values)})


def sweep_batch(
    comparator: PlatformComparator,
    base_scenario: Scenario,
    axis: str,
    values: Sequence[float],
    engine: EvaluationEngine | None = None,
) -> SweepBatch:
    """Array-land :func:`sweep`: one kernel call, no per-point objects.

    Results agree with :func:`sweep` bit-for-bit (the kernel mirrors the
    scalar arithmetic); use this entry point when only the arrays are
    wanted — dense axes, service endpoints, benchmark loops.  Points are
    cached in (and served from) the engine's sharded result store, so
    sweeps share warmth with every other analysis.
    """
    batch = sweep_columns(base_scenario, axis, values)
    result = resolve_engine(engine).evaluate_batch(comparator, batch)
    return SweepBatch(
        axis=axis,
        values=np.asarray(values, dtype=np.float64),
        batch=result,
    )
