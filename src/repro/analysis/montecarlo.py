"""Monte-Carlo uncertainty propagation over Table 1 parameter ranges.

The paper's Section 5 stresses that inputs are uncertain (proprietary
yields, project durations, coarse sustainability reports).  This module
samples scenario-level model knobs from user-declared distributions and
reports the induced distribution of the FPGA:ASIC ratio — including the
probability that the FPGA is the greener platform.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.errors import ParameterError


@dataclass(frozen=True)
class ParameterDistribution:
    """One uncertain model knob.

    Attributes:
        name: Knob label (reported in results).
        low / high: Range bounds (Table 1 style).
        apply: Callback ``(comparator, value) -> PlatformComparator``
            returning a comparator with the knob set to ``value``.
        kind: ``"uniform"`` or ``"loguniform"`` sampling over the range.
    """

    name: str
    low: float
    high: float
    apply: Callable[[PlatformComparator, float], PlatformComparator]
    kind: str = "uniform"

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ParameterError(f"{self.name}: high < low")
        if self.kind not in ("uniform", "loguniform"):
            raise ParameterError(f"{self.name}: unknown sampling kind {self.kind!r}")
        if self.kind == "loguniform" and self.low <= 0.0:
            raise ParameterError(f"{self.name}: loguniform requires low > 0")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value from this distribution."""
        if self.kind == "loguniform":
            return float(np.exp(rng.uniform(np.log(self.low), np.log(self.high))))
        return float(rng.uniform(self.low, self.high))


@dataclass(frozen=True)
class MonteCarloResult:
    """Sampled distribution of the FPGA:ASIC ratio."""

    ratios: np.ndarray
    samples: tuple[dict[str, float], ...]

    @property
    def n_samples(self) -> int:
        """Number of Monte-Carlo draws."""
        return int(self.ratios.size)

    @property
    def fpga_win_probability(self) -> float:
        """Fraction of draws where the FPGA is greener (ratio < 1)."""
        return float(np.mean(self.ratios < 1.0))

    def quantiles(self, qs: Sequence[float] = (0.05, 0.25, 0.5, 0.75, 0.95)) -> dict[float, float]:
        """Requested quantiles of the ratio distribution."""
        values = np.quantile(self.ratios, list(qs))
        return {float(q): float(v) for q, v in zip(qs, values)}

    def summary(self) -> dict[str, float]:
        """Flat summary for reporting."""
        quantiles = self.quantiles()
        return {
            "n_samples": float(self.n_samples),
            "fpga_win_probability": self.fpga_win_probability,
            "ratio_mean": float(np.mean(self.ratios)),
            "ratio_p05": quantiles[0.05],
            "ratio_p50": quantiles[0.5],
            "ratio_p95": quantiles[0.95],
        }


def monte_carlo(
    comparator: PlatformComparator,
    scenario: Scenario,
    distributions: Sequence[ParameterDistribution],
    n_samples: int = 500,
    seed: int = 2024,
) -> MonteCarloResult:
    """Propagate parameter uncertainty into the FPGA:ASIC ratio.

    Args:
        comparator: Baseline device pair + suite.
        scenario: Fixed deployment scenario.
        distributions: Knobs to perturb each draw.
        n_samples: Number of draws.
        seed: RNG seed (results are reproducible by construction).
    """
    if n_samples < 1:
        raise ParameterError("n_samples must be >= 1")
    if not distributions:
        raise ParameterError("at least one ParameterDistribution is required")
    rng = np.random.default_rng(seed)
    ratios = np.empty(n_samples, dtype=float)
    samples: list[dict[str, float]] = []
    for i in range(n_samples):
        drawn: dict[str, float] = {}
        perturbed = comparator
        for dist in distributions:
            value = dist.sample(rng)
            drawn[dist.name] = value
            perturbed = dist.apply(perturbed, value)
        ratios[i] = perturbed.ratio(scenario)
        samples.append(drawn)
    return MonteCarloResult(ratios=ratios, samples=tuple(samples))
