"""Monte-Carlo uncertainty propagation over Table 1 parameter ranges.

The paper's Section 5 stresses that inputs are uncertain (proprietary
yields, project durations, coarse sustainability reports).  This module
samples scenario-level model knobs from user-declared distributions and
reports the induced distribution of the FPGA:ASIC ratio — including the
probability that the FPGA is the greener platform.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.engine import EvaluationEngine, resolve_engine
from repro.engine.vector import (
    DEFAULT_RESERVOIR_K,
    REDUCE_BLOCK,
    Checkpoint,
    HistogramReducer,
    MomentsReducer,
    MonteCarloChunkSource,
    ParameterBatch,
    ReservoirQuantiles,
    ScenarioBatch,
    StreamingReduction,
    VectorizedEvaluator,
    WinCountReducer,
    extract_row,
)
from repro.errors import ParameterError


@dataclass(frozen=True)
class ParameterDistribution:
    """One uncertain model knob.

    Attributes:
        name: Knob label (reported in results).
        low / high: Range bounds (Table 1 style).
        apply: Callback ``(comparator, value) -> PlatformComparator``
            returning a comparator with the knob set to ``value``.
        kind: ``"uniform"`` or ``"loguniform"`` sampling over the range.
        apply_column: Optional vectorised twin of ``apply``: callback
            ``(params, values) -> None`` writing the knob's parameter
            columns of a whole draw batch (one
            :meth:`~repro.engine.vector.ParameterBatch.set_col` call per
            affected column).  When every distribution of a Monte-Carlo
            study provides one, :func:`monte_carlo_batch` runs fully
            columnar — no per-draw comparator objects exist at all.  The
            callback must perturb exactly what ``apply`` perturbs
            (results are cross-checked to ``rtol <= 1e-12`` in tests).
    """

    name: str
    low: float
    high: float
    apply: Callable[[PlatformComparator, float], PlatformComparator]
    kind: str = "uniform"
    apply_column: "Callable[[ParameterBatch, np.ndarray], None] | None" = None

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ParameterError(f"{self.name}: high < low")
        if self.kind not in ("uniform", "loguniform"):
            raise ParameterError(f"{self.name}: unknown sampling kind {self.kind!r}")
        if self.kind == "loguniform" and self.low <= 0.0:
            raise ParameterError(f"{self.name}: loguniform requires low > 0")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value from this distribution."""
        if self.kind == "loguniform":
            return float(np.exp(rng.uniform(np.log(self.low), np.log(self.high))))
        return float(rng.uniform(self.low, self.high))

    def column_from_uniform(
        self, u: np.ndarray, out: "np.ndarray | None" = None
    ) -> np.ndarray:
        """Map unit-interval draws onto this distribution, vectorised.

        Applies the same affine (or log-affine) transform NumPy's
        ``Generator.uniform`` applies to its underlying unit doubles, so
        a column built from ``rng.random(n)`` is bit-identical to ``n``
        sequential :meth:`sample` calls on the same generator state.

        ``out`` recycles a caller-owned buffer for the result (the
        streaming chunk source reuses per-thread columns to avoid
        megabyte allocations per chunk); the transform itself runs
        in place either way — same operations, same operand order,
        bit-identical values, one temporary instead of three.
        """
        u = np.asarray(u, dtype=np.float64)
        if self.kind == "loguniform":
            log_low, log_high = np.log(self.low), np.log(self.high)
            out = np.multiply(log_high - log_low, u, out=out)
            np.add(log_low, out, out=out)
            return np.exp(out, out=out)
        out = np.multiply(self.high - self.low, u, out=out)
        np.add(self.low, out, out=out)
        return out

    def sample_column(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` values as one column (consumes ``n`` unit doubles).

        Bit-identical to ``n`` sequential :meth:`sample` calls for a
        single distribution; studies over *several* distributions must
        sample draw-major via :func:`sample_value_columns` to preserve
        the legacy per-draw RNG consumption order.
        """
        return self.column_from_uniform(rng.random(n))


def sample_value_columns(
    distributions: Sequence[ParameterDistribution],
    rng: np.random.Generator,
    n: int,
) -> list[np.ndarray]:
    """Sample every distribution as a column, draw-major.

    Consumes the generator exactly like the historical per-draw loop
    (draw 0 samples every distribution in order, then draw 1, ...), so
    seeded columnar runs reproduce the scalar path's draws bit-for-bit
    — one matrix fill instead of ``n x len(distributions)`` scalar
    calls.  Returns one value column per distribution, in order.
    """
    u = rng.random((n, len(distributions)))
    return [
        dist.column_from_uniform(u[:, j])
        for j, dist in enumerate(distributions)
    ]


class ColumnSamples(Sequence):
    """Per-draw sample dicts, materialised lazily from value columns.

    Behaves like the tuple-of-dicts the scalar path records (length,
    indexing, slicing, equality against any sequence of mappings) while
    storing only the underlying NumPy columns — a million-draw study
    carries a few arrays, not a million dicts.
    """

    __slots__ = ("_columns",)

    def __init__(self, columns: Mapping[str, np.ndarray]) -> None:
        self._columns = dict(columns)

    @property
    def columns(self) -> dict[str, np.ndarray]:
        """The name -> value-column mapping behind the sequence."""
        return self._columns

    def __len__(self) -> int:
        if not self._columns:
            return 0
        return int(next(iter(self._columns.values())).shape[0])

    def __getitem__(self, index):
        if isinstance(index, slice):
            return tuple(
                self[i] for i in range(*index.indices(len(self)))
            )
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return {
            name: float(column[index])
            for name, column in self._columns.items()
        }

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ColumnSamples):
            return self._columns.keys() == other._columns.keys() and all(
                np.array_equal(self._columns[k], other._columns[k])
                for k in self._columns
            )
        if isinstance(other, Sequence) and not isinstance(other, (str, bytes)):
            return len(self) == len(other) and all(
                self[i] == other[i] for i in range(len(self))
            )
        return NotImplemented

    __hash__ = None  # mutable columns; mirror list/dict semantics

    def __repr__(self) -> str:
        return (
            f"ColumnSamples(n={len(self)}, names={sorted(self._columns)})"
        )


def quantiles_from_sorted(
    sorted_values: np.ndarray, qs: Sequence[float]
) -> np.ndarray:
    """Linear-method quantiles of an already-sorted array, O(len(qs)).

    Reproduces ``np.quantile(values, qs)`` (default ``linear``
    interpolation) bit-for-bit — including NumPy's ``gamma >= 0.5``
    lerp rewrite that keeps the result monotone — without the O(n)
    partition per call, so cached-sort consumers get constant-time
    quantiles.
    """
    q = np.asarray(qs, dtype=np.float64)
    if q.size and (q.min() < 0.0 or q.max() > 1.0):
        raise ValueError("Quantiles must be in the range [0, 1]")
    n = sorted_values.shape[0]
    virtual = q * (n - 1)
    previous = np.clip(np.floor(virtual).astype(np.intp), 0, n - 1)
    following = np.minimum(previous + 1, n - 1)
    gamma = virtual - previous
    a = sorted_values[previous]
    b = sorted_values[following]
    diff = b - a
    result = a + diff * gamma
    fix = gamma >= 0.5
    result[fix] = b[fix] - diff[fix] * (1.0 - gamma[fix])
    return result


@dataclass(frozen=True)
class MonteCarloResult:
    """Sampled distribution of the FPGA:ASIC ratio.

    ``winners`` (when provided by :func:`monte_carlo` /
    :func:`monte_carlo_batch`) carries the totals-based per-draw winner,
    which stays correct even where the ratio's sign stops tracking the
    greener platform (credit-negative ASIC totals).

    ``samples`` is a per-draw sequence of ``{knob: value}`` dicts — an
    eager tuple on the object path, a lazy :class:`ColumnSamples` view
    on the columnar path.  Columnar results additionally expose the raw
    value columns via ``sample_columns`` for array-land consumers.
    """

    ratios: np.ndarray
    samples: Sequence[dict[str, float]]
    winners: np.ndarray | None = None
    sample_columns: "Mapping[str, np.ndarray] | None" = None

    @property
    def n_samples(self) -> int:
        """Number of Monte-Carlo draws."""
        return int(self.ratios.size)

    def _cached(self, name: str, compute) -> np.ndarray:
        """Lazily computed per-instance cache slot (frozen-safe).

        ``ratios`` is treated as immutable once a result is built, so
        derived views (the finite subset, its sort) are computed once
        and reused — ``summary()``/``quantiles()`` on a 100M-draw result
        cost one sort total, not one per call.
        """
        value = self.__dict__.get(name)
        if value is None:
            value = compute()
            object.__setattr__(self, name, value)
        return value

    @property
    def finite_ratios(self) -> np.ndarray:
        """Draws with a finite ratio (degenerate zero-ASIC totals excluded)."""
        return self._cached(
            "_finite_ratios", lambda: self.ratios[np.isfinite(self.ratios)]
        )

    @property
    def sorted_finite_ratios(self) -> np.ndarray:
        """The finite draws sorted ascending, computed once and cached.

        Every :meth:`quantiles`/:meth:`summary` call used to re-reduce
        the full ratio array; with the sort cached they are O(#quantiles)
        after the first call.  Treat the returned array as read-only.
        """
        return self._cached(
            "_sorted_finite", lambda: np.sort(self.finite_ratios)
        )

    @property
    def n_non_finite(self) -> int:
        """Draws whose ratio is ``+/-inf``/``nan`` (zero ASIC totals).

        Excluded from :meth:`quantiles` and :meth:`summary` moments; they
        still count toward :attr:`fpga_win_probability`.
        """
        return int(self.ratios.size - self.finite_ratios.size)

    @property
    def fpga_win_probability(self) -> float:
        """Fraction of draws where the FPGA is the greener platform.

        Decided on :attr:`winners` (totals-based, matching
        :attr:`ComparisonResult.winner`) when the result carries them,
        which stays correct even for draws whose ASIC total goes
        credit-negative and inverts the quotient's sign.  Without
        winners the ``ratio < 1`` proxy applies, robust to non-finite
        ratios per :attr:`ComparisonResult.ratio`'s edge semantics:
        ``-inf`` (negative FPGA total against a zero ASIC total) is a
        decisive FPGA win, while ``+inf`` and ``nan`` count as draws the
        FPGA did *not* win — the probability stays well-defined either
        way.
        """
        if self.winners is not None:
            wins = int(np.count_nonzero(self.winners == "fpga"))
        else:
            wins = int(np.count_nonzero(self.ratios < 1.0))
        return wins / self.ratios.size

    def quantiles(self, qs: Sequence[float] = (0.05, 0.25, 0.5, 0.75, 0.95)) -> dict[float, float]:
        """Requested quantiles over the finite ratio draws.

        Values are bit-identical to ``np.quantile`` (linear method) but
        interpolated from :attr:`sorted_finite_ratios`, so repeated
        calls never re-sort or re-partition the draw array.
        All-non-finite distributions return ``nan`` for every quantile
        rather than raising.
        """
        finite = self.sorted_finite_ratios
        if finite.size == 0:
            return {float(q): float("nan") for q in qs}
        values = quantiles_from_sorted(finite, qs)
        return {float(q): float(v) for q, v in zip(qs, values)}

    def summary(self) -> dict[str, float]:
        """Flat summary for reporting (moments over finite draws)."""
        quantiles = self.quantiles()
        finite = self.finite_ratios
        mean = (
            float(self._cached("_ratio_mean", lambda: np.mean(finite)))
            if finite.size else float("nan")
        )
        return {
            "n_samples": float(self.n_samples),
            "fpga_win_probability": self.fpga_win_probability,
            "ratio_mean": mean,
            "ratio_p05": quantiles[0.05],
            "ratio_p50": quantiles[0.5],
            "ratio_p95": quantiles[0.95],
        }


@dataclass(frozen=True)
class StreamingMonteCarloResult:
    """Bounded-memory summary of a streamed Monte-Carlo study.

    The streaming twin of :class:`MonteCarloResult`: built by
    :func:`monte_carlo_batch` in ``reduce=`` mode (or
    :func:`monte_carlo_stream`) from merged
    :class:`~repro.engine.vector.StreamingReduction` partials, it holds
    a few counters, the exact online moments and a quantile sketch —
    never the per-draw ratio array — so a 100M-draw study summarises in
    the same footprint as a 100k-draw one.

    Fidelity contract versus the materialized path over the same seeded
    draws: ``n_samples``/``n_non_finite``/``fpga_win_probability`` are
    *exact* (integer counters), the moments are bit-reproducible across
    chunk sizes and worker counts and match ``np.mean`` within
    ``rtol <= 1e-12``, and :meth:`quantiles` are exact while
    :attr:`quantile_exact` holds (finite draws fit the sketch) and
    carry ``~sqrt(q(1-q)/quantile_k)`` rank error beyond that.
    """

    n_samples: int
    n_finite: int
    fpga_wins: int
    ratio_mean: float
    ratio_var: float
    ratio_min: float
    ratio_max: float
    #: Sorted finite-ratio sample kept by the reservoir sketch.
    quantile_sample: np.ndarray
    quantile_exact: bool
    quantile_k: int
    #: Optional fixed-bin histogram: ``(counts, edges)`` arrays.
    histogram: "tuple[np.ndarray, np.ndarray] | None" = None

    @classmethod
    def from_reduction(
        cls, reduction: StreamingReduction
    ) -> "StreamingMonteCarloResult":
        """Summarise merged ``moments``/``wins``/``quantiles`` reducers.

        The streaming-backed constructor: expects the members built by
        :func:`monte_carlo_reduction` (an optional ``histogram`` member
        is carried through when present).
        """
        moments = reduction["moments"].moments()
        wins = reduction["wins"]
        sketch = reduction["quantiles"]
        hist = reduction.reducers.get("histogram")
        return cls(
            n_samples=wins.n,
            n_finite=int(moments["n_finite"]),
            fpga_wins=wins.fpga_wins,
            ratio_mean=moments["mean"],
            ratio_var=moments["var"],
            ratio_min=moments["min"],
            ratio_max=moments["max"],
            quantile_sample=sketch.sample(),
            quantile_exact=sketch.exact,
            quantile_k=sketch.k,
            histogram=None if hist is None else (hist.counts.copy(),
                                                 hist.edges),
        )

    @property
    def n_non_finite(self) -> int:
        """Draws whose ratio is ``+/-inf``/``nan`` (zero ASIC totals)."""
        return self.n_samples - self.n_finite

    @property
    def ratio_std(self) -> float:
        """Standard deviation over finite draws (population)."""
        return float(np.sqrt(self.ratio_var))

    @property
    def fpga_win_probability(self) -> float:
        """Fraction of draws the FPGA won — exact (totals-based counter)."""
        return self.fpga_wins / self.n_samples

    def quantiles(
        self, qs: Sequence[float] = (0.05, 0.25, 0.5, 0.75, 0.95)
    ) -> dict[float, float]:
        """Requested quantiles over the sketch's finite-ratio sample."""
        if self.quantile_sample.shape[0] == 0:
            return {float(q): float("nan") for q in qs}
        values = quantiles_from_sorted(self.quantile_sample, qs)
        return {float(q): float(v) for q, v in zip(qs, values)}

    def summary(self) -> dict[str, float]:
        """Flat summary, same keys as :meth:`MonteCarloResult.summary`."""
        quantiles = self.quantiles()
        return {
            "n_samples": float(self.n_samples),
            "fpga_win_probability": self.fpga_win_probability,
            "ratio_mean": self.ratio_mean,
            "ratio_p05": quantiles[0.05],
            "ratio_p50": quantiles[0.5],
            "ratio_p95": quantiles[0.95],
        }


def monte_carlo_reduction(
    *,
    seed: int = 2024,
    quantile_k: int = DEFAULT_RESERVOIR_K,
    block: int = REDUCE_BLOCK,
    histogram: "tuple[float, float, int] | None" = None,
) -> StreamingReduction:
    """The default reducer bundle of a streamed Monte-Carlo study.

    Exact win counters, block-partial online moments and a
    deterministic bottom-k quantile sketch (seeded with the study seed,
    so re-runs reproduce the sketch bit-for-bit); pass
    ``histogram=(lo, hi, bins)`` to additionally stream a fixed-bin
    ratio histogram.
    """
    reducers: dict = {
        "moments": MomentsReducer(block=block),
        "wins": WinCountReducer(),
        "quantiles": ReservoirQuantiles(k=quantile_k, seed=seed),
    }
    if histogram is not None:
        lo, hi, bins = histogram
        reducers["histogram"] = HistogramReducer(lo, hi, bins)
    return StreamingReduction(reducers)


def _validate_study(
    distributions: Sequence[ParameterDistribution], n_samples: int
) -> None:
    if n_samples < 1:
        raise ParameterError("n_samples must be >= 1")
    if not distributions:
        raise ParameterError("at least one ParameterDistribution is required")


def _resolve_seed(seed: "int | None", allow_unseeded: bool) -> int:
    """Resolve a study seed, forcing unseeded runs to be an explicit opt-in.

    Every Monte-Carlo entry point is seeded by default so results are
    reproducible by construction.  ``seed=None`` is only honoured when
    the caller passes ``allow_unseeded=True``; the opt-in still resolves
    to one concrete entropy-drawn integer up front, so the draw RNG, the
    per-chunk streaming RNGs and the quantile sketch all share a single
    seed and the (irreproducible) run stays internally consistent.
    """
    if seed is not None:
        return int(seed)
    if not allow_unseeded:
        raise ParameterError(
            "seed=None would make the study irreproducible; pass "
            "allow_unseeded=True to opt in explicitly (one fresh entropy "
            "seed is then drawn for the whole study)"
        )
    return int(np.random.SeedSequence().entropy) % 2**32


def _draw_pairs(
    comparator: PlatformComparator,
    scenario: Scenario,
    distributions: Sequence[ParameterDistribution],
    n_samples: int,
    seed: int,
) -> tuple[tuple[dict[str, float], ...], list[tuple[PlatformComparator, Scenario]]]:
    """Sample every draw up-front: ``(samples, (comparator, scenario) pairs)``.

    One body shared by :func:`monte_carlo` and :func:`monte_carlo_batch`
    so the RNG consumption order — the reproducibility contract between
    them — can never drift apart.
    """
    _validate_study(distributions, n_samples)
    rng = np.random.default_rng(seed)
    samples: list[dict[str, float]] = []
    pairs: list[tuple[PlatformComparator, Scenario]] = []
    for _ in range(n_samples):
        drawn: dict[str, float] = {}
        perturbed = comparator
        for dist in distributions:
            value = dist.sample(rng)
            drawn[dist.name] = value
            perturbed = dist.apply(perturbed, value)
        samples.append(drawn)
        pairs.append((perturbed, scenario))
    return tuple(samples), pairs


def monte_carlo(
    comparator: PlatformComparator,
    scenario: Scenario,
    distributions: Sequence[ParameterDistribution],
    n_samples: int = 500,
    seed: "int | None" = 2024,
    engine: EvaluationEngine | None = None,
    *,
    allow_unseeded: bool = False,
) -> MonteCarloResult:
    """Propagate parameter uncertainty into the FPGA:ASIC ratio.

    All draws are sampled up-front (the RNG consumption order is
    identical to the historical per-draw loop, so seeded results are
    bit-for-bit reproducible across versions) and then assessed as one
    batch through ``engine`` — duplicate perturbations and draws shared
    with other analyses hit the cache, and ``workers`` parallelise the
    rest.

    Args:
        comparator: Baseline device pair + suite.
        scenario: Fixed deployment scenario.
        distributions: Knobs to perturb each draw.
        n_samples: Number of draws.
        seed: RNG seed (results are reproducible by construction).
            ``None`` requires ``allow_unseeded=True``.
        engine: Batch evaluator; the shared default when not given.
        allow_unseeded: Explicit opt-in for ``seed=None`` — one fresh
            entropy seed is then drawn for the whole study.
    """
    seed = _resolve_seed(seed, allow_unseeded)
    samples, pairs = _draw_pairs(comparator, scenario, distributions,
                                 n_samples, seed)
    comparisons = resolve_engine(engine).evaluate_pairs(pairs)
    ratios = np.array([c.ratio for c in comparisons], dtype=float)
    winners = np.array([c.winner for c in comparisons])
    return MonteCarloResult(ratios=ratios, samples=samples, winners=winners)


def _columnar_study(
    engine: EvaluationEngine,
    scenario: Scenario,
    distributions: Sequence[ParameterDistribution],
) -> bool:
    """Whether the study can run without per-draw comparator objects."""
    return bool(
        engine.vectorize
        and distributions
        and all(d.apply_column is not None for d in distributions)
        and VectorizedEvaluator.covers(scenario)
    )


def monte_carlo_batch(
    comparator: PlatformComparator,
    scenario: Scenario,
    distributions: Sequence[ParameterDistribution],
    n_samples: int = 500,
    seed: "int | None" = 2024,
    engine: EvaluationEngine | None = None,
    *,
    reduce: "StreamingReduction | bool | None" = None,
    chunk_rows: "int | None" = None,
    workers: "int | None" = None,
    checkpoint: "Checkpoint | None" = None,
    allow_unseeded: bool = False,
) -> "MonteCarloResult | StreamingMonteCarloResult":
    """Array-land :func:`monte_carlo`: the draws run as one kernel batch.

    Sampling (RNG consumption order included) is identical to
    :func:`monte_carlo` — seeded columnar runs reproduce the scalar
    draws bit-for-bit — but evaluation is columnar end to end:

    * When every distribution provides an ``apply_column`` callback
      (and the kernel covers the scenario), the draws are sampled
      straight into value columns, written onto a base-plus-overrides
      :class:`~repro.engine.vector.ParameterBatch`, and evaluated
      through :meth:`EvaluationEngine.evaluate_param_batch` — no
      per-draw comparator objects, no per-row extraction, no per-row
      digests.  Huge batches are chunked across cores by the engine,
      and batches that fit the sharded store are cached under
      vectorised column-fold digests (a re-run of the same seeded study
      is pure gather).
    * Otherwise each draw's perturbed comparator is materialised and
      decomposed into parameter columns per row (the compatibility
      path) — still one fused kernel batch.

    Ratios agree with the scalar path to ``rtol <= 1e-12`` either way.
    Columnar results carry :class:`ColumnSamples` (lazy per-draw dicts)
    plus the raw ``sample_columns`` arrays.

    With ``reduce=`` (``True`` for the default
    :func:`monte_carlo_reduction`, or a custom
    :class:`~repro.engine.vector.StreamingReduction` prototype) the
    study streams instead: draws are generated chunk-by-chunk from
    seeded per-chunk RNG streams that bit-reproduce this function's
    sequential draw order, evaluated, and folded into the reducers —
    never materialising more than ``chunk_rows`` rows per worker, multi-
    core by default (``workers``), bypassing the result store — and a
    :class:`StreamingMonteCarloResult` is returned.  Streaming requires
    the fully columnar path (every distribution with ``apply_column``,
    a kernel-covered scenario, ``vectorize=True``); anything else
    raises rather than silently materialising a 100M-row batch.

    ``checkpoint=`` (a :class:`~repro.engine.vector.Checkpoint`, only
    valid with ``reduce=``) makes the streamed study durable: merged
    reducer partials persist atomically on the configured cadence, and
    rerunning the same seeded study against the same checkpoint path
    resumes from the completed units — the final summary is
    bit-identical to an uninterrupted run.

    ``seed=None`` requires the explicit ``allow_unseeded=True`` opt-in
    (see :func:`monte_carlo`).
    """
    seed = _resolve_seed(seed, allow_unseeded)
    eng = resolve_engine(engine)
    columnar = _columnar_study(eng, scenario, distributions)
    if checkpoint is not None and (reduce is None or reduce is False):
        raise ParameterError(
            "checkpoint= requires the streaming path (pass reduce=)"
        )
    if reduce is not None and reduce is not False:
        if not columnar:
            raise ParameterError(
                "streaming Monte-Carlo requires vectorize=True, "
                "apply_column on every distribution and a kernel-covered "
                "scenario"
            )
        _validate_study(distributions, n_samples)
        reduction = (
            reduce if isinstance(reduce, StreamingReduction)
            else monte_carlo_reduction(seed=seed)
        )
        missing = {"moments", "wins", "quantiles"} - reduction.reducers.keys()
        if missing:
            # Checked before streaming: discovering this at result
            # construction would throw away hours of 100M-draw work.
            raise ParameterError(
                "streaming Monte-Carlo reduction is missing members "
                f"{sorted(missing)} (see monte_carlo_reduction)"
            )
        source = MonteCarloChunkSource(
            np.asarray(extract_row(comparator), dtype=np.float64),
            tuple(distributions), seed, scenario, n_samples,
        )
        merged = eng.reduce_stream(
            source, reduction, chunk_rows=chunk_rows, workers=workers,
            checkpoint=checkpoint,
        )
        return StreamingMonteCarloResult.from_reduction(merged)
    if not columnar:
        samples, pairs = _draw_pairs(comparator, scenario, distributions,
                                     n_samples, seed)
        batch = eng.evaluate_pairs_batch(pairs)
        return MonteCarloResult(ratios=batch.ratios, samples=samples,
                                winners=batch.winners)

    _validate_study(distributions, n_samples)
    rng = np.random.default_rng(seed)
    value_columns = sample_value_columns(distributions, rng, n_samples)
    params = ParameterBatch.from_comparator(comparator, n_samples)
    for dist, values in zip(distributions, value_columns):
        dist.apply_column(params, values)
    batch = ScenarioBatch.tile(scenario, n_samples)
    result = eng.evaluate_param_batch(params, batch)
    columns = {
        dist.name: values
        for dist, values in zip(distributions, value_columns)
    }
    return MonteCarloResult(
        ratios=result.ratios,
        samples=ColumnSamples(columns),
        winners=result.winners,
        sample_columns=columns,
    )


def monte_carlo_stream(
    comparator: PlatformComparator,
    scenario: Scenario,
    distributions: Sequence[ParameterDistribution],
    n_samples: int = 500,
    seed: "int | None" = 2024,
    engine: EvaluationEngine | None = None,
    *,
    chunk_rows: "int | None" = None,
    workers: "int | None" = None,
    quantile_k: int = DEFAULT_RESERVOIR_K,
    checkpoint: "Checkpoint | Path | str | None" = None,
    checkpoint_every: "int | None" = None,
    allow_unseeded: bool = False,
) -> StreamingMonteCarloResult:
    """Out-of-core :func:`monte_carlo_batch`: bounded memory at any scale.

    Sugar for ``monte_carlo_batch(..., reduce=...)`` with the default
    reducer bundle sized by ``quantile_k``.  Peak memory is
    ``O(chunk_rows)`` per worker regardless of ``n_samples``, and the
    summary is bit-identical for any chunk size and worker count; see
    :class:`StreamingMonteCarloResult` for the fidelity contract
    against the materialized path.

    ``checkpoint=`` accepts a ready
    :class:`~repro.engine.vector.Checkpoint` or a bare path (with
    ``checkpoint_every`` rows per durable unit); a SIGKILLed run rerun
    with the same arguments resumes from the checkpoint and finishes to
    the exact uninterrupted summary.

    ``seed=None`` requires the explicit ``allow_unseeded=True`` opt-in
    (see :func:`monte_carlo`).
    """
    seed = _resolve_seed(seed, allow_unseeded)
    if checkpoint is not None and not isinstance(checkpoint, Checkpoint):
        checkpoint = Checkpoint(Path(checkpoint), every_rows=checkpoint_every)
    elif checkpoint is None and checkpoint_every is not None:
        raise ParameterError("checkpoint_every requires checkpoint=")
    return monte_carlo_batch(
        comparator, scenario, distributions, n_samples=n_samples, seed=seed,
        engine=engine, chunk_rows=chunk_rows, workers=workers,
        reduce=monte_carlo_reduction(seed=seed, quantile_k=quantile_k),
        checkpoint=checkpoint,
    )
