"""Monte-Carlo uncertainty propagation over Table 1 parameter ranges.

The paper's Section 5 stresses that inputs are uncertain (proprietary
yields, project durations, coarse sustainability reports).  This module
samples scenario-level model knobs from user-declared distributions and
reports the induced distribution of the FPGA:ASIC ratio — including the
probability that the FPGA is the greener platform.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.engine import EvaluationEngine, resolve_engine
from repro.errors import ParameterError


@dataclass(frozen=True)
class ParameterDistribution:
    """One uncertain model knob.

    Attributes:
        name: Knob label (reported in results).
        low / high: Range bounds (Table 1 style).
        apply: Callback ``(comparator, value) -> PlatformComparator``
            returning a comparator with the knob set to ``value``.
        kind: ``"uniform"`` or ``"loguniform"`` sampling over the range.
    """

    name: str
    low: float
    high: float
    apply: Callable[[PlatformComparator, float], PlatformComparator]
    kind: str = "uniform"

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ParameterError(f"{self.name}: high < low")
        if self.kind not in ("uniform", "loguniform"):
            raise ParameterError(f"{self.name}: unknown sampling kind {self.kind!r}")
        if self.kind == "loguniform" and self.low <= 0.0:
            raise ParameterError(f"{self.name}: loguniform requires low > 0")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value from this distribution."""
        if self.kind == "loguniform":
            return float(np.exp(rng.uniform(np.log(self.low), np.log(self.high))))
        return float(rng.uniform(self.low, self.high))


@dataclass(frozen=True)
class MonteCarloResult:
    """Sampled distribution of the FPGA:ASIC ratio.

    ``winners`` (when provided by :func:`monte_carlo` /
    :func:`monte_carlo_batch`) carries the totals-based per-draw winner,
    which stays correct even where the ratio's sign stops tracking the
    greener platform (credit-negative ASIC totals).
    """

    ratios: np.ndarray
    samples: tuple[dict[str, float], ...]
    winners: np.ndarray | None = None

    @property
    def n_samples(self) -> int:
        """Number of Monte-Carlo draws."""
        return int(self.ratios.size)

    @property
    def finite_ratios(self) -> np.ndarray:
        """Draws with a finite ratio (degenerate zero-ASIC totals excluded)."""
        return self.ratios[np.isfinite(self.ratios)]

    @property
    def n_non_finite(self) -> int:
        """Draws whose ratio is ``+/-inf``/``nan`` (zero ASIC totals).

        Excluded from :meth:`quantiles` and :meth:`summary` moments; they
        still count toward :attr:`fpga_win_probability`.
        """
        return int(self.ratios.size - self.finite_ratios.size)

    @property
    def fpga_win_probability(self) -> float:
        """Fraction of draws where the FPGA is the greener platform.

        Decided on :attr:`winners` (totals-based, matching
        :attr:`ComparisonResult.winner`) when the result carries them,
        which stays correct even for draws whose ASIC total goes
        credit-negative and inverts the quotient's sign.  Without
        winners the ``ratio < 1`` proxy applies, robust to non-finite
        ratios per :attr:`ComparisonResult.ratio`'s edge semantics:
        ``-inf`` (negative FPGA total against a zero ASIC total) is a
        decisive FPGA win, while ``+inf`` and ``nan`` count as draws the
        FPGA did *not* win — the probability stays well-defined either
        way.
        """
        if self.winners is not None:
            wins = int(np.count_nonzero(self.winners == "fpga"))
        else:
            wins = int(np.count_nonzero(self.ratios < 1.0))
        return wins / self.ratios.size

    def quantiles(self, qs: Sequence[float] = (0.05, 0.25, 0.5, 0.75, 0.95)) -> dict[float, float]:
        """Requested quantiles over the finite ratio draws.

        All-non-finite distributions return ``nan`` for every quantile
        rather than raising.
        """
        finite = self.finite_ratios
        if finite.size == 0:
            return {float(q): float("nan") for q in qs}
        values = np.quantile(finite, list(qs))
        return {float(q): float(v) for q, v in zip(qs, values)}

    def summary(self) -> dict[str, float]:
        """Flat summary for reporting (moments over finite draws)."""
        quantiles = self.quantiles()
        finite = self.finite_ratios
        mean = float(np.mean(finite)) if finite.size else float("nan")
        return {
            "n_samples": float(self.n_samples),
            "fpga_win_probability": self.fpga_win_probability,
            "ratio_mean": mean,
            "ratio_p05": quantiles[0.05],
            "ratio_p50": quantiles[0.5],
            "ratio_p95": quantiles[0.95],
        }


def _draw_pairs(
    comparator: PlatformComparator,
    scenario: Scenario,
    distributions: Sequence[ParameterDistribution],
    n_samples: int,
    seed: int,
) -> tuple[tuple[dict[str, float], ...], list[tuple[PlatformComparator, Scenario]]]:
    """Sample every draw up-front: ``(samples, (comparator, scenario) pairs)``.

    One body shared by :func:`monte_carlo` and :func:`monte_carlo_batch`
    so the RNG consumption order — the reproducibility contract between
    them — can never drift apart.
    """
    if n_samples < 1:
        raise ParameterError("n_samples must be >= 1")
    if not distributions:
        raise ParameterError("at least one ParameterDistribution is required")
    rng = np.random.default_rng(seed)
    samples: list[dict[str, float]] = []
    pairs: list[tuple[PlatformComparator, Scenario]] = []
    for _ in range(n_samples):
        drawn: dict[str, float] = {}
        perturbed = comparator
        for dist in distributions:
            value = dist.sample(rng)
            drawn[dist.name] = value
            perturbed = dist.apply(perturbed, value)
        samples.append(drawn)
        pairs.append((perturbed, scenario))
    return tuple(samples), pairs


def monte_carlo(
    comparator: PlatformComparator,
    scenario: Scenario,
    distributions: Sequence[ParameterDistribution],
    n_samples: int = 500,
    seed: int = 2024,
    engine: EvaluationEngine | None = None,
) -> MonteCarloResult:
    """Propagate parameter uncertainty into the FPGA:ASIC ratio.

    All draws are sampled up-front (the RNG consumption order is
    identical to the historical per-draw loop, so seeded results are
    bit-for-bit reproducible across versions) and then assessed as one
    batch through ``engine`` — duplicate perturbations and draws shared
    with other analyses hit the cache, and ``workers`` parallelise the
    rest.

    Args:
        comparator: Baseline device pair + suite.
        scenario: Fixed deployment scenario.
        distributions: Knobs to perturb each draw.
        n_samples: Number of draws.
        seed: RNG seed (results are reproducible by construction).
        engine: Batch evaluator; the shared default when not given.
    """
    samples, pairs = _draw_pairs(comparator, scenario, distributions,
                                 n_samples, seed)
    comparisons = resolve_engine(engine).evaluate_pairs(pairs)
    ratios = np.array([c.ratio for c in comparisons], dtype=float)
    winners = np.array([c.winner for c in comparisons])
    return MonteCarloResult(ratios=ratios, samples=samples, winners=winners)


def monte_carlo_batch(
    comparator: PlatformComparator,
    scenario: Scenario,
    distributions: Sequence[ParameterDistribution],
    n_samples: int = 500,
    seed: int = 2024,
    engine: EvaluationEngine | None = None,
) -> MonteCarloResult:
    """Array-land :func:`monte_carlo`: the draws run as one kernel batch.

    Sampling (RNG consumption order included) is identical to
    :func:`monte_carlo`, but the perturbed comparators are evaluated
    through the vector kernel's multi-comparator path — every draw's
    suite is decomposed into model-parameter columns and the sub-models
    themselves are vectorised, so no per-draw lifecycle objects or
    ``ComparisonResult`` materialisation occur.  Ratios agree with the
    scalar path to ``rtol <= 1e-12``; draws bypass the engine's sharded
    result store — per-draw suites never repeat, so digesting them would
    cost more than it saves (use :func:`monte_carlo` when cache warmth
    matters more than throughput).
    """
    samples, pairs = _draw_pairs(comparator, scenario, distributions,
                                 n_samples, seed)
    batch = resolve_engine(engine).evaluate_pairs_batch(pairs)
    return MonteCarloResult(ratios=batch.ratios, samples=samples,
                            winners=batch.winners)
