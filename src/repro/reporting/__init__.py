"""Plain-text reporting: ASCII tables/charts, CSV and Markdown writers."""

from repro.reporting.chart import bar_chart, line_chart
from repro.reporting.csvout import write_csv
from repro.reporting.markdown import markdown_table
from repro.reporting.table import format_table

__all__ = ["bar_chart", "format_table", "line_chart", "markdown_table", "write_csv"]
