"""Fixed-width ASCII table rendering for experiment output."""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != 0.0 and (abs(value) >= 1.0e6 or abs(value) < 1.0e-3):
            return f"{value:.{precision}e}"
        return f"{value:,.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render rows of dicts as a fixed-width ASCII table.

    Args:
        rows: Sequence of mappings; missing keys render as blanks.
        columns: Column order; defaults to first row's key order.
        precision: Decimal places for floats.
        title: Optional heading line.

    Returns:
        The rendered table as a single string (no trailing newline).
    """
    if not rows:
        return title or "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [_format_cell(row.get(col, ""), precision) for col in columns] for row in rows
    ]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    header = " | ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    rule = "-+-".join("-" * w for w in widths)
    body = [
        " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        for row in rendered
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(header))
    lines.append(header)
    lines.append(rule)
    lines.extend(body)
    return "\n".join(lines)
