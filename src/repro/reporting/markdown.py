"""Markdown table rendering (for EXPERIMENTS.md style reports)."""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def _cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != 0.0 and (abs(value) >= 1.0e6 or abs(value) < 1.0e-3):
            return f"{value:.{precision}e}"
        return f"{value:,.{precision}f}"
    return str(value)


def markdown_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    precision: int = 3,
) -> str:
    """Render rows of dicts as a GitHub-flavoured Markdown table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    header = "| " + " | ".join(str(c) for c in columns) + " |"
    rule = "|" + "|".join("---" for _ in columns) + "|"
    body = [
        "| " + " | ".join(_cell(row.get(c, ""), precision) for c in columns) + " |"
        for row in rows
    ]
    return "\n".join([header, rule, *body])
