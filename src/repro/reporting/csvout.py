"""CSV export of experiment rows."""

from __future__ import annotations

import csv
from collections.abc import Mapping, Sequence
from pathlib import Path


def write_csv(
    path: "str | Path",
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
) -> Path:
    """Write rows of dicts to ``path`` as CSV and return the path.

    Args:
        path: Destination file; parent directories are created.
        rows: Row mappings; missing keys become empty cells.
        columns: Column order; defaults to the union of keys in first-seen
            order across all rows.
    """
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    if columns is None:
        seen: dict[str, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(key, None)
        columns = list(seen)
    with destination.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({col: row.get(col, "") for col in columns})
    return destination
