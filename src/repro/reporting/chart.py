"""ASCII charts: good-enough line and bar plots for terminal experiments.

The paper's figures are matplotlib plots; this repository ships
terminal-renderable equivalents so every experiment is runnable without a
display (data is also exported as CSV for external plotting).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

_SYMBOLS = "*o+x#@%&"


def line_chart(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 72,
    height: int = 18,
    title: str | None = None,
    y_label: str = "",
) -> str:
    """Render one or more y-series against shared x-values.

    Each series gets a symbol from a fixed palette; a legend line maps
    symbols to names.  Values are min/max scaled into the plot box.
    """
    if not xs or not series:
        return title or "(empty chart)"
    all_values = [v for ys in series.values() for v in ys]
    y_min = min(all_values)
    y_max = max(all_values)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)
    x_span = (x_max - x_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for s_index, (name, ys) in enumerate(series.items()):
        symbol = _SYMBOLS[s_index % len(_SYMBOLS)]
        for x, y in zip(xs, ys):
            col = int((x - x_min) / x_span * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = symbol

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:12.4g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 13 + "|" + "".join(row) + "|")
    lines.append(f"{y_min:12.4g} +" + "-" * width + "+")
    lines.append(" " * 14 + f"{x_min:<12.4g}{y_label:^{max(width - 24, 0)}}{x_max:>12.4g}")
    legend = "   ".join(
        f"{_SYMBOLS[i % len(_SYMBOLS)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 14 + legend)
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Render a horizontal bar chart (one bar per label).

    Negative values (EOL credits) render with ``<`` bars.
    """
    if not labels:
        return title or "(empty chart)"
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    peak = max(abs(v) for v in values) or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        length = int(abs(value) / peak * width)
        bar = ("<" if value < 0 else "#") * length
        lines.append(f"{str(label).rjust(label_width)} | {bar} {value:,.3g}{unit}")
    return "\n".join(lines)
