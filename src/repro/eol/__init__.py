"""End-of-life carbon model (paper Section 3.2(4), Eq. (6))."""

from repro.eol.model import EolModel, EolResult

__all__ = ["EolModel", "EolResult"]
