"""End-of-life CFP — the paper's Eq. (6).

``C_EOL = (1 - delta) * C_dis - delta * C_recycle``

applied to the physical mass of the packaged part.  ``delta`` is the
recycled fraction at end of life; ``C_dis`` and ``C_recycle`` come from
EPA WARM [29] (see :mod:`repro.data.warm`).  Per-chip masses are tens of
grams, so EOL is a small (often negative, i.e. credit) contributor —
matching the paper's Section 4.3 observation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.warm import WarmFactors, get_material
from repro.errors import require_fraction, require_non_negative


@dataclass(frozen=True)
class EolResult:
    """Per-chip end-of-life footprint decomposition."""

    total_kg: float
    discard_kg: float
    recycle_credit_kg: float
    mass_g: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for reporting."""
        return {
            "total_kg": self.total_kg,
            "discard_kg": self.discard_kg,
            "recycle_credit_kg": self.recycle_credit_kg,
            "mass_g": self.mass_g,
        }


@dataclass(frozen=True)
class EolModel:
    """Eq. (6) end-of-life model.

    Attributes:
        recycled_fraction: Eq. (6) delta, fraction of mass recycled.
        material: WARM material category or instance for factors.
        transport_kg_per_kg: Collection/transport overhead per kg of
            e-waste handled (applies to the full mass).
    """

    recycled_fraction: float = 0.30
    material: WarmFactors | str = "mixed_electronics"
    transport_kg_per_kg: float = 0.05

    def __post_init__(self) -> None:
        require_fraction(self.recycled_fraction, "recycled_fraction")
        require_non_negative(self.transport_kg_per_kg, "transport_kg_per_kg")

    def _material(self) -> WarmFactors:
        if isinstance(self.material, WarmFactors):
            return self.material
        return get_material(self.material)

    def assess_chip(self, mass_g: float) -> EolResult:
        """End-of-life footprint of one packaged chip of ``mass_g`` grams."""
        require_non_negative(mass_g, "mass_g")
        factors = self._material()
        mass_kg = mass_g / 1000.0
        delta = self.recycled_fraction
        discard = (1.0 - delta) * factors.discard_kg_per_kg * mass_kg
        credit = delta * factors.recycle_credit_kg_per_kg * mass_kg
        transport = self.transport_kg_per_kg * mass_kg
        return EolResult(
            total_kg=discard - credit + transport,
            discard_kg=discard + transport,
            recycle_credit_kg=credit,
            mass_g=mass_g,
        )

    def per_chip_kg(self, mass_g: float) -> float:
        """Convenience scalar: net EOL kg CO2e per chip (may be negative)."""
        return self.assess_chip(mass_g).total_kg
