"""Unit constants and conversion helpers used across GreenFPGA.

The internal convention for every model in this package is:

* carbon mass      -> kilograms of CO2-equivalent (kg CO2e)
* energy           -> kilowatt hours (kWh)
* carbon intensity -> kg CO2e per kWh
* chip area        -> square millimetres at API boundaries, square
                      centimetres inside manufacturing models
* power            -> watts
* time             -> years at API boundaries, hours inside energy math
* physical mass    -> grams at API boundaries, metric tons inside EOL math

Helpers below convert between the boundary units and the internal units so
that individual models never hand-roll conversion factors.
"""

from __future__ import annotations

#: Hours in a (non-leap) year; the paper's operational model uses calendar
#: years of continuous deployment scaled by a duty cycle.
HOURS_PER_YEAR = 8760.0

#: Days in a month used when converting the paper's "months" app-dev times.
HOURS_PER_MONTH = HOURS_PER_YEAR / 12.0

#: Metric ton in grams.
GRAMS_PER_TON = 1.0e6

#: Metric ton in kilograms.
KG_PER_TON = 1000.0

#: Grams per kilogram.
GRAMS_PER_KG = 1000.0

#: Square millimetres in a square centimetre.
MM2_PER_CM2 = 100.0

#: kWh in a GWh (design-house annual energy is reported in GWh).
KWH_PER_GWH = 1.0e6

#: Watts in a kilowatt.
W_PER_KW = 1000.0

#: Conventional single-exposure reticle field limit in mm^2.  Dies larger
#: than this cannot be manufactured monolithically; the paper's N_FPGA
#: input exists for exactly this reason.
RETICLE_LIMIT_MM2 = 858.0


def mm2_to_cm2(area_mm2: float) -> float:
    """Convert an area from mm^2 to cm^2."""
    return area_mm2 / MM2_PER_CM2


def cm2_to_mm2(area_cm2: float) -> float:
    """Convert an area from cm^2 to mm^2."""
    return area_cm2 * MM2_PER_CM2


def grams_to_tons(mass_g: float) -> float:
    """Convert a mass from grams to metric tons."""
    return mass_g / GRAMS_PER_TON


def tons_to_kg(mass_tons: float) -> float:
    """Convert a mass from metric tons to kilograms."""
    return mass_tons * KG_PER_TON


def kg_to_tons(mass_kg: float) -> float:
    """Convert a mass from kilograms to metric tons."""
    return mass_kg / KG_PER_TON


def gwh_to_kwh(energy_gwh: float) -> float:
    """Convert energy from GWh to kWh."""
    return energy_gwh * KWH_PER_GWH


def g_per_kwh_to_kg_per_kwh(intensity_g: float) -> float:
    """Convert a carbon intensity from g CO2e/kWh to kg CO2e/kWh."""
    return intensity_g / GRAMS_PER_KG


def years_to_hours(years: float) -> float:
    """Convert a duration from years to hours."""
    return years * HOURS_PER_YEAR


def months_to_hours(months: float) -> float:
    """Convert a duration from months to hours."""
    return months * HOURS_PER_MONTH


def watts_to_kw(power_w: float) -> float:
    """Convert power from watts to kilowatts."""
    return power_w / W_PER_KW


def annual_energy_kwh(power_w: float, duty_cycle: float) -> float:
    """Energy drawn in one year by a device at ``power_w`` and duty cycle.

    The duty cycle is the fraction of wall-clock time the device runs at
    its (average active) power; idle power is folded into the duty cycle
    by callers that track it separately.
    """
    return watts_to_kw(power_w) * duty_cycle * HOURS_PER_YEAR
