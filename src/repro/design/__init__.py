"""Design-phase carbon model (paper Section 3.2(1), Eq. (4))."""

from repro.design.model import DesignModel, DesignResult, DesignTeam

__all__ = ["DesignModel", "DesignResult", "DesignTeam"]
