"""Design CFP model — the paper's Eq. (4), made dimensionally explicit.

The paper computes

``C_des = C_emp * N_emp,des * (N_gates / N_gates,des) * T_proj``

with ``C_emp = E_des * C_src,des`` per employee-year.  Since ``C_emp`` is
the company's annual design-energy footprint normalised by total
employees, and Table 1's ``N_emp,des`` (20 K-160 K) is the company
headcount, the two cancel and Eq. (4) reduces to:

``C_des = E_des * C_src,des * T_proj * (N_gates / N_gates,avg)^beta``

i.e. the design house's annual electricity, attributed to the product
under design, over the project's duration, scaled by how much larger or
smaller the chip is than the house's average product.

Two documented extensions:

* ``beta`` (default 0.35) — sub-linear scaling of design effort with
  gate count (verification and physical design scale with blocks and
  hierarchy, not raw gates; FPGA fabrics are stamped arrays).  ``beta=1``
  recovers the paper's literal proportional form.
* ``overhead_factor`` (default 1.6) — compute farms, EDA clusters,
  emulators, tape-out and post-silicon test energy on top of the
  facility baseline the sustainability reports capture (the paper notes
  [5] omitted test/validation; this knob reintroduces them).
* ``allocation`` — fraction of the house's design energy attributable to
  this product (1.0 treats the reported ``E_des`` as the per-flagship-
  product figure, which is how Table 1's 2-7.3 GWh range reads).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.grid import carbon_intensity_kg_per_kwh
from repro.data.reports import DEFAULT_REPORT, DesignHouseReport, get_report
from repro.errors import require_non_negative, require_positive
from repro.units import gwh_to_kwh


@dataclass(frozen=True)
class DesignTeam:
    """Project-level inputs of Eq. (4).

    Attributes:
        engineers: ``N_emp,des`` engineers on this chip project (used for
            per-engineer reporting and optional energy allocation).
        project_years: ``T_proj`` — project duration (Table 1: 1-3 y).
    """

    engineers: float = 250.0
    project_years: float = 3.0

    def __post_init__(self) -> None:
        require_positive(self.engineers, "engineers")
        require_positive(self.project_years, "project_years")


@dataclass(frozen=True)
class DesignResult:
    """Design CFP and the intermediate quantities behind it."""

    total_kg: float
    annual_energy_kwh: float
    carbon_intensity_kg_per_kwh: float
    gate_scale: float
    project_years: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for reporting."""
        return {
            "total_kg": self.total_kg,
            "annual_energy_kwh": self.annual_energy_kwh,
            "carbon_intensity_kg_per_kwh": self.carbon_intensity_kg_per_kwh,
            "gate_scale": self.gate_scale,
            "project_years": self.project_years,
        }


@dataclass(frozen=True)
class DesignModel:
    """Eq. (4) design CFP model.

    Attributes:
        report: Design-house profile name or instance supplying ``E_des``,
            average chip size and typical project duration.
        energy_source: Carbon intensity of the design house's electricity
            (Table 1 ``C_src,des``: 30-700 g/kWh).  When None, the
            report's renewable fraction blends a renewable PPA with the
            US grid automatically.
        gate_scaling_beta: Exponent of the gate-count scale factor.
        overhead_factor: Compute/EDA/test energy multiplier on the
            reported facility energy.
        allocation: Fraction of the house's design energy attributed to
            this product.
    """

    report: DesignHouseReport | str = DEFAULT_REPORT
    energy_source: object | None = None
    gate_scaling_beta: float = 0.35
    overhead_factor: float = 1.35
    allocation: float = 1.0

    def __post_init__(self) -> None:
        require_non_negative(self.gate_scaling_beta, "gate_scaling_beta")
        require_positive(self.overhead_factor, "overhead_factor")
        require_positive(self.allocation, "allocation")

    def _report(self) -> DesignHouseReport:
        if isinstance(self.report, DesignHouseReport):
            return self.report
        return get_report(self.report)

    def carbon_intensity(self) -> float:
        """Resolved ``C_src,des`` in kg CO2e/kWh."""
        if self.energy_source is not None:
            return carbon_intensity_kg_per_kwh(self.energy_source)
        report = self._report()
        grid = carbon_intensity_kg_per_kwh("usa")
        renewable = carbon_intensity_kg_per_kwh("renewable_ppa")
        return (
            report.renewable_fraction * renewable
            + (1.0 - report.renewable_fraction) * grid
        )

    def cfp_per_employee_year_kg(self) -> float:
        """``C_emp``: kg CO2e per employee-year (reporting helper)."""
        report = self._report()
        energy_kwh = report.energy_kwh_per_employee_year() * self.overhead_factor
        return energy_kwh * self.carbon_intensity()

    def assess_project(
        self,
        gates_mgates: float,
        team: DesignTeam | None = None,
    ) -> DesignResult:
        """Design CFP of one chip project of ``gates_mgates`` Mgates.

        ``team`` overrides the project duration; when omitted, the
        report's typical duration applies.
        """
        require_positive(gates_mgates, "gates_mgates")
        report = self._report()
        project_years = (
            team.project_years if team is not None else report.typical_project_years
        )
        annual_kwh = (
            gwh_to_kwh(report.annual_energy_gwh) * self.overhead_factor * self.allocation
        )
        gate_scale = (
            gates_mgates / report.avg_gates_per_chip_mgates
        ) ** self.gate_scaling_beta
        intensity = self.carbon_intensity()
        total = annual_kwh * project_years * intensity * gate_scale
        return DesignResult(
            total_kg=total,
            annual_energy_kwh=annual_kwh,
            carbon_intensity_kg_per_kwh=intensity,
            gate_scale=gate_scale,
            project_years=project_years,
        )

    def project_kg(self, gates_mgates: float, team: DesignTeam | None = None) -> float:
        """Convenience scalar: design CFP in kg CO2e."""
        return self.assess_project(gates_mgates, team).total_kg
