"""FPGA-vs-ASIC comparison at iso-performance (paper Section 4.2).

Builds both lifecycle models for a Table 2 domain (or explicit devices),
assesses them under one scenario, and reports the FPGA:ASIC CFP ratio the
paper's heatmaps plot, plus the winner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.asic_model import AsicAssessment, AsicLifecycleModel
from repro.core.fpga_model import FpgaAssessment, FpgaLifecycleModel
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.devices.asic import AsicDevice
from repro.devices.catalog import DomainSpec, get_domain
from repro.devices.fpga import FpgaDevice


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of one FPGA-vs-ASIC comparison."""

    scenario: Scenario
    fpga: FpgaAssessment
    asic: AsicAssessment

    @property
    def ratio(self) -> float:
        """FPGA:ASIC total-CFP ratio (the paper's heatmap quantity).

        < 1 means the FPGA is the more sustainable platform.

        Degenerate totals (possible under aggressive recycling credits or
        synthetic suites) are given explicit semantics instead of raising
        ``ZeroDivisionError``: with a zero ASIC total the ratio is signed
        infinity — ``math.inf`` when the FPGA total is positive (the ASIC
        wins outright) and ``-math.inf`` when net recycling credits push
        the FPGA total negative (the FPGA is strictly greener) — and two
        zero totals yield ``1.0`` (a perfect tie, which :attr:`winner`
        awards to the ASIC like any other tie).

        With a *negative* ASIC total the raw quotient's sign inverts and
        stops tracking which platform is greener — :attr:`winner` and
        :attr:`fpga_advantage_kg` therefore compare totals directly and
        stay correct even there.
        """
        fpga_total = self.fpga.footprint.total
        asic_total = self.asic.footprint.total
        if asic_total == 0.0:
            if fpga_total == 0.0:
                return 1.0
            return math.copysign(math.inf, fpga_total)
        return fpga_total / asic_total

    @property
    def winner(self) -> str:
        """``"fpga"`` or ``"asic"`` (ties go to the ASIC).

        Decided on the totals themselves, which agrees with
        ``ratio < 1`` whenever the ASIC total is positive and stays
        correct for the degenerate cases (zero or credit-negative
        totals) where the quotient's sign is unreliable.
        """
        return (
            "fpga"
            if self.fpga.footprint.total < self.asic.footprint.total
            else "asic"
        )

    @property
    def fpga_advantage_kg(self) -> float:
        """ASIC total minus FPGA total (positive when FPGA wins)."""
        return self.asic.footprint.total - self.fpga.footprint.total

    def summary(self) -> dict[str, float | str]:
        """Flat summary for reporting."""
        return {
            "fpga_total_kg": self.fpga.footprint.total,
            "asic_total_kg": self.asic.footprint.total,
            "ratio": self.ratio,
            "winner": self.winner,
            "fpga_advantage_kg": self.fpga_advantage_kg,
        }


@dataclass(frozen=True)
class PlatformComparator:
    """Reusable comparator for one FPGA/ASIC device pair.

    Attributes:
        fpga_device: Reconfigurable platform.
        asic_device: Fixed-function platform (remade per application).
        suite: Shared sub-model bundle.  Defaults to the canonical
            :meth:`ModelSuite.default`, the same default
            :meth:`for_domain` applies, so direct construction and the
            domain constructor always agree.
    """

    fpga_device: FpgaDevice
    asic_device: AsicDevice
    suite: ModelSuite = field(default_factory=ModelSuite.default)

    @classmethod
    def for_domain(
        cls, domain: DomainSpec | str, suite: ModelSuite | None = None
    ) -> "PlatformComparator":
        """Comparator for a Table 2 domain at iso-performance."""
        spec = domain if isinstance(domain, DomainSpec) else get_domain(domain)
        return cls(
            fpga_device=spec.fpga_device(),
            asic_device=spec.asic_device(),
            suite=suite if suite is not None else ModelSuite.default(),
        )

    @property
    def fpga_model(self) -> FpgaLifecycleModel:
        """Lifecycle model for the FPGA side."""
        return FpgaLifecycleModel(device=self.fpga_device, suite=self.suite)

    @property
    def asic_model(self) -> AsicLifecycleModel:
        """Lifecycle model for the ASIC side."""
        return AsicLifecycleModel(device=self.asic_device, suite=self.suite)

    def compare(self, scenario: Scenario) -> ComparisonResult:
        """Assess both platforms under ``scenario``."""
        return ComparisonResult(
            scenario=scenario,
            fpga=self.fpga_model.assess(scenario),
            asic=self.asic_model.assess(scenario),
        )

    def ratio(self, scenario: Scenario) -> float:
        """Convenience scalar: FPGA:ASIC total-CFP ratio."""
        return self.compare(scenario).ratio


def compare_domain(
    domain: DomainSpec | str,
    scenario: Scenario,
    suite: ModelSuite | None = None,
) -> ComparisonResult:
    """One-call comparison for a Table 2 domain under ``scenario``."""
    return PlatformComparator.for_domain(domain, suite).compare(scenario)
