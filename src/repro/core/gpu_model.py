"""GPU lifecycle CFP (extension) — Eq. (2) semantics with GPU economics.

Like the FPGA (Eq. 2), a GPU is reused across applications: embodied CFP
is paid once per chip generation.  Three differences are modelled:

* **Design amortisation** — a merchant GPU's chip project is shared
  across the whole market (``market_amortisation``), unlike a captive
  ASIC or the per-deployment FPGA attribution.
* **Software-only application bring-up** — porting a workload to CUDA-
  style kernels is charged via the suite's ``gpu_effort`` equivalent
  (we reuse the ASIC-style software effort knob passed at call time).
* **Shorter silicon life** — datacenter GPU fleets turn over in ~6
  years, so long-horizon studies repurchase sooner than FPGAs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.appdev.model import DevelopmentEffort
from repro.core.lifecycle import CarbonFootprint
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.devices.gpu import GpuDevice

#: Default software bring-up effort per application (CUDA port + tuning).
DEFAULT_GPU_EFFORT = DevelopmentEffort(
    frontend_months=0.5, backend_months=0.0, config_hours_per_unit=0.0
)


@dataclass(frozen=True)
class GpuAssessment:
    """Result of one GPU scenario assessment."""

    footprint: CarbonFootprint
    per_chip_embodied_kg: float
    generations: int

    @property
    def total_kg(self) -> float:
        """Total lifecycle kg CO2e."""
        return self.footprint.total


@dataclass(frozen=True)
class GpuLifecycleModel:
    """Assess GPU deployments under Eq. (2) semantics.

    Attributes:
        device: The GPU being deployed.
        suite: Sub-model bundle (manufacturing/packaging/EOL/operation
            and design models are shared with the FPGA/ASIC paths).
        effort: Per-application software bring-up effort.
    """

    device: GpuDevice
    suite: ModelSuite = field(default_factory=ModelSuite.default)
    effort: DevelopmentEffort = DEFAULT_GPU_EFFORT

    def chip_generations(self, scenario: Scenario) -> int:
        """Chip purchases needed to cover the scenario horizon."""
        if not scenario.enforce_chip_lifetime:
            return 1
        return max(1, math.ceil(
            scenario.horizon_years / self.device.chip_lifetime_years - 1.0e-9
        ))

    def per_chip_embodied(self) -> CarbonFootprint:
        """Manufacturing + packaging + EOL of one GPU."""
        mfg = self.suite.manufacturing.per_die_kg(self.device.area_mm2, self.device.node)
        pkg = self.suite.packaging.assess_package(self.device.area_mm2)
        eol = self.suite.eol.per_chip_kg(pkg.package_mass_g)
        return CarbonFootprint(manufacturing=mfg, packaging=pkg.total_kg, eol=eol)

    def assess(self, scenario: Scenario) -> GpuAssessment:
        """Full lifecycle assessment of ``scenario``."""
        generations = self.chip_generations(scenario)
        design_kg = (
            self.suite.design.project_kg(self.device.logic_gates_mgates)
            / self.device.market_amortisation
        )
        per_chip = self.per_chip_embodied()
        fleet = float(scenario.volume * generations)
        embodied = CarbonFootprint(design=design_kg) + per_chip.scaled(fleet)

        op_per_chip_year = self.suite.operation.per_chip_year_kg(self.device.peak_power_w)
        operational = 0.0
        appdev = 0.0
        for lifetime in scenario.lifetimes:
            operational += lifetime * float(scenario.volume) * op_per_chip_year
            appdev += self.suite.appdev.per_application_kg(self.effort, scenario.volume)

        footprint = embodied + CarbonFootprint(operational=operational, appdev=appdev)
        return GpuAssessment(
            footprint=footprint,
            per_chip_embodied_kg=per_chip.total,
            generations=generations,
        )

    def total_kg(self, scenario: Scenario) -> float:
        """Convenience scalar: total lifecycle kg CO2e."""
        return self.assess(scenario).footprint.total
