"""Deployment scenario definition.

A scenario fixes the three experiment axes of the paper's Section 4:
number of applications ``N_app``, per-application lifetime ``T_i``, and
per-application deployment volume ``N_vol`` — plus the optional
evaluation-horizon override used by Fig. 9 and an optional application
size (gates) for ``N_FPGA`` sizing.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field, replace

from repro.errors import ParameterError, require_positive


@dataclass(frozen=True)
class Scenario:
    """One FPGA-vs-ASIC deployment scenario.

    Attributes:
        num_apps: ``N_app`` — applications run over the study.
        app_lifetime_years: ``T_i`` — either one lifetime shared by all
            applications or a per-application sequence of length
            ``num_apps``.
        volume: ``N_vol`` — deployed units per application.
        evaluation_years: Study horizon.  Defaults to the sum of
            application lifetimes; Fig. 9 sets it explicitly to extend
            the study past the chip lifetime.
        app_size_mgates: Application logic size for ``N_FPGA`` sizing;
            ``None`` sizes the application to the device (N_FPGA = 1).
        enforce_chip_lifetime: When True, FPGAs worn out before the study
            horizon are repurchased (embodied CFP repeats per chip
            generation — the paper's experiment E / Fig. 9).  The paper's
            baseline experiments (Figs. 4-8) assume the chip survives the
            whole study, so this defaults to False.
    """

    num_apps: int = 1
    app_lifetime_years: float | Sequence[float] = 2.0
    volume: int = 1_000_000
    evaluation_years: float | None = None
    app_size_mgates: float | None = None
    enforce_chip_lifetime: bool = False
    _lifetimes: tuple[float, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.num_apps < 1:
            raise ParameterError(f"num_apps must be >= 1, got {self.num_apps}")
        if self.volume < 1:
            raise ParameterError(f"volume must be >= 1, got {self.volume}")
        if isinstance(self.app_lifetime_years, (int, float)):
            lifetimes = (float(self.app_lifetime_years),) * self.num_apps
        else:
            lifetimes = tuple(float(t) for t in self.app_lifetime_years)
            if len(lifetimes) != self.num_apps:
                raise ParameterError(
                    f"got {len(lifetimes)} lifetimes for {self.num_apps} applications"
                )
        for lifetime in lifetimes:
            require_positive(lifetime, "application lifetime")
        if self.evaluation_years is not None:
            require_positive(self.evaluation_years, "evaluation_years")
        if self.app_size_mgates is not None:
            require_positive(self.app_size_mgates, "app_size_mgates")
        object.__setattr__(self, "_lifetimes", lifetimes)

    @property
    def lifetimes(self) -> tuple[float, ...]:
        """Per-application lifetimes, length ``num_apps``."""
        return self._lifetimes

    @property
    def total_application_years(self) -> float:
        """Sum of application lifetimes (applications run sequentially)."""
        return sum(self._lifetimes)

    @property
    def horizon_years(self) -> float:
        """Study horizon: explicit override or total application years."""
        if self.evaluation_years is not None:
            return self.evaluation_years
        return self.total_application_years

    def with_num_apps(self, num_apps: int) -> "Scenario":
        """Copy with a different ``N_app`` (scalar lifetime re-expanded)."""
        scalar = self._lifetimes[0]
        if any(t != scalar for t in self._lifetimes):
            raise ParameterError(
                "with_num_apps requires a uniform app lifetime; rebuild the "
                "scenario explicitly for heterogeneous lifetimes"
            )
        return replace(self, num_apps=num_apps, app_lifetime_years=scalar)

    def with_lifetime(self, app_lifetime_years: float) -> "Scenario":
        """Copy with a different uniform application lifetime."""
        return replace(self, app_lifetime_years=app_lifetime_years)

    def with_volume(self, volume: int) -> "Scenario":
        """Copy with a different per-application volume."""
        return replace(self, volume=volume)
