"""ASIC lifecycle CFP — the paper's Eq. (1).

``C_ASIC = sum_i [C_emb,i + T_i * C_deploy,i]``

Every application change requires a **new chip project**: design,
manufacturing, packaging and EOL all recur per application.  If one
application outlives the silicon (rare: app lifetimes are shorter than
ASIC chip lifetimes), chips are additionally repurchased within the
application.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.lifecycle import CarbonFootprint
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.devices.asic import AsicDevice


@dataclass(frozen=True)
class AsicAssessment:
    """Result of one ASIC scenario assessment."""

    footprint: CarbonFootprint
    per_chip_embodied_kg: float
    per_application: tuple[CarbonFootprint, ...]

    @property
    def total_kg(self) -> float:
        """Total lifecycle kg CO2e."""
        return self.footprint.total


@dataclass(frozen=True)
class AsicLifecycleModel:
    """Assess ASIC deployments under Eq. (1).

    Attributes:
        device: The ASIC (re)manufactured for each application.
        suite: Sub-model bundle.
    """

    device: AsicDevice
    suite: ModelSuite = field(default_factory=ModelSuite.default)

    def per_chip_embodied(self) -> CarbonFootprint:
        """Manufacturing + packaging + EOL of one ASIC chip."""
        mfg = self.suite.manufacturing.per_die_kg(self.device.area_mm2, self.device.node)
        pkg = self.suite.packaging.assess_package(self.device.area_mm2)
        eol = self.suite.eol.per_chip_kg(pkg.package_mass_g)
        return CarbonFootprint(manufacturing=mfg, packaging=pkg.total_kg, eol=eol)

    def assess(self, scenario: Scenario) -> AsicAssessment:
        """Full Eq. (1) assessment of ``scenario``."""
        design_kg = self.suite.design.project_kg(
            self.device.logic_gates_mgates, self.suite.asic_team
        )
        per_chip = self.per_chip_embodied()
        op_per_chip_year = self.suite.operation.per_chip_year_kg(self.device.peak_power_w)

        per_application: list[CarbonFootprint] = []
        for lifetime in scenario.lifetimes:
            generations = max(
                1, math.ceil(lifetime / self.device.chip_lifetime_years - 1.0e-9)
            )
            embodied = CarbonFootprint(design=design_kg) + per_chip.scaled(
                float(scenario.volume * generations)
            )
            operational = lifetime * float(scenario.volume) * op_per_chip_year
            appdev = self.suite.appdev.per_application_kg(
                self.suite.asic_effort, scenario.volume
            )
            per_application.append(
                embodied + CarbonFootprint(operational=operational, appdev=appdev)
            )

        footprint = CarbonFootprint.zero()
        for app in per_application:
            footprint = footprint + app
        return AsicAssessment(
            footprint=footprint,
            per_chip_embodied_kg=per_chip.total,
            per_application=tuple(per_application),
        )

    def total_kg(self, scenario: Scenario) -> float:
        """Convenience scalar: total lifecycle kg CO2e."""
        return self.assess(scenario).footprint.total
