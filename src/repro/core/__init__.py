"""Core lifecycle models — the paper's primary contribution."""

from repro.core.asic_model import AsicAssessment, AsicLifecycleModel
from repro.core.comparison import ComparisonResult, PlatformComparator, compare_domain
from repro.core.fpga_model import FpgaAssessment, FpgaLifecycleModel
from repro.core.lifecycle import CarbonFootprint
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite

__all__ = [
    "AsicAssessment",
    "AsicLifecycleModel",
    "CarbonFootprint",
    "ComparisonResult",
    "FpgaAssessment",
    "FpgaLifecycleModel",
    "ModelSuite",
    "PlatformComparator",
    "Scenario",
    "compare_domain",
]
