"""Carbon-footprint vector shared by every lifecycle model.

A :class:`CarbonFootprint` carries the six lifecycle components the paper
tracks (design, manufacturing, packaging, end-of-life, application
development, operation) and exposes the embodied / deployment / total
aggregations from Eqs. (1)-(3).  It behaves like a vector: components add
and scale, which is how volume and multi-application accounting compose.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class CarbonFootprint:
    """Lifecycle CFP decomposition, all fields in kg CO2e.

    ``eol`` may be negative (net recycling credit, Eq. (6)).
    """

    design: float = 0.0
    manufacturing: float = 0.0
    packaging: float = 0.0
    eol: float = 0.0
    appdev: float = 0.0
    operational: float = 0.0

    #: Component names in canonical (paper) order.
    COMPONENTS = ("design", "manufacturing", "packaging", "eol", "appdev", "operational")

    @classmethod
    def zero(cls) -> "CarbonFootprint":
        """An all-zero footprint (additive identity)."""
        return cls()

    @property
    def embodied(self) -> float:
        """Embodied CFP: design + manufacturing + packaging + EOL (Eq. 3)."""
        return self.design + self.manufacturing + self.packaging + self.eol

    @property
    def deployment(self) -> float:
        """Deployment CFP: operation + application development (Sec. 3.3)."""
        return self.operational + self.appdev

    @property
    def total(self) -> float:
        """Total CFP: embodied + deployment."""
        return self.embodied + self.deployment

    def __add__(self, other: "CarbonFootprint") -> "CarbonFootprint":
        if not isinstance(other, CarbonFootprint):
            return NotImplemented
        return CarbonFootprint(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __sub__(self, other: "CarbonFootprint") -> "CarbonFootprint":
        if not isinstance(other, CarbonFootprint):
            return NotImplemented
        return self + other.scaled(-1.0)

    def scaled(self, factor: float) -> "CarbonFootprint":
        """Return this footprint with every component multiplied."""
        return CarbonFootprint(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )

    def __mul__(self, factor: float) -> "CarbonFootprint":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        return self.scaled(float(factor))

    __rmul__ = __mul__

    def as_dict(self) -> dict[str, float]:
        """Component dict plus the three aggregations."""
        out = {name: getattr(self, name) for name in self.COMPONENTS}
        out["embodied"] = self.embodied
        out["deployment"] = self.deployment
        out["total"] = self.total
        return out

    def fraction_of_total(self, component: str) -> float:
        """Share of ``component`` in the total (0 when total is 0)."""
        if component not in self.COMPONENTS:
            raise KeyError(f"unknown component {component!r}")
        total = self.total
        if total == 0.0:
            return 0.0
        return getattr(self, component) / total

    def __str__(self) -> str:
        parts = ", ".join(
            f"{name}={getattr(self, name):,.1f}" for name in self.COMPONENTS
        )
        return f"CarbonFootprint(total={self.total:,.1f} kg; {parts})"
