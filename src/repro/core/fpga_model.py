"""FPGA lifecycle CFP — the paper's Eq. (2) with Eq. (3) embodied terms.

``C_FPGA = C_emb + sum_i T_i * C_deploy,i``

The defining property of the FPGA path: the embodied cost is paid **once**
(per chip generation) and reconfiguration substitutes for remanufacture
across applications.  When the study horizon exceeds the FPGA's chip
lifetime (Fig. 9), worn-out chips are repurchased: manufacturing,
packaging and EOL repeat per generation while the design project does not
(the same product is bought again).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.lifecycle import CarbonFootprint
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.devices.fpga import FpgaDevice


@dataclass(frozen=True)
class FpgaAssessment:
    """Result of one FPGA scenario assessment."""

    footprint: CarbonFootprint
    per_chip_embodied_kg: float
    n_fpga_per_unit: int
    generations: int

    @property
    def total_kg(self) -> float:
        """Total lifecycle kg CO2e."""
        return self.footprint.total


@dataclass(frozen=True)
class FpgaLifecycleModel:
    """Assess FPGA deployments under Eq. (2).

    Attributes:
        device: The FPGA being deployed.
        suite: Sub-model bundle.
    """

    device: FpgaDevice
    suite: ModelSuite = field(default_factory=ModelSuite.default)

    def chip_generations(self, scenario: Scenario) -> int:
        """Chip purchases needed to cover the scenario horizon.

        1 unless the scenario enforces the chip lifetime (Fig. 9); then
        a new generation is bought each time the horizon crosses a
        multiple of the device's chip lifetime.
        """
        if not scenario.enforce_chip_lifetime:
            return 1
        return max(1, math.ceil(
            scenario.horizon_years / self.device.chip_lifetime_years - 1.0e-9
        ))

    def per_chip_embodied(self) -> CarbonFootprint:
        """Manufacturing + packaging + EOL of one FPGA chip."""
        mfg = self.suite.manufacturing.per_die_kg(self.device.area_mm2, self.device.node)
        pkg = self.suite.packaging.assess_package(self.device.area_mm2)
        eol = self.suite.eol.per_chip_kg(pkg.package_mass_g)
        return CarbonFootprint(manufacturing=mfg, packaging=pkg.total_kg, eol=eol)

    def assess(self, scenario: Scenario) -> FpgaAssessment:
        """Full Eq. (2) assessment of ``scenario``."""
        n_fpga = self.device.units_required(scenario.app_size_mgates)
        generations = self.chip_generations(scenario)

        # The chip project is sized by the FPGA's own silicon (its fabric),
        # not by the applications later mapped onto it.
        silicon_gates = self.device.area_mm2 * self.device.node.gate_density_mgates_per_mm2
        design_kg = self.suite.design.project_kg(silicon_gates, self.suite.fpga_team)
        per_chip = self.per_chip_embodied()
        fleet = float(scenario.volume * n_fpga * generations)
        embodied = CarbonFootprint(design=design_kg) + per_chip.scaled(fleet)

        op_per_chip_year = self.suite.operation.per_chip_year_kg(self.device.peak_power_w)
        operational = 0.0
        appdev = 0.0
        for lifetime in scenario.lifetimes:
            operational += (
                lifetime * float(scenario.volume * n_fpga) * op_per_chip_year
            )
            appdev += self.suite.appdev.per_application_kg(
                self.suite.fpga_effort, scenario.volume * n_fpga
            )

        footprint = embodied + CarbonFootprint(operational=operational, appdev=appdev)
        return FpgaAssessment(
            footprint=footprint,
            per_chip_embodied_kg=per_chip.total,
            n_fpga_per_unit=n_fpga,
            generations=generations,
        )

    def total_kg(self, scenario: Scenario) -> float:
        """Convenience scalar: total lifecycle kg CO2e."""
        return self.assess(scenario).footprint.total
