"""Model suite: one bundle of all sub-models a lifecycle assessment needs.

Mirrors the paper's Fig. 3 block diagram — design, manufacturing,
packaging, EOL, operation and app-dev models behind a single object so
scenarios and experiments don't plumb six models around individually.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.appdev.model import AppDevModel, DevelopmentEffort
from repro.design.model import DesignModel, DesignTeam
from repro.eol.model import EolModel
from repro.manufacturing.act import ManufacturingModel
from repro.operation.model import OperationModel
from repro.packaging.monolithic import MonolithicPackagingModel


@dataclass(frozen=True)
class ModelSuite:
    """All sub-models used by FPGA/ASIC lifecycle assessments.

    Attributes:
        manufacturing: Die manufacturing model (ACT-style).
        packaging: Package manufacture/assembly model.
        design: Chip-project design model (Eq. 4).
        eol: End-of-life model (Eq. 6).
        operation: Use-phase model.
        appdev: Application-development model (Eq. 7).
        fpga_team / asic_team: Design-team profiles per platform.
        fpga_effort: Per-application development effort on the FPGA
            (RTL/HLS + P&R + per-unit configuration).
        asic_effort: Per-application effort on the ASIC (the paper sets
            FE/BE to zero; override for software-flow studies).
    """

    manufacturing: ManufacturingModel = field(default_factory=ManufacturingModel)
    packaging: MonolithicPackagingModel = field(default_factory=MonolithicPackagingModel)
    design: DesignModel = field(default_factory=DesignModel)
    eol: EolModel = field(default_factory=EolModel)
    operation: OperationModel = field(default_factory=OperationModel)
    appdev: AppDevModel = field(default_factory=AppDevModel)
    fpga_team: DesignTeam = field(default_factory=DesignTeam)
    asic_team: DesignTeam = field(default_factory=DesignTeam)
    fpga_effort: DevelopmentEffort = field(default_factory=DevelopmentEffort)
    asic_effort: DevelopmentEffort = field(
        default_factory=lambda: DevelopmentEffort.for_asic()
    )

    @classmethod
    def default(cls) -> "ModelSuite":
        """The calibrated default suite used by the paper experiments."""
        return cls()

    def with_overrides(self, **kwargs: object) -> "ModelSuite":
        """Return a copy with selected sub-models replaced."""
        return replace(self, **kwargs)
