"""Repo-specific lint checkers.

Each checker encodes one of the repo's correctness conventions; see the
module docstrings for the precise rules.  :func:`all_checkers` is the
registry the CLI and :func:`repro.audit.linter.run_lint` use.
"""

from __future__ import annotations

from repro.audit.checks.checkpoint import CheckpointContractChecker
from repro.audit.checks.coverage import CoverageChecker
from repro.audit.checks.exceptions import ExceptionHygieneChecker
from repro.audit.checks.floatsum import FloatAccumulationChecker
from repro.audit.checks.fused import FusedTwinChecker
from repro.audit.checks.rng import RngDisciplineChecker
from repro.audit.checks.sharedmem import SharedMemoryChecker
from repro.audit.checks.spawn import SpawnSafetyChecker

__all__ = [
    "CheckpointContractChecker",
    "CoverageChecker",
    "ExceptionHygieneChecker",
    "FloatAccumulationChecker",
    "FusedTwinChecker",
    "RngDisciplineChecker",
    "SharedMemoryChecker",
    "SpawnSafetyChecker",
    "all_checkers",
]


def all_checkers():
    """One fresh instance of every shipped checker, in report order."""
    return (
        CoverageChecker(),
        RngDisciplineChecker(),
        SpawnSafetyChecker(),
        SharedMemoryChecker(),
        FloatAccumulationChecker(),
        ExceptionHygieneChecker(),
        CheckpointContractChecker(),
        FusedTwinChecker(),
    )
