"""GF-RNG — RNG discipline.

Reproducibility is the repo's default: every stochastic path threads an
explicitly seeded ``numpy.random.Generator`` (and the streaming layer
bit-reproduces draw spans by advancing it).  This checker forbids, in
non-test code:

* calls into the legacy global-state API (``np.random.rand`` and
  friends, ``np.random.seed``) anywhere — module level or not;
* ``default_rng()`` with no seed argument, or with a literal ``None``
  seed.

A seed that is a runtime variable counts as explicit — the value's
provenance is the caller's contract (see
:func:`repro.analysis.montecarlo.monte_carlo`'s ``allow_unseeded``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.audit.linter import (
    Checker,
    Finding,
    ModuleInfo,
    enclosing_symbol,
    snippet,
    walk_with_stack,
)

#: Legacy global-state functions of ``numpy.random`` (module-level RNG).
LEGACY_FNS = frozenset(
    {
        "seed", "random", "rand", "randn", "randint", "random_sample",
        "ranf", "sample", "uniform", "normal", "standard_normal", "choice",
        "shuffle", "permutation", "beta", "binomial", "poisson",
        "exponential", "lognormal", "triangular", "gamma", "get_state",
        "set_state",
    }
)


def _alias_map(tree: ast.Module) -> dict[str, str]:
    """Local name -> canonical dotted prefix for numpy imports."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "numpy" or item.name.startswith("numpy."):
                    aliases[item.asname or item.name.split(".")[0]] = item.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.module == "numpy" or node.module.startswith("numpy."):
                for item in node.names:
                    aliases[item.asname or item.name] = (
                        f"{node.module}.{item.name}"
                    )
    return aliases


def _dotted(expr: ast.expr) -> list[str] | None:
    """``a.b.c`` attribute chain as parts, or None for anything else."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return parts[::-1]


def _canonical(expr: ast.expr, aliases: dict[str, str]) -> str | None:
    """Resolve a call target to a canonical dotted numpy path."""
    parts = _dotted(expr)
    if not parts:
        return None
    head = aliases.get(parts[0])
    if head is None:
        return None
    return ".".join([head, *parts[1:]])


def _seed_is_missing(call: ast.Call) -> bool:
    """True when ``default_rng`` gets no seed or a literal ``None``."""
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    for kw in call.keywords:
        if kw.arg == "seed":
            return isinstance(kw.value, ast.Constant) and kw.value.value is None
    return True


class RngDisciplineChecker(Checker):
    """Forbid legacy ``np.random`` state and unseeded ``default_rng``."""

    id = "GF-RNG"
    summary = "seeded-Generator discipline (no legacy np.random, no unseeded default_rng)"

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if module.is_test:
            return
        aliases = _alias_map(module.tree)
        if not aliases:
            return
        for node, stack in walk_with_stack(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _canonical(node.func, aliases)
            if target is None:
                continue
            parts = target.split(".")
            if (
                len(parts) >= 3
                and parts[0] == "numpy"
                and parts[1] == "random"
                and parts[-1] in LEGACY_FNS
            ):
                yield Finding(
                    check=self.id,
                    path=module.relpath,
                    line=node.lineno,
                    symbol=enclosing_symbol(stack),
                    message=(
                        f'legacy global-state RNG call "{snippet(node)}" — '
                        "thread a seeded numpy Generator instead"
                    ),
                )
            elif target == "numpy.random.default_rng" and _seed_is_missing(node):
                yield Finding(
                    check=self.id,
                    path=module.relpath,
                    line=node.lineno,
                    symbol=enclosing_symbol(stack),
                    message=(
                        f'"{snippet(node)}" without an explicit seed — '
                        "unseeded draws must be opted into by the caller"
                    ),
                )
