"""GF-FUSE — fused-tier kernels must twin the NumPy chain.

Every module-level ``fused_<name>`` function in the compiled/fused
kernel tier (:mod:`repro.engine.vector.fused`) is a drop-in twin of the
chain kernel ``<name>``: the parity sweep calls both with the same
positional arguments and compares the results to the tier's
``rtol <= 1e-12`` contract.  This checker enforces statically what the
sweep assumes at runtime —

* the chain twin ``<name>`` exists as a module-level function somewhere
  in the tree, and
* the two positional parameter lists match name-for-name, in order.

Keyword-only parameters are the fused tier's plumbing (``ctx``,
``pool``, scratch buffers) and are exempt on both sides — they never
carry registry data, so a signature drift there cannot skew parity.

A fused kernel whose twin is missing, or whose positional arguments
have drifted, is exactly the failure mode that turns a parity sweep
into a false green: the sweep would either skip the kernel or feed the
twins different columns.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from repro.audit.linter import Checker, Finding, ModuleInfo

#: Module-level function-name prefix that marks a fused-tier kernel.
FUSED_PREFIX = "fused_"


def _positional_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    """Positional parameter names, in order (kw-only plumbing exempt)."""
    args = node.args
    return tuple(a.arg for a in (*args.posonlyargs, *args.args))


def _module_functions(module: ModuleInfo):
    """``(name, node)`` for every function defined at module level."""
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node


class FusedTwinChecker(Checker):
    """Require a signature-matched NumPy twin for every fused kernel."""

    id = "GF-FUSE"
    summary = (
        "fused-tier kernels (fused_<name>) must have a module-level "
        "NumPy twin <name> with the same positional signature"
    )

    def check_project(self, modules: Sequence[ModuleInfo]) -> Iterable[Finding]:
        fused: list[tuple[ModuleInfo, str, ast.FunctionDef]] = []
        twins: dict[str, tuple[ModuleInfo, ast.FunctionDef]] = {}
        for module in modules:
            if module.is_test:
                continue
            for name, node in _module_functions(module):
                if name.startswith(FUSED_PREFIX):
                    fused.append((module, name, node))
                elif name not in twins:
                    twins[name] = (module, node)

        for module, name, node in fused:
            twin_name = name[len(FUSED_PREFIX):]
            twin = twins.get(twin_name)
            if twin is None:
                yield Finding(
                    check=self.id,
                    path=module.relpath,
                    line=node.lineno,
                    symbol=name,
                    message=(
                        f"fused kernel {name!r} has no module-level NumPy "
                        f"twin {twin_name!r} — the parity sweep cannot "
                        "compare the fused tier against the chain"
                    ),
                )
                continue
            twin_module, twin_node = twin
            ours = _positional_params(node)
            theirs = _positional_params(twin_node)
            if ours != theirs:
                yield Finding(
                    check=self.id,
                    path=module.relpath,
                    line=node.lineno,
                    symbol=name,
                    message=(
                        f"fused kernel {name!r} positional signature "
                        f"({', '.join(ours)}) drifted from its twin "
                        f"{twin_name!r} in {twin_module.relpath} "
                        f"({', '.join(theirs)}) — the parity sweep would "
                        "feed the two tiers different columns"
                    ),
                )
