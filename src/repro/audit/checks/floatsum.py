"""GF-FLT — float-accumulation policy in reduction code.

The streaming reducers guarantee bit-identical results regardless of
chunking, which requires compensated (Neumaier) summation for float
accumulation — naive ``sum()`` / ``+=``-loop accumulation re-orders
rounding error with the chunk layout.  In any module that defines or
imports a Neumaier/Kahan helper (i.e. reduction code where the
compensated path exists), this checker flags:

* calls to builtin ``sum(...)``;
* ``name += ...`` inside a ``for``/``while`` loop.

Functions whose own name contains ``neumaier``/``kahan`` are exempt —
they *are* the compensated implementation.  Deliberate exceptions
(integer counters, documented single-combine steps) belong in the
suppression baseline with a justification, not in code changes.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.audit.linter import (
    Checker,
    Finding,
    ModuleInfo,
    enclosing_symbol,
    snippet,
    walk_with_stack,
)

#: Substrings (lowercased) identifying compensated-summation helpers.
COMPENSATED_MARKERS = ("neumaier", "kahan")


def _has_compensated_helper(tree: ast.Module) -> bool:
    """Module defines or imports a Neumaier/Kahan-named helper."""
    for node in ast.walk(tree):
        name = None
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            name = node.name
        elif isinstance(node, ast.ImportFrom):
            for item in node.names:
                lowered = (item.asname or item.name).lower()
                if any(marker in lowered for marker in COMPENSATED_MARKERS):
                    return True
        if name is not None and any(
            marker in name.lower() for marker in COMPENSATED_MARKERS
        ):
            return True
    return False


def _in_exempt_function(stack) -> bool:
    """Inside a function that *is* the compensated implementation."""
    return any(
        isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
        and any(marker in s.name.lower() for marker in COMPENSATED_MARKERS)
        for s in stack
    )


class FloatAccumulationChecker(Checker):
    """Forbid naive accumulation where compensated helpers exist."""

    id = "GF-FLT"
    summary = "no builtin sum()/+= loop accumulation in compensated-reduction modules"

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if not _has_compensated_helper(module.tree):
            return
        for node, stack in walk_with_stack(module.tree):
            if _in_exempt_function(stack):
                continue
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sum"
            ):
                yield Finding(
                    check=self.id,
                    path=module.relpath,
                    line=node.lineno,
                    symbol=enclosing_symbol(stack),
                    message=(
                        f'builtin sum() in reduction code: "{snippet(node)}" '
                        "— use the Neumaier helper for float accumulation"
                    ),
                )
            elif (
                isinstance(node, ast.AugAssign)
                and isinstance(node.op, ast.Add)
                and isinstance(node.target, ast.Name)
                and any(isinstance(s, (ast.For, ast.While)) for s in stack)
            ):
                yield Finding(
                    check=self.id,
                    path=module.relpath,
                    line=node.lineno,
                    symbol=enclosing_symbol(stack),
                    message=(
                        f'"+=" loop accumulation in reduction code: '
                        f'"{snippet(node)}" — use the Neumaier helper '
                        "for float accumulation"
                    ),
                )
