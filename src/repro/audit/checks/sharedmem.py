"""GF-SHM — shared-memory segment lifecycle.

A ``SharedMemory(create=True)`` segment is an OS resource that outlives
the process unless somebody calls ``close()`` **and** ``unlink()``;
leaking one on an exception path strands ``/dev/shm`` pages until the
resource tracker's exit sweep.  This checker requires every creation
site to be either:

* the context expression of a ``with`` block, or
* covered by a ``try`` in the enclosing scope whose handlers or
  ``finally`` block call both ``.close()`` and ``.unlink()``.

The rule is deliberately scope-local: cleanup delegated to another
object's method (e.g. an owning source's ``close()``) still needs the
creating scope to guarantee it runs on the failure paths between
creation and handoff.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.audit.linter import (
    Checker,
    Finding,
    ModuleInfo,
    enclosing_symbol,
    walk_with_stack,
)


def _is_shm_create(call: ast.Call) -> bool:
    """``SharedMemory(..., create=True, ...)`` by any import spelling."""
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name != "SharedMemory":
        return False
    for kw in call.keywords:
        if kw.arg == "create":
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False


def _calls_method(nodes: Iterable[ast.stmt], method: str) -> bool:
    """Whether any statement in ``nodes`` calls ``<x>.<method>()``."""
    for stmt in nodes:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == method
            ):
                return True
    return False


def _cleanup_try_exists(scope: ast.AST) -> bool:
    """A ``try`` whose handlers/finally close **and** unlink a segment."""
    for node in ast.walk(scope):
        if not isinstance(node, ast.Try):
            continue
        cleanup: list[ast.stmt] = list(node.finalbody)
        for handler in node.handlers:
            cleanup.extend(handler.body)
        if _calls_method(cleanup, "close") and _calls_method(cleanup, "unlink"):
            return True
    return False


class SharedMemoryChecker(Checker):
    """Require close()+unlink() coverage for every created segment."""

    id = "GF-SHM"
    summary = "SharedMemory(create=True) must pair with close()+unlink() on all paths"

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        for node, stack in walk_with_stack(module.tree):
            if not (isinstance(node, ast.Call) and _is_shm_create(node)):
                continue
            if any(
                isinstance(s, (ast.With, ast.AsyncWith))
                and any(
                    item.context_expr is node or node in ast.walk(item.context_expr)
                    for item in s.items
                )
                for s in stack
            ):
                continue
            scope = next(
                (
                    s
                    for s in reversed(stack)
                    if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
                ),
                module.tree,
            )
            if _cleanup_try_exists(scope):
                continue
            yield Finding(
                check=self.id,
                path=module.relpath,
                line=node.lineno,
                symbol=enclosing_symbol(stack),
                message=(
                    "SharedMemory(create=True) without close()+unlink() "
                    "cleanup on failure paths — wrap in try/finally (or "
                    "an except that unlinks and re-raises) or a with block"
                ),
            )
