"""GF-COV — kernel-coverage audit over the 57-column registry.

Every registry column in :mod:`repro.engine.vector.params` feeds both
evaluation paths: the scalar sub-models read the underlying model
attribute, and the vector engine reads the column by its registry name
(``P.OP_CI`` in the kernel side-constant builder).  A column consumed
by one path but not the other is exactly the drift this subsystem
exists to catch — a knob that moves one path's answer while the other
silently ignores it.

Detection is static and name-based on purpose:

* **kernel side** — any ``<alias>.<NAME>`` attribute read or bare
  ``<NAME>`` reference, for ``NAME`` in the registry, inside
  ``engine/vector/`` modules other than ``params.py`` itself (which
  defines the names) and the reducers/streaming layer (which consume
  *results*, not parameter columns);
* **scalar side** — per :class:`~repro.engine.vector.params.ColumnSpec`,
  an attribute read of any of the column's ``scalar_attrs`` inside its
  ``scalar_packages`` (top-level sub-packages of ``repro``).

Findings anchor to ``engine/vector/params.py`` with the column name as
the symbol, so fingerprints are stable.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from repro.audit.linter import Checker, Finding, ModuleInfo

#: Where the registry names are *consumed* on the kernel side.
DEFAULT_KERNEL_PREFIX = "engine/vector/"

#: Kernel-side modules that define or post-process rather than consume.
DEFAULT_KERNEL_EXCLUDE = (
    "engine/vector/params.py",
    "engine/vector/reducers.py",
    "engine/vector/streaming.py",
)

#: Anchor path for findings (the registry definition site).
DEFAULT_ANCHOR = "engine/vector/params.py"


def _attr_reads(tree: ast.Module) -> frozenset[str]:
    """All attribute names read (or called) anywhere in ``tree``."""
    return frozenset(
        node.attr for node in ast.walk(tree) if isinstance(node, ast.Attribute)
    )


def _name_refs(tree: ast.Module) -> frozenset[str]:
    """All bare-name references in ``tree`` (for from-imported columns)."""
    return frozenset(
        node.id for node in ast.walk(tree) if isinstance(node, ast.Name)
    )


class CoverageChecker(Checker):
    """Cross-reference registry columns between scalar and kernel paths."""

    id = "GF-COV"
    summary = "every registry column consumed by both the scalar and kernel paths"

    def __init__(
        self,
        specs: Sequence | None = None,
        kernel_prefix: str = DEFAULT_KERNEL_PREFIX,
        kernel_exclude: Sequence[str] = DEFAULT_KERNEL_EXCLUDE,
        anchor: str = DEFAULT_ANCHOR,
    ) -> None:
        if specs is None:
            from repro.engine.vector.params import COLUMN_SPECS

            specs = COLUMN_SPECS
        self.specs = tuple(specs)
        self.kernel_prefix = kernel_prefix
        self.kernel_exclude = frozenset(kernel_exclude)
        self.anchor = anchor

    def check_project(self, modules: Sequence[ModuleInfo]) -> Iterable[Finding]:
        kernel_reads: set[str] = set()
        package_attr_reads: dict[str, set[str]] = {}
        for module in modules:
            if module.is_test:
                continue
            if (
                module.relpath.startswith(self.kernel_prefix)
                and module.relpath not in self.kernel_exclude
            ):
                kernel_reads.update(_attr_reads(module.tree))
                kernel_reads.update(_name_refs(module.tree))
            package = module.relpath.split("/", 1)[0]
            package_attr_reads.setdefault(package, set()).update(
                _attr_reads(module.tree)
            )

        for spec in self.specs:
            kernel_ok = spec.name in kernel_reads
            scalar_ok = any(
                attr in package_attr_reads.get(package, ())
                for package in spec.scalar_packages
                for attr in spec.scalar_attrs
            )
            if kernel_ok and scalar_ok:
                continue
            if not kernel_ok and not scalar_ok:
                detail = (
                    "consumed by neither path — dead registry column or "
                    "renamed consumers"
                )
            elif kernel_ok:
                detail = (
                    "read by the vector kernels but no scalar model reads "
                    f"{'/'.join(spec.scalar_attrs)} in "
                    f"{'/'.join(spec.scalar_packages)}"
                )
            else:
                detail = (
                    "consumed by the scalar models but never read in the "
                    "vector engine — the kernel path ignores this knob"
                )
            yield Finding(
                check=self.id,
                path=self.anchor,
                line=1,
                symbol=spec.name,
                message=f"registry column {spec.name} ({spec.group}): {detail}",
            )
