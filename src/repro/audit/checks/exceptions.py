"""GF-EXC — exception hygiene.

Broad handlers (``except:``, ``except Exception``, ``except
BaseException``) swallow model errors and infrastructure failures
alike, so every one must either:

* re-raise — the handler body's **last** statement is a bare
  ``raise`` (cleanup-then-propagate is the repo's streaming idiom), or
* carry the repo's justification tag on the ``except`` line:
  ``# noqa: BLE001 - <reason>`` with a non-empty reason.

Narrow handler tuples (specific exception classes) are never flagged.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable

from repro.audit.linter import (
    Checker,
    Finding,
    ModuleInfo,
    enclosing_symbol,
    walk_with_stack,
)

#: Tag + non-empty free-text justification, matching the repo's
#: existing style (``# noqa: BLE001 - fed to futures``).
_TAG_RE = re.compile(r"noqa:\s*BLE001\b\s*[-:–]\s*(\S.*)")

#: Tag present but with no justification text after it.
_BARE_TAG_RE = re.compile(r"noqa:\s*BLE001\b")


def _broad_name(handler: ast.ExceptHandler) -> str | None:
    """The broad class caught by ``handler``, or None when narrow."""
    if handler.type is None:
        return "bare except"
    nodes = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for node in nodes:
        if isinstance(node, ast.Name) and node.id in {"Exception", "BaseException"}:
            return node.id
        if isinstance(node, ast.Attribute) and node.attr in {
            "Exception",
            "BaseException",
        }:
            return node.attr
    return None


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Handler body ends in a bare ``raise``."""
    last = handler.body[-1]
    return isinstance(last, ast.Raise) and last.exc is None


class ExceptionHygieneChecker(Checker):
    """Broad excepts must re-raise or carry a justified noqa tag."""

    id = "GF-EXC"
    summary = "bare/broad except must re-raise or carry '# noqa: BLE001 - reason'"

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        for node, stack in walk_with_stack(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _broad_name(node)
            if broad is None or _reraises(node):
                continue
            comment = module.comments.get(node.lineno, "")
            if _TAG_RE.search(comment):
                continue
            if _BARE_TAG_RE.search(comment):
                detail = "its noqa tag has no justification text"
            else:
                detail = "add '# noqa: BLE001 - <reason>' or re-raise"
            yield Finding(
                check=self.id,
                path=module.relpath,
                line=node.lineno,
                symbol=enclosing_symbol(stack),
                message=f"broad handler ({broad}) without justification — {detail}",
            )
