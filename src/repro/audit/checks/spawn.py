"""GF-SPAWN — spawn/pickle safety at process-pool submission sites.

The engine's pools use the ``spawn`` start method, so everything handed
to ``ProcessPoolExecutor.submit``/``.map`` — and to the streaming entry
points ``run_stream``/``reduce_stream`` that submit on the caller's
behalf — must pickle by qualified name.  Lambdas, closures and
locally-defined functions silently degrade to the sequential fallback
(or fail outright); this checker flags them at the submission site.

Receivers are traced conservatively: ``pool.submit(...)`` is only
treated as a process-pool site when ``pool`` is statically bound to a
``ProcessPoolExecutor(...)`` construction (assignment or ``with`` item)
in an enclosing scope of the same module.  Thread pools and unknown
receivers are skipped — a thread pool shares the interpreter, so
closures are fine there (see ``engine.py``'s chunk dispatch).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.audit.linter import (
    Checker,
    Finding,
    ModuleInfo,
    enclosing_symbol,
    snippet,
    walk_with_stack,
)

#: Call names treated as implicit process-pool submission sites.
STREAM_ENTRY_POINTS = frozenset({"run_stream", "reduce_stream"})


def _constructor_name(expr: ast.expr) -> str | None:
    """Trailing name of a construction call, e.g. ``ProcessPoolExecutor``."""
    if not isinstance(expr, ast.Call):
        return None
    func = expr.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _receiver_is_process_pool(name: str, stack) -> bool:
    """Whether ``name`` traces to a ``ProcessPoolExecutor(...)`` binding."""
    for scope in stack:
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign):
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                if name in targets:
                    if _constructor_name(node.value) == "ProcessPoolExecutor":
                        return True
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    var = item.optional_vars
                    if isinstance(var, ast.Name) and var.id == name:
                        ctor = _constructor_name(item.context_expr)
                        if ctor == "ProcessPoolExecutor":
                            return True
    return False


def _nested_function_names(tree: ast.Module) -> frozenset[str]:
    """Names of functions defined inside another function in this module."""
    nested: set[str] = set()
    for node, stack in walk_with_stack(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and any(
            isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef)) for s in stack
        ):
            nested.add(node.name)
    return frozenset(nested)


class SpawnSafetyChecker(Checker):
    """Flag unpicklable callables at process-pool submission sites."""

    id = "GF-SPAWN"
    summary = "no lambdas/closures at ProcessPoolExecutor/run_stream submission sites"

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        nested = _nested_function_names(module.tree)
        for node, stack in walk_with_stack(module.tree):
            if not isinstance(node, ast.Call):
                continue
            site = self._submission_site(node, stack)
            if site is None:
                continue
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                if isinstance(arg, ast.Lambda):
                    yield Finding(
                        check=self.id,
                        path=module.relpath,
                        line=arg.lineno,
                        symbol=enclosing_symbol(stack),
                        message=(
                            f'lambda passed to {site} in "{snippet(node)}" — '
                            "spawn workers cannot pickle it; use a "
                            "module-level function"
                        ),
                    )
                elif isinstance(arg, ast.Name) and arg.id in nested:
                    yield Finding(
                        check=self.id,
                        path=module.relpath,
                        line=arg.lineno,
                        symbol=enclosing_symbol(stack),
                        message=(
                            f'locally-defined function "{arg.id}" passed to '
                            f"{site} — spawn workers cannot pickle it; "
                            "hoist it to module level"
                        ),
                    )

    @staticmethod
    def _submission_site(call: ast.Call, stack) -> str | None:
        """Describe the submission site, or None when not one."""
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in {"submit", "map"}:
            receiver = func.value
            if isinstance(receiver, ast.Name):
                if _receiver_is_process_pool(receiver.id, stack):
                    return f"ProcessPoolExecutor.{func.attr}"
                return None
            if _constructor_name(receiver) == "ProcessPoolExecutor":
                return f"ProcessPoolExecutor.{func.attr}"
            return None
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name in STREAM_ENTRY_POINTS:
            return name
        return None
