"""GF-CKPT — durable-reducer state contract.

Crash-resumable streaming (:mod:`repro.engine.vector.checkpoint`) can
only persist what reducers can serialise: every streaming reducer must
implement the packed-array state contract — ``to_state()`` /
``from_state()`` — or a checkpointed job silently loses that reducer's
partials on resume.

This checker duck-types the contract the same way the engine does: any
non-test class that defines *all* of ``update``, ``merge`` and
``fresh`` (the mergeable-partials protocol of
:class:`repro.engine.vector.reducers.StreamingReducer`) must also
define both ``to_state`` and ``from_state``.  Matching on shape rather
than on inheritance means a reducer added anywhere in the tree — the
protocol is structural, nothing subclasses — cannot dodge the rule by
simply not importing the protocol.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.audit.linter import Checker, Finding, ModuleInfo

#: Method names that identify a class as a streaming reducer.
REDUCER_METHODS = frozenset({"update", "merge", "fresh"})

#: Method names the durability contract additionally requires.
STATE_METHODS = frozenset({"to_state", "from_state"})


def _method_names(node: ast.ClassDef) -> frozenset[str]:
    """Names of functions defined directly in the class body."""
    return frozenset(
        item.name
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    )


class CheckpointContractChecker(Checker):
    """Require to_state/from_state on every streaming-reducer class."""

    id = "GF-CKPT"
    summary = (
        "durable-reducer contract (update/merge/fresh classes must also "
        "define to_state/from_state)"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if module.is_test:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            defined = _method_names(node)
            if not REDUCER_METHODS <= defined:
                continue
            missing = sorted(STATE_METHODS - defined)
            if not missing:
                continue
            yield Finding(
                check=self.id,
                path=module.relpath,
                line=node.lineno,
                symbol=node.name,
                message=(
                    f"streaming reducer {node.name!r} (defines "
                    "update/merge/fresh) is missing "
                    f"{'/'.join(missing)} — without the state contract "
                    "it cannot be checkpointed and a resumed job loses "
                    "its partials"
                ),
            )
