"""Static invariant checker + registry parity auditor.

Two layers guard the repo's four execution paths (scalar sub-models,
NumPy kernels, streaming reducers, cached store):

* :mod:`repro.audit.linter` + :mod:`repro.audit.checks` — AST lint of
  the repo's correctness conventions, reconciled against the committed
  suppression baseline (``audit/baseline.json``);
* :mod:`repro.audit.parity` — perturb every registry column and assert
  scalar vs kernel vs streaming agreement.

Entry points: ``greenfpga audit`` (CLI), :func:`run_lint`,
:func:`run_parity`.
"""

from __future__ import annotations

from repro.audit.baseline import Baseline, BaselineEntry, write_baseline
from repro.audit.linter import (
    Checker,
    Finding,
    LintReport,
    ModuleInfo,
    lint_modules,
    run_lint,
)
from repro.audit.parity import ColumnReport, ParityReport, run_parity
from repro.audit.report import AuditReport

__all__ = [
    "AuditReport",
    "Baseline",
    "BaselineEntry",
    "Checker",
    "ColumnReport",
    "Finding",
    "LintReport",
    "ModuleInfo",
    "ParityReport",
    "lint_modules",
    "run_lint",
    "run_parity",
    "write_baseline",
]
