"""Combined audit report — JSON payload + human text.

One :class:`AuditReport` bundles the lint layer's
:class:`~repro.audit.linter.LintReport` and the parity layer's
:class:`~repro.audit.parity.ParityReport` (either may be absent when a
run is ``--lint-only``/``--parity-only``).  The JSON payload carries a
top-level ``audit_version`` marker so tooling that sweeps the
benchmarks directory (``scripts/bench_compare.py``) can recognise and
skip audit reports.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.audit.linter import LintReport
from repro.audit.parity import ParityReport

#: Schema version of the JSON payload.
AUDIT_VERSION = 1


@dataclasses.dataclass(frozen=True)
class AuditReport:
    """Outcome of one ``greenfpga audit`` run."""

    lint: LintReport | None
    parity: ParityReport | None

    @property
    def ok(self) -> bool:
        """True when every executed layer passed."""
        lint_ok = self.lint.ok if self.lint is not None else True
        parity_ok = self.parity.ok if self.parity is not None else True
        return lint_ok and parity_ok

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view (with the ``audit_version`` marker)."""
        return {
            "audit_version": AUDIT_VERSION,
            "ok": self.ok,
            "lint": self.lint.as_dict() if self.lint is not None else None,
            "parity": self.parity.as_dict() if self.parity is not None else None,
        }

    def render(self) -> str:
        """Multi-line human rendering of both layers."""
        sections = []
        if self.lint is not None:
            sections.append(self.lint.render())
        if self.parity is not None:
            sections.append(self.parity.render())
        sections.append("audit: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(sections)

    def write_json(self, path: Path) -> None:
        """Write the JSON payload to ``path``."""
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.as_dict(), indent=2) + "\n", encoding="utf-8"
        )
