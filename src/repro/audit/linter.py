"""AST lint engine for the repo's correctness conventions.

The repo's hard-won invariants — seeded-RNG threading, spawn/pickle
safety, shared-memory lifecycle, Neumaier summation in reducers,
justified broad excepts, and scalar/kernel registry coverage — used to
live only in reviewers' heads.  This module turns them into machine
checks: a small framework that parses every module under ``src/repro``
once, hands the ASTs to repo-specific checkers
(:mod:`repro.audit.checks`), and reconciles the findings against a
committed suppression baseline (:mod:`repro.audit.baseline`).

Checkers come in two shapes:

* **per-module** (:meth:`Checker.check_module`) — pattern checks that
  only need one file's AST (RNG discipline, exception hygiene, ...);
* **project-level** (:meth:`Checker.check_project`) — cross-file
  invariants such as the kernel-coverage audit, which needs the scalar
  sub-models and the vector engine side by side.

Findings are fingerprinted without line numbers so the baseline
survives unrelated edits above a suppressed site.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import tokenize
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.audit.baseline import Baseline

#: Default lint root: the ``repro`` package itself.
DEFAULT_ROOT = Path(__file__).resolve().parents[1]


@dataclasses.dataclass(frozen=True)
class Finding:
    """One checker hit.

    Attributes:
        check: Checker id, e.g. ``"GF-RNG"``.
        path: Module path relative to the lint root (posix separators).
        line: 1-based source line (display only — not fingerprinted).
        symbol: Dotted enclosing-scope name (``""`` at module level).
        message: Human-readable description; embeds a source snippet so
            two findings in one symbol stay distinguishable.
        justification: Set when suppressed by a baseline entry.
    """

    check: str
    path: str
    line: int
    symbol: str
    message: str
    justification: str | None = None

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.check}::{self.path}::{self.symbol}::{self.message}"

    def render(self) -> str:
        """One-line human rendering."""
        where = f"{self.path}:{self.line}"
        scope = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.check} {where}{scope}: {self.message}"

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view."""
        out: dict[str, object] = {
            "check": self.check,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
        if self.justification is not None:
            out["justification"] = self.justification
        return out


def _trailing_comments(source: str) -> dict[int, str]:
    """Map line number -> trailing ``#`` comment text on that line."""
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string
    except tokenize.TokenError:
        pass
    return comments


@dataclasses.dataclass(frozen=True)
class ModuleInfo:
    """One parsed source module handed to checkers.

    ``relpath`` uses posix separators relative to the lint root, so
    fingerprints are platform-stable.  ``comments`` maps line numbers to
    trailing comment text (for ``# noqa``-style justification tags).
    """

    relpath: str
    source: str
    tree: ast.Module
    comments: dict[int, str]
    is_test: bool

    @classmethod
    def from_source(
        cls, relpath: str, source: str, *, is_test: bool | None = None
    ) -> ModuleInfo:
        """Build from an in-memory snippet (used by the test fixtures)."""
        if is_test is None:
            name = Path(relpath).name
            is_test = name.startswith("test_") or "/tests/" in f"/{relpath}"
        return cls(
            relpath=relpath,
            source=source,
            tree=ast.parse(source, filename=relpath),
            comments=_trailing_comments(source),
            is_test=is_test,
        )

    @classmethod
    def from_path(cls, path: Path, root: Path) -> ModuleInfo:
        """Parse a file on disk."""
        source = path.read_text(encoding="utf-8")
        relpath = path.relative_to(root).as_posix()
        return cls.from_source(relpath, source)


class Checker:
    """Base class for lint checkers.

    Subclasses set :attr:`id` (stable, fingerprinted) and
    :attr:`summary`, and override one or both hooks.
    """

    id = "GF-???"
    summary = ""

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        """Findings for one module (default: none)."""
        return ()

    def check_project(self, modules: Sequence[ModuleInfo]) -> Iterable[Finding]:
        """Findings needing the whole module set (default: none)."""
        return ()


def walk_with_stack(tree: ast.AST):
    """Yield ``(node, ancestor_stack)`` over every node below ``tree``."""
    stack: list[ast.AST] = []

    def visit(node: ast.AST):
        yield node, tuple(stack)
        stack.append(node)
        for child in ast.iter_child_nodes(node):
            yield from visit(child)
        stack.pop()

    for child in ast.iter_child_nodes(tree):
        yield from visit(child)


def enclosing_symbol(stack: Sequence[ast.AST]) -> str:
    """Dotted name of the innermost class/function scope in ``stack``."""
    parts = [
        node.name
        for node in stack
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    ]
    return ".".join(parts)


def snippet(node: ast.AST, limit: int = 60) -> str:
    """Compact source rendering of ``node`` for finding messages."""
    try:
        text = ast.unparse(node)
    except Exception:  # noqa: BLE001 - best-effort display text only
        text = type(node).__name__
    text = " ".join(text.split())
    if len(text) > limit:
        text = text[: limit - 3] + "..."
    return text


@dataclasses.dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run.

    Attributes:
        findings: New (unsuppressed) findings — any entry fails the run.
        suppressed: Findings matched by the baseline, with justification.
        stale: Baseline fingerprints that matched nothing (non-fatal;
            reported so the baseline can be pruned).
        modules_scanned: Number of modules parsed.
    """

    findings: tuple[Finding, ...]
    suppressed: tuple[Finding, ...]
    stale: tuple[str, ...]
    modules_scanned: int

    @property
    def ok(self) -> bool:
        """True when no new findings remain."""
        return not self.findings

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view."""
        return {
            "ok": self.ok,
            "modules_scanned": self.modules_scanned,
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "stale_baseline": list(self.stale),
        }

    def render(self) -> str:
        """Multi-line human rendering."""
        lines = [
            f"lint: {self.modules_scanned} modules, "
            f"{len(self.findings)} new finding(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{len(self.stale)} stale baseline entr(y/ies)"
        ]
        lines.extend(f"  NEW {f.render()}" for f in self.findings)
        lines.extend(
            f"  baselined {f.render()} ({f.justification})" for f in self.suppressed
        )
        lines.extend(f"  stale baseline: {fp}" for fp in self.stale)
        return "\n".join(lines)


def collect_modules(root: Path = DEFAULT_ROOT) -> list[ModuleInfo]:
    """Parse every ``.py`` file under ``root`` (skipping ``__pycache__``)."""
    modules = []
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        modules.append(ModuleInfo.from_path(path, root))
    return modules


def lint_modules(
    modules: Sequence[ModuleInfo],
    checks: Sequence[Checker] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Run ``checks`` over pre-parsed ``modules`` (the testable core)."""
    if checks is None:
        from repro.audit.checks import all_checkers

        checks = all_checkers()
    raw: list[Finding] = []
    for checker in checks:
        for module in modules:
            raw.extend(checker.check_module(module))
        raw.extend(checker.check_project(modules))
    raw.sort(key=lambda f: (f.path, f.line, f.check, f.message))

    baseline = baseline if baseline is not None else Baseline(())
    new, suppressed, stale = baseline.reconcile(raw)
    return LintReport(
        findings=tuple(new),
        suppressed=tuple(suppressed),
        stale=tuple(stale),
        modules_scanned=len(modules),
    )


def run_lint(
    root: Path = DEFAULT_ROOT,
    checks: Sequence[Checker] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Lint the tree rooted at ``root`` against the suppression baseline."""
    if baseline is None:
        baseline = Baseline.load_default()
    return lint_modules(collect_modules(root), checks=checks, baseline=baseline)
