"""Suppression baseline for the lint layer.

Pre-existing, deliberately-accepted findings are committed to
``audit/baseline.json`` so they don't fail CI while *new* violations
do.  Every entry must carry a non-empty one-line justification — an
unexplained suppression is itself a configuration error.  Matching is
by line-independent fingerprint (see
:attr:`repro.audit.linter.Finding.fingerprint`), multiset-style: two
identical findings need two entries.
"""

from __future__ import annotations

import dataclasses
import json
from collections import Counter
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.audit.linter import Finding

#: The committed baseline shipped next to this module.
DEFAULT_BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    """One suppressed finding."""

    fingerprint: str
    justification: str


@dataclasses.dataclass(frozen=True)
class Baseline:
    """An immutable set of suppression entries."""

    entries: tuple[BaselineEntry, ...]

    @classmethod
    def load(cls, path: Path) -> Baseline:
        """Load and validate a baseline file."""
        payload = json.loads(path.read_text(encoding="utf-8"))
        raw = payload.get("suppressions", payload) if isinstance(payload, dict) else payload
        entries = []
        for item in raw:
            fingerprint = str(item.get("fingerprint", "")).strip()
            justification = str(item.get("justification", "")).strip()
            if not fingerprint:
                raise ParameterError(f"baseline entry missing fingerprint: {item!r}")
            if not justification:
                raise ParameterError(
                    f"baseline entry for {fingerprint!r} has no justification; "
                    "every suppression must explain itself"
                )
            entries.append(BaselineEntry(fingerprint, justification))
        return cls(tuple(entries))

    @classmethod
    def load_default(cls) -> Baseline:
        """Load the committed baseline (empty if the file is absent)."""
        if DEFAULT_BASELINE_PATH.exists():
            return cls.load(DEFAULT_BASELINE_PATH)
        return cls(())

    def reconcile(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[str]]:
        """Split ``findings`` into (new, suppressed, stale-fingerprints).

        Each baseline entry absorbs at most one finding with its
        fingerprint; leftovers on either side are new findings or stale
        entries respectively.
        """
        budget = Counter(e.fingerprint for e in self.entries)
        justifications = {e.fingerprint: e.justification for e in self.entries}
        new: list[Finding] = []
        suppressed: list[Finding] = []
        for finding in findings:
            if budget.get(finding.fingerprint, 0) > 0:
                budget[finding.fingerprint] -= 1
                suppressed.append(
                    dataclasses.replace(
                        finding, justification=justifications[finding.fingerprint]
                    )
                )
            else:
                new.append(finding)
        stale = sorted(
            fp for fp, remaining in budget.items() for _ in range(remaining)
        )
        return new, suppressed, stale


def write_baseline(findings: list[Finding], path: Path) -> None:
    """Write ``findings`` as a fresh baseline (``--update-baseline``).

    Existing justifications are preserved for fingerprints already in
    the file; new entries get a ``TODO`` placeholder that must be
    hand-edited before the baseline loads cleanly in strict runs.
    """
    previous: dict[str, str] = {}
    if path.exists():
        try:
            existing = Baseline.load(path)
            previous = {e.fingerprint: e.justification for e in existing.entries}
        except (ParameterError, json.JSONDecodeError):
            previous = {}
    payload = {
        "suppressions": [
            {
                "fingerprint": f.fingerprint,
                "justification": previous.get(
                    f.fingerprint, "TODO: justify this suppression"
                ),
            }
            for f in findings
        ]
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
