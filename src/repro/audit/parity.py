"""Registry-driven parity auditor over the execution paths.

For every one of the 57 registry columns in
:mod:`repro.engine.vector.params`, perturb that column's underlying
model knob away from the default DNN comparator and assert the three
evaluation paths agree on the perturbed comparators:

* **scalar** — :meth:`PlatformComparator.compare` through the
  paper-faithful sub-models;
* **kernel** — :meth:`VectorizedEvaluator.evaluate_param_batch` over a
  :class:`ParameterBatch` of the same comparators (``rtol <= 1e-12``
  against scalar, the kernels' documented parity contract);
* **fused** — :meth:`VectorizedEvaluator.reduce_batch` through the
  fused kernel tier (:mod:`repro.engine.vector.fused`) on the same
  batch: values to ``rtol <= 1e-12`` against scalar, winners
  bit-identical (the fused tier's documented contract — values may
  reassociate, verdicts may not);
* **streaming** — :func:`run_stream` over the same batch with
  single-row chunks, against both a one-shot sequential reduction and
  an explicit split/:meth:`merge` of the kernel result (bit-identical
  by the reducer contract).

Coverage is part of the contract: a probe whose column never moves in
:func:`extract_row`, or whose perturbations never change any output, is
itself a failure — that is exactly how a silently-ignored knob looks.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Callable, Sequence
from dataclasses import replace

import numpy as np

from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.data.warm import WarmFactors, get_material
from repro.engine.vector import params as P
from repro.engine.vector.columns import ScenarioBatch
from repro.engine.vector.evaluator import VectorizedEvaluator
from repro.engine.vector.params import COLUMN_NAMES, ParameterBatch, extract_row
from repro.engine.vector.reducers import (
    MomentsReducer,
    StreamingReduction,
    WinCountReducer,
)
from repro.engine.vector.streaming import ArrayChunkSource, run_stream
from repro.errors import ParameterError
from repro.manufacturing.yield_model import YieldModel

#: Scalar-vs-kernel tolerance (the kernels' documented contract).
KERNEL_RTOL = 1e-12

#: Default probe scenario: multi-app, moderate volume, no horizon quirks.
DEFAULT_SCENARIO = Scenario(num_apps=5, app_lifetime_years=2.0, volume=50_000)

#: Chip-lifetime columns only matter when worn-out chips are repurchased
#: inside the study horizon (10 years here).
LIFETIME_SCENARIO = Scenario(
    num_apps=5,
    app_lifetime_years=2.0,
    volume=50_000,
    enforce_chip_lifetime=True,
)

#: ASIC chips are remanufactured per application generation
#: (``ceil(app_lifetime / chip_lifetime)``), so the ASIC lifetime only
#: matters when a single application outlives the chip.
ASIC_LIFE_SCENARIO = Scenario(num_apps=2, app_lifetime_years=9.0, volume=50_000)

#: FPGA capacity only matters when the application has an explicit size.
CAPACITY_SCENARIO = Scenario(
    num_apps=5, app_lifetime_years=2.0, volume=50_000, app_size_mgates=60.0
)


@dataclasses.dataclass(frozen=True)
class ColumnProbe:
    """How to perturb one registry column from the base comparator.

    Attributes:
        column: Registry column index.
        values: Candidate perturbation values, strongest-signal first;
            a run takes the first ``values_per_column`` of them.
        apply: ``(comparator, value) -> comparator`` with the knob set.
        scenario: Scenario override for columns inert under the default.
        prepare: Optional base-comparator transform applied before
            perturbing (e.g. a nonzero recycled fraction so the
            recycled-MPA column is live).
    """

    column: int
    values: tuple[float, ...]
    apply: Callable[[PlatformComparator, float], PlatformComparator]
    scenario: Scenario | None = None
    prepare: Callable[[PlatformComparator], PlatformComparator] | None = None


@dataclasses.dataclass(frozen=True)
class ColumnReport:
    """Parity outcome for one registry column."""

    column: int
    name: str
    n_values: int
    moved: bool
    outputs_changed: bool
    kernel_max_rel_err: float
    stream_bitident: bool
    fused_max_rel_err: float = 0.0
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Exercised and agreeing on every path."""
        return (
            self.error is None
            and self.moved
            and self.outputs_changed
            and self.kernel_max_rel_err <= KERNEL_RTOL
            and self.fused_max_rel_err <= KERNEL_RTOL
            and self.stream_bitident
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view."""
        return {
            "column": self.column,
            "name": self.name,
            "ok": self.ok,
            "n_values": self.n_values,
            "moved": self.moved,
            "outputs_changed": self.outputs_changed,
            "kernel_max_rel_err": self.kernel_max_rel_err,
            "fused_max_rel_err": self.fused_max_rel_err,
            "stream_bitident": self.stream_bitident,
            "error": self.error,
        }

    def render(self) -> str:
        """One-line human rendering."""
        if self.error is not None:
            return f"  FAIL {self.name}: {self.error}"
        status = "ok  " if self.ok else "FAIL"
        flags = []
        if not self.moved:
            flags.append("column never moved")
        if not self.outputs_changed:
            flags.append("outputs never changed")
        if not self.stream_bitident:
            flags.append("streaming not bit-identical")
        detail = f" ({'; '.join(flags)})" if flags else ""
        return (
            f"  {status} {self.name}: {self.n_values} value(s), "
            f"kernel rel err {self.kernel_max_rel_err:.2e}, "
            f"fused rel err {self.fused_max_rel_err:.2e}{detail}"
        )


@dataclasses.dataclass(frozen=True)
class ParityReport:
    """Aggregate parity outcome across all probed columns."""

    columns: tuple[ColumnReport, ...]
    kernel_tier: str = "numpy-chain"

    @property
    def ok(self) -> bool:
        """All probed columns exercised and agreeing."""
        return all(c.ok for c in self.columns)

    @property
    def n_failed(self) -> int:
        """Number of failing columns."""
        return len([c for c in self.columns if not c.ok])

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view."""
        return {
            "ok": self.ok,
            "columns_probed": len(self.columns),
            "columns_failed": self.n_failed,
            "kernel_rtol": KERNEL_RTOL,
            "kernel_tier": self.kernel_tier,
            "columns": [c.as_dict() for c in self.columns],
        }

    def render(self) -> str:
        """Multi-line human rendering (failures always, passes summarised)."""
        lines = [
            f"parity: {len(self.columns)} columns probed, "
            f"{self.n_failed} failed (kernel rtol {KERNEL_RTOL:g}, "
            f"fused tier {self.kernel_tier})"
        ]
        lines.extend(c.render() for c in self.columns if not c.ok)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Probe table — one mutation recipe per registry column
# ----------------------------------------------------------------------


def _with_suite(c: PlatformComparator, **kw) -> PlatformComparator:
    return replace(c, suite=c.suite.with_overrides(**kw))


def _mfg(c: PlatformComparator, **kw) -> PlatformComparator:
    return _with_suite(c, manufacturing=replace(c.suite.manufacturing, **kw))


def _fab(c: PlatformComparator, **kw) -> PlatformComparator:
    mfg = c.suite.manufacturing
    return _with_suite(c, manufacturing=replace(mfg, fab=replace(mfg.fab, **kw)))


def _pkg(c: PlatformComparator, **kw) -> PlatformComparator:
    return _with_suite(c, packaging=replace(c.suite.packaging, **kw))


def _eol(c: PlatformComparator, **kw) -> PlatformComparator:
    return _with_suite(c, eol=replace(c.suite.eol, **kw))


def _eol_material(c: PlatformComparator, **kw) -> PlatformComparator:
    material = c.suite.eol.material
    if not isinstance(material, WarmFactors):
        material = get_material(material)
    return _eol(c, material=replace(material, **kw))


def _design(c: PlatformComparator, **kw) -> PlatformComparator:
    return _with_suite(c, design=replace(c.suite.design, **kw))


def _op(c: PlatformComparator, **kw) -> PlatformComparator:
    return _with_suite(c, operation=replace(c.suite.operation, **kw))


def _op_profile(c: PlatformComparator, **kw) -> PlatformComparator:
    op = c.suite.operation
    return _op(c, profile=replace(op.profile, **kw))


def _appdev(c: PlatformComparator, **kw) -> PlatformComparator:
    return _with_suite(c, appdev=replace(c.suite.appdev, **kw))


def _fpga(c: PlatformComparator, **kw) -> PlatformComparator:
    return replace(c, fpga_device=replace(c.fpga_device, **kw))


def _asic(c: PlatformComparator, **kw) -> PlatformComparator:
    return replace(c, asic_device=replace(c.asic_device, **kw))


def _fpga_node(c: PlatformComparator, **kw) -> PlatformComparator:
    return _fpga(c, node_name=c.fpga_device.node.with_overrides(**kw))


def _asic_node(c: PlatformComparator, **kw) -> PlatformComparator:
    return _asic(c, node_name=c.asic_device.node.with_overrides(**kw))


def _fpga_team(c: PlatformComparator, v: float) -> PlatformComparator:
    return _with_suite(c, fpga_team=replace(c.suite.fpga_team, project_years=v))


def _asic_team(c: PlatformComparator, v: float) -> PlatformComparator:
    return _with_suite(c, asic_team=replace(c.suite.asic_team, project_years=v))


def _fpga_effort(c: PlatformComparator, **kw) -> PlatformComparator:
    return _with_suite(c, fpga_effort=replace(c.suite.fpga_effort, **kw))


def _asic_effort(c: PlatformComparator, **kw) -> PlatformComparator:
    return _with_suite(c, asic_effort=replace(c.suite.asic_effort, **kw))


def _design_report(c: PlatformComparator):
    report = c.suite.design.report
    if isinstance(report, str):
        from repro.data.reports import get_report

        return get_report(report)
    return report


def _nonzero_rho(c: PlatformComparator) -> PlatformComparator:
    # Recycled-MPA columns are inert at the default rho = 0.
    return _mfg(c, recycled_fraction=0.5)


def default_probes() -> tuple[ColumnProbe, ...]:
    """The shipped probe table — one entry per registry column.

    Carbon-intensity knobs take *numeric* energy sources (g CO2e/kWh),
    which both paths resolve through the same grid helper.
    """
    yield_models = (YieldModel.POISSON, YieldModel.SEEDS)
    probes = (
        ColumnProbe(P.MFG_FAB_CI, (50.0, 700.0, 250.0, 1000.0),
                    lambda c, v: _fab(c, energy_source=v)),
        ColumnProbe(P.MFG_ABATE, (0.9, 0.4, 0.6, 0.95),
                    lambda c, v: _fab(c, gas_abatement=v)),
        ColumnProbe(P.MFG_EDGE, (1.0, 6.0, 4.0, 2.0),
                    lambda c, v: _fab(c, edge_exclusion_mm=v)),
        ColumnProbe(P.MFG_SCRIBE, (0.3, 0.05, 0.5, 0.2),
                    lambda c, v: _fab(c, scribe_mm=v)),
        ColumnProbe(P.MFG_RHO, (0.5, 0.9, 0.3, 0.7),
                    lambda c, v: _mfg(c, recycled_fraction=v)),
        ColumnProbe(P.MFG_YIELD_CODE, tuple(range(len(yield_models))),
                    lambda c, v: _mfg(c, yield_model=yield_models[int(v)])),
        ColumnProbe(P.MFG_CHARGE, (0.0,),
                    lambda c, v: _mfg(c, charge_wafer_waste=bool(v))),
        ColumnProbe(P.PKG_SUB, (0.1, 1.2, 0.8, 0.5),
                    lambda c, v: _pkg(c, substrate_kg_per_cm2=v)),
        ColumnProbe(P.PKG_ASM_KWH, (0.3, 5.0, 3.5, 2.0),
                    lambda c, v: _pkg(c, assembly_kwh_per_package=v)),
        ColumnProbe(P.PKG_ASM_CI, (50.0, 900.0, 250.0, 700.0),
                    lambda c, v: _pkg(c, assembly_energy_source=v)),
        ColumnProbe(P.PKG_FANOUT, (1.2, 4.0, 3.0, 2.5),
                    lambda c, v: _pkg(c, fanout_factor=v)),
        ColumnProbe(P.PKG_BASE_KG, (0.05, 1.0, 0.6, 0.3),
                    lambda c, v: _pkg(c, base_kg_per_package=v)),
        ColumnProbe(P.PKG_MASS_CM2, (1.0, 12.0, 8.0, 5.0),
                    lambda c, v: _pkg(c, mass_g_per_cm2=v)),
        ColumnProbe(P.PKG_BASE_MASS, (1.0, 30.0, 16.0, 8.0),
                    lambda c, v: _pkg(c, base_mass_g=v)),
        ColumnProbe(P.EOL_DELTA, (0.0, 1.0, 0.8, 0.5),
                    lambda c, v: _eol(c, recycled_fraction=v)),
        ColumnProbe(P.EOL_DISCARD, (0.5, 8.0, 4.0, 2.0),
                    lambda c, v: _eol_material(c, discard_mtco2e_per_ton=v)),
        ColumnProbe(P.EOL_CREDIT, (5.0, 120.0, 80.0, 40.0),
                    lambda c, v: _eol_material(
                        c, recycle_credit_mtco2e_per_ton=v)),
        ColumnProbe(P.EOL_TRANSPORT, (0.0, 1.0, 0.5, 0.2),
                    lambda c, v: _eol(c, transport_kg_per_kg=v)),
        ColumnProbe(P.DES_ANNUAL_KWH, (1.0, 3.0, 2.5, 2.0),
                    lambda c, v: _design(c, overhead_factor=v)),
        ColumnProbe(P.DES_CI, (30.0, 700.0, 500.0, 250.0),
                    lambda c, v: _design(c, energy_source=v)),
        ColumnProbe(P.DES_AVG_GATES, (100.0, 5000.0, 2000.0, 500.0),
                    lambda c, v: _design(c, report=replace(
                        _design_report(c), avg_gates_per_chip_mgates=v))),
        ColumnProbe(P.DES_BETA, (0.0, 1.0, 0.8, 0.5),
                    lambda c, v: _design(c, gate_scaling_beta=v)),
        ColumnProbe(P.OP_CI, (20.0, 900.0, 500.0, 200.0),
                    lambda c, v: _op(c, energy_source=v)),
        ColumnProbe(P.OP_DUTY, (0.05, 1.0, 0.8, 0.5),
                    lambda c, v: _op_profile(c, duty_cycle=v)),
        ColumnProbe(P.OP_IDLE, (0.0, 1.0, 0.6, 0.3),
                    lambda c, v: _op_profile(c, idle_fraction_of_peak=v)),
        ColumnProbe(P.OP_PUE, (1.0, 2.0, 1.6, 1.3),
                    lambda c, v: _op_profile(c, pue=v)),
        ColumnProbe(P.AD_CI, (20.0, 900.0, 500.0, 200.0),
                    lambda c, v: _appdev(c, energy_source=v)),
        ColumnProbe(P.AD_CONFIG_KW, (50.0, 1000.0, 600.0, 300.0),
                    lambda c, v: _appdev(c, config_power_w=v)),
        ColumnProbe(P.F_AREA, (50.0, 800.0, 400.0, 150.0),
                    lambda c, v: _fpga(c, area_mm2=v)),
        ColumnProbe(P.F_POWER, (1.0, 120.0, 60.0, 25.0),
                    lambda c, v: _fpga(c, peak_power_w=v)),
        ColumnProbe(P.F_LIFE, (3.0, 12.0, 9.0, 6.0),
                    lambda c, v: _fpga(c, chip_lifetime_years=v),
                    scenario=LIFETIME_SCENARIO),
        ColumnProbe(P.F_CAPACITY, (12.0, 120.0, 70.0, 30.0),
                    lambda c, v: _fpga(c, capacity_mgates=v),
                    scenario=CAPACITY_SCENARIO),
        ColumnProbe(P.F_GATES, (5.0, 80.0, 50.0, 20.0),
                    lambda c, v: _fpga_node(
                        c, gate_density_mgates_per_mm2=v)),
        ColumnProbe(P.F_EPA, (0.5, 8.0, 4.0, 2.0),
                    lambda c, v: _fpga_node(c, epa_kwh_per_cm2=v)),
        ColumnProbe(P.F_GPA, (0.1, 2.0, 1.0, 0.5),
                    lambda c, v: _fpga_node(c, gpa_kg_per_cm2=v)),
        ColumnProbe(P.F_MPA_NEW, (0.1, 2.0, 1.0, 0.5),
                    lambda c, v: _fpga_node(c, mpa_new_kg_per_cm2=v)),
        ColumnProbe(P.F_MPA_REC, (0.05, 1.5, 0.8, 0.3),
                    lambda c, v: _fpga_node(c, mpa_recycled_kg_per_cm2=v),
                    prepare=_nonzero_rho),
        ColumnProbe(P.F_DEFECT, (0.05, 0.6, 0.4, 0.2),
                    lambda c, v: _fpga_node(c, defect_density_per_cm2=v)),
        ColumnProbe(P.F_LINE_YIELD, (0.7, 1.0, 0.95, 0.85),
                    lambda c, v: _fpga_node(c, line_yield=v)),
        ColumnProbe(P.F_WAFER_D, (200.0, 450.0, 150.0, 300.0),
                    lambda c, v: _fpga_node(c, wafer_diameter_mm=v)),
        ColumnProbe(P.F_TEAM_YEARS, (1.0, 6.0, 4.0, 2.0), _fpga_team),
        ColumnProbe(P.F_DEV_KG, (0.5, 12.0, 6.0, 3.0),
                    lambda c, v: _fpga_effort(c, frontend_months=v)),
        ColumnProbe(P.F_CHPU, (0.0, 1.0, 0.5, 0.2),
                    lambda c, v: _fpga_effort(c, config_hours_per_unit=v)),
        ColumnProbe(P.A_AREA, (50.0, 600.0, 300.0, 150.0),
                    lambda c, v: _asic(c, area_mm2=v)),
        ColumnProbe(P.A_POWER, (0.5, 50.0, 20.0, 5.0),
                    lambda c, v: _asic(c, peak_power_w=v)),
        ColumnProbe(P.A_LIFE, (2.0, 6.0, 4.0, 3.0),
                    lambda c, v: _asic(c, chip_lifetime_years=v),
                    scenario=ASIC_LIFE_SCENARIO),
        ColumnProbe(P.A_GATES, (100.0, 2000.0, 1000.0, 400.0),
                    lambda c, v: _asic(c, gates_mgates=v)),
        ColumnProbe(P.A_EPA, (0.5, 8.0, 4.0, 2.0),
                    lambda c, v: _asic_node(c, epa_kwh_per_cm2=v)),
        ColumnProbe(P.A_GPA, (0.1, 2.0, 1.0, 0.5),
                    lambda c, v: _asic_node(c, gpa_kg_per_cm2=v)),
        ColumnProbe(P.A_MPA_NEW, (0.1, 2.0, 1.0, 0.5),
                    lambda c, v: _asic_node(c, mpa_new_kg_per_cm2=v)),
        ColumnProbe(P.A_MPA_REC, (0.05, 1.5, 0.8, 0.3),
                    lambda c, v: _asic_node(c, mpa_recycled_kg_per_cm2=v),
                    prepare=_nonzero_rho),
        ColumnProbe(P.A_DEFECT, (0.05, 0.6, 0.4, 0.2),
                    lambda c, v: _asic_node(c, defect_density_per_cm2=v)),
        ColumnProbe(P.A_LINE_YIELD, (0.7, 1.0, 0.95, 0.85),
                    lambda c, v: _asic_node(c, line_yield=v)),
        ColumnProbe(P.A_WAFER_D, (200.0, 450.0, 150.0, 300.0),
                    lambda c, v: _asic_node(c, wafer_diameter_mm=v)),
        ColumnProbe(P.A_TEAM_YEARS, (1.0, 6.0, 4.0, 2.0), _asic_team),
        ColumnProbe(P.A_DEV_KG, (0.5, 8.0, 4.0, 2.0),
                    lambda c, v: _asic_effort(c, frontend_months=v)),
        ColumnProbe(P.A_CHPU, (0.01, 0.6, 0.3, 0.1),
                    lambda c, v: _asic_effort(c, config_hours_per_unit=v)),
    )
    if len(probes) != P.N_PARAM_COLS:
        raise ParameterError(
            f"probe table covers {len(probes)} of {P.N_PARAM_COLS} columns"
        )
    if sorted(p.column for p in probes) != list(range(P.N_PARAM_COLS)):
        raise ParameterError("probe table has duplicate or missing columns")
    return probes


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def _scalar_outputs(
    comps: Sequence[PlatformComparator], scenario: Scenario
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(ratios, fpga_totals, asic_totals, winners) via the scalar path."""
    results = [c.compare(scenario) for c in comps]
    return (
        np.array([r.ratio for r in results], dtype=np.float64),
        np.array([r.fpga.footprint.total for r in results], dtype=np.float64),
        np.array([r.asic.footprint.total for r in results], dtype=np.float64),
        np.array([r.winner for r in results]),
    )


def _max_rel_err(scalar: np.ndarray, kernel: np.ndarray) -> float:
    """Worst relative error; non-finite entries must match exactly."""
    scalar = np.asarray(scalar, dtype=np.float64)
    kernel = np.asarray(kernel, dtype=np.float64)
    finite = np.isfinite(scalar)
    if not np.array_equal(finite, np.isfinite(kernel)):
        return math.inf
    if not np.array_equal(scalar[~finite], kernel[~finite]):
        return math.inf
    s, k = scalar[finite], kernel[finite]
    if s.size == 0:
        return 0.0
    denom = np.maximum(np.abs(s), np.finfo(np.float64).tiny)
    return float(np.max(np.abs(k - s) / denom))


def _reduction_prototype() -> StreamingReduction:
    """Single-row-block reduction used for the bit-identity checks."""
    return StreamingReduction(
        {
            "moments": MomentsReducer(source="ratios", block=1),
            "wins": WinCountReducer(),
        }
    )


def _reduction_state(reduction: StreamingReduction) -> tuple:
    """Comparable finalised state of one reduction (exact floats)."""
    moments = reduction["moments"].moments()
    wins = reduction["wins"]
    return (
        tuple(sorted(moments.items())),
        wins.n,
        wins.fpga_wins,
    )


def _states_equal(a: tuple, b: tuple) -> bool:
    """Bit-identical comparison that still treats ``nan`` as equal."""

    def eq(x: object, y: object) -> bool:
        if isinstance(x, float) and isinstance(y, float):
            return x == y or (math.isnan(x) and math.isnan(y))
        return x == y

    (am, an, aw), (bm, bn, bw) = a, b
    return (
        an == bn
        and aw == bw
        and len(am) == len(bm)
        and all(ka == kb and eq(va, vb) for (ka, va), (kb, vb) in zip(am, bm))
    )


def _probe_column(
    probe: ColumnProbe,
    base: PlatformComparator,
    evaluator: VectorizedEvaluator,
    fused: VectorizedEvaluator,
    values_per_column: int,
) -> ColumnReport:
    """Run one column probe end to end."""
    name = COLUMN_NAMES[probe.column]
    prepared = probe.prepare(base) if probe.prepare is not None else base
    values = probe.values[: max(1, values_per_column)]
    comps = [prepared, *(probe.apply(prepared, v) for v in values)]
    scenario = probe.scenario if probe.scenario is not None else DEFAULT_SCENARIO

    rows = np.array([extract_row(c) for c in comps], dtype=np.float64)
    moved = bool(np.any(rows[1:, probe.column] != rows[0, probe.column]))

    ratios_s, fpga_s, asic_s, winners_s = _scalar_outputs(comps, scenario)
    params = ParameterBatch.from_comparators(comps)
    batch = ScenarioBatch.tile(scenario, len(comps))
    kres = evaluator.evaluate_param_batch(params, batch)

    rel_err = max(
        _max_rel_err(ratios_s, kres.ratios),
        _max_rel_err(fpga_s, kres.fpga_totals),
        _max_rel_err(asic_s, kres.asic_totals),
    )
    if not np.array_equal(winners_s, np.asarray(kres.winners)):
        rel_err = math.inf

    # Fused tier: values to the same rtol, winners bit-identical.
    fres = fused.reduce_batch(params, batch)
    fused_rel_err = max(
        _max_rel_err(ratios_s, fres.ratios),
        _max_rel_err(fpga_s, fres.fpga_totals),
        _max_rel_err(asic_s, fres.asic_totals),
    )
    if not np.array_equal(winners_s, np.asarray(fres.winners)):
        fused_rel_err = math.inf

    outputs_changed = bool(
        np.any(ratios_s[1:] != ratios_s[0])
        or np.any(fpga_s[1:] != fpga_s[0])
        or np.any(asic_s[1:] != asic_s[0])
    )

    # Streaming bit-identity, three ways over the same kernel batch:
    # single-row chunks through run_stream, one sequential update, and
    # an explicit split + merge.
    prototype = _reduction_prototype()
    streamed = run_stream(
        ArrayChunkSource(params, batch), prototype, chunk_rows=1
    )
    sequential = prototype.fresh()
    sequential.update(kres, 0)
    mid = max(1, len(comps) // 2)
    left, right = prototype.fresh(), prototype.fresh()
    left.update(kres.slice_rows(0, mid), 0)
    right.update(kres.slice_rows(mid, len(comps)), mid)
    merged = prototype.fresh()
    merged.merge(left)
    merged.merge(right)
    reference = _reduction_state(sequential)
    stream_bitident = _states_equal(
        _reduction_state(streamed), reference
    ) and _states_equal(_reduction_state(merged), reference)

    return ColumnReport(
        column=probe.column,
        name=name,
        n_values=len(values),
        moved=moved,
        outputs_changed=outputs_changed,
        kernel_max_rel_err=rel_err,
        fused_max_rel_err=fused_rel_err,
        stream_bitident=stream_bitident,
    )


def run_parity(
    values_per_column: int = 3,
    columns: Sequence[int] | None = None,
    base: PlatformComparator | None = None,
    probes: Sequence[ColumnProbe] | None = None,
    kernel_tier: str | None = None,
) -> ParityReport:
    """Probe every registry column (or ``columns``) and report parity.

    ``kernel_tier`` selects the fused-tier backend for the fused sweep
    (default: the ``REPRO_KERNEL`` environment resolution, so
    ``REPRO_KERNEL=numpy repro audit`` validates the chain fallback
    while a plain run validates the fused kernels).

    Per-column exceptions are captured into failing
    :class:`ColumnReport` entries rather than aborting the sweep, so
    one broken probe still leaves a full coverage picture.
    """
    if values_per_column < 1:
        raise ParameterError(
            f"values_per_column must be >= 1, got {values_per_column}"
        )
    if base is None:
        base = PlatformComparator.for_domain("dnn")
    if probes is None:
        probes = default_probes()
    if columns is not None:
        wanted = set(columns)
        probes = [p for p in probes if p.column in wanted]
    # The chain reference always goes through evaluate_param_batch; the
    # fused evaluator serves whatever tier resolution picks.
    evaluator = VectorizedEvaluator(kernel_tier="numpy")
    fused = VectorizedEvaluator(kernel_tier=kernel_tier)
    reports = []
    for probe in probes:
        try:
            reports.append(
                _probe_column(probe, base, evaluator, fused, values_per_column)
            )
        except Exception as exc:  # noqa: BLE001 - one broken probe must not hide the rest of the sweep
            reports.append(
                ColumnReport(
                    column=probe.column,
                    name=COLUMN_NAMES[probe.column],
                    n_values=0,
                    moved=False,
                    outputs_changed=False,
                    kernel_max_rel_err=math.inf,
                    fused_max_rel_err=math.inf,
                    stream_bitident=False,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
    reports.sort(key=lambda r: r.column)
    return ParityReport(
        columns=tuple(reports), kernel_tier=fused.kernel_tier_name
    )
