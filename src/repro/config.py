"""Table 1 parameter set: validation, JSON round-trip, suite building.

Every knob of the paper's Table 1 (plus the calibrated extensions this
reproduction documents in DESIGN.md) is gathered in :class:`Parameters`,
with the published ranges attached so that values can be validated
against the table, perturbed for sensitivity studies, and saved/loaded
as JSON experiment configs.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path

from repro.appdev.model import AppDevModel, DevelopmentEffort
from repro.core.suite import ModelSuite
from repro.design.model import DesignModel, DesignTeam
from repro.eol.model import EolModel
from repro.errors import ConfigError, ParameterError
from repro.manufacturing.act import FabProfile, ManufacturingModel
from repro.operation.energy import OperatingProfile
from repro.operation.model import OperationModel
from repro.packaging.monolithic import MonolithicPackagingModel


@dataclass(frozen=True)
class ParameterRange:
    """Published range of one Table 1 parameter."""

    low: float
    high: float
    unit: str
    source: str

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the published range."""
        return self.low <= value <= self.high


#: The paper's Table 1, parameter name -> published range and source.
TABLE1_RANGES: dict[str, ParameterRange] = {
    "recycled_material_fraction": ParameterRange(0.0, 1.0, "fraction", "[27]/user-defined"),
    "eol_recycled_fraction": ParameterRange(0.0, 1.0, "fraction", "[29]"),
    "recycle_credit_mtco2e_per_ton": ParameterRange(7.65, 29.83, "MTCO2E/ton", "[29]"),
    "discard_mtco2e_per_ton": ParameterRange(0.03, 2.08, "MTCO2E/ton", "[29]"),
    "frontend_months": ParameterRange(1.5, 2.5, "months", "user-defined"),
    "backend_months": ParameterRange(0.5, 1.5, "months", "user-defined"),
    "design_energy_gwh": ParameterRange(2.0, 7.3, "GWh", "[23-25]"),
    "design_carbon_intensity_g_per_kwh": ParameterRange(30.0, 700.0, "g CO2/kWh", "[4, 22]"),
    "design_house_employees": ParameterRange(20_000.0, 160_000.0, "employees", "[23-25]"),
    "project_years": ParameterRange(1.0, 3.0, "years", "[31]"),
}


@dataclass(frozen=True)
class Parameters:
    """All scenario-independent model knobs, JSON-serialisable.

    Field defaults are the calibrated values behind every experiment in
    EXPERIMENTS.md.  Fields covered by the paper's Table 1 are validated
    against :data:`TABLE1_RANGES` by :meth:`validate`.
    """

    # Manufacturing (Section 3.2(2), Eq. 5).
    fab_energy_source: str = "taiwan"
    recycled_material_fraction: float = 0.0
    yield_model: str = "murphy"
    fab_gas_abatement: float = 0.0

    # End of life (Section 3.2(4), Eq. 6).
    eol_recycled_fraction: float = 0.30
    eol_material: str = "mixed_electronics"

    # Design (Section 3.2(1), Eq. 4).
    design_report: str = "design_house_b"
    design_energy_source: str | float | None = None
    design_gate_scaling_beta: float = 0.35
    design_overhead_factor: float = 1.35
    project_years: float = 3.0
    design_engineers: float = 250.0

    # Operation (Section 3.3(1)).
    use_energy_source: str | float = "green_datacenter"
    duty_cycle: float = 0.30
    idle_fraction_of_peak: float = 0.10
    pue: float = 1.2

    # Application development (Section 3.3(2), Eq. 7).
    frontend_months: float = 2.0
    backend_months: float = 1.0
    config_hours_per_unit: float = 0.05
    asic_software_months: float = 0.0
    devfarm_power_w: float = 12_000.0

    def validate(self) -> None:
        """Check every Table 1-covered field against its published range.

        Raises:
            ParameterError: naming the first out-of-range field.
        """
        for name in ("recycled_material_fraction", "eol_recycled_fraction",
                     "frontend_months", "backend_months", "project_years"):
            value = float(getattr(self, name))
            rng = TABLE1_RANGES[name]
            if not rng.contains(value):
                raise ParameterError(
                    f"{name}={value} outside Table 1 range "
                    f"[{rng.low}, {rng.high}] {rng.unit} ({rng.source})"
                )

    def build_suite(self) -> ModelSuite:
        """Materialise a :class:`ModelSuite` from these parameters."""
        manufacturing = ManufacturingModel(
            fab=FabProfile(
                energy_source=self.fab_energy_source,
                gas_abatement=self.fab_gas_abatement,
            ),
            yield_model=self.yield_model,
            recycled_fraction=self.recycled_material_fraction,
        )
        design = DesignModel(
            report=self.design_report,
            energy_source=self.design_energy_source,
            gate_scaling_beta=self.design_gate_scaling_beta,
            overhead_factor=self.design_overhead_factor,
        )
        eol = EolModel(
            recycled_fraction=self.eol_recycled_fraction,
            material=self.eol_material,
        )
        operation = OperationModel(
            energy_source=self.use_energy_source,
            profile=OperatingProfile(
                duty_cycle=self.duty_cycle,
                idle_fraction_of_peak=self.idle_fraction_of_peak,
                pue=self.pue,
            ),
        )
        appdev = AppDevModel(farm_power_w=self.devfarm_power_w)
        team = DesignTeam(
            engineers=self.design_engineers, project_years=self.project_years
        )
        return ModelSuite(
            manufacturing=manufacturing,
            packaging=MonolithicPackagingModel(),
            design=design,
            eol=eol,
            operation=operation,
            appdev=appdev,
            fpga_team=team,
            asic_team=team,
            fpga_effort=DevelopmentEffort(
                frontend_months=self.frontend_months,
                backend_months=self.backend_months,
                config_hours_per_unit=self.config_hours_per_unit,
            ),
            asic_effort=DevelopmentEffort.for_asic(self.asic_software_months),
        )

    def with_overrides(self, **kwargs: object) -> "Parameters":
        """Copy with selected fields replaced."""
        return replace(self, **kwargs)

    def to_json(self, path: "str | Path | None" = None) -> str:
        """Serialise to a JSON string (and optionally write ``path``)."""
        text = json.dumps(asdict(self), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text + "\n")
        return text

    @classmethod
    def from_json(cls, source: "str | Path") -> "Parameters":
        """Load from a JSON string or file path.

        Raises:
            ConfigError: on malformed JSON or unknown fields.
        """
        text = source
        try:
            path = Path(str(source))
            is_file = path.exists()
        except OSError:
            is_file = False
        if is_file:
            text = path.read_text()
        try:
            raw = json.loads(str(text))
        except json.JSONDecodeError as exc:
            raise ConfigError(f"malformed parameters JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise ConfigError("parameters JSON must be an object")
        known = {f.name for f in fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise ConfigError(f"unknown parameter(s): {', '.join(sorted(unknown))}")
        return cls(**raw)


def default_parameters() -> Parameters:
    """The calibrated defaults used throughout the experiments."""
    return Parameters()
