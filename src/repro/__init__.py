"""GreenFPGA reproduction: lifecycle carbon-footprint models for FPGAs.

A from-scratch Python implementation of *GreenFPGA: Evaluating FPGAs as
Environmentally Sustainable Computing Solutions* (DAC 2024): embodied and
operational carbon models for FPGAs and ASICs, iso-performance
comparison, crossover analysis, and every experiment from the paper's
evaluation section.

Quickstart::

    from repro import Scenario, compare_domain

    result = compare_domain("dnn", Scenario(num_apps=6, app_lifetime_years=2.0,
                                            volume=1_000_000))
    print(result.winner, result.ratio)
"""

from repro.core.asic_model import AsicAssessment, AsicLifecycleModel
from repro.core.comparison import ComparisonResult, PlatformComparator, compare_domain
from repro.core.fpga_model import FpgaAssessment, FpgaLifecycleModel
from repro.core.gpu_model import GpuLifecycleModel
from repro.core.lifecycle import CarbonFootprint
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.devices.asic import AsicDevice
from repro.devices.catalog import DOMAIN_NAMES, DomainSpec, get_domain, get_industry_device
from repro.devices.fpga import FpgaDevice
from repro.devices.gpu import GpuDevice
from repro.engine import EvaluationEngine, default_engine
from repro.errors import GreenFpgaError
from repro.fleet.planner import Application, FleetPlanner

__version__ = "1.0.0"

__all__ = [
    "Application",
    "AsicAssessment",
    "AsicDevice",
    "AsicLifecycleModel",
    "CarbonFootprint",
    "ComparisonResult",
    "DOMAIN_NAMES",
    "DomainSpec",
    "EvaluationEngine",
    "FleetPlanner",
    "FpgaAssessment",
    "FpgaDevice",
    "FpgaLifecycleModel",
    "GpuDevice",
    "GpuLifecycleModel",
    "GreenFpgaError",
    "ModelSuite",
    "PlatformComparator",
    "Scenario",
    "__version__",
    "compare_domain",
    "default_engine",
    "get_domain",
    "get_industry_device",
]
