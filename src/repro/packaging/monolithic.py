"""Monolithic package manufacture + assembly carbon model.

The paper uses the ECO-CHIP [5] monolithic package model: an organic
substrate whose footprint scales with package area, plus a per-package
assembly/test energy term.  The package area is the die area times a
fan-out factor (substrate routing, stiffener, lid).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.grid import carbon_intensity_kg_per_kwh
from repro.errors import require_non_negative, require_positive
from repro.units import mm2_to_cm2


@dataclass(frozen=True)
class PackagingResult:
    """Per-package footprint decomposition."""

    total_kg: float
    substrate_kg: float
    assembly_kg: float
    package_area_mm2: float
    package_mass_g: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for reporting."""
        return {
            "total_kg": self.total_kg,
            "substrate_kg": self.substrate_kg,
            "assembly_kg": self.assembly_kg,
            "package_area_mm2": self.package_area_mm2,
            "package_mass_g": self.package_mass_g,
        }


@dataclass(frozen=True)
class MonolithicPackagingModel:
    """Monolithic (single-die) package model.

    Attributes:
        substrate_kg_per_cm2: Footprint of organic substrate manufacture
            per cm^2 of package area (laminate, copper layers, solder).
        assembly_kwh_per_package: Assembly + package-test energy.
        assembly_energy_source: Energy source for assembly (OSAT house).
        fanout_factor: Package area / die area ratio.
        base_kg_per_package: Area-independent overhead (lid, balls,
            shipping materials).
        mass_g_per_cm2: Package mass per cm^2, feeding the EOL model.
        base_mass_g: Area-independent package mass.
    """

    substrate_kg_per_cm2: float = 0.35
    assembly_kwh_per_package: float = 1.2
    assembly_energy_source: object = "taiwan"
    fanout_factor: float = 1.8
    base_kg_per_package: float = 0.15
    mass_g_per_cm2: float = 3.2
    base_mass_g: float = 4.0

    def __post_init__(self) -> None:
        require_non_negative(self.substrate_kg_per_cm2, "substrate_kg_per_cm2")
        require_non_negative(self.assembly_kwh_per_package, "assembly_kwh_per_package")
        require_positive(self.fanout_factor, "fanout_factor")
        require_non_negative(self.base_kg_per_package, "base_kg_per_package")
        require_non_negative(self.mass_g_per_cm2, "mass_g_per_cm2")
        require_non_negative(self.base_mass_g, "base_mass_g")

    def package_area_mm2(self, die_area_mm2: float) -> float:
        """Package footprint area for a die of ``die_area_mm2``."""
        require_positive(die_area_mm2, "die_area_mm2")
        return die_area_mm2 * self.fanout_factor

    def package_mass_g(self, die_area_mm2: float) -> float:
        """Package mass (grams), used by the EOL model."""
        area_cm2 = mm2_to_cm2(self.package_area_mm2(die_area_mm2))
        return self.base_mass_g + self.mass_g_per_cm2 * area_cm2

    def assess_package(self, die_area_mm2: float) -> PackagingResult:
        """Footprint of packaging one die."""
        pkg_area_mm2 = self.package_area_mm2(die_area_mm2)
        pkg_area_cm2 = mm2_to_cm2(pkg_area_mm2)
        substrate = self.base_kg_per_package + self.substrate_kg_per_cm2 * pkg_area_cm2
        assembly = self.assembly_kwh_per_package * carbon_intensity_kg_per_kwh(
            self.assembly_energy_source
        )
        return PackagingResult(
            total_kg=substrate + assembly,
            substrate_kg=substrate,
            assembly_kg=assembly,
            package_area_mm2=pkg_area_mm2,
            package_mass_g=self.package_mass_g(die_area_mm2),
        )

    def per_package_kg(self, die_area_mm2: float) -> float:
        """Convenience scalar: total kg CO2e per package."""
        return self.assess_package(die_area_mm2).total_kg
