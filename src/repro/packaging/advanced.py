"""2.5D/3D heterogeneous-integration packaging models (extension).

The paper's comparison uses monolithic packages, but its manufacturing
lineage (ECO-CHIP [5], 3D-Carbon [17]) models advanced packaging, and
real large FPGAs (Stratix 10, Agilex with transceiver tiles) are 2.5D
EMIB/interposer products.  This module provides those models so industry
testcases can optionally be assessed with their true package style.

Styles:

* ``RDL`` fan-out: redistribution layers, cheapest advanced option.
* ``EMIB``: silicon bridge dies embedded in the substrate.
* ``INTERPOSER``: full passive silicon interposer carrying all chiplets.
* ``TSV_3D``: 3D stacking with through-silicon vias.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.data.grid import carbon_intensity_kg_per_kwh
from repro.data.nodes import get_node
from repro.errors import ParameterError, require_non_negative, require_positive
from repro.manufacturing.act import ManufacturingModel
from repro.packaging.monolithic import MonolithicPackagingModel, PackagingResult
from repro.units import mm2_to_cm2


class PackageStyle(enum.Enum):
    """Advanced package integration style."""

    RDL = "rdl"
    EMIB = "emib"
    INTERPOSER = "interposer"
    TSV_3D = "tsv_3d"

    @classmethod
    def coerce(cls, value: "PackageStyle | str") -> "PackageStyle":
        """Accept either an enum member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).strip().lower())
        except ValueError as exc:
            names = [member.value for member in cls]
            raise ParameterError(
                f"unknown package style {value!r}; expected one of {names}"
            ) from exc


#: Per-style bonding energy (kWh per chiplet) and silicon-carrier area
#: ratio (carrier area as a fraction of total chiplet area).
_STYLE_FACTORS: dict[PackageStyle, tuple[float, float]] = {
    PackageStyle.RDL: (0.35, 0.00),
    PackageStyle.EMIB: (0.60, 0.08),
    PackageStyle.INTERPOSER: (0.90, 1.10),
    PackageStyle.TSV_3D: (1.40, 0.25),
}

#: Node used to manufacture passive carriers (mature, cheap).
_CARRIER_NODE = "28nm"


@dataclass(frozen=True)
class AdvancedPackagingModel:
    """Advanced (multi-die) packaging model.

    Composes the monolithic substrate model with a silicon-carrier
    manufacturing term and per-chiplet bonding energy.

    Attributes:
        style: Integration style.
        substrate: Underlying organic-substrate model.
        carrier_manufacturing: Manufacturing model used for passive
            silicon carriers (interposer/bridges).
        bonding_energy_source: Energy source for bonding/assembly.
        bonding_yield: Yield of each chiplet-attach step; compounding
            per-chiplet, it charges failed assemblies to good ones.
    """

    style: PackageStyle | str = PackageStyle.INTERPOSER
    substrate: MonolithicPackagingModel = field(default_factory=MonolithicPackagingModel)
    carrier_manufacturing: ManufacturingModel = field(default_factory=ManufacturingModel)
    bonding_energy_source: object = "taiwan"
    bonding_yield: float = 0.99

    def __post_init__(self) -> None:
        require_positive(self.bonding_yield, "bonding_yield")
        if self.bonding_yield > 1.0:
            raise ParameterError(f"bonding_yield must be <= 1, got {self.bonding_yield}")

    def assess_package(self, chiplet_areas_mm2: list[float]) -> PackagingResult:
        """Footprint of one multi-die package.

        Args:
            chiplet_areas_mm2: Die area of every chiplet in the package.

        Returns:
            A :class:`PackagingResult`; the carrier + bonding footprint is
            folded into ``assembly_kg``.
        """
        if not chiplet_areas_mm2:
            raise ParameterError("chiplet_areas_mm2 must not be empty")
        for area in chiplet_areas_mm2:
            require_positive(area, "chiplet area")
        style = PackageStyle.coerce(self.style)
        bonding_kwh, carrier_ratio = _STYLE_FACTORS[style]
        total_area = sum(chiplet_areas_mm2)

        base = self.substrate.assess_package(total_area)

        carrier_kg = 0.0
        if carrier_ratio > 0.0:
            carrier_area = total_area * carrier_ratio
            carrier_kg = self.carrier_manufacturing.per_die_kg(
                carrier_area, get_node(_CARRIER_NODE)
            )

        n_chiplets = len(chiplet_areas_mm2)
        assembly_yield = self.bonding_yield**n_chiplets
        bonding_kg = (
            bonding_kwh
            * n_chiplets
            * carbon_intensity_kg_per_kwh(self.bonding_energy_source)
        )
        extra = (carrier_kg + bonding_kg) / assembly_yield

        carrier_mass_g = 2.33 * mm2_to_cm2(total_area * carrier_ratio) * 0.0775 * 10.0
        return PackagingResult(
            total_kg=base.total_kg + extra,
            substrate_kg=base.substrate_kg,
            assembly_kg=base.assembly_kg + extra,
            package_area_mm2=base.package_area_mm2,
            package_mass_g=base.package_mass_g + carrier_mass_g,
        )

    def per_package_kg(self, chiplet_areas_mm2: list[float]) -> float:
        """Convenience scalar: total kg CO2e per package."""
        return self.assess_package(chiplet_areas_mm2).total_kg
