"""Packaging carbon models (paper Section 3.2(3)).

:mod:`repro.packaging.monolithic` implements the monolithic package model
the paper uses (inherited from ECO-CHIP [5]); :mod:`repro.packaging.advanced`
adds the 2.5D/3D heterogeneous-integration models from the same lineage as
a documented extension (useful for multi-die FPGAs such as Stratix 10).
"""

from repro.packaging.advanced import AdvancedPackagingModel, PackageStyle
from repro.packaging.monolithic import MonolithicPackagingModel, PackagingResult

__all__ = [
    "AdvancedPackagingModel",
    "MonolithicPackagingModel",
    "PackageStyle",
    "PackagingResult",
]
