"""Application-development carbon model (paper Section 3.3(2), Eq. (7))."""

from repro.appdev.model import AppDevModel, AppDevResult, DevelopmentEffort

__all__ = ["AppDevModel", "AppDevResult", "DevelopmentEffort"]
