"""Application-development CFP — the paper's Eq. (7).

``T_app-dev = N_app * (T_app,FE + T_app,BE) + N_vol * T_app,config``

* ``T_app,FE`` — RTL/HLS authoring and verification, once per application
  (Table 1: 1.5-2.5 months).
* ``T_app,BE`` — synthesis/place-and-route, once per FPGA architecture
  (Table 1: 0.5-1.5 months).
* ``T_app,config`` — loading the bitstream into each deployed FPGA.

The CFP is the development-compute power times the energy source's carbon
intensity times this total time.  For ASICs the FE/BE terms are zero (the
hardware flow is part of the chip project, Eq. (4)); an optional
software-flow effort models ASIC-side application bring-up (the paper
cites TPU-style regression flows).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.grid import carbon_intensity_kg_per_kwh
from repro.errors import require_non_negative
from repro.units import months_to_hours, watts_to_kw


@dataclass(frozen=True)
class DevelopmentEffort:
    """Per-application development effort in calendar months.

    Attributes:
        frontend_months: ``T_app,FE`` — RTL/HLS + verification.
        backend_months: ``T_app,BE`` — synth/place/route per architecture.
        config_hours_per_unit: ``T_app,config`` — per deployed unit.
    """

    frontend_months: float = 2.0
    backend_months: float = 1.0
    config_hours_per_unit: float = 0.05

    def __post_init__(self) -> None:
        require_non_negative(self.frontend_months, "frontend_months")
        require_non_negative(self.backend_months, "backend_months")
        require_non_negative(self.config_hours_per_unit, "config_hours_per_unit")

    @classmethod
    def for_asic(cls, software_months: float = 0.0) -> "DevelopmentEffort":
        """ASIC effort: FE/BE are zero per the paper; optional SW flow.

        ``software_months`` models TPU-style compiler/regression bring-up
        charged to the frontend slot.
        """
        return cls(
            frontend_months=software_months,
            backend_months=0.0,
            config_hours_per_unit=0.0,
        )

    def per_application_hours(self) -> float:
        """FE + BE hours for one application."""
        return months_to_hours(self.frontend_months + self.backend_months)


@dataclass(frozen=True)
class AppDevResult:
    """App-dev footprint decomposition for one application."""

    total_kg: float
    development_kg: float
    configuration_kg: float
    development_hours: float
    configuration_hours: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for reporting."""
        return {
            "total_kg": self.total_kg,
            "development_kg": self.development_kg,
            "configuration_kg": self.configuration_kg,
            "development_hours": self.development_hours,
            "configuration_hours": self.configuration_hours,
        }


@dataclass(frozen=True)
class AppDevModel:
    """Eq. (7) application-development model.

    Attributes:
        farm_power_w: Average power of the development compute farm
            (workstations + EDA servers) active during development.
        config_power_w: Power of the programming rig while configuring
            one deployed FPGA.
        energy_source: Carbon intensity of development-site electricity.
    """

    farm_power_w: float = 12_000.0
    config_power_w: float = 150.0
    energy_source: object = "usa"

    def __post_init__(self) -> None:
        require_non_negative(self.farm_power_w, "farm_power_w")
        require_non_negative(self.config_power_w, "config_power_w")

    def assess_application(
        self,
        effort: DevelopmentEffort,
        volume: int,
    ) -> AppDevResult:
        """App-dev CFP of one application deployed on ``volume`` units."""
        require_non_negative(float(volume), "volume")
        intensity = carbon_intensity_kg_per_kwh(self.energy_source)
        dev_hours = effort.per_application_hours()
        config_hours = effort.config_hours_per_unit * float(volume)
        development = watts_to_kw(self.farm_power_w) * dev_hours * intensity
        configuration = watts_to_kw(self.config_power_w) * config_hours * intensity
        return AppDevResult(
            total_kg=development + configuration,
            development_kg=development,
            configuration_kg=configuration,
            development_hours=dev_hours,
            configuration_hours=config_hours,
        )

    def per_application_kg(self, effort: DevelopmentEffort, volume: int) -> float:
        """Convenience scalar: app-dev kg CO2e for one application."""
        return self.assess_application(effort, volume).total_kg
