"""Testcase catalog: the paper's Table 2 domains and Table 3 industry parts.

Table 2 (from Tan [12]) gives iso-performance FPGA:ASIC ratios per domain:

=========  =====  ========  ======
metric     DNN    ImgProc   Crypto
=========  =====  ========  ======
area       4.00   7.42      1.00
power      3.00   1.25      1.00
=========  =====  ========  ======

Tan's report normalises away absolute sizes, so each domain here also
carries a calibrated absolute ASIC baseline (area, power, node) that sets
the scale of the experiments; the ratios above are applied to derive the
iso-performance FPGA.  The baselines are edge/embedded accelerator class
parts at 10 nm (the paper's stated node), chosen so the reproduced
crossovers land near the published ones (see EXPERIMENTS.md).

Table 3 industry parts are encoded verbatim (area, TDP, node).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.asic import AsicDevice
from repro.devices.fpga import FpgaDevice
from repro.errors import UnknownEntityError, require_positive


@dataclass(frozen=True)
class DomainSpec:
    """One application domain with iso-performance FPGA:ASIC ratios.

    Attributes:
        name: Domain key (``"dnn"``, ``"imgproc"``, ``"crypto"``).
        area_ratio: FPGA area / ASIC area at iso-performance (Table 2).
        power_ratio: FPGA power / ASIC power at iso-performance (Table 2).
        asic_area_mm2: Calibrated absolute ASIC die area.
        asic_power_w: Calibrated absolute ASIC active power.
        node_name: Technology node for both implementations.
        description: Human-readable label.
    """

    name: str
    area_ratio: float
    power_ratio: float
    asic_area_mm2: float
    asic_power_w: float
    node_name: str = "10nm"
    description: str = ""

    def __post_init__(self) -> None:
        require_positive(self.area_ratio, "area_ratio")
        require_positive(self.power_ratio, "power_ratio")
        require_positive(self.asic_area_mm2, "asic_area_mm2")
        require_positive(self.asic_power_w, "asic_power_w")

    def asic_device(self) -> AsicDevice:
        """The domain's ASIC implementation."""
        return AsicDevice(
            name=f"{self.name}-asic",
            area_mm2=self.asic_area_mm2,
            node_name=self.node_name,
            peak_power_w=self.asic_power_w,
        )

    def fpga_device(self) -> FpgaDevice:
        """The iso-performance FPGA implementation (Table 2 ratios)."""
        return FpgaDevice(
            name=f"{self.name}-fpga",
            area_mm2=self.asic_area_mm2 * self.area_ratio,
            node_name=self.node_name,
            peak_power_w=self.asic_power_w * self.power_ratio,
        )


_DOMAINS: tuple[DomainSpec, ...] = (
    DomainSpec(
        name="dnn",
        area_ratio=4.0,
        power_ratio=3.0,
        asic_area_mm2=120.0,
        asic_power_w=3.0,
        description="deep neural network inference",
    ),
    DomainSpec(
        name="imgproc",
        area_ratio=7.42,
        power_ratio=1.25,
        asic_area_mm2=100.0,
        asic_power_w=25.0,
        description="image processing pipeline",
    ),
    DomainSpec(
        name="crypto",
        area_ratio=1.0,
        power_ratio=1.0,
        asic_area_mm2=100.0,
        asic_power_w=3.0,
        description="cryptographic engine",
    ),
)

_DOMAIN_INDEX: dict[str, DomainSpec] = {domain.name: domain for domain in _DOMAINS}

#: Domain names in paper order.
DOMAIN_NAMES: tuple[str, ...] = tuple(domain.name for domain in _DOMAINS)


def get_domain(name: str) -> DomainSpec:
    """Look up a Table 2 domain by name."""
    domain = _DOMAIN_INDEX.get(name.strip().lower())
    if domain is None:
        raise UnknownEntityError("domain", name, list(DOMAIN_NAMES))
    return domain


#: Table 3 industry ASICs (Moffett Antoum-like, Google TPU-like).
INDUSTRY_ASICS: dict[str, AsicDevice] = {
    "industry_asic1": AsicDevice(
        name="IndustryASIC1",
        area_mm2=340.0,
        node_name="12nm",
        peak_power_w=70.0,
    ),
    "industry_asic2": AsicDevice(
        name="IndustryASIC2",
        area_mm2=600.0,
        node_name="7nm",
        peak_power_w=192.0,
    ),
}

#: Table 3 industry FPGAs (Intel Agilex 7-like, Stratix 10-like).
INDUSTRY_FPGAS: dict[str, FpgaDevice] = {
    "industry_fpga1": FpgaDevice(
        name="IndustryFPGA1",
        area_mm2=380.0,
        node_name="14nm",
        peak_power_w=160.0,
    ),
    "industry_fpga2": FpgaDevice(
        name="IndustryFPGA2",
        area_mm2=550.0,
        node_name="10nm",
        peak_power_w=220.0,
    ),
}


def list_industry_devices() -> list[str]:
    """Names of all Table 3 industry testcases."""
    return sorted(INDUSTRY_ASICS) + sorted(INDUSTRY_FPGAS)


def get_industry_device(name: str) -> "AsicDevice | FpgaDevice":
    """Look up a Table 3 industry testcase by key."""
    key = name.strip().lower()
    if key in INDUSTRY_ASICS:
        return INDUSTRY_ASICS[key]
    if key in INDUSTRY_FPGAS:
        return INDUSTRY_FPGAS[key]
    raise UnknownEntityError("industry device", name, list_industry_devices())


#: Extension: iso-performance GPU:ASIC ratios per domain.  GPUs are
#: software-programmable but burn the most power of the three platforms
#: (the paper's stated reason for excluding them from its comparison);
#: crypto bit-twiddling maps to them especially poorly.
GPU_RATIOS: dict[str, tuple[float, float]] = {
    "dnn": (6.0, 4.0),       # (area ratio, power ratio) vs the domain ASIC
    "imgproc": (8.0, 3.0),
    "crypto": (8.0, 6.0),
}


def gpu_device_for(domain: "DomainSpec | str") -> "GpuDevice":
    """Iso-performance commodity GPU for a Table 2 domain (extension)."""
    from repro.devices.gpu import GpuDevice

    spec = domain if isinstance(domain, DomainSpec) else get_domain(domain)
    area_ratio, power_ratio = GPU_RATIOS[spec.name]
    return GpuDevice(
        name=f"{spec.name}-gpu",
        area_mm2=spec.asic_area_mm2 * area_ratio,
        node_name=spec.node_name,
        peak_power_w=spec.asic_power_w * power_ratio,
    )
