"""Device specifications and the paper's testcase catalog (Tables 2-3)."""

from repro.devices.asic import AsicDevice
from repro.devices.catalog import (
    DOMAIN_NAMES,
    INDUSTRY_ASICS,
    INDUSTRY_FPGAS,
    DomainSpec,
    get_domain,
    get_industry_device,
    list_industry_devices,
)
from repro.devices.fpga import FpgaDevice

__all__ = [
    "AsicDevice",
    "DOMAIN_NAMES",
    "DomainSpec",
    "FpgaDevice",
    "INDUSTRY_ASICS",
    "INDUSTRY_FPGAS",
    "get_domain",
    "get_industry_device",
    "list_industry_devices",
]
