"""ASIC device specification."""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.nodes import TechnologyNode, get_node
from repro.errors import require_positive


@dataclass(frozen=True)
class AsicDevice:
    """A fixed-function accelerator chip.

    Attributes:
        name: Identifier for reporting.
        area_mm2: Die area.
        node_name: Technology node (``"10nm"`` etc.).
        peak_power_w: Active (TDP) power.
        chip_lifetime_years: Useful silicon life before wear-out /
            obsolescence forces remanufacture (paper: ASICs 5-8 y).
        gates_mgates: Logic size in million equivalent gates; derived
            from area and node density when not given.
    """

    name: str
    area_mm2: float
    node_name: str
    peak_power_w: float
    chip_lifetime_years: float = 8.0
    gates_mgates: float | None = None

    def __post_init__(self) -> None:
        require_positive(self.area_mm2, "area_mm2")
        require_positive(self.peak_power_w, "peak_power_w")
        require_positive(self.chip_lifetime_years, "chip_lifetime_years")
        if self.gates_mgates is not None:
            require_positive(self.gates_mgates, "gates_mgates")

    @property
    def node(self) -> TechnologyNode:
        """Resolved technology node."""
        return get_node(self.node_name)

    @property
    def logic_gates_mgates(self) -> float:
        """Logic size in Mgates (explicit value or area x node density)."""
        if self.gates_mgates is not None:
            return self.gates_mgates
        return self.area_mm2 * self.node.gate_density_mgates_per_mm2
