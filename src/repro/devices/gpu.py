"""GPU device specification (extension).

The paper's introduction names three acceleration options — GPUs, FPGAs
and ASICs — but evaluates only the latter two, noting GPUs "have
high-power and less flexibility than FPGAs".  This extension makes that
argument quantitative: a GPU is software-reprogrammable (embodied CFP
paid once, like the FPGA) but is a commodity part whose design CFP is
amortised over a much larger merchant market, while its power at
iso-performance is typically the highest of the three.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.nodes import TechnologyNode, get_node
from repro.errors import require_positive


@dataclass(frozen=True)
class GpuDevice:
    """A commodity GPU accelerator.

    Attributes:
        name: Identifier for reporting.
        area_mm2: Die area.
        node_name: Technology node.
        peak_power_w: Active (TDP) power.
        chip_lifetime_years: Useful life; datacenter GPUs turn over
            faster than FPGAs (typically 5-7 years).
        market_amortisation: Factor by which the one-time design CFP is
            divided — a merchant GPU's design project is shared across
            the entire market volume, not one deployment.  1.0 charges
            the full project to this deployment (FPGA/ASIC treatment).
    """

    name: str
    area_mm2: float
    node_name: str
    peak_power_w: float
    chip_lifetime_years: float = 6.0
    market_amortisation: float = 10.0

    def __post_init__(self) -> None:
        require_positive(self.area_mm2, "area_mm2")
        require_positive(self.peak_power_w, "peak_power_w")
        require_positive(self.chip_lifetime_years, "chip_lifetime_years")
        require_positive(self.market_amortisation, "market_amortisation")

    @property
    def node(self) -> TechnologyNode:
        """Resolved technology node."""
        return get_node(self.node_name)

    @property
    def logic_gates_mgates(self) -> float:
        """Silicon size in Mgates (area x node density)."""
        return self.area_mm2 * self.node.gate_density_mgates_per_mm2
