"""FPGA device specification, including reconfigurable-capacity sizing.

The paper sizes applications and FPGAs in "equivalent logic gates": the
number of ASIC gates an application needs, and how many of those gates one
FPGA can implement.  ``N_FPGA = ceil(app_size / fpga_capacity)`` (Eq. (3)
footnote) — for most testcases this is 1, but ASIC counterparts at the
reticle limit can require several FPGAs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.data.nodes import TechnologyNode, get_node
from repro.errors import require_positive


#: Typical FPGA fabric area overhead versus an ASIC implementation of the
#: same logic (LUTs, routing, configuration memory).  Used only to derive
#: a capacity estimate when none is given.
DEFAULT_FABRIC_OVERHEAD = 25.0


@dataclass(frozen=True)
class FpgaDevice:
    """A reconfigurable accelerator chip.

    Attributes:
        name: Identifier for reporting.
        area_mm2: Die area.
        node_name: Technology node.
        peak_power_w: Active (TDP) power.
        chip_lifetime_years: Useful silicon life; FPGAs ship and are
            supported for 12-15 years (paper ref [11]).
        capacity_mgates: ASIC-equivalent logic gates the fabric can
            implement (Eq. (3) ``FPGA_capacity``).  Derived from area,
            node density and fabric overhead when not given.
        fabric_overhead: Area overhead versus ASIC logic, used only for
            the capacity derivation.
    """

    name: str
    area_mm2: float
    node_name: str
    peak_power_w: float
    chip_lifetime_years: float = 15.0
    capacity_mgates: float | None = None
    fabric_overhead: float = DEFAULT_FABRIC_OVERHEAD

    def __post_init__(self) -> None:
        require_positive(self.area_mm2, "area_mm2")
        require_positive(self.peak_power_w, "peak_power_w")
        require_positive(self.chip_lifetime_years, "chip_lifetime_years")
        require_positive(self.fabric_overhead, "fabric_overhead")
        if self.capacity_mgates is not None:
            require_positive(self.capacity_mgates, "capacity_mgates")

    @property
    def node(self) -> TechnologyNode:
        """Resolved technology node."""
        return get_node(self.node_name)

    @property
    def logic_capacity_mgates(self) -> float:
        """ASIC-equivalent gates this FPGA can implement."""
        if self.capacity_mgates is not None:
            return self.capacity_mgates
        raw = self.area_mm2 * self.node.gate_density_mgates_per_mm2
        return raw / self.fabric_overhead

    def units_required(self, app_size_mgates: float | None) -> int:
        """``N_FPGA`` for an application of ``app_size_mgates``.

        ``None`` means the application is sized to the device (the
        iso-performance testcases), i.e. one FPGA.
        """
        if app_size_mgates is None:
            return 1
        require_positive(app_size_mgates, "app_size_mgates")
        return max(1, math.ceil(app_size_mgates / self.logic_capacity_mgates))
