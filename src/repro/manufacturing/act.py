"""ACT-style manufacturing carbon model (paper Section 3.2(2)).

Per good die:

``C_mfg = A_wafer_share * (EPA * CI_fab + GPA + MPA_blended) / Y(A_die)``

* ``EPA * CI_fab`` — fab electricity footprint; the fab's energy mix is a
  first-order knob (Taiwan grid vs. renewable-matched fabs).
* ``GPA`` — direct process gases net of abatement.
* ``MPA_blended`` — material sourcing, blended per Eq. (5).
* ``Y`` — die yield (Murphy by default); bad dies are still processed, so
  the per-good-die footprint divides by yield.
* ``A_wafer_share`` — processed wafer area charged to the die, including
  edge/scribe waste (slightly above the die's own area).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.grid import carbon_intensity_kg_per_kwh
from repro.data.nodes import TechnologyNode
from repro.errors import require_fraction, require_positive
from repro.manufacturing.materials import blended_mpa_kg_per_cm2
from repro.manufacturing.wafer import wafer_area_per_die_cm2
from repro.manufacturing.yield_model import YieldModel, die_yield
from repro.units import mm2_to_cm2


@dataclass(frozen=True)
class FabProfile:
    """Operating profile of the fab manufacturing the die.

    Attributes:
        energy_source: Grid region name / :class:`GridRegion` / numeric
            g CO2e/kWh for the fab's electricity.
        gas_abatement: Additional abatement applied to the node's GPA
            (0 = use node value as-is, 0.9 = 90% further abated).
        edge_exclusion_mm: Wafer edge exclusion for area accounting.
        scribe_mm: Scribe-lane width added around each die.
    """

    energy_source: object = "taiwan"
    gas_abatement: float = 0.0
    edge_exclusion_mm: float = 3.0
    scribe_mm: float = 0.1

    def __post_init__(self) -> None:
        require_fraction(self.gas_abatement, "gas_abatement")

    @property
    def carbon_intensity_kg_per_kwh(self) -> float:
        """Resolved fab electricity carbon intensity."""
        return carbon_intensity_kg_per_kwh(self.energy_source)


@dataclass(frozen=True)
class ManufacturingResult:
    """Per-good-die manufacturing footprint and its decomposition."""

    total_kg: float
    energy_kg: float
    gas_kg: float
    material_kg: float
    die_yield: float
    wafer_area_share_cm2: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for reporting."""
        return {
            "total_kg": self.total_kg,
            "energy_kg": self.energy_kg,
            "gas_kg": self.gas_kg,
            "material_kg": self.material_kg,
            "die_yield": self.die_yield,
            "wafer_area_share_cm2": self.wafer_area_share_cm2,
        }


@dataclass(frozen=True)
class ManufacturingModel:
    """Carbon-per-area manufacturing model with yield correction.

    Attributes:
        fab: Fab operating profile.
        yield_model: Statistical die-yield model.
        recycled_fraction: Eq. (5) rho for material sourcing.
        charge_wafer_waste: Charge dies for edge/scribe wafer waste; when
            False the die is charged exactly its own area (the pure ACT
            formulation).
    """

    fab: FabProfile = field(default_factory=FabProfile)
    yield_model: YieldModel | str = YieldModel.MURPHY
    recycled_fraction: float = 0.0
    charge_wafer_waste: bool = True

    def __post_init__(self) -> None:
        require_fraction(self.recycled_fraction, "recycled_fraction")

    def carbon_per_cm2(self, node: TechnologyNode) -> float:
        """Raw carbon per processed cm^2 (before yield), kg CO2e."""
        energy = node.epa_kwh_per_cm2 * self.fab.carbon_intensity_kg_per_kwh
        gas = node.gpa_kg_per_cm2 * (1.0 - self.fab.gas_abatement)
        material = blended_mpa_kg_per_cm2(node, self.recycled_fraction)
        return energy + gas + material

    def assess_die(self, die_area_mm2: float, node: TechnologyNode) -> ManufacturingResult:
        """Footprint of one *good* die of ``die_area_mm2`` at ``node``."""
        require_positive(die_area_mm2, "die_area_mm2")
        if self.charge_wafer_waste:
            area_cm2 = wafer_area_per_die_cm2(
                die_area_mm2,
                wafer_diameter_mm=node.wafer_diameter_mm,
                edge_exclusion_mm=self.fab.edge_exclusion_mm,
                scribe_mm=self.fab.scribe_mm,
            )
        else:
            area_cm2 = mm2_to_cm2(die_area_mm2)
        total_yield = die_yield(
            mm2_to_cm2(die_area_mm2),
            node.defect_density_per_cm2,
            model=self.yield_model,
            line_yield=node.line_yield,
        )
        scale = area_cm2 / total_yield
        energy = node.epa_kwh_per_cm2 * self.fab.carbon_intensity_kg_per_kwh * scale
        gas = node.gpa_kg_per_cm2 * (1.0 - self.fab.gas_abatement) * scale
        material = blended_mpa_kg_per_cm2(node, self.recycled_fraction) * scale
        return ManufacturingResult(
            total_kg=energy + gas + material,
            energy_kg=energy,
            gas_kg=gas,
            material_kg=material,
            die_yield=total_yield,
            wafer_area_share_cm2=area_cm2,
        )

    def per_die_kg(self, die_area_mm2: float, node: TechnologyNode) -> float:
        """Convenience scalar: total kg CO2e per good die."""
        return self.assess_die(die_area_mm2, node).total_kg
