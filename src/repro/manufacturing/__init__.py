"""Manufacturing carbon models (paper Section 3.2(2), refs [4, 5, 22]).

The public surface is :class:`repro.manufacturing.act.ManufacturingModel`,
an ACT-style carbon-per-area model with die-yield correction, plus the
yield/wafer/material helpers it composes.
"""

from repro.manufacturing.act import FabProfile, ManufacturingModel, ManufacturingResult
from repro.manufacturing.materials import blended_mpa_kg_per_cm2
from repro.manufacturing.wafer import dies_per_wafer, usable_wafer_area_cm2
from repro.manufacturing.yield_model import (
    YieldModel,
    die_yield,
    murphy_yield,
    poisson_yield,
    seeds_yield,
)

__all__ = [
    "FabProfile",
    "ManufacturingModel",
    "ManufacturingResult",
    "YieldModel",
    "blended_mpa_kg_per_cm2",
    "die_yield",
    "dies_per_wafer",
    "murphy_yield",
    "poisson_yield",
    "seeds_yield",
    "usable_wafer_area_cm2",
]
