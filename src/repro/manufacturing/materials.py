"""Recycled-material blending — the paper's Eq. (5).

``C_materials = rho * C_materials,recycled + (1 - rho) * C_materials,new``

where ``rho`` is the fraction of fab material sourced from recycled
feedstock (Table 1 range 0-1, default from Apple's recycled-content
disclosures [27]).
"""

from __future__ import annotations

from repro.data.nodes import TechnologyNode
from repro.errors import require_fraction


def blended_mpa_kg_per_cm2(node: TechnologyNode, recycled_fraction: float) -> float:
    """Material-sourcing footprint per cm^2 with recycled content blended in.

    Args:
        node: Technology node supplying the new/recycled MPA endpoints.
        recycled_fraction: Eq. (5) rho in [0, 1].

    Returns:
        Blended MPA in kg CO2e per cm^2; linear between the two endpoints,
        so rho=0 reproduces all-new sourcing and rho=1 all-recycled.
    """
    rho = require_fraction(recycled_fraction, "recycled_fraction")
    return (
        rho * node.mpa_recycled_kg_per_cm2 + (1.0 - rho) * node.mpa_new_kg_per_cm2
    )


def recycled_material_savings_kg_per_cm2(node: TechnologyNode, recycled_fraction: float) -> float:
    """Absolute MPA reduction achieved by the recycled fraction."""
    return node.mpa_new_kg_per_cm2 - blended_mpa_kg_per_cm2(node, recycled_fraction)
