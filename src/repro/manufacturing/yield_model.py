"""Die yield models.

Yield converts carbon-per-processed-area into carbon-per-*good*-die: a
die that yields at 50% embodies the footprint of two processed dies.  The
super-linear penalty this puts on large dies is load-bearing for the
paper's results — it is why the 7.42x-area ImgProc FPGA stays expensive
(Figs. 4-6) while the 1x-area Crypto FPGA is free of any penalty.

Three classic models are provided; Murphy's is the default, matching the
ECO-CHIP [5] manufacturing flow the paper inherits.
"""

from __future__ import annotations

import enum
import math

from repro.errors import ParameterError, require_non_negative, require_positive


class YieldModel(enum.Enum):
    """Selectable die-yield statistical model."""

    MURPHY = "murphy"
    POISSON = "poisson"
    SEEDS = "seeds"

    @classmethod
    def coerce(cls, value: "YieldModel | str") -> "YieldModel":
        """Accept either an enum member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).strip().lower())
        except ValueError as exc:
            names = [member.value for member in cls]
            raise ParameterError(
                f"unknown yield model {value!r}; expected one of {names}"
            ) from exc


def poisson_yield(area_cm2: float, defect_density_per_cm2: float) -> float:
    """Poisson yield: ``Y = exp(-A * D0)``.

    Pessimistic for large dies (assumes defects are uncorrelated).
    """
    require_non_negative(area_cm2, "area_cm2")
    require_non_negative(defect_density_per_cm2, "defect_density_per_cm2")
    return math.exp(-area_cm2 * defect_density_per_cm2)


def murphy_yield(area_cm2: float, defect_density_per_cm2: float) -> float:
    """Murphy yield: ``Y = ((1 - exp(-A*D0)) / (A*D0))^2``.

    Industry-standard compromise between Poisson and Seeds; the limit at
    ``A*D0 -> 0`` is 1 (handled explicitly for numerical stability).
    """
    require_non_negative(area_cm2, "area_cm2")
    require_non_negative(defect_density_per_cm2, "defect_density_per_cm2")
    faults = area_cm2 * defect_density_per_cm2
    if faults < 1.0e-12:
        return 1.0
    # -expm1(-x) = 1 - e^-x without catastrophic cancellation at small x.
    return (-math.expm1(-faults) / faults) ** 2


def seeds_yield(area_cm2: float, defect_density_per_cm2: float) -> float:
    """Seeds yield: ``Y = 1 / (1 + A*D0)``.

    Optimistic for large dies (assumes strongly clustered defects).
    """
    require_non_negative(area_cm2, "area_cm2")
    require_non_negative(defect_density_per_cm2, "defect_density_per_cm2")
    return 1.0 / (1.0 + area_cm2 * defect_density_per_cm2)


_DISPATCH = {
    YieldModel.MURPHY: murphy_yield,
    YieldModel.POISSON: poisson_yield,
    YieldModel.SEEDS: seeds_yield,
}


def die_yield(
    area_cm2: float,
    defect_density_per_cm2: float,
    model: "YieldModel | str" = YieldModel.MURPHY,
    line_yield: float = 1.0,
) -> float:
    """Total die yield = statistical die yield x wafer line yield.

    Args:
        area_cm2: Die area in cm^2.
        defect_density_per_cm2: Defect density D0.
        model: Which statistical model to use.
        line_yield: Wafer-level yield multiplier in (0, 1].

    Returns:
        Yield in (0, 1].
    """
    require_positive(line_yield, "line_yield")
    if line_yield > 1.0:
        raise ParameterError(f"line_yield must be <= 1, got {line_yield!r}")
    statistical = _DISPATCH[YieldModel.coerce(model)](area_cm2, defect_density_per_cm2)
    return statistical * line_yield
