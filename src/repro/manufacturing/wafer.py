"""Wafer geometry helpers.

Carbon-per-area models implicitly assume the whole wafer is usable; real
wafers lose area to edge exclusion and die-grid quantisation.  These
helpers compute gross dies per wafer and the effective area overhead so
the manufacturing model can charge each die its true share of the
processed wafer.
"""

from __future__ import annotations

import math

from repro.errors import CapacityError, require_positive
from repro.units import RETICLE_LIMIT_MM2, mm2_to_cm2


def usable_wafer_area_cm2(wafer_diameter_mm: float, edge_exclusion_mm: float = 3.0) -> float:
    """Printable wafer area in cm^2 after edge exclusion."""
    require_positive(wafer_diameter_mm, "wafer_diameter_mm")
    radius_mm = wafer_diameter_mm / 2.0 - edge_exclusion_mm
    if radius_mm <= 0.0:
        raise CapacityError(
            f"edge exclusion {edge_exclusion_mm} mm leaves no usable area on a "
            f"{wafer_diameter_mm} mm wafer"
        )
    return mm2_to_cm2(math.pi * radius_mm**2)


def dies_per_wafer(
    die_area_mm2: float,
    wafer_diameter_mm: float = 300.0,
    edge_exclusion_mm: float = 3.0,
    scribe_mm: float = 0.1,
) -> int:
    """Gross dies per wafer using the standard de-rating formula.

    ``DPW = pi*(d/2)^2 / A  -  pi*d / sqrt(2*A)`` with a scribe-lane
    overhead added to the die footprint.  The second term accounts for
    partial dies at the wafer edge.

    Raises:
        CapacityError: if the die exceeds the reticle limit or no die fits.
    """
    require_positive(die_area_mm2, "die_area_mm2")
    if die_area_mm2 > RETICLE_LIMIT_MM2:
        raise CapacityError(
            f"die area {die_area_mm2:.0f} mm^2 exceeds the reticle limit "
            f"({RETICLE_LIMIT_MM2:.0f} mm^2); split the design across chips"
        )
    side_mm = math.sqrt(die_area_mm2) + scribe_mm
    footprint_mm2 = side_mm**2
    usable_diameter_mm = wafer_diameter_mm - 2.0 * edge_exclusion_mm
    area_term = math.pi * (usable_diameter_mm / 2.0) ** 2 / footprint_mm2
    edge_term = math.pi * usable_diameter_mm / math.sqrt(2.0 * footprint_mm2)
    gross = int(area_term - edge_term)
    if gross < 1:
        raise CapacityError(
            f"no {die_area_mm2:.0f} mm^2 die fits on a {wafer_diameter_mm} mm wafer"
        )
    return gross


def wafer_area_per_die_cm2(
    die_area_mm2: float,
    wafer_diameter_mm: float = 300.0,
    edge_exclusion_mm: float = 3.0,
    scribe_mm: float = 0.1,
) -> float:
    """Processed wafer area attributable to one gross die, in cm^2.

    Always at least the die's own area; the excess is edge/scribe waste.
    """
    gross = dies_per_wafer(die_area_mm2, wafer_diameter_mm, edge_exclusion_mm, scribe_mm)
    total = usable_wafer_area_cm2(wafer_diameter_mm, edge_exclusion_mm)
    return max(total / gross, mm2_to_cm2(die_area_mm2))
