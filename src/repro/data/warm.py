"""End-of-life carbon factors from the EPA Waste Reduction Model (WARM).

The paper's Eq. (6) uses a recycling credit ``C_recycle`` and a discard
footprint ``C_dis`` per ton of material, citing EPA WARM [29].  Table 1
gives the ranges 7.65-29.83 MTCO2e/ton (recycle credit) and
0.03-2.08 MTCO2e/ton (discard).  We encode per-material-category factors
spanning exactly those ranges; "mixed_electronics" is the default category
for a packaged FPGA/ASIC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnknownEntityError, require_non_negative


@dataclass(frozen=True)
class WarmFactors:
    """WARM end-of-life factors for one material category.

    Attributes:
        name: Registry key.
        recycle_credit_mtco2e_per_ton: Avoided emissions per ton recycled
            (entered as a positive credit, subtracted in Eq. (6)).
        discard_mtco2e_per_ton: Emissions per ton landfilled/incinerated.
        typical_recycled_content: Typical fraction of this material that
            can be sourced recycled (Eq. (5) rho default).
    """

    name: str
    recycle_credit_mtco2e_per_ton: float
    discard_mtco2e_per_ton: float
    typical_recycled_content: float

    def __post_init__(self) -> None:
        require_non_negative(self.recycle_credit_mtco2e_per_ton, "recycle credit")
        require_non_negative(self.discard_mtco2e_per_ton, "discard factor")

    @property
    def recycle_credit_kg_per_kg(self) -> float:
        """Recycle credit in kg CO2e per kg (MTCO2e/ton is numerically kg/kg)."""
        return self.recycle_credit_mtco2e_per_ton

    @property
    def discard_kg_per_kg(self) -> float:
        """Discard footprint in kg CO2e per kg."""
        return self.discard_mtco2e_per_ton


_MATERIALS: tuple[WarmFactors, ...] = (
    WarmFactors("mixed_electronics", 20.00, 1.10, 0.35),
    WarmFactors("pcb_laminate", 14.20, 2.08, 0.20),
    WarmFactors("copper", 29.83, 0.04, 0.60),
    WarmFactors("aluminum", 27.40, 0.03, 0.68),
    WarmFactors("gold_bearing_scrap", 28.90, 0.06, 0.30),
    WarmFactors("silicon", 7.65, 0.35, 0.12),
    WarmFactors("organic_substrate", 9.40, 1.75, 0.15),
    WarmFactors("solder", 16.80, 0.90, 0.25),
)

_MATERIAL_INDEX: dict[str, WarmFactors] = {entry.name: entry for entry in _MATERIALS}


def list_materials() -> list[str]:
    """Names of all built-in WARM material categories."""
    return [entry.name for entry in _MATERIALS]


def get_material(name: str) -> WarmFactors:
    """Look up a WARM material category by name."""
    entry = _MATERIAL_INDEX.get(name.strip().lower())
    if entry is None:
        raise UnknownEntityError("WARM material", name, list_materials())
    return entry
