"""Carbon intensity of electricity sources and grid regions.

The paper's Table 1 gives the design-phase carbon intensity range
30-700 g CO2e/kWh (refs [4, 22]); operational and fab intensities use the
same published per-source values.  Lifecycle intensities per source follow
the IPCC AR5 median values that ACT [4] uses; regional grids are annual
averages from public grid data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnknownEntityError, require_non_negative
from repro.units import g_per_kwh_to_kg_per_kwh


@dataclass(frozen=True)
class GridRegion:
    """An electricity source or regional grid mix.

    Attributes:
        name: Registry key (lowercase snake case).
        intensity_g_per_kwh: Lifecycle carbon intensity in g CO2e/kWh.
        renewable_fraction: Fraction of generation from renewables, used
            for reporting only.
        description: One-line provenance note.
    """

    name: str
    intensity_g_per_kwh: float
    renewable_fraction: float
    description: str

    def __post_init__(self) -> None:
        require_non_negative(self.intensity_g_per_kwh, "intensity_g_per_kwh")

    @property
    def intensity_kg_per_kwh(self) -> float:
        """Carbon intensity in kg CO2e/kWh (internal model unit)."""
        return g_per_kwh_to_kg_per_kwh(self.intensity_g_per_kwh)


_REGIONS: tuple[GridRegion, ...] = (
    # Pure sources (IPCC AR5 lifecycle medians, as used by ACT).
    GridRegion("coal", 820.0, 0.0, "hard coal, lifecycle median"),
    GridRegion("gas", 490.0, 0.0, "combined-cycle natural gas"),
    GridRegion("biomass", 230.0, 1.0, "dedicated biomass"),
    GridRegion("solar", 41.0, 1.0, "utility-scale photovoltaic"),
    GridRegion("geothermal", 38.0, 1.0, "geothermal"),
    GridRegion("hydro", 24.0, 1.0, "reservoir hydro"),
    GridRegion("nuclear", 12.0, 0.0, "pressurised-water nuclear"),
    GridRegion("wind", 11.0, 1.0, "onshore wind"),
    # Regional grid mixes (annual averages).
    GridRegion("world", 475.0, 0.28, "world average grid mix"),
    GridRegion("usa", 380.0, 0.21, "United States average grid"),
    GridRegion("taiwan", 509.0, 0.08, "Taiwan grid (major fab location)"),
    GridRegion("south_korea", 415.0, 0.07, "South Korea grid"),
    GridRegion("europe", 275.0, 0.38, "EU-27 average grid"),
    GridRegion("india", 630.0, 0.19, "India grid"),
    GridRegion("china", 540.0, 0.28, "China grid"),
    GridRegion("iceland", 28.0, 1.0, "Iceland (hydro/geothermal)"),
    GridRegion("sweden", 45.0, 0.69, "Sweden grid"),
    # Procurement strategies used by the paper's scenarios.
    GridRegion("renewable_ppa", 50.0, 0.95, "renewable power purchase mix"),
    GridRegion("green_datacenter", 100.0, 0.80, "hyperscale DC with offsets"),
    GridRegion("fab_average", 450.0, 0.12, "volume-weighted fab energy mix"),
)

_REGION_INDEX: dict[str, GridRegion] = {region.name: region for region in _REGIONS}


def list_regions() -> list[str]:
    """Names of all built-in sources/regions."""
    return [region.name for region in _REGIONS]


def get_region(name: str) -> GridRegion:
    """Look up a built-in source or regional grid by name."""
    region = _REGION_INDEX.get(name.strip().lower())
    if region is None:
        raise UnknownEntityError("grid region", name, list_regions())
    return region


def carbon_intensity_kg_per_kwh(source: "str | float | GridRegion") -> float:
    """Resolve a carbon-intensity specification to kg CO2e/kWh.

    Accepts a region name (``"taiwan"``), a :class:`GridRegion`, or a raw
    numeric intensity in **g CO2e/kWh** (the unit the paper's Table 1
    uses), making every model's energy-source knob uniformly flexible.
    """
    if isinstance(source, GridRegion):
        return source.intensity_kg_per_kwh
    if isinstance(source, (int, float)):
        return g_per_kwh_to_kg_per_kwh(require_non_negative(float(source), "carbon intensity"))
    return get_region(source).intensity_kg_per_kwh
