"""Per-technology-node manufacturing carbon factors.

The numbers follow the ACT [4] / imec "green transition" white paper [20]
trends that the paper's manufacturing model inherits (Section 3.2(2)):

* **EPA** (energy per area, kWh/cm^2) grows toward advanced nodes because
  EUV and multi-patterning add process steps.
* **GPA** (direct greenhouse gases per area, kg CO2e/cm^2) grows mildly
  with step count; fabs abate a large fraction.
* **MPA** (material sourcing footprint per area, kg CO2e/cm^2) grows with
  mask-count/material complexity.  A recycled-sourcing variant carries a
  reduced footprint, implementing the paper's Eq. (5) inputs.
* **defect density** (per cm^2) reflects a *mature* process at each node;
  yield is computed by :mod:`repro.manufacturing.yield_model`.
* **gate density** (million gates / mm^2) converts between the paper's
  "equivalent logic gates" application sizing and physical die area.

These are calibration data, not measurements; the paper itself sources
them from aggregate industry reports (see its Section 5 validation
discussion).  Values can be overridden by constructing custom
:class:`TechnologyNode` instances.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import UnknownEntityError, require_fraction, require_positive


@dataclass(frozen=True)
class TechnologyNode:
    """Manufacturing carbon factors for one logic technology node.

    Attributes:
        name: Human-readable node name, e.g. ``"10nm"``.
        feature_nm: Nominal feature size in nanometres.
        epa_kwh_per_cm2: Fab energy per processed wafer area.
        gpa_kg_per_cm2: Direct (scope-1) gas emissions per wafer area,
            already net of abatement.
        mpa_new_kg_per_cm2: Material sourcing footprint per wafer area
            when all materials are newly extracted.
        mpa_recycled_kg_per_cm2: Material sourcing footprint per wafer
            area when materials come from recycled feedstock.
        defect_density_per_cm2: Defect density D0 used by the yield model.
        line_yield: Wafer-level (line) yield multiplier in (0, 1].
        gate_density_mgates_per_mm2: Logic density in million equivalent
            gates per mm^2 (used to size dies from gate counts).
        wafer_diameter_mm: Production wafer diameter.
    """

    name: str
    feature_nm: float
    epa_kwh_per_cm2: float
    gpa_kg_per_cm2: float
    mpa_new_kg_per_cm2: float
    mpa_recycled_kg_per_cm2: float
    defect_density_per_cm2: float
    line_yield: float
    gate_density_mgates_per_mm2: float
    wafer_diameter_mm: float = 300.0

    def __post_init__(self) -> None:
        require_positive(self.feature_nm, "feature_nm")
        require_positive(self.epa_kwh_per_cm2, "epa_kwh_per_cm2")
        require_positive(self.gpa_kg_per_cm2, "gpa_kg_per_cm2")
        require_positive(self.mpa_new_kg_per_cm2, "mpa_new_kg_per_cm2")
        require_positive(self.mpa_recycled_kg_per_cm2, "mpa_recycled_kg_per_cm2")
        require_positive(self.defect_density_per_cm2, "defect_density_per_cm2")
        require_fraction(self.line_yield, "line_yield")
        require_positive(self.line_yield, "line_yield")
        require_positive(self.gate_density_mgates_per_mm2, "gate_density")
        require_positive(self.wafer_diameter_mm, "wafer_diameter_mm")

    def with_overrides(self, **kwargs: float) -> "TechnologyNode":
        """Return a copy of this node with selected fields replaced."""
        return replace(self, **kwargs)


def _node(
    feature_nm: float,
    epa: float,
    gpa: float,
    mpa_new: float,
    defect: float,
    gate_density: float,
    line_yield: float = 0.98,
    recycled_discount: float = 0.55,
) -> TechnologyNode:
    """Build a node entry; recycled MPA is a discounted new-material MPA."""
    return TechnologyNode(
        name=f"{feature_nm:g}nm",
        feature_nm=feature_nm,
        epa_kwh_per_cm2=epa,
        gpa_kg_per_cm2=gpa,
        mpa_new_kg_per_cm2=mpa_new,
        mpa_recycled_kg_per_cm2=mpa_new * (1.0 - recycled_discount),
        defect_density_per_cm2=defect,
        line_yield=line_yield,
        gate_density_mgates_per_mm2=gate_density,
    )


#: Node table, 28 nm down to 3 nm.  EPA/GPA/MPA trend upward toward
#: advanced nodes (ACT Fig. 6 / imec SSTS white paper); defect densities
#: reflect mature high-volume production; gate density roughly doubles
#: every full node.
_NODES: tuple[TechnologyNode, ...] = (
    _node(28.0, epa=1.50, gpa=0.36, mpa_new=0.51, defect=0.060, gate_density=3.4),
    _node(22.0, epa=1.70, gpa=0.38, mpa_new=0.53, defect=0.065, gate_density=4.6),
    _node(20.0, epa=1.80, gpa=0.39, mpa_new=0.55, defect=0.070, gate_density=5.1),
    _node(16.0, epa=2.00, gpa=0.40, mpa_new=0.57, defect=0.075, gate_density=7.2),
    _node(14.0, epa=2.12, gpa=0.42, mpa_new=0.60, defect=0.080, gate_density=8.3),
    _node(12.0, epa=2.24, gpa=0.43, mpa_new=0.62, defect=0.085, gate_density=9.6),
    _node(10.0, epa=2.40, gpa=0.46, mpa_new=0.65, defect=0.090, gate_density=11.5),
    _node(8.0, epa=2.68, gpa=0.48, mpa_new=0.70, defect=0.100, gate_density=14.8),
    _node(7.0, epa=3.04, gpa=0.51, mpa_new=0.75, defect=0.110, gate_density=17.0),
    _node(5.0, epa=4.10, gpa=0.56, mpa_new=0.86, defect=0.130, gate_density=24.6),
    _node(3.0, epa=5.40, gpa=0.64, mpa_new=1.00, defect=0.160, gate_density=35.3),
)

_NODE_INDEX: dict[str, TechnologyNode] = {node.name: node for node in _NODES}


def list_nodes() -> list[str]:
    """Names of all built-in technology nodes, newest last."""
    return [node.name for node in _NODES]


def get_node(name: "str | float | int | TechnologyNode") -> TechnologyNode:
    """Look up a built-in node by name (``"10nm"``) or feature size (10).

    A :class:`TechnologyNode` instance passes through unchanged, so
    devices can carry ad-hoc nodes (``node.with_overrides(...)``) the
    same way :class:`~repro.eol.model.EolModel` carries ad-hoc
    :class:`~repro.data.warm.WarmFactors` — the parity auditor perturbs
    node-level registry columns this way.

    Raises:
        UnknownEntityError: if the node is not in the built-in table.
    """
    if isinstance(name, TechnologyNode):
        return name
    if isinstance(name, (int, float)):
        key = f"{float(name):g}nm"
    else:
        key = name.strip().lower()
        if not key.endswith("nm"):
            key = f"{key}nm"
    node = _NODE_INDEX.get(key)
    if node is None:
        raise UnknownEntityError("technology node", str(name), list_nodes())
    return node
