"""Design-house sustainability report extracts for the design CFP model.

The paper's Eq. (4) draws its constants from corporate sustainability
reports of fabless design houses (refs [21, 23-25]): annual electricity
use ``E_des`` (Table 1: 2-7.3 GWh), total employees (20 K-160 K), energy
renewable fractions, and typical project durations (1-3 years, ref [31]).

Company identities are kept generic (profiles A-D patterned on the cited
Microchip / NVIDIA / AMD / large-EDA reports) because only the aggregate
numbers matter to the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnknownEntityError, require_fraction, require_positive


@dataclass(frozen=True)
class DesignHouseReport:
    """Aggregate numbers from one design house's sustainability report.

    Attributes:
        name: Registry key.
        annual_energy_gwh: Electricity consumed per year by design and
            test activities (Table 1 ``E_des``).
        total_employees: Company-wide headcount used to normalise energy
            to a per-employee-year figure.
        renewable_fraction: Fraction of electricity from renewables;
            lowers the effective design carbon intensity.
        avg_gates_per_chip_mgates: Average logic size of the company's
            chip products in millions of gates (Eq. (4) ``N_gates,des``).
        typical_project_years: Typical chip project duration (ref [31]).
    """

    name: str
    annual_energy_gwh: float
    total_employees: int
    renewable_fraction: float
    avg_gates_per_chip_mgates: float
    typical_project_years: float

    def __post_init__(self) -> None:
        require_positive(self.annual_energy_gwh, "annual_energy_gwh")
        require_positive(float(self.total_employees), "total_employees")
        require_fraction(self.renewable_fraction, "renewable_fraction")
        require_positive(self.avg_gates_per_chip_mgates, "avg_gates_per_chip")
        require_positive(self.typical_project_years, "typical_project_years")

    def energy_kwh_per_employee_year(self) -> float:
        """Electricity per employee per year in kWh."""
        return self.annual_energy_gwh * 1.0e6 / float(self.total_employees)


_REPORTS: tuple[DesignHouseReport, ...] = (
    DesignHouseReport(
        name="design_house_a",  # Microchip-like mixed-signal house [23]
        annual_energy_gwh=2.0,
        total_employees=20_000,
        renewable_fraction=0.10,
        avg_gates_per_chip_mgates=150.0,
        typical_project_years=2.0,
    ),
    DesignHouseReport(
        name="design_house_b",  # NVIDIA-like GPU/accelerator house [24]
        annual_energy_gwh=7.3,
        total_employees=26_000,
        renewable_fraction=0.44,
        avg_gates_per_chip_mgates=3_000.0,
        typical_project_years=3.0,
    ),
    DesignHouseReport(
        name="design_house_c",  # AMD-like CPU/FPGA house [25]
        annual_energy_gwh=6.1,
        total_employees=25_000,
        renewable_fraction=0.31,
        avg_gates_per_chip_mgates=2_200.0,
        typical_project_years=3.0,
    ),
    DesignHouseReport(
        name="design_house_d",  # large integrated house upper bound [21]
        annual_energy_gwh=7.3,
        total_employees=160_000,
        renewable_fraction=0.25,
        avg_gates_per_chip_mgates=800.0,
        typical_project_years=1.5,
    ),
)

_REPORT_INDEX: dict[str, DesignHouseReport] = {entry.name: entry for entry in _REPORTS}

#: Default profile used by the calibrated scenarios (accelerator house).
DEFAULT_REPORT = "design_house_b"


def list_reports() -> list[str]:
    """Names of all built-in design-house profiles."""
    return [entry.name for entry in _REPORTS]


def get_report(name: str) -> DesignHouseReport:
    """Look up a design-house profile by name."""
    entry = _REPORT_INDEX.get(name.strip().lower())
    if entry is None:
        raise UnknownEntityError("design house report", name, list_reports())
    return entry
