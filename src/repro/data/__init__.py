"""Static datasets encoded from the public sources the paper cites.

* :mod:`repro.data.nodes`   — per-technology-node manufacturing factors
  (ACT [4] / imec white paper [20] / ECO-CHIP [5] trends).
* :mod:`repro.data.grid`    — carbon intensity of energy sources and grid
  regions (paper Table 1, refs [4, 15, 22]).
* :mod:`repro.data.warm`    — EPA WARM [29] recycling / discard factors.
* :mod:`repro.data.reports` — design-house sustainability report extracts
  (paper refs [21, 23-25]).
"""

from repro.data.grid import GridRegion, carbon_intensity_kg_per_kwh, list_regions
from repro.data.nodes import TechnologyNode, get_node, list_nodes
from repro.data.reports import DesignHouseReport, get_report, list_reports
from repro.data.warm import WarmFactors, get_material, list_materials

__all__ = [
    "GridRegion",
    "TechnologyNode",
    "DesignHouseReport",
    "WarmFactors",
    "carbon_intensity_kg_per_kwh",
    "get_node",
    "get_material",
    "get_report",
    "list_regions",
    "list_nodes",
    "list_materials",
    "list_reports",
]
