"""Carbon-optimal platform assignment for a portfolio of applications.

The paper compares all-FPGA against all-ASIC deployments.  Real product
portfolios are mixed: short-lived, low-volume applications suit the
shared FPGA; long-lived, high-volume ones suit dedicated ASICs.  This
planner chooses, per application, FPGA or ASIC so the portfolio's total
CFP is minimal.

The coupling that makes this non-trivial: every application routed to
the FPGA shares **one** FPGA embodied cost (design + volume x chip
embodied, sized by the *maximum* volume among FPGA-assigned apps, since
reconfiguration reuses the same physical fleet), while each ASIC
application pays its own full Eq. (1) cost.  Subset choice therefore
interacts through the max-volume term.

Exact optimisation enumerates subsets up to :data:`EXACT_LIMIT`
applications (2^n states); larger portfolios use a greedy descent that
starts all-ASIC and repeatedly moves the application with the best
marginal saving, which is optimal in the common case where volumes are
equal (the shared cost is then a pure step function of subset size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.core.asic_model import AsicLifecycleModel
from repro.core.fpga_model import FpgaLifecycleModel
from repro.core.lifecycle import CarbonFootprint
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.devices.asic import AsicDevice
from repro.devices.catalog import DomainSpec, get_domain
from repro.devices.fpga import FpgaDevice
from repro.errors import ParameterError, require_positive

#: Largest portfolio optimised exactly (2^n subset enumeration).
EXACT_LIMIT = 14


@dataclass(frozen=True)
class Application:
    """One application in the portfolio.

    Attributes:
        name: Label for reporting.
        lifetime_years: Deployment lifetime ``T_i``.
        volume: Deployed units ``N_vol``.
    """

    name: str
    lifetime_years: float
    volume: int

    def __post_init__(self) -> None:
        require_positive(self.lifetime_years, "lifetime_years")
        if self.volume < 1:
            raise ParameterError(f"volume must be >= 1, got {self.volume}")


@dataclass(frozen=True)
class FleetPlan:
    """Optimal assignment and its cost decomposition."""

    fpga_apps: tuple[str, ...]
    asic_apps: tuple[str, ...]
    total_kg: float
    all_fpga_kg: float
    all_asic_kg: float
    exact: bool

    @property
    def savings_vs_best_uniform_kg(self) -> float:
        """CFP saved versus the better single-platform fleet."""
        return min(self.all_fpga_kg, self.all_asic_kg) - self.total_kg

    def assignment(self) -> dict[str, str]:
        """Application name -> chosen platform."""
        out = {name: "fpga" for name in self.fpga_apps}
        out.update({name: "asic" for name in self.asic_apps})
        return out


@dataclass(frozen=True)
class FleetPlanner:
    """Choose FPGA/ASIC per application to minimise portfolio CFP.

    Attributes:
        fpga_device / asic_device: The iso-performance platform pair
            every application can target.
        suite: Shared sub-model bundle.
    """

    fpga_device: FpgaDevice
    asic_device: AsicDevice
    suite: ModelSuite = field(default_factory=ModelSuite.default)

    @classmethod
    def for_domain(
        cls, domain: "DomainSpec | str", suite: ModelSuite | None = None
    ) -> "FleetPlanner":
        """Planner for a Table 2 domain."""
        spec = domain if isinstance(domain, DomainSpec) else get_domain(domain)
        return cls(
            fpga_device=spec.fpga_device(),
            asic_device=spec.asic_device(),
            suite=suite if suite is not None else ModelSuite.default(),
        )

    # -- per-application building blocks ---------------------------------

    def _asic_cost(self, app: Application) -> float:
        model = AsicLifecycleModel(self.asic_device, self.suite)
        scenario = Scenario(
            num_apps=1, app_lifetime_years=app.lifetime_years, volume=app.volume
        )
        return model.total_kg(scenario)

    def _fpga_shared_embodied(self, volume: int) -> float:
        """One-time FPGA cost for a reconfigurable fleet of ``volume``."""
        model = FpgaLifecycleModel(self.fpga_device, self.suite)
        per_chip = model.per_chip_embodied().total
        design = self.suite.design.project_kg(
            self.fpga_device.area_mm2
            * self.fpga_device.node.gate_density_mgates_per_mm2,
            self.suite.fpga_team,
        )
        return design + per_chip * float(volume)

    def _fpga_marginal(self, app: Application) -> float:
        """Deployment-only cost of running ``app`` on the shared FPGA."""
        op = self.suite.operation.per_chip_year_kg(self.fpga_device.peak_power_w)
        operational = app.lifetime_years * float(app.volume) * op
        appdev = self.suite.appdev.per_application_kg(
            self.suite.fpga_effort, app.volume
        )
        return operational + appdev

    def _subset_cost(
        self, apps: list[Application], fpga_subset: frozenset[int]
    ) -> float:
        total = 0.0
        if fpga_subset:
            fleet_volume = max(apps[i].volume for i in fpga_subset)
            total += self._fpga_shared_embodied(fleet_volume)
            total += sum(self._fpga_marginal(apps[i]) for i in fpga_subset)
        for i, app in enumerate(apps):
            if i not in fpga_subset:
                total += self._asic_cost(app)
        return total

    # -- optimisation -----------------------------------------------------

    def plan(self, apps: list[Application]) -> FleetPlan:
        """Optimal (or greedy, for large portfolios) assignment."""
        if not apps:
            raise ParameterError("apps must not be empty")
        names = [app.name for app in apps]
        if len(set(names)) != len(names):
            raise ParameterError("application names must be unique")

        all_indices = frozenset(range(len(apps)))
        all_fpga = self._subset_cost(apps, all_indices)
        all_asic = self._subset_cost(apps, frozenset())

        if len(apps) <= EXACT_LIMIT:
            best_subset, best_cost = self._plan_exact(apps)
            exact = True
        else:
            best_subset, best_cost = self._plan_greedy(apps)
            exact = False

        fpga_names = tuple(apps[i].name for i in sorted(best_subset))
        asic_names = tuple(
            apps[i].name for i in range(len(apps)) if i not in best_subset
        )
        return FleetPlan(
            fpga_apps=fpga_names,
            asic_apps=asic_names,
            total_kg=best_cost,
            all_fpga_kg=all_fpga,
            all_asic_kg=all_asic,
            exact=exact,
        )

    def _plan_exact(
        self, apps: list[Application]
    ) -> tuple[frozenset[int], float]:
        indices = range(len(apps))
        best_subset: frozenset[int] = frozenset()
        best_cost = self._subset_cost(apps, best_subset)
        for size in range(1, len(apps) + 1):
            for combo in combinations(indices, size):
                subset = frozenset(combo)
                cost = self._subset_cost(apps, subset)
                if cost < best_cost:
                    best_cost = cost
                    best_subset = subset
        return best_subset, best_cost

    def _plan_greedy(
        self, apps: list[Application]
    ) -> tuple[frozenset[int], float]:
        """Best-prefix heuristic.

        Single-move hill climbing stalls at all-ASIC because the first
        application moved to the FPGA carries the whole shared embodied
        cost.  Instead, sort applications by their per-app saving
        (ASIC cost minus FPGA deployment cost) and evaluate every prefix
        of that order; the shared cost is re-priced per prefix.  When all
        volumes are equal the shared cost is constant in the subset, so
        the optimal subset *is* a prefix and this is exact.
        """
        order = sorted(
            range(len(apps)),
            key=lambda i: self._asic_cost(apps[i]) - self._fpga_marginal(apps[i]),
            reverse=True,
        )
        best_subset: frozenset[int] = frozenset()
        best_cost = self._subset_cost(apps, best_subset)
        for size in range(1, len(apps) + 1):
            subset = frozenset(order[:size])
            cost = self._subset_cost(apps, subset)
            if cost < best_cost:
                best_cost = cost
                best_subset = subset
        return best_subset, best_cost
