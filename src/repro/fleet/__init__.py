"""Fleet planning (extension): per-application platform assignment."""

from repro.fleet.planner import Application, FleetPlan, FleetPlanner

__all__ = ["Application", "FleetPlan", "FleetPlanner"]
