"""Fig. 6 — CFP vs application volume (F2A crossovers at scale).

Setup per the paper: N_vol varies 1e3-1e6 (we extend to 1e7 to bracket
the published DNN crossover at 2 M), N_app = 5, T_i = 2 years.

Published behaviour: Crypto — FPGA always greener; ImgProc — F2A at
~300 K units; DNN — F2A at ~2 M units.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.crossover import Crossover, find_crossovers
from repro.analysis.sweep import SweepResult, sweep
from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.devices.catalog import DOMAIN_NAMES
from repro.experiments.base import ExperimentReport
from repro.reporting.chart import line_chart

NUM_APPS = 5
APP_LIFETIME_YEARS = 2.0
VOLUME_VALUES = tuple(int(v) for v in np.geomspace(1.0e3, 1.0e7, 33))

#: Published F2A volume per domain (units); None = no crossover.
PAPER_F2A = {"crypto": None, "imgproc": 3.0e5, "dnn": 2.0e6}


def domain_sweep(
    domain: str, suite: ModelSuite | None = None
) -> tuple[SweepResult, list[Crossover]]:
    """Sweep N_vol for one domain; return the sweep and its crossovers."""
    comparator = PlatformComparator.for_domain(domain, suite)
    base = Scenario(
        num_apps=NUM_APPS, app_lifetime_years=APP_LIFETIME_YEARS, volume=1
    )
    result = sweep(comparator, base, "volume", list(VOLUME_VALUES))
    crossings = find_crossovers(result.values, result.fpga_totals, result.asic_totals)
    return result, crossings


def run(suite: ModelSuite | None = None) -> ExperimentReport:
    """Reproduce Fig. 6 for all three domains."""
    report = ExperimentReport(
        experiment_id="fig6",
        title="CFP vs application volume (N_app = 5, T_i = 2 y)",
        description=(
            "At low volume the ASIC's five recurring design projects "
            "dominate; at high volume the FPGA's larger per-chip embodied "
            "and operational footprint takes over."
        ),
    )
    rows = []
    for domain in DOMAIN_NAMES:
        result, crossings = domain_sweep(domain, suite)
        report.add_table(f"{domain}_sweep", result.rows())
        log_values = tuple(float(np.log10(v)) for v in result.values)
        report.add_chart(
            line_chart(
                log_values,
                {"FPGA": result.fpga_totals, "ASIC": result.asic_totals},
                title=f"{domain}: total CFP (kg) vs log10(N_vol)",
                y_label="log10 units",
            )
        )
        f2a = next((c for c in crossings if c.kind == "F2A"), None)
        rows.append(
            {
                "domain": domain,
                "paper_f2a_units": PAPER_F2A[domain] or "none",
                "measured_f2a_units": f"{f2a.x:.3g}" if f2a else "none",
            }
        )
    report.add_table("crossovers", rows)
    report.add_note(
        "paper: FPGAs stay sustainable below ~300K (ImgProc) / ~2M (DNN) "
        "units; Crypto FPGAs win at any volume"
    )
    return report
