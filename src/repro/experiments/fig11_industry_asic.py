"""Fig. 11 — CFP components of the two industry ASICs (Table 3).

Setup per the paper: six-year application span, 1 M units, no
reprogramming (the ASIC serves only the application it was built for).
Published observation: operational CFP dominates, then manufacturing and
design.
"""

from __future__ import annotations

from repro.analysis.breakdown import breakdown_table
from repro.core.asic_model import AsicLifecycleModel
from repro.core.lifecycle import CarbonFootprint
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.devices.catalog import INDUSTRY_ASICS
from repro.experiments.base import ExperimentReport
from repro.reporting.chart import bar_chart

#: One six-year application, 1 M units (paper Section 4.3).
SCENARIO = Scenario(num_apps=1, app_lifetime_years=6.0, volume=1_000_000)


def assess_all(suite: ModelSuite | None = None) -> dict[str, CarbonFootprint]:
    """Footprint of each industry ASIC under the Section 4.3 scenario."""
    suite = suite if suite is not None else ModelSuite.default()
    return {
        key: AsicLifecycleModel(device, suite).assess(SCENARIO).footprint
        for key, device in INDUSTRY_ASICS.items()
    }


def run(suite: ModelSuite | None = None) -> ExperimentReport:
    """Reproduce Fig. 11."""
    report = ExperimentReport(
        experiment_id="fig11",
        title="CFP components: IndustryASIC1 / IndustryASIC2",
        description=(
            "Each ASIC (Antoum-like at 12 nm, TPU-like at 7 nm) serves one "
            "application for six years at 1 M units."
        ),
    )
    for key, footprint in assess_all(suite).items():
        rows = [
            {"component": name, "kg": kg, "share": share}
            for name, kg, share in breakdown_table(footprint)
        ]
        report.add_table(key, rows)
        report.add_chart(
            bar_chart(
                [r["component"] for r in rows],
                [r["kg"] for r in rows],
                title=f"{key} CFP components (kg CO2e)",
            )
        )
        report.add_note(
            f"{key}: operational share {footprint.operational / footprint.total:.0%}; "
            "manufacturing > design within embodied: "
            f"{footprint.manufacturing > footprint.design} "
            "(paper: op > mfg > design)"
        )
    return report
