"""Extension experiment: mixed-fleet platform assignment.

Applies :mod:`repro.fleet` to a realistic heterogeneous portfolio —
short-lived experimental workloads next to a long-lived, high-volume
flagship — and shows that the carbon-optimal fleet is mixed, beating
both of the paper's uniform deployments.
"""

from __future__ import annotations

from repro.core.suite import ModelSuite
from repro.experiments.base import ExperimentReport
from repro.fleet.planner import Application, FleetPlanner

#: A DNN portfolio: rapid experimental churn plus one stable flagship.
PORTFOLIO = (
    Application("flagship-recsys", lifetime_years=6.0, volume=2_000_000),
    Application("vision-gen1", lifetime_years=1.0, volume=400_000),
    Application("vision-gen2", lifetime_years=1.0, volume=400_000),
    Application("speech-pilot", lifetime_years=0.5, volume=150_000),
    Application("llm-serving-trial", lifetime_years=1.5, volume=250_000),
    Application("edge-preproc", lifetime_years=2.0, volume=300_000),
)


def plan_portfolio(suite: ModelSuite | None = None):
    """Optimal assignment of the showcase portfolio (DNN domain)."""
    planner = FleetPlanner.for_domain("dnn", suite)
    return planner.plan(list(PORTFOLIO))


def run(suite: ModelSuite | None = None) -> ExperimentReport:
    """Plan the portfolio and report the assignment and savings."""
    plan = plan_portfolio(suite)
    report = ExperimentReport(
        experiment_id="ext_fleet",
        title="Extension: carbon-optimal mixed FPGA/ASIC fleet",
        description=(
            "Six DNN applications with heterogeneous lifetimes/volumes "
            "assigned per-application to a shared reconfigurable FPGA "
            "fleet or dedicated ASICs, minimising portfolio CFP "
            f"({'exact' if plan.exact else 'greedy'} optimisation)."
        ),
    )
    assignment = plan.assignment()
    report.add_table(
        "portfolio",
        [
            {
                "application": app.name,
                "lifetime_y": app.lifetime_years,
                "volume": app.volume,
                "platform": assignment[app.name],
            }
            for app in PORTFOLIO
        ],
    )
    report.add_table(
        "plan_summary",
        [
            {
                "mixed_total_kg": plan.total_kg,
                "all_fpga_kg": plan.all_fpga_kg,
                "all_asic_kg": plan.all_asic_kg,
                "savings_vs_best_uniform_kg": plan.savings_vs_best_uniform_kg,
            }
        ],
    )
    report.add_note(
        f"mixed fleet saves {plan.savings_vs_best_uniform_kg:,.0f} kg CO2e "
        "versus the better uniform deployment"
    )
    return report
