"""Experiment registry: id -> module, for the CLI and the bench harness."""

from __future__ import annotations

from collections.abc import Callable
from pathlib import Path

from repro.core.suite import ModelSuite
from repro.errors import UnknownEntityError
from repro.experiments import (
    calibration,
    ext_fleet,
    ext_gpu,
    ext_uncertainty,
    fig2_motivation,
    fig4_num_apps,
    fig5_lifetime,
    fig6_volume,
    fig7_breakdown,
    fig8_heatmaps,
    fig9_chip_lifetime,
    fig10_industry_fpga,
    fig11_industry_asic,
    tables,
)
from repro.experiments.base import ExperimentReport

_Runner = Callable[..., ExperimentReport]

_REGISTRY: dict[str, tuple[_Runner, str]] = {
    "fig2": (fig2_motivation.run, "motivation: 1 vs 10 applications (DNN)"),
    "fig4": (fig4_num_apps.run, "CFP vs number of applications"),
    "fig5": (fig5_lifetime.run, "CFP vs application lifetime"),
    "fig6": (fig6_volume.run, "CFP vs application volume"),
    "fig7": (fig7_breakdown.run, "DNN component breakdowns"),
    "fig8": (fig8_heatmaps.run, "pairwise-sweep ratio heatmaps (DNN)"),
    "fig9": (fig9_chip_lifetime.run, "horizon beyond FPGA chip lifetime"),
    "fig10": (fig10_industry_fpga.run, "industry FPGA component breakdown"),
    "fig11": (fig11_industry_asic.run, "industry ASIC component breakdown"),
    "tables": (tables.run, "Tables 1-3 inputs and testcases"),
    "calibration": (calibration.run, "paper-vs-measured claim verification"),
    # Extensions beyond the paper's evaluation.
    "ext_gpu": (ext_gpu.run, "extension: GPU vs FPGA vs ASIC"),
    "ext_fleet": (ext_fleet.run, "extension: carbon-optimal mixed fleet"),
    "ext_uncertainty": (ext_uncertainty.run, "extension: Table 1 uncertainty study"),
}

#: All experiment ids, paper order.
EXPERIMENT_IDS: tuple[str, ...] = tuple(_REGISTRY)


def list_experiments() -> list[tuple[str, str]]:
    """(id, description) pairs for every registered experiment."""
    return [(exp_id, desc) for exp_id, (_, desc) in _REGISTRY.items()]


def run_experiment(
    experiment_id: str,
    suite: ModelSuite | None = None,
    csv_dir: "str | Path | None" = None,
) -> ExperimentReport:
    """Run one experiment by id, optionally exporting its tables as CSV."""
    key = experiment_id.strip().lower()
    if key not in _REGISTRY:
        raise UnknownEntityError("experiment", experiment_id, list(_REGISTRY))
    runner, _ = _REGISTRY[key]
    report = runner(suite)
    if csv_dir is not None:
        report.export_csv(csv_dir)
    return report
