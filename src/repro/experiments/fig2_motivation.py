"""Fig. 2 — motivation: ASIC vs FPGA CFP for one vs ten applications.

The paper's Fig. 2 shows the DNN-domain FPGA starting ~2-3x worse than
the ASIC for a single application, then ending ~25% better once reused
across ten applications (embodied CFP amortised by reconfigurability).
"""

from __future__ import annotations

from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.experiments.base import ExperimentReport
from repro.reporting.chart import bar_chart

#: Domain and per-application parameters used by the figure.
DOMAIN = "dnn"
APP_LIFETIME_YEARS = 2.0
VOLUME = 1_000_000


def run(suite: ModelSuite | None = None) -> ExperimentReport:
    """Reproduce Fig. 2 with the calibrated defaults."""
    comparator = PlatformComparator.for_domain(DOMAIN, suite)
    report = ExperimentReport(
        experiment_id="fig2",
        title="CFP of ASIC vs FPGA computing, 1 vs 10 applications (DNN)",
        description=(
            f"Domain={DOMAIN}, T_i={APP_LIFETIME_YEARS} y, N_vol={VOLUME:,} "
            "units per application. The FPGA pays its embodied CFP once; "
            "the ASIC re-pays it (and the design project) per application."
        ),
    )

    rows = []
    values = []
    labels = []
    for num_apps in (1, 10):
        scenario = Scenario(
            num_apps=num_apps,
            app_lifetime_years=APP_LIFETIME_YEARS,
            volume=VOLUME,
        )
        comparison = comparator.compare(scenario)
        for platform in ("fpga", "asic"):
            footprint = getattr(comparison, platform).footprint
            rows.append(
                {"num_apps": num_apps, "platform": platform.upper(),
                 **footprint.as_dict()}
            )
            labels.append(f"{platform.upper()} ({num_apps} app)")
            values.append(footprint.total)
        if num_apps == 1:
            single_ratio = comparison.ratio
        else:
            multi_ratio = comparison.ratio

    report.add_table("totals", rows)
    report.add_chart(bar_chart(labels, values, title="Total CFP (kg CO2e)"))
    report.add_note(
        f"single application: FPGA:ASIC ratio = {single_ratio:.2f} "
        "(paper: FPGA initially higher)"
    )
    report.add_note(
        f"ten applications: FPGA:ASIC ratio = {multi_ratio:.2f}, i.e. FPGA "
        f"{100.0 * (1.0 - multi_ratio):.0f}% lower (paper: ~25% lower)"
    )
    return report


def ratios(suite: ModelSuite | None = None) -> tuple[float, float]:
    """(single-app ratio, ten-app ratio) — used by tests and benches."""
    comparator = PlatformComparator.for_domain(DOMAIN, suite)
    one = comparator.ratio(
        Scenario(num_apps=1, app_lifetime_years=APP_LIFETIME_YEARS, volume=VOLUME)
    )
    ten = comparator.ratio(
        Scenario(num_apps=10, app_lifetime_years=APP_LIFETIME_YEARS, volume=VOLUME)
    )
    return one, ten
