"""Fig. 8 — pairwise-sweep heatmaps of the FPGA:ASIC CFP ratio (DNN).

Three panels, each holding one variable at its baseline and sweeping the
other two: (a) N_vol constant, (b) N_app constant, (c) T_i constant.
Cells below ratio 1 are the FPGA-sustainable region; the ratio = 1
contour is the paper's pink-dashed boundary.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.heatmap import HeatmapResult, pairwise_heatmap_batch
from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.engine import EvaluationEngine, resolve_engine
from repro.experiments.base import ExperimentReport

DOMAIN = "dnn"
BASELINE = Scenario(num_apps=5, app_lifetime_years=2.0, volume=1_000_000)

NUM_APPS_VALUES = tuple(range(1, 11))
LIFETIME_VALUES = tuple(float(t) for t in np.round(np.arange(0.5, 3.01, 0.25), 10))
VOLUME_VALUES = tuple(int(v) for v in np.geomspace(1.0e4, 1.0e7, 10))

#: Panel definitions: (held axis, x axis, x values, y axis, y values).
PANELS = (
    ("volume", "num_apps", NUM_APPS_VALUES, "lifetime", LIFETIME_VALUES),
    ("num_apps", "volume", VOLUME_VALUES, "lifetime", LIFETIME_VALUES),
    ("lifetime", "volume", VOLUME_VALUES, "num_apps", NUM_APPS_VALUES),
)


def panel(
    held_axis: str,
    suite: ModelSuite | None = None,
    engine: EvaluationEngine | None = None,
) -> HeatmapResult:
    """Compute the heatmap for the panel that holds ``held_axis`` fixed.

    Each panel is one vector-kernel batch (array-land end to end): the
    grid's scenario axes become NumPy columns and no per-cell objects
    are materialised, so dense panels cost milliseconds instead of a
    grid's worth of lifecycle walks.  Panels share the engine's sharded
    result store, so the baseline row/column of cells the three Fig. 8
    panels have in common is computed once and gathered thereafter —
    and survives to later runs when the engine has a ``cache_file``.
    """
    for held, x_axis, x_values, y_axis, y_values in PANELS:
        if held == held_axis:
            comparator = PlatformComparator.for_domain(DOMAIN, suite)
            return pairwise_heatmap_batch(
                comparator, BASELINE, x_axis, x_values, y_axis, y_values,
                engine=engine,
            )
    raise KeyError(f"no Fig. 8 panel holds {held_axis!r} fixed")


def _ascii_heatmap(result: HeatmapResult) -> str:
    """Coarse ASCII rendering: '.' = FPGA greener, '#' = ASIC greener."""
    lines = [f"rows: {result.y_axis}; cols: {result.x_axis}  (. = FPGA wins)"]
    for i, y in enumerate(result.y_values):
        cells = "".join(
            "." if result.ratios[i, j] < 1.0 else "#"
            for j in range(len(result.x_values))
        )
        lines.append(f"{y:>12.4g} |{cells}|")
    return "\n".join(lines)


def run(suite: ModelSuite | None = None) -> ExperimentReport:
    """Reproduce all three Fig. 8 panels (one vector batch per panel)."""
    engine = resolve_engine(None)
    report = ExperimentReport(
        experiment_id="fig8",
        title="Pairwise sweeps of FPGA:ASIC CFP ratio (DNN)",
        description=(
            "Each panel fixes one of N_vol / N_app / T_i at its baseline "
            "(1e6 / 5 / 2 y) and sweeps the other two; ratio < 1 marks the "
            "FPGA-sustainable region."
        ),
    )
    for held, *_ in PANELS:
        result = panel(held, suite, engine=engine)
        report.add_table(f"const_{held}", result.rows())
        report.add_chart(
            f"panel const {held}:\n" + _ascii_heatmap(result)
        )
    # Paper's highlighted observation: high volume or few apps defeat FPGAs.
    # (Recomputing the panel is one kernel call — cheaper than it reads.)
    const_t = panel("lifetime", suite, engine=engine)
    high_vol_col = len(const_t.x_values) - 1
    few_apps_row = 0
    report.add_note(
        "at the highest volume the FPGA needs many applications: ratio at "
        f"(N_vol={const_t.x_values[high_vol_col]:.3g}, N_app=1) = "
        f"{float(const_t.ratios[few_apps_row, high_vol_col]):.2f}"
    )
    return report
