"""Fig. 5 — CFP vs application lifetime (F2A crossover for DNN).

Setup per the paper: T_i varies 0.2-2.5 years, N_app = 5, N_vol = 1e6.

Published behaviour: Crypto — FPGA always greener; ImgProc — ASIC always
greener; DNN — FPGA greener for short lifetimes with an F2A point near
1.6 years.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.crossover import Crossover, find_crossovers
from repro.analysis.sweep import SweepResult, sweep
from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.devices.catalog import DOMAIN_NAMES
from repro.experiments.base import ExperimentReport
from repro.reporting.chart import line_chart

NUM_APPS = 5
VOLUME = 1_000_000
LIFETIME_VALUES = tuple(float(t) for t in np.round(np.arange(0.2, 2.51, 0.1), 10))

#: Published qualitative outcome per domain.
PAPER_OUTCOME = {
    "crypto": "FPGA always",
    "imgproc": "ASIC always",
    "dnn": "F2A near 1.6 y",
}


def domain_sweep(
    domain: str, suite: ModelSuite | None = None
) -> tuple[SweepResult, list[Crossover]]:
    """Sweep T_i for one domain; return the sweep and its crossovers."""
    comparator = PlatformComparator.for_domain(domain, suite)
    base = Scenario(num_apps=NUM_APPS, app_lifetime_years=1.0, volume=VOLUME)
    result = sweep(comparator, base, "lifetime", list(LIFETIME_VALUES))
    crossings = find_crossovers(result.values, result.fpga_totals, result.asic_totals)
    return result, crossings


def run(suite: ModelSuite | None = None) -> ExperimentReport:
    """Reproduce Fig. 5 for all three domains."""
    report = ExperimentReport(
        experiment_id="fig5",
        title="CFP vs application lifetime (N_app = 5, N_vol = 1e6)",
        description=(
            "Longer application lifetimes let the FPGA's higher operational "
            "power accumulate; short lifetimes favour the FPGA's embodied "
            "reuse."
        ),
    )
    rows = []
    for domain in DOMAIN_NAMES:
        result, crossings = domain_sweep(domain, suite)
        report.add_table(f"{domain}_sweep", result.rows())
        report.add_chart(
            line_chart(
                result.values,
                {"FPGA": result.fpga_totals, "ASIC": result.asic_totals},
                title=f"{domain}: total CFP (kg) vs T_i (years)",
                y_label="T_i (y)",
            )
        )
        f2a = next((c for c in crossings if c.kind == "F2A"), None)
        if f2a is not None:
            outcome = f"F2A at {f2a.x:.2f} y"
        elif result.ratios[0] < 1.0:
            outcome = "FPGA always"
        else:
            outcome = "ASIC always"
        rows.append(
            {"domain": domain, "paper": PAPER_OUTCOME[domain], "measured": outcome}
        )
    report.add_table("outcomes", rows)
    return report
