"""Shared experiment-report structure.

Every experiment module exposes ``run(suite=None) -> ExperimentReport``;
the report carries named tables (rows of dicts), pre-rendered ASCII
charts, and free-form notes (the paper's claims vs. what we measured).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.reporting.csvout import write_csv
from repro.reporting.table import format_table

Rows = Sequence[Mapping[str, object]]


@dataclass
class ExperimentReport:
    """Structured output of one paper experiment.

    Attributes:
        experiment_id: Registry key (``"fig4"`` etc.).
        title: Human-readable title (the paper artifact).
        description: One-paragraph summary of the setup.
        tables: Named row-sets (also the CSV export units).
        charts: Pre-rendered ASCII charts.
        notes: Headline observations, paper-vs-measured remarks.
    """

    experiment_id: str
    title: str
    description: str
    tables: dict[str, Rows] = field(default_factory=dict)
    charts: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_table(self, name: str, rows: Rows) -> None:
        """Attach a named table."""
        self.tables[name] = rows

    def add_chart(self, chart: str) -> None:
        """Attach a pre-rendered ASCII chart."""
        self.charts.append(chart)

    def add_note(self, note: str) -> None:
        """Attach an observation line."""
        self.notes.append(note)

    def render(self) -> str:
        """Render the whole report as plain text."""
        parts = [
            f"== {self.experiment_id}: {self.title} ==",
            self.description,
        ]
        for name, rows in self.tables.items():
            parts.append("")
            parts.append(format_table(list(rows), title=name))
        for chart in self.charts:
            parts.append("")
            parts.append(chart)
        if self.notes:
            parts.append("")
            parts.append("Notes:")
            parts.extend(f"  - {note}" for note in self.notes)
        return "\n".join(parts)

    def export_csv(self, directory: "str | Path") -> list[Path]:
        """Write every table as ``<id>_<table>.csv`` under ``directory``."""
        out = []
        for name, rows in self.tables.items():
            filename = f"{self.experiment_id}_{name}.csv"
            out.append(write_csv(Path(directory) / filename, list(rows)))
        return out
