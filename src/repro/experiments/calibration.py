"""Calibration harness: paper-vs-measured for every headline claim.

Collects the quantitative claims of the paper's Section 4 into one table
(the source of EXPERIMENTS.md) and checks each against the calibrated
model.  A claim "holds" when the measured value matches the published
one in kind (same winner / crossover exists) and lies within a factor-3
band — the paper itself stresses relative, not absolute, accuracy
(Section 5), and its own Fig. 5/Fig. 6 DNN claims are mutually
inconsistent at the shared baseline (see DESIGN.md Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.experiments import (
    fig2_motivation,
    fig4_num_apps,
    fig5_lifetime,
    fig6_volume,
    fig10_industry_fpga,
    fig11_industry_asic,
)
from repro.experiments.base import ExperimentReport

#: Acceptance band for quantitative crossovers (multiplicative).
TOLERANCE_FACTOR = 3.0


@dataclass(frozen=True)
class Claim:
    """One checked paper claim."""

    artifact: str
    claim: str
    paper_value: str
    measured_value: str
    holds: bool

    def as_row(self) -> dict[str, object]:
        """Row form for reporting."""
        return {
            "artifact": self.artifact,
            "claim": self.claim,
            "paper": self.paper_value,
            "measured": self.measured_value,
            "holds": self.holds,
        }


def _within(measured: float, paper: float, factor: float = TOLERANCE_FACTOR) -> bool:
    return paper / factor <= measured <= paper * factor


def evaluate_claims(suite: ModelSuite | None = None) -> list[Claim]:
    """Evaluate every headline claim; returns one :class:`Claim` each."""
    claims: list[Claim] = []

    # Fig. 2: FPGA ~25% lower over ten applications.
    one, ten = fig2_motivation.ratios(suite)
    claims.append(
        Claim(
            "fig2",
            "FPGA beats ASIC by ~25% over 10 DNN applications",
            "ratio 0.75",
            f"ratio {ten:.2f}",
            ten < 1.0 and _within(1.0 - ten, 0.25),
        )
    )
    claims.append(
        Claim(
            "fig2",
            "FPGA initially worse for a single application",
            "ratio > 1",
            f"ratio {one:.2f}",
            one > 1.0,
        )
    )

    # Fig. 4 crossovers.
    for domain, paper_apps in fig4_num_apps.PAPER_A2F.items():
        _, crossings = fig4_num_apps.domain_sweep(domain, suite)
        a2f = next((c for c in crossings if c.kind == "A2F"), None)
        if domain == "crypto":
            holds = a2f is not None and a2f.x <= 2.0
        else:
            holds = a2f is not None and _within(a2f.x, paper_apps)
        claims.append(
            Claim(
                "fig4",
                f"{domain}: A2F crossover in applications",
                f"{paper_apps:g} apps",
                f"{a2f.x:.2f} apps" if a2f else "none",
                holds,
            )
        )

    # Fig. 5 outcomes.
    for domain, paper_outcome in fig5_lifetime.PAPER_OUTCOME.items():
        result, crossings = fig5_lifetime.domain_sweep(domain, suite)
        f2a = next((c for c in crossings if c.kind == "F2A"), None)
        if domain == "dnn":
            holds = f2a is not None and _within(f2a.x, 1.6)
            measured = f"F2A at {f2a.x:.2f} y" if f2a else "none"
        elif domain == "crypto":
            holds = all(r < 1.0 for r in result.ratios)
            measured = "FPGA always" if holds else "not always"
        else:
            holds = all(r > 1.0 for r in result.ratios)
            measured = "ASIC always" if holds else "not always"
        claims.append(
            Claim("fig5", f"{domain}: lifetime-sweep outcome", paper_outcome,
                  measured, holds)
        )

    # Fig. 6 volume crossovers.
    for domain, paper_units in fig6_volume.PAPER_F2A.items():
        result, crossings = fig6_volume.domain_sweep(domain, suite)
        f2a = next((c for c in crossings if c.kind == "F2A"), None)
        if paper_units is None:
            holds = all(r < 1.0 for r in result.ratios)
            claims.append(
                Claim("fig6", f"{domain}: FPGA sustainable at any volume",
                      "no F2A", "no F2A" if holds else "F2A found", holds)
            )
        else:
            holds = f2a is not None and _within(f2a.x, paper_units)
            claims.append(
                Claim(
                    "fig6",
                    f"{domain}: F2A crossover in units",
                    f"{paper_units:.3g}",
                    f"{f2a.x:.3g}" if f2a else "none",
                    holds,
                )
            )

    # Figs. 10/11 industry breakdown structure.
    for artifact, footprints in (
        ("fig10", fig10_industry_fpga.assess_all(suite)),
        ("fig11", fig11_industry_asic.assess_all(suite)),
    ):
        for key, fp in footprints.items():
            structure_ok = (
                fp.operational > fp.manufacturing > fp.design
                and abs(fp.eol) < 0.05 * fp.total
                and fp.appdev < 0.02 * fp.total
            )
            claims.append(
                Claim(
                    artifact,
                    f"{key}: op > mfg > design; EOL and app-dev tiny",
                    "ordering holds",
                    "ordering holds" if structure_ok else "ordering differs",
                    structure_ok,
                )
            )

    # Abstract scenario (iii): key headline thresholds.
    comparator = PlatformComparator.for_domain("dnn", suite)
    short_life = comparator.ratio(
        Scenario(num_apps=5, app_lifetime_years=1.0, volume=1_000_000)
    )
    claims.append(
        Claim(
            "abstract",
            "DNN FPGA greener for short application lifetimes (1 y)",
            "ratio < 1",
            f"ratio {short_life:.2f}",
            short_life < 1.0,
        )
    )
    many_apps = comparator.ratio(
        Scenario(num_apps=8, app_lifetime_years=2.0, volume=1_000_000)
    )
    claims.append(
        Claim(
            "abstract",
            "DNN FPGA greener when used in over ~6 applications",
            "ratio < 1",
            f"ratio {many_apps:.2f}",
            many_apps < 1.0,
        )
    )
    return claims


def run(suite: ModelSuite | None = None) -> ExperimentReport:
    """Evaluate and render the full claim table."""
    claims = evaluate_claims(suite)
    report = ExperimentReport(
        experiment_id="calibration",
        title="Paper-vs-measured claim verification",
        description=(
            "Every quantitative claim of Section 4 evaluated against the "
            f"calibrated model (acceptance band: factor {TOLERANCE_FACTOR:g} "
            "on crossover locations, exact on winners/orderings)."
        ),
    )
    report.add_table("claims", [c.as_row() for c in claims])
    n_hold = sum(c.holds for c in claims)
    report.add_note(f"{n_hold}/{len(claims)} claims hold")
    return report
