"""Paper experiments: one module per figure/table of Section 4.

Use :func:`repro.experiments.registry.run_experiment` (or the
``greenfpga run <id>`` CLI) to execute any of them; each returns an
:class:`repro.experiments.base.ExperimentReport` with tables, ASCII
charts and the headline observations.
"""

from repro.experiments.base import ExperimentReport
from repro.experiments.registry import EXPERIMENT_IDS, list_experiments, run_experiment

__all__ = ["EXPERIMENT_IDS", "ExperimentReport", "list_experiments", "run_experiment"]
