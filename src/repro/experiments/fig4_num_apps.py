"""Fig. 4 — CFP vs number of applications (A2F crossovers per domain).

Setup per the paper: N_app varies 1-8 (extended past 8 for ImgProc, whose
crossover lies beyond the plot), T_i = 2 years, N_vol = 1e6 units.

Published crossovers: Crypto after the 1st application, DNN after 6,
ImgProc at ~12 (requires extending the axis).
"""

from __future__ import annotations

from repro.analysis.crossover import Crossover, find_crossovers
from repro.analysis.sweep import SweepResult, sweep
from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.devices.catalog import DOMAIN_NAMES
from repro.experiments.base import ExperimentReport
from repro.reporting.chart import line_chart

APP_LIFETIME_YEARS = 2.0
VOLUME = 1_000_000
#: Paper plots 1-8; we extend to 16 to capture the ImgProc crossover.
NUM_APPS_VALUES = tuple(range(1, 17))

#: Published A2F crossover per domain (applications).
PAPER_A2F = {"crypto": 1.0, "dnn": 6.0, "imgproc": 12.0}


def domain_sweep(
    domain: str, suite: ModelSuite | None = None
) -> tuple[SweepResult, list[Crossover]]:
    """Sweep N_app for one domain; return the sweep and its crossovers."""
    comparator = PlatformComparator.for_domain(domain, suite)
    base = Scenario(
        num_apps=1, app_lifetime_years=APP_LIFETIME_YEARS, volume=VOLUME
    )
    result = sweep(comparator, base, "num_apps", list(NUM_APPS_VALUES))
    crossings = find_crossovers(result.values, result.fpga_totals, result.asic_totals)
    return result, crossings


def run(suite: ModelSuite | None = None) -> ExperimentReport:
    """Reproduce Fig. 4 for all three domains."""
    report = ExperimentReport(
        experiment_id="fig4",
        title="CFP vs N_app (T_i = 2 y, N_vol = 1e6)",
        description=(
            "Each application change forces a new ASIC project and chips; "
            "the FPGA is reconfigured instead.  The A2F point is where the "
            "FPGA's total CFP drops below the ASIC's."
        ),
    )
    crossover_rows = []
    for domain in DOMAIN_NAMES:
        result, crossings = domain_sweep(domain, suite)
        report.add_table(f"{domain}_sweep", result.rows())
        report.add_chart(
            line_chart(
                result.values,
                {"FPGA": result.fpga_totals, "ASIC": result.asic_totals},
                title=f"{domain}: total CFP (kg) vs N_app",
                y_label="N_app",
            )
        )
        a2f = next((c for c in crossings if c.kind == "A2F"), None)
        measured = a2f.x if a2f is not None else float("nan")
        crossover_rows.append(
            {
                "domain": domain,
                "paper_a2f_apps": PAPER_A2F[domain],
                "measured_a2f_apps": measured,
                "crossovers": ", ".join(f"{c.kind}@{c.x:.2f}" for c in crossings)
                or "none",
            }
        )
    report.add_table("crossovers", crossover_rows)
    report.add_note(
        "paper: Crypto crosses after app 1, DNN after 6, ImgProc needs ~12 "
        "(beyond the 8-app axis)"
    )
    return report
