"""Fig. 7 — CFP component breakdown for the DNN domain.

Reproduces the three panels: components vs (a) N_app, (b) T_i, (c) N_vol
around the baseline N_app = 5, T_i = 2 y, N_vol = 1e6, separating
embodied (EC) from operational (OC) carbon per the paper's discussion.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.breakdown import breakdown_from_sweep
from repro.analysis.sweep import sweep
from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.experiments.base import ExperimentReport

DOMAIN = "dnn"
BASELINE = Scenario(num_apps=5, app_lifetime_years=2.0, volume=1_000_000)

#: Panel definitions: (axis, values).
PANELS = (
    ("num_apps", tuple(range(1, 9))),
    ("lifetime", tuple(float(t) for t in np.round(np.arange(0.5, 3.01, 0.5), 10))),
    ("volume", tuple(int(v) for v in np.geomspace(1.0e3, 1.0e6, 7))),
)


def panel_breakdowns(
    axis: str,
    values: tuple[float, ...],
    suite: ModelSuite | None = None,
) -> dict[str, list[dict[str, float]]]:
    """Per-platform stacked component rows for one panel."""
    comparator = PlatformComparator.for_domain(DOMAIN, suite)
    result = sweep(comparator, BASELINE, axis, list(values))
    return {
        platform: breakdown_from_sweep(result, platform).stacked_rows()
        for platform in ("fpga", "asic")
    }


def run(suite: ModelSuite | None = None) -> ExperimentReport:
    """Reproduce all three Fig. 7 panels."""
    report = ExperimentReport(
        experiment_id="fig7",
        title="DNN CFP components vs N_app / T_i / N_vol",
        description=(
            "Stacked component view (design, manufacturing, packaging, EOL, "
            "app-dev, operational) for both platforms around the baseline "
            "N_app=5, T_i=2 y, N_vol=1e6."
        ),
    )
    for axis, values in PANELS:
        rows_by_platform = panel_breakdowns(axis, values, suite)
        for platform, rows in rows_by_platform.items():
            report.add_table(f"{axis}_{platform}", rows)

    # Headline observations from the paper, checked numerically.
    rows_na = panel_breakdowns("num_apps", (1, 8), suite)
    fpga_ec = [r["embodied"] for r in rows_na["fpga"]]
    asic_ec = [r["embodied"] for r in rows_na["asic"]]
    report.add_note(
        "FPGA embodied CFP is flat in N_app "
        f"({fpga_ec[0]:.3g} -> {fpga_ec[-1]:.3g} kg) while ASIC embodied "
        f"grows per application ({asic_ec[0]:.3g} -> {asic_ec[-1]:.3g} kg)"
    )
    rows_v = panel_breakdowns("volume", (1_000, 1_000_000), suite)
    low_vol = rows_v["asic"][0]
    report.add_note(
        "at low volume embodied dominates the ASIC total "
        f"({low_vol['embodied'] / low_vol['total']:.0%} at 1K units)"
    )
    return report
