"""Fig. 9 — evaluation horizon beyond the FPGA chip lifetime.

Setup per the paper: application lifetime 1 year, FPGA chip lifetime 15
years, study horizon swept past 15 and 30 years.  FPGA chips wear out and
must be repurchased, producing step jumps in cumulative CFP at the
15-year marks; ASICs are already repurchased per application, so their
curve shows no extra jumps.
"""

from __future__ import annotations

from repro.analysis.crossover import find_crossovers
from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.devices.catalog import DOMAIN_NAMES
from repro.experiments.base import ExperimentReport
from repro.reporting.chart import line_chart

APP_LIFETIME_YEARS = 1.0
VOLUME = 1_000_000
MAX_YEARS = 40


def domain_series(
    domain: str, suite: ModelSuite | None = None
) -> list[dict[str, float]]:
    """Cumulative CFP vs years of operation (1 app/year) for one domain."""
    comparator = PlatformComparator.for_domain(domain, suite)
    rows = []
    for years in range(1, MAX_YEARS + 1):
        scenario = Scenario(
            num_apps=years,
            app_lifetime_years=APP_LIFETIME_YEARS,
            volume=VOLUME,
            enforce_chip_lifetime=True,
        )
        comparison = comparator.compare(scenario)
        rows.append(
            {
                "years": float(years),
                "fpga_total_kg": comparison.fpga.footprint.total,
                "asic_total_kg": comparison.asic.footprint.total,
                "fpga_generations": float(comparison.fpga.generations),
                "ratio": comparison.ratio,
            }
        )
    return rows


def jump_years(rows: list[dict[str, float]]) -> list[int]:
    """Years where the FPGA repurchases a chip generation (CFP jumps)."""
    jumps = []
    for prev, curr in zip(rows, rows[1:]):
        if curr["fpga_generations"] > prev["fpga_generations"]:
            jumps.append(int(curr["years"]))
    return jumps


def run(suite: ModelSuite | None = None) -> ExperimentReport:
    """Reproduce Fig. 9 for all three domains."""
    report = ExperimentReport(
        experiment_id="fig9",
        title="CFP with 15-year FPGA chip lifetime, 1-year applications",
        description=(
            "The study horizon extends past the FPGA's 15-year silicon "
            "lifetime; each repurchase adds a step of embodied CFP to the "
            "FPGA curve only."
        ),
    )
    for domain in DOMAIN_NAMES:
        rows = domain_series(domain, suite)
        report.add_table(f"{domain}_series", rows)
        report.add_chart(
            line_chart(
                [r["years"] for r in rows],
                {
                    "FPGA": [r["fpga_total_kg"] for r in rows],
                    "ASIC": [r["asic_total_kg"] for r in rows],
                },
                title=f"{domain}: cumulative CFP (kg) vs years",
                y_label="years",
            )
        )
        jumps = jump_years(rows)
        crossings = find_crossovers(
            [r["years"] for r in rows],
            [r["fpga_total_kg"] for r in rows],
            [r["asic_total_kg"] for r in rows],
        )
        report.add_note(
            f"{domain}: FPGA repurchase jumps at years {jumps}; "
            f"crossovers: {', '.join(f'{c.kind}@{c.x:.1f}' for c in crossings) or 'none'}"
        )
    return report
