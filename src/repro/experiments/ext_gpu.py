"""Extension experiment: three-way GPU / FPGA / ASIC comparison.

The paper's introduction rules GPUs out qualitatively ("high-power and
less flexibility").  This experiment quantifies that: the commodity GPU
shares the FPGA's reuse advantage (embodied paid once) but its higher
iso-performance power makes its operational CFP dominate, so it only
wins at very low volumes where its amortised design CFP matters.
"""

from __future__ import annotations

from repro.core.comparison import PlatformComparator
from repro.core.gpu_model import GpuLifecycleModel
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.devices.catalog import DOMAIN_NAMES, gpu_device_for
from repro.experiments.base import ExperimentReport
from repro.reporting.chart import bar_chart

BASELINE = Scenario(num_apps=5, app_lifetime_years=2.0, volume=1_000_000)


def three_way_totals(
    domain: str, scenario: Scenario | None = None, suite: ModelSuite | None = None
) -> dict[str, float]:
    """Total CFP for GPU/FPGA/ASIC in one domain."""
    scenario = scenario if scenario is not None else BASELINE
    suite = suite if suite is not None else ModelSuite.default()
    comparator = PlatformComparator.for_domain(domain, suite)
    comparison = comparator.compare(scenario)
    gpu = GpuLifecycleModel(gpu_device_for(domain), suite).assess(scenario)
    return {
        "gpu": gpu.footprint.total,
        "fpga": comparison.fpga.footprint.total,
        "asic": comparison.asic.footprint.total,
    }


def run(suite: ModelSuite | None = None) -> ExperimentReport:
    """Run the three-way comparison across all domains."""
    report = ExperimentReport(
        experiment_id="ext_gpu",
        title="Extension: GPU vs FPGA vs ASIC at iso-performance",
        description=(
            "Adds the commodity GPU (software-reprogrammable, market-"
            "amortised design, highest power) to the paper's two-way "
            f"comparison.  Baseline: N_app={BASELINE.num_apps}, "
            f"T_i={BASELINE.lifetimes[0]} y, N_vol={BASELINE.volume:,}."
        ),
    )
    rows = []
    for domain in DOMAIN_NAMES:
        totals = three_way_totals(domain, suite=suite)
        winner = min(totals, key=totals.get)
        rows.append({"domain": domain, **totals, "winner": winner})
        report.add_chart(
            bar_chart(
                list(totals),
                list(totals.values()),
                title=f"{domain}: total CFP (kg CO2e)",
            )
        )
    report.add_table("three_way", rows)
    report.add_note(
        "GPUs inherit the FPGA's reuse advantage but their iso-performance "
        "power keeps them the least sustainable platform at volume — the "
        "quantitative form of the paper's qualitative exclusion"
    )
    return report
