"""Extension experiment: uncertainty and sensitivity over Table 1 ranges.

The paper's Section 5 discusses validation limits qualitatively; this
experiment quantifies them.  Every Table 1-style knob is sampled over
its published range (Monte Carlo) and swept one-at-a-time (tornado),
reporting the distribution of the DNN FPGA:ASIC ratio and which
assumptions can flip the verdict.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.montecarlo import ParameterDistribution, monte_carlo_batch
from repro.analysis.sensitivity import tornado
from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.design.model import DesignModel
from repro.engine import resolve_engine
from repro.engine.vector import params as pcols
from repro.engine.vector.params import design_cols, eol_cols, mfg_cols
from repro.eol.model import EolModel
from repro.experiments.base import ExperimentReport
from repro.manufacturing.act import ManufacturingModel
from repro.operation.energy import OperatingProfile
from repro.operation.model import OperationModel
from repro.units import GRAMS_PER_KG

BASELINE = Scenario(num_apps=5, app_lifetime_years=2.0, volume=1_000_000)
N_SAMPLES = 300


def _with_suite(comparator, **overrides):
    return dataclasses.replace(
        comparator, suite=comparator.suite.with_overrides(**overrides)
    )


def _set_use_intensity(comparator, value):
    return _with_suite(
        comparator,
        operation=OperationModel(
            energy_source=value, profile=comparator.suite.operation.profile
        ),
    )


def _set_duty(comparator, value):
    operation = comparator.suite.operation
    return _with_suite(
        comparator,
        operation=OperationModel(
            energy_source=operation.energy_source,
            profile=OperatingProfile(duty_cycle=value),
        ),
    )


def _set_rho(comparator, value):
    return _with_suite(
        comparator, manufacturing=ManufacturingModel(recycled_fraction=value)
    )


def _set_delta(comparator, value):
    return _with_suite(comparator, eol=EolModel(recycled_fraction=value))


def _set_design_intensity(comparator, value):
    return _with_suite(comparator, design=DesignModel(energy_source=value))


# Columnar twins of the apply callbacks above: each writes exactly the
# parameter columns its object twin perturbs (the object callbacks
# rebuild whole sub-models, so defaulted sibling knobs are re-pinned to
# the rebuilt model's defaults, keeping the two paths draw-identical).


def _use_intensity_cols(params, values):
    # Out of place on purpose: ``values`` doubles as the recorded draw
    # in the materialized path, so the unit conversion must not mutate
    # it.
    params.set_col(pcols.OP_CI, np.divide(values, GRAMS_PER_KG))


def _duty_cols(params, values):
    profile = OperatingProfile()  # _set_duty resets idle/PUE to defaults
    params.set_col(pcols.OP_DUTY, values)
    params.set_col(pcols.OP_IDLE, profile.idle_fraction_of_peak)
    params.set_col(pcols.OP_PUE, profile.pue)


def _rho_cols(params, values):
    defaults = mfg_cols(ManufacturingModel())  # rho's siblings reset too
    for index, value in zip(
        (pcols.MFG_FAB_CI, pcols.MFG_ABATE, pcols.MFG_EDGE, pcols.MFG_SCRIBE,
         pcols.MFG_RHO, pcols.MFG_YIELD_CODE, pcols.MFG_CHARGE),
        defaults,
    ):
        params.set_col(index, value)
    params.set_col(pcols.MFG_RHO, values)


def _delta_cols(params, values):
    defaults = eol_cols(EolModel())
    for index, value in zip(
        (pcols.EOL_DELTA, pcols.EOL_DISCARD, pcols.EOL_CREDIT,
         pcols.EOL_TRANSPORT),
        defaults,
    ):
        params.set_col(index, value)
    params.set_col(pcols.EOL_DELTA, values)


def _design_intensity_cols(params, values):
    defaults = design_cols(DesignModel(energy_source=1.0))
    params.set_col(pcols.DES_ANNUAL_KWH, defaults[0])
    params.set_col(pcols.DES_CI, np.divide(values, GRAMS_PER_KG))
    params.set_col(pcols.DES_AVG_GATES, defaults[2])
    params.set_col(pcols.DES_BETA, defaults[3])


def distributions() -> list[ParameterDistribution]:
    """Table 1-range distributions for the uncertainty study.

    Every knob carries both the object ``apply`` callback and its
    columnar ``apply_column`` twin, so :func:`monte_carlo_batch` runs
    fully columnar — draws are sampled straight into parameter columns
    and no per-draw comparator objects exist.
    """
    return [
        ParameterDistribution("use_intensity_g_per_kwh", 30.0, 700.0,
                              _set_use_intensity, kind="loguniform",
                              apply_column=_use_intensity_cols),
        ParameterDistribution("duty_cycle", 0.05, 0.95, _set_duty,
                              apply_column=_duty_cols),
        ParameterDistribution("recycled_material_rho", 0.0, 1.0, _set_rho,
                              apply_column=_rho_cols),
        ParameterDistribution("eol_recycled_delta", 0.0, 1.0, _set_delta,
                              apply_column=_delta_cols),
        ParameterDistribution("design_intensity_g_per_kwh", 30.0, 700.0,
                              _set_design_intensity, kind="loguniform",
                              apply_column=_design_intensity_cols),
    ]


def run(suite: ModelSuite | None = None) -> ExperimentReport:
    """Run the Monte-Carlo + tornado study for the DNN domain."""
    comparator = PlatformComparator.for_domain("dnn", suite)
    dists = distributions()

    # The Monte-Carlo study runs through the vector kernel's
    # multi-comparator path (every draw is one model-parameter row); the
    # small tornado sweep shares the default engine's result cache.
    engine = resolve_engine(None)
    mc = monte_carlo_batch(
        comparator, BASELINE, dists, n_samples=N_SAMPLES, engine=engine
    )
    sens = tornado(comparator, BASELINE, dists, engine=engine)

    report = ExperimentReport(
        experiment_id="ext_uncertainty",
        title="Extension: uncertainty over Table 1 parameter ranges",
        description=(
            f"{N_SAMPLES} Monte-Carlo draws and a one-at-a-time tornado "
            "sweep over the published input ranges, DNN domain at the "
            "paper baseline (N_app=5, T_i=2 y, N_vol=1e6)."
        ),
    )
    report.add_table("monte_carlo_summary", [mc.summary()])
    report.add_table(
        "ratio_quantiles",
        [{"quantile": q, "ratio": v} for q, v in mc.quantiles().items()],
    )
    report.add_table("tornado", sens.rows())
    flippers = [e.name for e in sens.entries if e.flips_winner]
    report.add_note(
        f"P(FPGA greener) = {mc.fpga_win_probability:.1%} under Table 1 "
        "uncertainty"
    )
    report.add_note(
        "knobs that alone can flip the winner: " + (", ".join(flippers) or "none")
    )
    return report
