"""Extension experiment: uncertainty and sensitivity over Table 1 ranges.

The paper's Section 5 discusses validation limits qualitatively; this
experiment quantifies them.  Every Table 1-style knob is sampled over
its published range (Monte Carlo) and swept one-at-a-time (tornado),
reporting the distribution of the DNN FPGA:ASIC ratio and which
assumptions can flip the verdict.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.montecarlo import ParameterDistribution, monte_carlo_batch
from repro.analysis.sensitivity import tornado
from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.design.model import DesignModel
from repro.engine import resolve_engine
from repro.eol.model import EolModel
from repro.experiments.base import ExperimentReport
from repro.manufacturing.act import ManufacturingModel
from repro.operation.energy import OperatingProfile
from repro.operation.model import OperationModel

BASELINE = Scenario(num_apps=5, app_lifetime_years=2.0, volume=1_000_000)
N_SAMPLES = 300


def _with_suite(comparator, **overrides):
    return dataclasses.replace(
        comparator, suite=comparator.suite.with_overrides(**overrides)
    )


def _set_use_intensity(comparator, value):
    return _with_suite(
        comparator,
        operation=OperationModel(
            energy_source=value, profile=comparator.suite.operation.profile
        ),
    )


def _set_duty(comparator, value):
    operation = comparator.suite.operation
    return _with_suite(
        comparator,
        operation=OperationModel(
            energy_source=operation.energy_source,
            profile=OperatingProfile(duty_cycle=value),
        ),
    )


def _set_rho(comparator, value):
    return _with_suite(
        comparator, manufacturing=ManufacturingModel(recycled_fraction=value)
    )


def _set_delta(comparator, value):
    return _with_suite(comparator, eol=EolModel(recycled_fraction=value))


def _set_design_intensity(comparator, value):
    return _with_suite(comparator, design=DesignModel(energy_source=value))


def distributions() -> list[ParameterDistribution]:
    """Table 1-range distributions for the uncertainty study."""
    return [
        ParameterDistribution("use_intensity_g_per_kwh", 30.0, 700.0,
                              _set_use_intensity, kind="loguniform"),
        ParameterDistribution("duty_cycle", 0.05, 0.95, _set_duty),
        ParameterDistribution("recycled_material_rho", 0.0, 1.0, _set_rho),
        ParameterDistribution("eol_recycled_delta", 0.0, 1.0, _set_delta),
        ParameterDistribution("design_intensity_g_per_kwh", 30.0, 700.0,
                              _set_design_intensity, kind="loguniform"),
    ]


def run(suite: ModelSuite | None = None) -> ExperimentReport:
    """Run the Monte-Carlo + tornado study for the DNN domain."""
    comparator = PlatformComparator.for_domain("dnn", suite)
    dists = distributions()

    # The Monte-Carlo study runs through the vector kernel's
    # multi-comparator path (every draw is one model-parameter row); the
    # small tornado sweep shares the default engine's result cache.
    engine = resolve_engine(None)
    mc = monte_carlo_batch(
        comparator, BASELINE, dists, n_samples=N_SAMPLES, engine=engine
    )
    sens = tornado(comparator, BASELINE, dists, engine=engine)

    report = ExperimentReport(
        experiment_id="ext_uncertainty",
        title="Extension: uncertainty over Table 1 parameter ranges",
        description=(
            f"{N_SAMPLES} Monte-Carlo draws and a one-at-a-time tornado "
            "sweep over the published input ranges, DNN domain at the "
            "paper baseline (N_app=5, T_i=2 y, N_vol=1e6)."
        ),
    )
    report.add_table("monte_carlo_summary", [mc.summary()])
    report.add_table(
        "ratio_quantiles",
        [{"quantile": q, "ratio": v} for q, v in mc.quantiles().items()],
    )
    report.add_table("tornado", sens.rows())
    flippers = [e.name for e in sens.entries if e.flips_winner]
    report.add_note(
        f"P(FPGA greener) = {mc.fpga_win_probability:.1%} under Table 1 "
        "uncertainty"
    )
    report.add_note(
        "knobs that alone can flip the winner: " + (", ".join(flippers) or "none")
    )
    return report
