"""Fig. 10 — CFP components of the two industry FPGAs (Table 3).

Setup per the paper: each FPGA runs six years covering three applications
(reprogrammed three times), 1 M units.  Published observations: app-dev
CFP is negligible, operational CFP dominates, manufacturing and design
follow, design is a substantial minority of embodied CFP, and EOL is tiny.
"""

from __future__ import annotations

from repro.analysis.breakdown import breakdown_table
from repro.core.fpga_model import FpgaLifecycleModel
from repro.core.lifecycle import CarbonFootprint
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.devices.catalog import INDUSTRY_FPGAS
from repro.experiments.base import ExperimentReport
from repro.reporting.chart import bar_chart

#: Six years, three applications, 1 M units (paper Section 4.3).
SCENARIO = Scenario(num_apps=3, app_lifetime_years=2.0, volume=1_000_000)


def assess_all(suite: ModelSuite | None = None) -> dict[str, CarbonFootprint]:
    """Footprint of each industry FPGA under the Section 4.3 scenario."""
    suite = suite if suite is not None else ModelSuite.default()
    return {
        key: FpgaLifecycleModel(device, suite).assess(SCENARIO).footprint
        for key, device in INDUSTRY_FPGAS.items()
    }


def run(suite: ModelSuite | None = None) -> ExperimentReport:
    """Reproduce Fig. 10."""
    report = ExperimentReport(
        experiment_id="fig10",
        title="CFP components: IndustryFPGA1 / IndustryFPGA2",
        description=(
            "Each FPGA (Agilex 7-like at 14 nm, Stratix 10-like at 10 nm) "
            "runs six years across three applications at 1 M units."
        ),
    )
    for key, footprint in assess_all(suite).items():
        rows = [
            {"component": name, "kg": kg, "share": share}
            for name, kg, share in breakdown_table(footprint)
        ]
        report.add_table(key, rows)
        report.add_chart(
            bar_chart(
                [r["component"] for r in rows],
                [r["kg"] for r in rows],
                title=f"{key} CFP components (kg CO2e)",
            )
        )
        report.add_note(
            f"{key}: operational share {footprint.operational / footprint.total:.0%}, "
            f"app-dev share {footprint.appdev / footprint.total:.2%}, "
            f"design {footprint.design / footprint.embodied:.0%} of embodied "
            "(paper: op dominates; app-dev minimal; design ~15% of embodied; "
            "EOL tiny)"
        )
    return report
