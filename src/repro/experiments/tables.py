"""Tables 1-3 — input parameters, iso-performance ratios, industry parts.

These experiments verify and render the paper's three tables: the
parameter ranges actually enforced by :mod:`repro.config`, the Table 2
domain ratios encoded in the catalog, and the Table 3 industry testcases.
"""

from __future__ import annotations

from repro.config import TABLE1_RANGES, default_parameters
from repro.core.suite import ModelSuite
from repro.devices.catalog import DOMAIN_NAMES, INDUSTRY_ASICS, INDUSTRY_FPGAS, get_domain
from repro.experiments.base import ExperimentReport


def table1_rows() -> list[dict[str, object]]:
    """The published Table 1 ranges with the calibrated default values."""
    params = default_parameters()
    defaults = {
        "recycled_material_fraction": params.recycled_material_fraction,
        "eol_recycled_fraction": params.eol_recycled_fraction,
        "recycle_credit_mtco2e_per_ton": 20.0,  # mixed_electronics entry
        "discard_mtco2e_per_ton": 1.10,
        "frontend_months": params.frontend_months,
        "backend_months": params.backend_months,
        "design_energy_gwh": 7.3,  # design_house_b report
        "design_carbon_intensity_g_per_kwh": 235.2,  # blended default
        "design_house_employees": 26_000.0,
        "project_years": params.project_years,
    }
    return [
        {
            "parameter": name,
            "low": rng.low,
            "high": rng.high,
            "unit": rng.unit,
            "source": rng.source,
            "default": defaults[name],
            "in_range": rng.contains(defaults[name]),
        }
        for name, rng in TABLE1_RANGES.items()
    ]


def table2_rows() -> list[dict[str, object]]:
    """Table 2 iso-performance ratios as encoded in the catalog."""
    rows = []
    for name in DOMAIN_NAMES:
        domain = get_domain(name)
        rows.append(
            {
                "domain": name,
                "area_ratio": domain.area_ratio,
                "power_ratio": domain.power_ratio,
                "asic_area_mm2": domain.asic_area_mm2,
                "asic_power_w": domain.asic_power_w,
                "fpga_area_mm2": domain.fpga_device().area_mm2,
                "fpga_power_w": domain.fpga_device().peak_power_w,
                "node": domain.node_name,
            }
        )
    return rows


def table3_rows() -> list[dict[str, object]]:
    """Table 3 industry testcases as encoded in the catalog."""
    rows = []
    for key, device in {**INDUSTRY_ASICS, **INDUSTRY_FPGAS}.items():
        rows.append(
            {
                "testcase": device.name,
                "kind": "FPGA" if key in INDUSTRY_FPGAS else "ASIC",
                "area_mm2": device.area_mm2,
                "power_w": device.peak_power_w,
                "node": device.node_name,
            }
        )
    return rows


def run(suite: ModelSuite | None = None) -> ExperimentReport:
    """Render all three tables (suite unused; kept for a uniform API)."""
    report = ExperimentReport(
        experiment_id="tables",
        title="Tables 1-3: inputs, iso-performance ratios, industry parts",
        description=(
            "Table 1 ranges are enforced by repro.config; Table 2 and "
            "Table 3 values are encoded verbatim in repro.devices.catalog."
        ),
    )
    report.add_table("table1_parameters", table1_rows())
    report.add_table("table2_domains", table2_rows())
    report.add_table("table3_industry", table3_rows())
    report.add_note("all calibrated defaults fall inside the published ranges")
    return report
