"""Fault-tolerant out-of-process serving tier.

This subpackage takes evaluation out of the single interpreter: a
:class:`~repro.engine.serve.server.BatchServer` speaks a compact
length-prefixed batch protocol (scenario columns in, ratio/winner/total
columns out) over asyncio sockets, in front of N supervised worker
processes that share warmth through the ``.npz``-persisted
:class:`~repro.engine.store.ShardedResultStore`.

Robustness is the design center, not a bolt-on — every failure mode has
a defined, tested behaviour:

* a **dead worker** is detected, restarted with exponential backoff,
  and its in-flight batch is replayed on a sibling (evaluation is pure
  and the store deduplicates by digest, so replay never changes a bit);
* a **slow/stuck worker** is bounded by the request deadline: workers
  cancel cooperatively between row chunks, the supervisor kills past
  deadline-plus-grace, and the client gets a typed deadline frame;
* an **overload burst** meets a bounded admission queue: the newest
  request is shed with a client-visible ``RETRY_AFTER`` hint, requests
  already past their deadline are shed before dispatch, and both
  policies expose counters;
* a **lost worker pool** degrades to in-process evaluation — slower,
  never wrong;
* a **corrupt cache shard** is discarded at load (typed
  :class:`~repro.errors.StoreCorruptError`, logged) and the worker
  starts cold.

:mod:`~repro.engine.serve.faults` provides a deterministic, seeded
``FaultPlan`` that injects each of these failures on cue; the chaos
suite (``tests/test_serve_chaos.py``) drives it and asserts bit-identical
results and bounded latency under every fault.
"""

from repro.engine.serve.client import ServeClient, ServeResult
from repro.engine.serve.faults import FaultPlan
from repro.engine.serve.protocol import (
    BackpressureError,
    DeadlineError,
    ProtocolError,
    RemoteError,
)
from repro.engine.serve.server import BatchServer, ServerStats
from repro.engine.serve.supervisor import (
    SupervisorStats,
    WorkerDiedError,
    WorkerSupervisor,
    WorkerUnavailableError,
)

__all__ = [
    "BackpressureError",
    "BatchServer",
    "DeadlineError",
    "FaultPlan",
    "ProtocolError",
    "RemoteError",
    "ServeClient",
    "ServeResult",
    "ServerStats",
    "SupervisorStats",
    "WorkerDiedError",
    "WorkerSupervisor",
    "WorkerUnavailableError",
]
