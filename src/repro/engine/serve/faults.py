"""Deterministic fault injection for the serving tier.

A :class:`FaultPlan` is an immutable, picklable description of *which*
failures to inject *when*: it travels to the worker processes inside
their :class:`~repro.engine.serve.worker.WorkerSpec` and to the server's
response path, so a chaos test (or the latency benchmark's one-kill
phase) replays the exact same fault schedule on every run.  All
randomness is seeded — ``corrupt_file`` with the same seed flips the
same bytes — because a chaos suite is only trustworthy if its chaos is
reproducible.

The injectable faults mirror the real failure modes the tier defends
against:

* **worker kill** — worker K calls ``os._exit`` just before processing
  its Nth batch (indistinguishable from an OOM kill / SIGKILL to the
  supervisor);
* **response delay** — worker K sleeps before answering each batch
  (a slow or stuck worker, for deadline/cancellation tests);
* **frame truncation** — the server drops the connection after sending
  a prefix of every Nth response frame (a mid-write network fault);
* **cache corruption** — seeded byte damage to a persisted ``.npz``
  store shard (tests the :class:`~repro.errors.StoreCorruptError`
  start-cold path end to end).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np


@dataclass(frozen=True)
class FaultPlan:
    """Immutable, seeded schedule of injected failures.

    Attributes:
        seed: RNG seed for the randomized injections (byte corruption).
        kill_worker_at: ``(worker_index, batch_number)`` pairs — worker
            ``index`` exits hard just before processing its
            ``batch_number``-th batch (0-based, counted per process
            incarnation).
        kill_every_generation: By default only a worker's first
            incarnation is killed, so a restart recovers; ``True`` kills
            every incarnation — a permanent crash loop for that slot,
            for backoff/degradation tests.
        delay_worker_s: Seconds each affected worker sleeps before
            answering a batch (0 disables).
        delay_workers: Which worker indices the delay applies to;
            empty means *all* workers when ``delay_worker_s`` is set.
        truncate_response_every: The server truncates (and drops the
            connection after) every Nth response frame, 1-based;
            0 disables.
    """

    seed: int = 0
    kill_worker_at: tuple[tuple[int, int], ...] = ()
    kill_every_generation: bool = False
    delay_worker_s: float = 0.0
    delay_workers: tuple[int, ...] = field(default_factory=tuple)
    truncate_response_every: int = 0

    def kill_batch(self, worker_index: int, generation: int) -> "int | None":
        """The batch number at which this incarnation must die, if any."""
        if generation > 0 and not self.kill_every_generation:
            return None
        for index, batch_number in self.kill_worker_at:
            if index == worker_index:
                return batch_number
        return None

    def delay_for(self, worker_index: int) -> float:
        """Pre-response sleep for this worker (0 when unaffected)."""
        if self.delay_worker_s <= 0.0:
            return 0.0
        if self.delay_workers and worker_index not in self.delay_workers:
            return 0.0
        return self.delay_worker_s

    def truncates_frame(self, frame_number: int) -> bool:
        """Whether the server truncates this (1-based) response frame."""
        every = self.truncate_response_every
        return every > 0 and frame_number % every == 0

    def kill_delays(
        self, count: int, lo_s: float = 0.05, hi_s: float = 0.5
    ) -> tuple[float, ...]:
        """``count`` seeded SIGKILL delays in ``[lo_s, hi_s)`` seconds.

        For kill-and-resume chaos tests that murder an external process
        at randomized-but-reproducible points in its run: the same plan
        yields the same kill schedule, so a crash found once replays.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if hi_s < lo_s:
            raise ValueError(
                f"hi_s must be >= lo_s, got hi {hi_s} < lo {lo_s}"
            )
        rng = np.random.default_rng(self.seed)
        return tuple(float(d) for d in rng.uniform(lo_s, hi_s, size=count))

    def corrupt_file(self, path: "str | Path", flips: int = 64) -> int:
        """Flip ``flips`` seeded-random bytes of ``path`` in place.

        Returns the number of bytes damaged.  Offsets and XOR masks come
        from ``default_rng(seed)``, so the same plan produces the same
        damage — a corruption test that only fails sometimes is worse
        than none.
        """
        path = Path(path)
        raw = bytearray(path.read_bytes())
        if not raw:
            return 0
        rng = np.random.default_rng(self.seed)
        offsets = rng.integers(0, len(raw), size=min(flips, len(raw)))
        masks = rng.integers(1, 256, size=offsets.size)
        for offset, mask in zip(offsets, masks):
            raw[int(offset)] ^= int(mask)
        path.write_bytes(bytes(raw))
        return int(offsets.size)

    def truncate_file(self, path: "str | Path", keep_fraction: float = 0.5) -> int:
        """Truncate ``path`` to a fraction of its size; returns new size.

        The partial-write spelling of cache damage (power loss mid-save)
        as opposed to :meth:`corrupt_file`'s bit rot.
        """
        path = Path(path)
        raw = path.read_bytes()
        keep = int(len(raw) * keep_fraction)
        path.write_bytes(raw[:keep])
        return keep


def hard_exit(code: int = 13) -> None:
    """Die like a crash: no atexit, no cleanup, no finally blocks.

    ``os._exit`` from inside the worker is indistinguishable from an
    external SIGKILL to everything watching the process — which is the
    point: the supervisor must recover from the worst spelling of death.
    """
    os._exit(code)
