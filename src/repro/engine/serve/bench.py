"""Latency-percentile benchmark for the serving tier.

:func:`latency_benchmark` measures end-to-end request latency (client
send to decoded response) through a real :class:`BatchServer` socket —
protocol encode, admission queue, supervised worker round-trip, gather,
response decode — under 8 and 64 simulated clients, each phase run both
fault-free and with one injected worker kill
(:class:`~repro.engine.serve.faults.FaultPlan`).

Two properties are asserted, not just measured:

* **bit-identity** — every response in every phase (including the
  one-kill phases, across the death, the replay, and the restart) must
  equal the locally computed reference columns exactly;
* **bounded tail** — p50/p99 land in ``BENCH_serving.json`` where
  ``scripts/bench_compare.py`` gates p99 regressions (>25% fails) and
  warns on p50 drift.

The store warmth is pre-seeded through the shared ``.npz`` cache file,
so workers serve digest-keyed gathers — the benchmark tracks serving
overhead and tail behaviour, not kernel throughput (BENCH_engine.json
owns that).
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path

import numpy as np

from repro.core.comparison import PlatformComparator
from repro.engine.engine import EvaluationEngine
from repro.engine.serve.client import ServeClient
from repro.engine.serve.faults import FaultPlan
from repro.engine.serve.server import BatchServer
from repro.engine.vector.columns import ScenarioBatch


def _request_batches(
    requests_per_client: int, cells_per_request: int
) -> list[ScenarioBatch]:
    """The per-request scenario batches (shared by every client).

    Every client sweeps the same ``requests_per_client`` lifetime rows
    of ``cells_per_request`` ``num_apps`` cells — concurrent clients
    genuinely contend for the same digests, like the throughput bench.
    """
    lifetimes = np.linspace(0.5, 3.0, requests_per_client)
    num_apps = np.arange(1, cells_per_request + 1, dtype=np.int64)
    return [
        ScenarioBatch.from_arrays(
            num_apps=num_apps,
            lifetime=float(lifetime),
            volume=1_000_000,
        )
        for lifetime in lifetimes
    ]


def _reference_columns(
    domain: str, batches: list[ScenarioBatch], cache_path: Path
) -> list[tuple]:
    """Ground-truth result columns per request; persists the warm store."""
    engine = EvaluationEngine(cache_size=262_144)
    comparator = PlatformComparator.for_domain(domain)
    reference = []
    for batch in batches:
        result = engine.evaluate_batch(comparator, batch)
        reference.append(
            (
                result.ratios.copy(),
                result.winners.copy(),
                result.fpga_totals.copy(),
                result.asic_totals.copy(),
            )
        )
    engine.save_cache(cache_path)
    engine.close()
    return reference


async def _drive_phase(
    host: str,
    port: int,
    clients: int,
    domain: str,
    batches: list[ScenarioBatch],
    reference: list[tuple],
    deadline_s: float,
) -> tuple[np.ndarray, float, int]:
    """All clients concurrently; returns (latencies_s, elapsed_s, mismatches)."""
    latencies: list[float] = []
    mismatches = 0

    async def one_client() -> None:
        nonlocal mismatches
        async with ServeClient(host, port) as client:
            for index, batch in enumerate(batches):
                begin = time.perf_counter()
                result = await client.evaluate(
                    domain, batch, deadline_s=deadline_s
                )
                latencies.append(time.perf_counter() - begin)
                ratios, winners, fpga, asic = reference[index]
                if not (
                    np.array_equal(result.ratios, ratios)
                    and np.array_equal(result.winners, winners)
                    and np.array_equal(result.fpga_totals, fpga)
                    and np.array_equal(result.asic_totals, asic)
                ):
                    mismatches += 1

    start = time.perf_counter()
    await asyncio.gather(*(one_client() for _ in range(clients)))
    return np.asarray(latencies), time.perf_counter() - start, mismatches


def latency_benchmark(
    *,
    client_counts: tuple[int, ...] = (8, 64),
    requests_per_client: int = 6,
    cells_per_request: int = 50,
    workers: int = 2,
    queue_limit: int = 256,
    deadline_s: float = 30.0,
    domain: str = "dnn",
    cache_file: "str | Path | None" = None,
    kill_at_batch: int = 4,
    repeats: int = 3,
) -> dict:
    """p50/p99 per client count, fault-free and with one worker kill.

    For each count in ``client_counts`` two phases run: ``fault_free``,
    and ``one_kill`` where a :class:`FaultPlan` hard-kills worker 0
    just before its ``kill_at_batch``-th batch — the supervisor replays
    the in-flight batch on a sibling and restarts the slot in the
    background.  Each phase runs ``repeats`` times on a *fresh* server
    (fresh fleet, same warm ``.npz``; the kill fires once per repeat)
    and the percentiles are computed over the pooled latencies — a
    p99 taken from one small run is just the max of that run, which no
    regression gate can hold steady.  Every response in every repeat is
    compared bit-for-bit to a locally computed reference; a mismatch
    anywhere fails the caller's gate via ``mismatches``.
    """
    own_cache = cache_file is None
    if own_cache:
        import tempfile

        handle = tempfile.NamedTemporaryFile(suffix=".npz", delete=False)
        handle.close()
        cache_file = handle.name
    cache_path = Path(cache_file)

    batches = _request_batches(requests_per_client, cells_per_request)
    reference = _reference_columns(domain, batches, cache_path)

    async def run_phase(clients: int, plan: "FaultPlan | None") -> dict:
        pooled: list[np.ndarray] = []
        elapsed_total = 0.0
        mismatches = deaths = replays = shed = 0
        for _repeat in range(max(1, repeats)):
            server = BatchServer(
                workers=workers,
                queue_limit=queue_limit,
                cache_file=str(cache_path),
                fault_plan=plan,
                preload_domains=(domain,),
            )
            async with server:
                # Untimed warmup: enough concurrent one-request clients
                # to touch every worker, so each builds its comparator
                # before the timed window — percentiles then measure
                # *serving*, not the first request's one-off model
                # construction.  (In the one-kill phase these count
                # toward worker 0's batch number, which is why the
                # default kill lands after them, inside the timed
                # window.)
                await _drive_phase(
                    server.host, server.port, max(1, workers * 2), domain,
                    batches[:1], reference[:1], deadline_s,
                )
                latencies, elapsed, bad = await _drive_phase(
                    server.host, server.port, clients, domain,
                    batches, reference, deadline_s,
                )
                stats = server.stats
                supervisor = server.supervisor.stats
                if plan is not None:
                    # The injected kill must actually have fired, and
                    # the slot must come back — otherwise this repeat
                    # silently measured the fault-free system.
                    assert supervisor.worker_deaths >= 1, (
                        "one-kill phase ran without a worker death"
                    )
                    await server.supervisor.wait_for_fleet(workers)
            pooled.append(latencies)
            elapsed_total += float(elapsed)
            mismatches += bad
            deaths += int(supervisor.worker_deaths)
            replays += int(stats.replays)
            shed += int(stats.shed_queue_full)
        all_latencies = np.concatenate(pooled)
        return {
            "requests": int(all_latencies.size),
            "mismatches": int(mismatches),
            "elapsed_s": round(elapsed_total, 4),
            "scenarios_per_s": round(
                all_latencies.size * cells_per_request / elapsed_total, 1
            ),
            "p50_ms": round(
                float(np.percentile(all_latencies, 50)) * 1e3, 3
            ),
            "p99_ms": round(
                float(np.percentile(all_latencies, 99)) * 1e3, 3
            ),
            "worker_deaths": int(deaths),
            "replays": int(replays),
            "shed_queue_full": int(shed),
        }

    async def run_all() -> dict:
        phases: dict[str, dict] = {}
        for clients in client_counts:
            kill_plan = FaultPlan(
                seed=7, kill_worker_at=((0, kill_at_batch),)
            )
            phases[f"clients_{clients}"] = {
                "fault_free": await run_phase(clients, None),
                "one_kill": await run_phase(clients, kill_plan),
            }
        total_mismatches = sum(
            entry["mismatches"]
            for modes in phases.values()
            for entry in modes.values()
        )
        return {
            "workers": workers,
            "repeats": max(1, repeats),
            "requests_per_client": requests_per_client,
            "cells_per_request": cells_per_request,
            "deadline_s": deadline_s,
            "mismatches": total_mismatches,
            "identical_under_kill": total_mismatches == 0,
            "phases": phases,
        }

    try:
        return asyncio.run(run_all())
    finally:
        if own_cache:
            cache_path.unlink(missing_ok=True)
