"""Asyncio client for the batch serving protocol.

:class:`ServeClient` speaks :mod:`~repro.engine.serve.protocol` against
a :class:`~repro.engine.serve.server.BatchServer` and absorbs the
transport-level chaos the server is allowed to inflict:

* ``RETRY_AFTER`` backpressure frames are honoured — the client backs
  off with full jitter over an exponentially growing ceiling seeded by
  the server's hint (so a herd of shed clients decorrelates instead of
  stampeding back in lockstep) and resends, up to ``max_attempts``;
* a truncated frame or dropped connection triggers reconnect-and-resend
  — evaluation is pure, so replaying a request is always safe;
* ``MSG_DEADLINE`` raises :class:`~repro.engine.serve.protocol.DeadlineError`
  and ``MSG_ERROR`` raises :class:`~repro.engine.serve.protocol.RemoteError`
  — server-side *decisions* are final, only transport faults retry.

One client instance serialises its requests over one connection (the
protocol allows pipelining; the client keeps the simple lockstep).  Run
many instances for many concurrent clients — they are cheap.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.scenario import Scenario
from repro.engine.serve import protocol
from repro.engine.serve.backoff import JitteredBackoff
from repro.engine.serve.protocol import (
    BackpressureError,
    DeadlineError,
    ProtocolError,
    RemoteError,
)
from repro.engine.vector.columns import ScenarioBatch

#: winners wire value 1 decodes to "asic", 0 to "fpga".
_WINNER_NAMES = np.array(["fpga", "asic"])


@dataclass(frozen=True)
class ServeResult:
    """Decoded result columns of one served batch."""

    ratios: np.ndarray
    winners: np.ndarray
    fpga_totals: np.ndarray
    asic_totals: np.ndarray

    @property
    def size(self) -> int:
        return int(self.ratios.shape[0])


class ServeClient:
    """Lockstep request/response client with retry and backoff.

    Args:
        host / port: Server address.
        max_attempts: Total send attempts per request across
            backpressure sheds and transport faults.
        connect_timeout_s: Bound on each (re)connect attempt.
        retry_backoff_cap_s: Ceiling on any single backpressure sleep
            (the exponential growth from the server's hint stops here).
        retry_jitter_seed: Seed for the jittered backoff RNG (tests pin
            it to assert the spread; production leaves OS entropy).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        max_attempts: int = 10,
        connect_timeout_s: float = 5.0,
        retry_backoff_cap_s: float = 2.0,
        retry_jitter_seed: "int | None" = None,
    ) -> None:
        self.host = host
        self.port = port
        self.max_attempts = max_attempts
        self.connect_timeout_s = connect_timeout_s
        self._backoff = JitteredBackoff(
            # base_s is a placeholder: each shed passes the server's
            # hint as the per-call base.
            base_s=0.05, cap_s=retry_backoff_cap_s, mode="full",
            seed=retry_jitter_seed,
        )
        self._reader: "asyncio.StreamReader | None" = None
        self._writer: "asyncio.StreamWriter | None" = None
        self._request_ids = 0
        #: Transport faults absorbed (reconnect-and-resend events).
        self.reconnects = 0
        #: ``RETRY_AFTER`` backpressure frames honoured.
        self.retries_after = 0

    async def connect(self) -> None:
        """Open (or reopen) the connection."""
        await self._disconnect()
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port),
            timeout=self.connect_timeout_s,
        )

    async def _disconnect(self) -> None:
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def aclose(self) -> None:
        """Close the connection (idempotent)."""
        await self._disconnect()

    async def __aenter__(self) -> "ServeClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    # -- the one verb ---------------------------------------------------

    async def evaluate(
        self,
        domain: str,
        scenarios: "ScenarioBatch | Sequence[Scenario]",
        *,
        deadline_s: "float | None" = None,
    ) -> ServeResult:
        """Evaluate one scenario batch on the server.

        Raises :class:`DeadlineError` when the server reports the
        deadline expired, :class:`RemoteError` on a server-side
        model/protocol error, :class:`BackpressureError` when
        ``max_attempts`` sheds/faults are exhausted.
        """
        batch = (
            scenarios
            if isinstance(scenarios, ScenarioBatch)
            else ScenarioBatch.from_scenarios(tuple(scenarios))
        )
        self._request_ids += 1
        request_id = self._request_ids
        deadline_ms = (
            0 if deadline_s is None else max(1, int(deadline_s * 1000))
        )
        frame_bytes = protocol.encode_request(
            request_id, domain, batch, deadline_ms=deadline_ms
        )
        shed_count = 0
        last_fault: "Exception | None" = None
        # Belt-and-braces liveness bound: the server answers expired
        # requests with a deadline frame, but a server that died outright
        # cannot — so a deadline-carrying request also times out locally
        # (with slack for the server's grace period) instead of hanging.
        attempt_timeout = None if deadline_s is None else deadline_s + 5.0
        for _attempt in range(self.max_attempts):
            try:
                frame = await asyncio.wait_for(
                    self._roundtrip(frame_bytes), timeout=attempt_timeout
                )
            except asyncio.TimeoutError as exc:
                await self._disconnect()
                raise DeadlineError(
                    f"request {request_id} got no reply within "
                    f"{attempt_timeout:.3f}s (server unreachable?)"
                ) from exc
            except (ProtocolError, ConnectionError, OSError) as exc:
                # Transport fault (truncated frame, reset, refused):
                # reconnect and replay — evaluation is pure.
                self.reconnects += 1
                last_fault = exc
                await self._disconnect()
                continue
            if frame.request_id != request_id:
                # A stale response from a previous incarnation of this
                # connection; resynchronise by reconnecting.
                self.reconnects += 1
                await self._disconnect()
                continue
            if frame.type == protocol.MSG_RESPONSE:
                ratios, winners_u8, fpga, asic = protocol.decode_response(
                    frame.payload
                )
                return ServeResult(
                    ratios=ratios,
                    winners=_WINNER_NAMES[winners_u8.astype(np.intp)],
                    fpga_totals=fpga,
                    asic_totals=asic,
                )
            if frame.type == protocol.MSG_RETRY_AFTER:
                self.retries_after += 1
                shed_count += 1
                hint = protocol.decode_retry_after(frame.payload)
                # Full jitter over an exponential ceiling grown from the
                # server's hint: shed clients spread back in instead of
                # all returning exactly hint*n seconds later.
                await asyncio.sleep(
                    self._backoff.delay(shed_count, base_s=max(hint, 1e-3))
                )
                continue
            if frame.type == protocol.MSG_DEADLINE:
                raise DeadlineError(
                    f"request {request_id} missed its deadline server-side"
                )
            if frame.type == protocol.MSG_ERROR:
                raise RemoteError(protocol.decode_error(frame.payload))
            raise ProtocolError(
                f"unexpected response frame type {frame.type}"
            )
        raise BackpressureError(
            f"request {request_id} still unserved after "
            f"{self.max_attempts} attempts "
            f"({shed_count} sheds, last fault: {last_fault!r})"
        )

    async def _roundtrip(self, frame_bytes: bytes) -> protocol.Frame:
        """Send one frame, read one frame (connecting lazily)."""
        if self._writer is None:
            await self.connect()
        assert self._writer is not None and self._reader is not None
        self._writer.write(frame_bytes)
        await self._writer.drain()
        frame = await protocol.read_frame(self._reader)
        if frame is None:
            raise ProtocolError("server closed the connection mid-request")
        return frame
