"""Jittered exponential backoff for retries and worker restarts.

A server restart disconnects every client at the same instant; a crash
loop kills every worker in the same few milliseconds.  Deterministic
exponential backoff then schedules all of their retries for the same
instant too — a synchronised stampede that re-overloads the very thing
that just came back.  The fix is jitter over an exponentially growing,
capped ceiling (AWS architecture blog, "Exponential Backoff and
Jitter"):

* **full jitter** — ``uniform(0, ceiling)`` — maximal spread, used for
  client-side backpressure retries where any individual delay is fine
  as long as the herd decorrelates;
* **equal jitter** — ``ceiling/2 + uniform(0, ceiling/2)`` — keeps an
  escalating *floor*, used for supervisor worker restarts where a
  crash-looping worker must not be respawned near-instantly just
  because the dice came up low.

Delays are drawn from a ``numpy`` Generator seeded at construction:
production callers pass ``seed=None``-free runtime entropy or leave the
OS default, tests pin a seed and assert the exact spread.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

_MODES = ("full", "equal")


class JitteredBackoff:
    """Capped exponential backoff with full or equal jitter.

    ``delay(attempt)`` draws one delay for the given 1-based attempt:
    the deterministic ceiling is ``min(cap_s, base_s * 2**(attempt-1))``
    and the jitter mode picks where under it the delay lands.  A
    different ``base_s`` may be supplied per call (e.g. a server's
    ``RETRY_AFTER`` hint) without re-seeding.
    """

    def __init__(
        self,
        base_s: float = 0.05,
        cap_s: float = 2.0,
        *,
        mode: str = "full",
        seed: "int | None" = None,
    ) -> None:
        if base_s <= 0.0:
            raise ParameterError(f"base_s must be > 0, got {base_s}")
        if cap_s < base_s:
            raise ParameterError(
                f"cap_s must be >= base_s, got cap {cap_s} < base {base_s}"
            )
        if mode not in _MODES:
            raise ParameterError(f"mode must be one of {_MODES}, got {mode!r}")
        self.base_s = float(base_s)
        self.cap_s = float(cap_s)
        self.mode = mode
        # A runtime-supplied seed (tests) or OS entropy (production);
        # never a hard-coded literal, so concurrent instances differ.
        self._rng = np.random.default_rng(seed)

    def ceiling(self, attempt: int, base_s: "float | None" = None) -> float:
        """The deterministic pre-jitter ceiling for ``attempt`` (1-based)."""
        if attempt < 1:
            raise ParameterError(f"attempt must be >= 1, got {attempt}")
        base = self.base_s if base_s is None else float(base_s)
        # min() before the power would still overflow for huge attempt
        # counts; clamp the exponent first (2**40 * any base > any cap).
        exponent = min(attempt - 1, 40)
        return float(min(self.cap_s, base * 2.0 ** exponent))

    def delay(self, attempt: int, base_s: "float | None" = None) -> float:
        """One jittered delay for ``attempt`` (1-based), in seconds."""
        ceiling = self.ceiling(attempt, base_s)
        if self.mode == "full":
            return float(self._rng.uniform(0.0, ceiling))
        half = ceiling / 2.0
        return float(half + self._rng.uniform(0.0, half))
