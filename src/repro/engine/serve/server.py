"""Asyncio batch server: admission control, dispatch, degradation.

:class:`BatchServer` accepts protocol frames
(:mod:`~repro.engine.serve.protocol`) on a TCP socket and runs each
request batch on the supervised worker pool
(:class:`~repro.engine.serve.supervisor.WorkerSupervisor`):

* **bounded admission queue** — at most ``queue_limit`` requests wait
  for dispatch; a request arriving at a full queue is shed immediately
  (*shed newest*: the queued requests have waited longest and are
  closest to their deadlines — restarting the wait line from the back
  would starve them) with a client-visible ``RETRY_AFTER`` frame;
* **shed-over-deadline** — a queued request whose deadline expires
  before dispatch is answered with a deadline frame instead of burning
  a worker on an answer nobody is waiting for;
* **replay on worker death** — a batch whose worker dies is replayed on
  a sibling worker (bounded by ``max_replays``); evaluation is pure and
  store-deduplicated, so replays are bit-identical and never
  double-compute warm cells;
* **graceful degradation** — when no worker is live (crash loop, or a
  zero-worker configuration), batches are evaluated in-process on a
  thread executor: slower, never wrong, and the supervisor keeps
  restoring the fleet in the background.

Every policy decision increments a counter in :class:`ServerStats`, so
tests (and operators) assert on *behaviour*, not log scraping.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.engine.engine import EvaluationEngine
from repro.engine.serve import protocol
from repro.engine.serve.faults import FaultPlan
from repro.engine.serve.supervisor import (
    WorkerDiedError,
    WorkerStuckError,
    WorkerSupervisor,
    WorkerUnavailableError,
)
from repro.engine.serve.worker import evaluate_job
from repro.engine.vector.columns import ScenarioBatch
from repro.errors import ParameterError, ServeError


@dataclass
class ServerStats:
    """Admission / dispatch / failure counters (monotonic)."""

    requests_admitted: int = 0
    responses_ok: int = 0
    shed_queue_full: int = 0
    shed_over_deadline: int = 0
    deadline_exceeded: int = 0
    replays: int = 0
    degraded_inprocess: int = 0
    worker_errors: int = 0
    protocol_errors: int = 0
    frames_truncated: int = 0

    def as_dict(self) -> dict:
        return {
            "requests_admitted": self.requests_admitted,
            "responses_ok": self.responses_ok,
            "shed_queue_full": self.shed_queue_full,
            "shed_over_deadline": self.shed_over_deadline,
            "deadline_exceeded": self.deadline_exceeded,
            "replays": self.replays,
            "degraded_inprocess": self.degraded_inprocess,
            "worker_errors": self.worker_errors,
            "protocol_errors": self.protocol_errors,
            "frames_truncated": self.frames_truncated,
        }


@dataclass
class _Job:
    """One admitted request waiting for (or in) dispatch."""

    request_id: int
    domain: str
    batch: ScenarioBatch
    deadline: "float | None"
    writer: asyncio.StreamWriter
    write_lock: asyncio.Lock = field(repr=False)


class BatchServer:
    """Length-prefixed batch evaluation server over supervised workers.

    Args:
        workers: Supervised worker-process count (0 = always degraded).
        queue_limit: Admission queue bound; beyond it requests are shed
            with ``RETRY_AFTER``.
        host / port: Bind address (port 0 picks a free port; see
            :attr:`address` after :meth:`start`).
        cache_file: Optional ``.npz`` store dump — workers *and* the
            degraded-path engine pre-warm from it.
        cache_size: Result-store capacity per engine.
        default_deadline_s: Deadline applied to requests that do not
            carry one.
        retry_after_s: Backoff hint sent with shed requests.
        max_replays: Worker-death replays per request before the
            in-process path takes over.
        dispatchers: Concurrent dispatch tasks (default: one per
            worker, minimum one).
        fault_plan: Optional deterministic fault schedule (forwarded to
            workers; response truncation is applied server-side).
        preload_domains: Domains every worker (including restarted
            ones) builds comparators for before taking traffic.
        snapshot_every_s: Forwarded to every worker: with
            ``cache_file`` set, each worker atomically re-dumps its
            warm store to the file at most this often, so a restarted
            server (or fleet) comes back warm from the last complete
            snapshot instead of cold.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_limit: int = 64,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_file: "str | None" = None,
        cache_size: int = 65536,
        default_deadline_s: float = 30.0,
        retry_after_s: float = 0.05,
        max_replays: int = 2,
        dispatchers: "int | None" = None,
        fault_plan: "FaultPlan | None" = None,
        preload_domains: tuple = (),
        snapshot_every_s: "float | None" = None,
    ) -> None:
        if queue_limit < 1:
            raise ParameterError(
                f"queue_limit must be >= 1, got {queue_limit}"
            )
        self.host = host
        self.port = port
        self.default_deadline_s = default_deadline_s
        self.retry_after_s = retry_after_s
        self.max_replays = max_replays
        self.fault_plan = fault_plan
        self.stats = ServerStats()
        self.supervisor = WorkerSupervisor(
            workers,
            cache_file=cache_file,
            cache_size=cache_size,
            fault_plan=fault_plan,
            preload_domains=preload_domains,
            snapshot_every_s=snapshot_every_s,
        )
        self._queue: "asyncio.Queue[_Job]" = asyncio.Queue(
            maxsize=queue_limit
        )
        self._dispatchers = (
            max(1, workers) if dispatchers is None else max(1, dispatchers)
        )
        self._engine = EvaluationEngine(
            cache_size=cache_size, cache_file=cache_file
        )
        self._comparators: dict = {}
        self._server: "asyncio.base_events.Server | None" = None
        self._tasks: list[asyncio.Task] = []
        self._response_frames = 0
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Spawn the fleet, bind the socket; returns ``(host, port)``."""
        await self.supervisor.start()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        self._tasks = [
            loop.create_task(self._dispatch_loop())
            for _ in range(self._dispatchers)
        ]
        return self.host, self.port

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        return self.host, self.port

    async def stop(self) -> None:
        """Stop accepting, cancel dispatchers, reap the fleet."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        await self.supervisor.stop()
        self._engine.close()

    async def __aenter__(self) -> "BatchServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -- connection handling --------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Per-connection read loop: admit, shed, or reject frames."""
        write_lock = asyncio.Lock()
        try:
            while True:
                try:
                    frame = await protocol.read_frame(reader)
                except protocol.ProtocolError:
                    # The stream cannot resynchronise after a malformed
                    # or truncated frame — drop the connection; the
                    # client reconnects and replays.
                    self.stats.protocol_errors += 1
                    break
                if frame is None:
                    break
                await self._admit_frame(frame, writer, write_lock)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def _admit_frame(
        self,
        frame: protocol.Frame,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        if frame.type == protocol.MSG_PING:
            await self._write(
                writer, write_lock,
                protocol.encode_frame(protocol.MSG_PONG, frame.request_id),
            )
            return
        if frame.type != protocol.MSG_REQUEST:
            self.stats.protocol_errors += 1
            await self._write(
                writer, write_lock,
                protocol.encode_error(
                    frame.request_id,
                    f"unexpected frame type {frame.type}",
                ),
            )
            return
        try:
            domain, batch = protocol.decode_request(frame.payload)
        except (protocol.ProtocolError, ParameterError) as exc:
            self.stats.protocol_errors += 1
            await self._write(
                writer, write_lock,
                protocol.encode_error(frame.request_id, str(exc)),
            )
            return
        deadline_s = (
            frame.deadline_ms / 1000.0
            if frame.deadline_ms
            else self.default_deadline_s
        )
        job = _Job(
            request_id=frame.request_id,
            domain=domain,
            batch=batch,
            deadline=time.monotonic() + deadline_s,
            writer=writer,
            write_lock=write_lock,
        )
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            # Shed newest: the queued requests have already waited and
            # are nearest their deadlines; the newcomer gets an honest
            # retry hint instead of a doomed queue slot.
            self.stats.shed_queue_full += 1
            await self._write(
                writer, write_lock,
                protocol.encode_retry_after(
                    frame.request_id, self.retry_after_s
                ),
            )
            return
        self.stats.requests_admitted += 1

    # -- dispatch -------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            job = await self._queue.get()
            try:
                await self._process(job)
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - a dispatcher must survive any one job's failure (e.g. a connection torn down mid-write); the client's retry path covers the lost response
                self.stats.protocol_errors += 1

    async def _process(self, job: _Job) -> None:
        """Run one admitted job to a response frame."""
        if job.deadline is not None and time.monotonic() >= job.deadline:
            self.stats.shed_over_deadline += 1
            await self._send(job, protocol.encode_deadline(job.request_id))
            return
        payload = {
            "id": job.request_id,
            "domain": job.domain,
            "columns": {
                "num_apps": job.batch.num_apps,
                "volume": job.batch.volume,
                "lifetime": job.batch.lifetime,
                "evaluation_years": job.batch.evaluation_years,
                "app_size_mgates": job.batch.app_size_mgates,
                "enforce_chip_lifetime": job.batch.enforce_chip_lifetime,
            },
            "deadline": job.deadline,
        }
        replays = 0
        while True:
            if job.deadline is not None and time.monotonic() >= job.deadline:
                self.stats.shed_over_deadline += 1
                await self._send(
                    job, protocol.encode_deadline(job.request_id)
                )
                return
            try:
                reply = await self.supervisor.submit(
                    payload, deadline=job.deadline
                )
                kind, body = reply[0], reply[2:]
            except WorkerDiedError:
                # Replay on a sibling: evaluation is pure and the store
                # deduplicates by digest, so the replay re-gathers
                # whatever the dead worker already persisted and
                # recomputes only what it never finished.
                self.stats.replays += 1
                replays += 1
                if replays <= self.max_replays:
                    continue
                kind, body = await self._evaluate_inprocess(payload)
            except WorkerStuckError:
                self.stats.deadline_exceeded += 1
                await self._send(
                    job, protocol.encode_deadline(job.request_id)
                )
                return
            except WorkerUnavailableError:
                self.stats.degraded_inprocess += 1
                kind, body = await self._evaluate_inprocess(payload)
            except protocol.DeadlineError:
                self.stats.shed_over_deadline += 1
                await self._send(
                    job, protocol.encode_deadline(job.request_id)
                )
                return
            break
        if kind == "ok":
            self.stats.responses_ok += 1
            data = protocol.encode_response(job.request_id, *body)
        elif kind == "deadline":
            self.stats.deadline_exceeded += 1
            data = protocol.encode_deadline(job.request_id)
        else:
            self.stats.worker_errors += 1
            data = protocol.encode_error(job.request_id, body[0])
        await self._send(job, data)

    async def _evaluate_inprocess(self, payload: dict) -> tuple:
        """Degraded path: evaluate on this process's engine (threaded).

        Same :func:`~repro.engine.serve.worker.evaluate_job` body the
        workers run, so replies (and their bits) are identical.
        """
        loop = asyncio.get_running_loop()
        reply = await loop.run_in_executor(
            None,
            evaluate_job,
            self._engine,
            self._comparators,
            payload["domain"],
            payload["columns"],
            payload["deadline"],
        )
        return reply[0], reply[1:]

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        data: bytes,
    ) -> None:
        """Write one admission-path frame (pong / shed / reject)."""
        async with write_lock:
            try:
                writer.write(data)
                await writer.drain()
            except (OSError, ConnectionError, RuntimeError):
                # The client went away before its answer; nothing to do.
                pass

    async def _send(self, job: _Job, data: bytes) -> None:
        """Write one response frame, applying the truncation fault."""
        plan = self.fault_plan
        self._response_frames += 1
        truncate = (
            plan is not None
            and plan.truncates_frame(self._response_frames)
        )
        async with job.write_lock:
            try:
                if truncate:
                    # A mid-write transport fault: ship a prefix, then
                    # hard-close so the client sees a truncated frame.
                    self.stats.frames_truncated += 1
                    job.writer.write(data[: max(1, len(data) // 3)])
                    await job.writer.drain()
                    job.writer.transport.abort()
                    return
                job.writer.write(data)
                await job.writer.drain()
            except (OSError, ConnectionError, RuntimeError):
                # The client went away (possibly mid-close); its retry
                # path handles the rest.
                pass
