"""Length-prefixed binary batch protocol for the serving tier.

Every message is one **frame**::

    magic   4s   b"GFS1"
    version u8   PROTOCOL_VERSION
    type    u8   MSG_* discriminator
    flags   u16  reserved (0)
    id      u64  request id, echoed in the response
    deadline u32 client deadline in ms (0 = server default), requests only
    length  u32  payload byte count

followed by ``length`` payload bytes.  The header is big-endian
(network order); the numeric column payloads are little-endian
contiguous dumps — requests carry the six scenario columns, responses
the four result columns — so a 10k-row sweep is one ~240 kB frame and
two syscalls, not 10k JSON objects.

Payloads by type:

* ``MSG_REQUEST`` — ``u16`` domain length + UTF-8 domain name, ``u32``
  row count, then columns ``num_apps i64``, ``volume i64``,
  ``lifetime f64``, ``evaluation_years f64`` (NaN = model default),
  ``app_size_mgates f64`` (NaN = default), ``enforce u8``.
* ``MSG_RESPONSE`` — ``u32`` row count, then columns ``ratios f64``,
  ``winners u8`` (1 = asic wins, 0 = fpga), ``fpga_totals f64``,
  ``asic_totals f64``.
* ``MSG_ERROR`` — ``u16`` length + UTF-8 message (model/protocol error
  for this request id).
* ``MSG_RETRY_AFTER`` — ``f64`` suggested client backoff in seconds
  (admission queue full; the request was shed, not queued).
* ``MSG_DEADLINE`` — empty (the request's deadline expired before a
  result could be produced).
* ``MSG_PING`` / ``MSG_PONG`` — empty (liveness probe).

Truncation anywhere — mid-header or mid-payload — raises
:class:`ProtocolError`; a clean EOF between frames reads as ``None``.
The protocol is deliberately connection-stateless: every frame is
self-describing, so a client may reconnect and resend after any
transport fault (evaluation is pure, replay is safe).
"""

from __future__ import annotations

import asyncio
import struct

import numpy as np

from repro.engine.vector.columns import ScenarioBatch
from repro.errors import ServeError

MAGIC = b"GFS1"
PROTOCOL_VERSION = 1

MSG_REQUEST = 1
MSG_RESPONSE = 2
MSG_ERROR = 3
MSG_RETRY_AFTER = 4
MSG_DEADLINE = 5
MSG_PING = 6
MSG_PONG = 7

_HEADER = struct.Struct("!4sBBHQII")
HEADER_SIZE = _HEADER.size

#: Upper bound on one frame's payload (64 MiB ≈ 1.3M-row request): a
#: corrupted or hostile length field must not trigger an unbounded read.
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

#: Per-column wire dtypes of a request, in frame order.
_REQUEST_COLUMNS = (
    ("num_apps", np.dtype("<i8")),
    ("volume", np.dtype("<i8")),
    ("lifetime", np.dtype("<f8")),
    ("evaluation_years", np.dtype("<f8")),
    ("app_size_mgates", np.dtype("<f8")),
    ("enforce_chip_lifetime", np.dtype("u1")),
)

#: Per-column wire dtypes of a response, in frame order.
_RESPONSE_COLUMNS = (
    ("ratios", np.dtype("<f8")),
    ("winners", np.dtype("u1")),
    ("fpga_totals", np.dtype("<f8")),
    ("asic_totals", np.dtype("<f8")),
)


class ProtocolError(ServeError):
    """A frame was malformed, truncated, or violated a protocol bound."""


class RemoteError(ServeError):
    """The server answered this request with an ``MSG_ERROR`` frame."""


class DeadlineError(ServeError):
    """The request's deadline expired before a result was produced."""


class BackpressureError(ServeError):
    """The server kept shedding this request past the retry budget."""


class Frame:
    """One decoded frame: ``(type, request_id, deadline_ms, payload)``."""

    __slots__ = ("type", "request_id", "deadline_ms", "payload")

    def __init__(
        self, type: int, request_id: int, deadline_ms: int, payload: bytes
    ) -> None:
        self.type = type
        self.request_id = request_id
        self.deadline_ms = deadline_ms
        self.payload = payload


def encode_frame(
    msg_type: int,
    request_id: int,
    payload: bytes = b"",
    *,
    deadline_ms: int = 0,
) -> bytes:
    """Pack one frame (header + payload) into a single ``bytes``."""
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte frame bound"
        )
    header = _HEADER.pack(
        MAGIC, PROTOCOL_VERSION, msg_type, 0, request_id,
        deadline_ms, len(payload),
    )
    return header + payload


async def read_frame(reader: asyncio.StreamReader) -> "Frame | None":
    """Read one frame; ``None`` on clean EOF between frames.

    Truncation mid-frame (EOF inside the header or the payload) raises
    :class:`ProtocolError` — the caller must treat the connection as
    dead, because the stream can never resynchronise.
    """
    try:
        raw = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"truncated header: got {len(exc.partial)} of "
            f"{HEADER_SIZE} bytes"
        ) from exc
    except ConnectionResetError as exc:
        raise ProtocolError("connection reset mid-frame") from exc
    magic, version, msg_type, _flags, request_id, deadline_ms, length = (
        _HEADER.unpack(raw)
    )
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version} != {PROTOCOL_VERSION}"
        )
    if length > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte frame bound"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"truncated payload: got {len(exc.partial)} of {length} bytes"
        ) from exc
    except ConnectionResetError as exc:
        raise ProtocolError("connection reset mid-frame") from exc
    return Frame(msg_type, request_id, deadline_ms, payload)


# ----------------------------------------------------------------------
# Request payloads (scenario columns)
# ----------------------------------------------------------------------


def encode_request(
    request_id: int,
    domain: str,
    batch: ScenarioBatch,
    *,
    deadline_ms: int = 0,
) -> bytes:
    """One request frame for a fully covered scenario batch."""
    if not batch.all_covered:
        raise ProtocolError(
            "the wire protocol carries covered batches only "
            "(heterogeneous per-application lifetimes are not columnar)"
        )
    name = domain.encode("utf-8")
    if len(name) > 0xFFFF:
        raise ProtocolError(f"domain name of {len(name)} bytes is too long")
    parts = [struct.pack("!H", len(name)), name,
             struct.pack("!I", batch.size)]
    for field, dtype in _REQUEST_COLUMNS:
        column = np.ascontiguousarray(getattr(batch, field))
        if field == "enforce_chip_lifetime":
            column = column.astype(np.uint8)
        parts.append(column.astype(dtype, copy=False).tobytes())
    return encode_frame(
        MSG_REQUEST, request_id, b"".join(parts), deadline_ms=deadline_ms
    )


def decode_request(payload: bytes) -> tuple[str, ScenarioBatch]:
    """``(domain, batch)`` from a request payload.

    Row values are validated exactly like :meth:`ScenarioBatch.from_arrays`
    — a frame carrying out-of-range scenarios raises
    :class:`~repro.errors.ParameterError`, which the server reports back
    as an ``MSG_ERROR`` frame rather than evaluating garbage.
    """
    if len(payload) < 2:
        raise ProtocolError("request payload shorter than its domain header")
    (name_len,) = struct.unpack_from("!H", payload, 0)
    offset = 2
    if len(payload) < offset + name_len + 4:
        raise ProtocolError("request payload ends inside its domain header")
    try:
        domain = payload[offset:offset + name_len].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"undecodable domain name: {exc}") from exc
    offset += name_len
    (n_rows,) = struct.unpack_from("!I", payload, offset)
    offset += 4
    if n_rows == 0:
        raise ProtocolError("a request must carry at least one row")
    columns: dict[str, np.ndarray] = {}
    for field, dtype in _REQUEST_COLUMNS:
        nbytes = n_rows * dtype.itemsize
        if offset + nbytes > len(payload):
            raise ProtocolError(
                f"request payload ends inside column {field!r}"
            )
        columns[field] = np.frombuffer(
            payload, dtype=dtype, count=n_rows, offset=offset
        ).copy()
        offset += nbytes
    if offset != len(payload):
        raise ProtocolError(
            f"{len(payload) - offset} trailing bytes after request columns"
        )
    evaluation = columns["evaluation_years"]
    app_size = columns["app_size_mgates"]
    batch = ScenarioBatch.from_arrays(
        num_apps=columns["num_apps"],
        lifetime=columns["lifetime"],
        volume=columns["volume"],
        evaluation_years=None if np.isnan(evaluation).all() else evaluation,
        app_size_mgates=None if np.isnan(app_size).all() else app_size,
        enforce_chip_lifetime=columns["enforce_chip_lifetime"].astype(bool),
    )
    return domain, batch


def _unpack_struct(fmt: str, payload: bytes, what: str) -> tuple:
    try:
        return struct.unpack(fmt, payload)
    except struct.error as exc:
        raise ProtocolError(f"malformed {what} payload: {exc}") from exc


# ----------------------------------------------------------------------
# Response payloads (result columns)
# ----------------------------------------------------------------------


def encode_response(
    request_id: int,
    ratios: np.ndarray,
    winners_u8: np.ndarray,
    fpga_totals: np.ndarray,
    asic_totals: np.ndarray,
) -> bytes:
    """One response frame from the four result columns."""
    values = {
        "ratios": ratios,
        "winners": winners_u8,
        "fpga_totals": fpga_totals,
        "asic_totals": asic_totals,
    }
    n_rows = int(np.asarray(ratios).shape[0])
    parts = [struct.pack("!I", n_rows)]
    for field, dtype in _RESPONSE_COLUMNS:
        column = np.ascontiguousarray(values[field])
        parts.append(column.astype(dtype, copy=False).tobytes())
    return encode_frame(MSG_RESPONSE, request_id, b"".join(parts))


def decode_response(
    payload: bytes,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``(ratios, winners_u8, fpga_totals, asic_totals)`` columns."""
    if len(payload) < 4:
        raise ProtocolError("response payload shorter than its row count")
    (n_rows,) = struct.unpack_from("!I", payload, 0)
    offset = 4
    columns = []
    for field, dtype in _RESPONSE_COLUMNS:
        nbytes = n_rows * dtype.itemsize
        if offset + nbytes > len(payload):
            raise ProtocolError(
                f"response payload ends inside column {field!r}"
            )
        columns.append(
            np.frombuffer(
                payload, dtype=dtype, count=n_rows, offset=offset
            ).copy()
        )
        offset += nbytes
    if offset != len(payload):
        raise ProtocolError(
            f"{len(payload) - offset} trailing bytes after response columns"
        )
    return tuple(columns)


def encode_error(request_id: int, message: str) -> bytes:
    """One error frame (the request failed; the connection lives on)."""
    text = message.encode("utf-8")[:0xFFFF]
    return encode_frame(
        MSG_ERROR, request_id, struct.pack("!H", len(text)) + text
    )


def decode_error(payload: bytes) -> str:
    """The error message carried by an ``MSG_ERROR`` payload."""
    (length,) = _unpack_struct("!H", payload[:2], "error")
    return payload[2:2 + length].decode("utf-8", errors="replace")


def encode_retry_after(request_id: int, delay_s: float) -> bytes:
    """One backpressure frame: retry after ``delay_s`` seconds."""
    return encode_frame(
        MSG_RETRY_AFTER, request_id, struct.pack("!d", float(delay_s))
    )


def decode_retry_after(payload: bytes) -> float:
    """The suggested backoff carried by an ``MSG_RETRY_AFTER`` payload."""
    return float(_unpack_struct("!d", payload, "retry-after")[0])


def encode_deadline(request_id: int) -> bytes:
    """One deadline-expired frame for ``request_id``."""
    return encode_frame(MSG_DEADLINE, request_id)
