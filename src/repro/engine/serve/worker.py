"""Worker-process body for the serving tier.

Each worker is a ``spawn``-started process holding its own
:class:`~repro.engine.engine.EvaluationEngine`.  Warmth is shared
*through the store file*, not through memory: every worker loads the
same ``.npz`` dump at startup (tolerantly — a corrupt file means a cold
start, not a crash), and because results are keyed by 128-bit digests,
a batch replayed on a different worker after a crash re-gathers the
same bits it would have computed.

The parent talks to the worker over a :mod:`multiprocessing` pipe with
small tagged tuples::

    ("batch", job_dict)            -> ("ok", id, ratios, winners_u8,
                                       fpga_totals, asic_totals)
                                    | ("deadline", id)
                                    | ("error", id, message)
    ("ping",)                      -> ("pong", index, batches_done)
    None                           -> clean shutdown

Deadlines are cooperative: the job carries an absolute
``time.monotonic()`` deadline (valid across processes on Linux —
CLOCK_MONOTONIC is system-wide), and the worker checks it between
:data:`CANCEL_CHECK_ROWS`-row slices, so a request that expires
mid-batch stops burning CPU at the next check instead of running to
completion.

Fault injection: a :class:`~repro.engine.serve.faults.FaultPlan` in the
:class:`WorkerSpec` can kill this worker just before batch N
(``os._exit`` — no cleanup, like an OOM kill) or delay its responses;
both are deterministic, keyed by worker index and incarnation.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.core.comparison import PlatformComparator
from repro.engine.engine import EvaluationEngine
from repro.engine.serve.faults import FaultPlan, hard_exit
from repro.engine.vector.columns import ScenarioBatch
from repro.errors import GreenFpgaError

#: Rows evaluated between cooperative deadline checks.  Small enough
#: that an expired request stops within ~a millisecond of kernel work,
#: large enough that the check is free on big batches.
CANCEL_CHECK_ROWS = 4096


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a spawned worker needs (picklable, immutable).

    Attributes:
        index: Stable worker slot number (fault plans key on it).
        generation: Incarnation counter for this slot — 0 for the
            initial spawn, +1 per supervisor restart.  One-shot fault
            kills only fire for generation 0.
        cache_file: Optional ``.npz`` store dump to pre-warm from.
        cache_size: Result-store capacity of the worker's engine.
        fault_plan: Optional deterministic fault schedule.
        preload_domains: Domains whose comparators are built at startup
            (before the worker takes traffic), so the first request —
            and every request after a supervisor restart — never pays
            model construction.
        snapshot_every_s: With ``cache_file`` set, re-dump the worker's
            warm store to it at most this often (checked after each
            reply).  The dump is atomic (tmp + fsync + rename), so
            concurrent workers and a crash mid-dump can never tear the
            file — a restarted fleet pre-warms from the last complete
            snapshot instead of starting cold.
    """

    index: int
    generation: int = 0
    cache_file: "str | None" = None
    cache_size: int = 4096
    fault_plan: "FaultPlan | None" = None
    preload_domains: tuple = ()
    snapshot_every_s: "float | None" = None


def evaluate_job(
    engine: EvaluationEngine,
    comparators: dict[str, PlatformComparator],
    domain: str,
    columns: dict[str, np.ndarray],
    deadline: "float | None",
) -> tuple:
    """Evaluate one decoded batch job; never raises.

    Returns a reply tuple (``ok`` / ``deadline`` / ``error``) ready to
    send back over the pipe.  Shared by the worker loop and the
    server's in-process degraded path, so both produce identical
    replies for identical jobs.
    """
    try:
        comparator = comparators.get(domain)
        if comparator is None:
            comparator = PlatformComparator.for_domain(domain)
            comparators[domain] = comparator
        batch = ScenarioBatch(
            covered=np.ones(columns["num_apps"].shape[0], dtype=bool),
            scenarios=None,
            **columns,
        )
        ratio_parts, winner_parts, fpga_parts, asic_parts = [], [], [], []
        for start in range(0, batch.size, CANCEL_CHECK_ROWS):
            if deadline is not None and time.monotonic() >= deadline:
                return ("deadline",)
            result = engine.evaluate_batch(
                comparator, batch.slice_rows(
                    start, min(start + CANCEL_CHECK_ROWS, batch.size)
                )
            )
            ratio_parts.append(result.ratios)
            winner_parts.append(
                (result.winners == "asic").astype(np.uint8)
            )
            fpga_parts.append(result.fpga_totals)
            asic_parts.append(result.asic_totals)
        return (
            "ok",
            np.concatenate(ratio_parts),
            np.concatenate(winner_parts),
            np.concatenate(fpga_parts),
            np.concatenate(asic_parts),
        )
    except GreenFpgaError as exc:
        return ("error", str(exc))
    except Exception as exc:  # noqa: BLE001 - a worker must answer every job; an unexpected failure is returned to the client as an error frame, never a silent death
        return ("error", f"unexpected evaluation failure: {exc!r}")


def worker_main(conn, spec: WorkerSpec) -> None:
    """Process entry point: serve batch jobs from the pipe until EOF.

    Module-level (spawn-picklable) by design.  The engine pre-warms
    from ``spec.cache_file`` when present — `load_cache` starts cold on
    a corrupt file instead of crashing, so one damaged shard cannot
    take the fleet down.
    """
    engine = EvaluationEngine(cache_size=spec.cache_size)
    if spec.cache_file is not None and os.path.exists(spec.cache_file):
        engine.load_cache(spec.cache_file)
    comparators: dict[str, PlatformComparator] = {}
    for domain in spec.preload_domains:
        try:
            comparators[domain] = PlatformComparator.for_domain(domain)
        except GreenFpgaError:
            # An unknown preload domain is a config nit, not a reason to
            # refuse service on the domains that do resolve; requests
            # for it will get a per-request error reply.
            continue
    plan = spec.fault_plan
    kill_at = (
        None if plan is None else plan.kill_batch(spec.index, spec.generation)
    )
    batches_done = 0
    last_snapshot = time.monotonic()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            if message[0] == "ping":
                conn.send(("pong", spec.index, batches_done))
                continue
            job = message[1]
            if kill_at is not None and batches_done >= kill_at:
                hard_exit()
            if plan is not None:
                delay = plan.delay_for(spec.index)
                if delay > 0.0:
                    time.sleep(delay)
            reply = evaluate_job(
                engine,
                comparators,
                job["domain"],
                job["columns"],
                job.get("deadline"),
            )
            conn.send((reply[0], job["id"], *reply[1:]))
            batches_done += 1
            if (
                spec.snapshot_every_s is not None
                and spec.cache_file is not None
                and time.monotonic() - last_snapshot >= spec.snapshot_every_s
            ):
                # Periodic warm-store snapshot after the reply is on the
                # wire (never adds latency ahead of an answer).  The
                # save is atomic, so the worst concurrent-worker outcome
                # is last-writer-wins of two complete snapshots.
                engine.save_cache(spec.cache_file)
                last_snapshot = time.monotonic()
    finally:
        conn.close()
        engine.close()
