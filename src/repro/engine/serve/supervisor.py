"""Supervised worker-process pool for the serving tier.

:class:`WorkerSupervisor` owns N spawned
:func:`~repro.engine.serve.worker.worker_main` processes and keeps them
alive:

* **health checks** — a monitor task polls ``is_alive`` every interval
  and round-robin pings idle workers, so a worker that died (or hung)
  *between* requests is detected and replaced before traffic hits it;
* **crash recovery** — a worker that dies is restarted with
  equal-jittered exponential backoff (quick successive deaths escalate
  the delay floor, a worker that served for a while resets it, and the
  jitter keeps a whole killed fleet from respawning in lockstep); the
  batch it was running
  surfaces as :class:`WorkerDiedError` so the caller can replay it on a
  sibling — evaluation is pure and the store deduplicates by digest,
  so replay never double-computes and never changes a bit;
* **stuck-worker bounds** — a worker that exceeds its request's
  deadline plus grace is killed outright (cooperative cancellation has
  visibly failed) and restarted like any other death;
* **graceful refusal** — with zero live workers, :meth:`submit` raises
  :class:`WorkerUnavailableError` immediately instead of queueing
  forever, so the server can degrade to in-process evaluation.

All supervisor state is touched only from event-loop callbacks; the
blocking pipe send/recv runs on a dedicated one-thread executor per
worker, which also serialises access to that worker's pipe.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import Connection
from concurrent.futures import ThreadPoolExecutor

from repro.engine.serve.backoff import JitteredBackoff
from repro.engine.serve.faults import FaultPlan
from repro.engine.serve.protocol import DeadlineError
from repro.engine.serve.worker import WorkerSpec, worker_main
from repro.errors import ParameterError, ServeError


class WorkerDiedError(ServeError):
    """The worker handling a batch died mid-flight (replay is safe)."""


class WorkerStuckError(ServeError):
    """A worker blew through deadline + grace and was killed."""


class WorkerUnavailableError(ServeError):
    """No live worker exists to take the batch (degrade or refuse)."""


class _WorkerStuck(Exception):
    """Internal: the pipe round-trip timed out (converted by submit)."""


@dataclass
class SupervisorStats:
    """Lifetime counters (monotonic; read them, don't reset them)."""

    workers_spawned: int = 0
    worker_deaths: int = 0
    worker_restarts: int = 0
    workers_killed_stuck: int = 0
    pings_ok: int = 0
    last_backoff_s: float = 0.0

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


class _WorkerHandle:
    """One live worker slot: process + pipe + its serialising executor."""

    __slots__ = (
        "index", "generation", "process", "conn", "executor",
        "spawned_at", "dead", "noted",
    )

    def __init__(self, index, generation, process, conn, executor):
        self.index = index
        self.generation = generation
        self.process = process
        self.conn = conn
        self.executor = executor
        self.spawned_at = time.monotonic()
        self.dead = False
        self.noted = False


def _pipe_roundtrip(conn: Connection, message: object, timeout_s: float):
    """Blocking send + bounded receive on a worker pipe (executor body).

    Raises :class:`_WorkerStuck` when no reply lands within
    ``timeout_s``; pipe-level failures (worker death) surface as
    ``EOFError`` / ``OSError`` for the caller to classify.
    """
    conn.send(message)
    end = time.monotonic() + timeout_s
    while True:
        remaining = end - time.monotonic()
        if remaining <= 0.0:
            raise _WorkerStuck()
        if conn.poll(min(remaining, 0.1)):
            return conn.recv()


class WorkerSupervisor:
    """Spawn, watch, restart, and dispatch to N worker processes.

    Args:
        workers: Worker process count (0 is legal: permanently
            unavailable, the degraded-mode spelling).
        cache_file: Optional ``.npz`` store dump every worker pre-warms
            from (and the medium through which workers share warmth).
        cache_size: Result-store capacity per worker engine.
        fault_plan: Optional deterministic fault schedule, forwarded to
            every worker spec.
        default_timeout_s: Pipe round-trip bound for deadline-less
            batches.
        grace_s: Extra time past a batch's deadline before the worker
            counts as stuck and is killed.
        backoff_initial_s / backoff_max_s: Exponential restart backoff
            bounds (doubles per quick successive death, capped).  The
            actual delay is *equal-jittered* — uniformly drawn from the
            upper half of the ceiling — so a fleet killed together does
            not respawn in lockstep, while a crash-looping slot still
            keeps an escalating delay floor.
        backoff_reset_s: A worker surviving at least this long resets
            its slot's backoff to the initial value.
        backoff_jitter_seed: Seed for the restart jitter RNG (tests pin
            it; production leaves OS entropy).
        health_interval_s: Monitor poll period.
        snapshot_every_s: Forwarded to every worker spec — each worker
            atomically re-dumps its warm store to ``cache_file`` on
            this cadence, so a restarted server comes back warm.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        cache_file: "str | None" = None,
        cache_size: int = 4096,
        fault_plan: "FaultPlan | None" = None,
        preload_domains: tuple = (),
        default_timeout_s: float = 60.0,
        grace_s: float = 0.5,
        backoff_initial_s: float = 0.05,
        backoff_max_s: float = 2.0,
        backoff_reset_s: float = 5.0,
        backoff_jitter_seed: "int | None" = None,
        health_interval_s: float = 0.25,
        snapshot_every_s: "float | None" = None,
    ) -> None:
        if workers < 0:
            raise ParameterError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.cache_file = cache_file
        self.cache_size = cache_size
        self.fault_plan = fault_plan
        self.preload_domains = tuple(preload_domains)
        self.default_timeout_s = default_timeout_s
        self.grace_s = grace_s
        self.backoff_initial_s = backoff_initial_s
        self.backoff_max_s = backoff_max_s
        self.backoff_reset_s = backoff_reset_s
        self.health_interval_s = health_interval_s
        self.snapshot_every_s = snapshot_every_s
        self._backoff = JitteredBackoff(
            backoff_initial_s, backoff_max_s, mode="equal",
            seed=backoff_jitter_seed,
        )
        self.stats = SupervisorStats()
        self._handles: dict[int, "_WorkerHandle | None"] = {}
        self._failures: dict[int, int] = {}
        self._idle: "asyncio.Queue[_WorkerHandle]" = asyncio.Queue()
        self._live = 0
        self._closed = False
        self._started = False
        self._monitor_task: "asyncio.Task | None" = None
        self._tasks: set[asyncio.Task] = set()
        self._ping_cursor = 0

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Spawn the initial fleet and start the health monitor."""
        if self._started:
            return
        self._started = True
        loop = asyncio.get_running_loop()
        spawned = await asyncio.gather(
            *(
                loop.run_in_executor(None, self._spawn_blocking, index, 0)
                for index in range(self.workers)
            )
        )
        for handle in spawned:
            self._handles[handle.index] = handle
            self._live += 1
            self._idle.put_nowait(handle)
        self._monitor_task = asyncio.get_running_loop().create_task(
            self._monitor()
        )

    def _spawn_blocking(self, index: int, generation: int) -> _WorkerHandle:
        """Start one worker process (blocking; runs on an executor)."""
        spec = WorkerSpec(
            index=index,
            generation=generation,
            cache_file=self.cache_file,
            cache_size=self.cache_size,
            fault_plan=self.fault_plan,
            preload_domains=self.preload_domains,
            snapshot_every_s=self.snapshot_every_s,
        )
        ctx = get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=worker_main,
            args=(child_conn, spec),
            name=f"repro-serve-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-serve-pipe-{index}"
        )
        self.stats.workers_spawned += 1
        return _WorkerHandle(index, generation, process, parent_conn, executor)

    async def stop(self) -> None:
        """Shut the fleet down; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
            self._monitor_task = None
        for task in list(self._tasks):
            task.cancel()
        while not self._idle.empty():
            self._idle.get_nowait()
        loop = asyncio.get_running_loop()
        await asyncio.gather(
            *(
                loop.run_in_executor(None, self._reap_blocking, handle)
                for handle in self._handles.values()
                if handle is not None
            )
        )
        self._live = 0

    @staticmethod
    def _reap_blocking(handle: _WorkerHandle) -> None:
        """Politely stop one worker, escalating to kill (executor body)."""
        try:
            handle.conn.send(None)
        except (OSError, ValueError):
            pass
        try:
            handle.conn.close()
        except OSError:
            pass
        handle.process.join(timeout=1.0)
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=1.0)
        handle.executor.shutdown(wait=False)

    # -- introspection --------------------------------------------------

    @property
    def live_workers(self) -> int:
        """Workers currently believed alive."""
        return self._live

    async def wait_for_fleet(self, count: int, timeout_s: float = 10.0) -> bool:
        """Wait until at least ``count`` workers are live (for tests)."""
        end = time.monotonic() + timeout_s
        while time.monotonic() < end:
            if self._live >= count:
                return True
            await asyncio.sleep(0.02)
        return self._live >= count

    # -- dispatch -------------------------------------------------------

    async def submit(self, job: dict, *, deadline: "float | None" = None):
        """Run one batch job on some live worker; returns its reply tuple.

        Raises :class:`WorkerDiedError` (replayable),
        :class:`WorkerStuckError` (the worker was killed; the request's
        deadline is gone), :class:`WorkerUnavailableError` (no fleet),
        or :class:`~repro.engine.serve.protocol.DeadlineError` (the
        deadline expired while waiting for a free worker).
        """
        handle = await self._acquire(deadline)
        if deadline is None:
            timeout_s = self.default_timeout_s
        else:
            timeout_s = max(0.05, deadline - time.monotonic() + self.grace_s)
        loop = asyncio.get_running_loop()
        try:
            reply = await loop.run_in_executor(
                handle.executor, _pipe_roundtrip, handle.conn,
                ("batch", job), timeout_s,
            )
        except _WorkerStuck:
            self.stats.workers_killed_stuck += 1
            self._note_death(handle, kill=True)
            raise WorkerStuckError(
                f"worker {handle.index} exceeded deadline + "
                f"{self.grace_s}s grace and was killed"
            ) from None
        except (EOFError, OSError) as exc:
            self._note_death(handle, kill=False)
            raise WorkerDiedError(
                f"worker {handle.index} died mid-batch: {exc!r}"
            ) from exc
        self._release(handle)
        return reply

    async def _acquire(self, deadline: "float | None") -> _WorkerHandle:
        """Pop a live idle worker, discarding corpses along the way."""
        while True:
            if self._closed:
                raise WorkerUnavailableError("supervisor is stopped")
            if self._live == 0:
                raise WorkerUnavailableError("no live workers")
            if deadline is not None and time.monotonic() >= deadline:
                raise DeadlineError(
                    "deadline expired while waiting for a free worker"
                )
            try:
                handle = self._idle.get_nowait()
            except asyncio.QueueEmpty:
                try:
                    handle = await asyncio.wait_for(
                        self._idle.get(), timeout=0.05
                    )
                except asyncio.TimeoutError:
                    continue
            if handle.dead:
                continue
            if not handle.process.is_alive():
                self._note_death(handle, kill=False)
                continue
            return handle

    def _release(self, handle: _WorkerHandle) -> None:
        if not self._closed and not handle.dead:
            self._idle.put_nowait(handle)

    # -- death, restart, health ----------------------------------------

    def _note_death(self, handle: _WorkerHandle, *, kill: bool) -> None:
        """Record one worker death exactly once and schedule its restart."""
        if handle.noted:
            return
        handle.noted = True
        handle.dead = True
        self._live -= 1
        self.stats.worker_deaths += 1
        if kill and handle.process.is_alive():
            handle.process.kill()
        try:
            handle.conn.close()
        except OSError:
            pass
        handle.executor.shutdown(wait=False)
        lifetime = time.monotonic() - handle.spawned_at
        previous = self._failures.get(handle.index, 0)
        self._failures[handle.index] = (
            previous + 1 if lifetime < self.backoff_reset_s else 1
        )
        if not self._closed:
            task = asyncio.get_running_loop().create_task(
                self._restart(handle.index)
            )
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _restart(self, index: int) -> None:
        """Respawn one slot after its jittered exponential-backoff delay."""
        failures = max(1, self._failures.get(index, 1))
        delay = self._backoff.delay(failures)
        self.stats.last_backoff_s = delay
        await asyncio.sleep(delay)
        if self._closed:
            return
        previous = self._handles.get(index)
        generation = 0 if previous is None else previous.generation + 1
        loop = asyncio.get_running_loop()
        try:
            handle = await loop.run_in_executor(
                None, self._spawn_blocking, index, generation
            )
        except Exception as exc:  # noqa: BLE001 - a failed respawn must reschedule itself (with escalated backoff), not kill the monitor; the error is preserved in the next attempt's timing
            self._failures[index] = failures + 1
            if not self._closed:
                task = asyncio.get_running_loop().create_task(
                    self._restart(index)
                )
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
            return
        if self._closed:
            await loop.run_in_executor(None, self._reap_blocking, handle)
            return
        self._handles[index] = handle
        self._live += 1
        self.stats.worker_restarts += 1
        self._idle.put_nowait(handle)

    async def _monitor(self) -> None:
        """Detect silent deaths and ping one idle worker per tick."""
        while not self._closed:
            await asyncio.sleep(self.health_interval_s)
            for handle in list(self._handles.values()):
                if handle is None or handle.noted:
                    continue
                if not handle.process.is_alive():
                    self._note_death(handle, kill=False)
            await self._ping_one_idle()

    async def _ping_one_idle(self) -> None:
        """Round-robin liveness probe of the idle pool (at most one)."""
        try:
            handle = self._idle.get_nowait()
        except asyncio.QueueEmpty:
            return
        if handle.dead:
            return
        if not handle.process.is_alive():
            self._note_death(handle, kill=False)
            return
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(
                handle.executor, _pipe_roundtrip, handle.conn,
                ("ping",), max(self.grace_s, 2.0),
            )
        except _WorkerStuck:
            self.stats.workers_killed_stuck += 1
            self._note_death(handle, kill=True)
        except (EOFError, OSError):
            self._note_death(handle, kill=False)
        else:
            self.stats.pings_ok += 1
            self._release(handle)
