"""Array-backed sharded result store for the evaluation engine.

The PR-1 LRU cached one :class:`~repro.core.comparison.ComparisonResult`
dataclass graph per (device pair, suite, scenario) key.  After the PR-2
vector kernel, that design inverted the hot path: a *warm* 10k-cell
heatmap spent 35x longer materialising and looking up dataclasses than a
*cold* kernel run spent computing the answers.  This module stores
results the way the kernel produces them — packed NumPy column blocks —
behind hash-sharded, capacity-bounded stores:

* **Digest keys.**  Every assessment is keyed by a 128-bit digest of
  ``(device pair, suite, scenario)``.  The comparator part is a BLAKE2b
  hash of the pickled identity (stable across processes — unlike
  ``hash()``, which is salted per run), memoised per comparator; the
  scenario part is a splitmix-style fold over the scenario columns that
  is computed *vectorised* for whole :class:`ScenarioBatch` rows and
  reproduced bit-for-bit by the scalar fold for single scenarios.
* **Sharded column blocks.**  Digests route to ``lo mod n_shards``;
  each shard keeps parallel arrays (digests, float columns, int
  columns, recency ticks) plus a slot index.  Batch lookups gather hits
  with one fancy-indexing pass per shard — no per-cell objects — and
  batch inserts evict the oldest slots in blocks when a shard fills.
* **Lazy materialisation.**  The column layout carries everything a
  :class:`ComparisonResult` needs (totals, per-component breakdowns,
  per-application ASIC columns, chip counts/generations), so object
  callers get bit-identical dataclasses rebuilt on demand while batch
  callers never leave array-land.
* **Persistence.**  :meth:`ShardedResultStore.save` /
  :meth:`ShardedResultStore.load` round-trip the packed shards through
  one ``.npz`` file, so cache warmth survives across processes and CLI
  runs (loading re-shards, so the shard count may differ between the
  saving and loading process).

Scenarios with heterogeneous per-application lifetimes cannot be packed
into uniform columns; those few results live in a bounded object
side-cache (and are not persisted).
"""

from __future__ import annotations

import functools
import hashlib
import pickle
import struct
import threading
from pathlib import Path
from typing import Hashable

import numpy as np

from repro.core.asic_model import AsicAssessment
from repro.core.comparison import ComparisonResult, PlatformComparator
from repro.core.fpga_model import FpgaAssessment
from repro.core.lifecycle import CarbonFootprint
from repro.core.scenario import Scenario
from repro.engine.atomicio import atomic_write
from repro.engine.cache import CacheStats, LruCache
from repro.engine.vector import (
    BatchResult,
    ParameterBatch,
    ScenarioBatch,
    VectorizedEvaluator,
)
from repro.engine.vector.kernels import chip_generations
from repro.errors import ParameterError, StoreCorruptError

# ----------------------------------------------------------------------
# Canonical keys (moved here from engine.py so digests and tuple keys
# share one definition; engine.py re-exports them).
# ----------------------------------------------------------------------


def scenario_key(scenario: Scenario) -> Hashable:
    """Canonical hashable identity of a scenario.

    Uses the normalised ``lifetimes`` tuple rather than the raw
    ``app_lifetime_years`` field so that scalar and per-application
    spellings of the same deployment hash identically (and so that
    list-valued lifetimes do not break hashing).
    """
    return (
        scenario.num_apps,
        scenario.lifetimes,
        scenario.volume,
        scenario.evaluation_years,
        scenario.app_size_mgates,
        scenario.enforce_chip_lifetime,
    )


def comparator_key(comparator: PlatformComparator) -> Hashable:
    """Canonical hashable identity of a device pair + suite."""
    return (comparator.fpga_device, comparator.asic_device, comparator.suite)


def evaluation_key(comparator: PlatformComparator, scenario: Scenario) -> Hashable:
    """Cache key of one assessment: ``(device pair, suite, scenario)``."""
    return (comparator_key(comparator), scenario_key(scenario))


# ----------------------------------------------------------------------
# 128-bit digests: stable across processes, vectorised over batches
# ----------------------------------------------------------------------

_MASK64 = 0xFFFFFFFFFFFFFFFF
_MIX_M1 = 0xFF51AFD7ED558CCD
_MIX_M2 = 0xC4CEB9FE1A85EC53
#: Bit pattern standing in for ``None`` in optional float columns (the
#: canonical quiet-NaN payload both column and scalar paths normalise to).
_NONE_BITS = 0x7FF8000000000000
#: Fold marker preceding a fractional (non-integral) volume's float
#: bits, so it can never alias an integral volume's int fold.
_FRACTIONAL_VOLUME_TAG = 0x466C6F6174566F6C  # b"FloatVol"

_U_M1 = np.uint64(_MIX_M1)
_U_M2 = np.uint64(_MIX_M2)
_U33 = np.uint64(33)
_U29 = np.uint64(29)


def _mix_scalar(h: int, v: int) -> int:
    """One fold step of the scenario digest (64-bit Python-int twin)."""
    v = (v * _MIX_M1) & _MASK64
    v ^= v >> 33
    v = (v * _MIX_M2) & _MASK64
    h = (h ^ v) & _MASK64
    h = (h * _MIX_M1) & _MASK64
    return h ^ (h >> 29)


def _mix_columns(h: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Vectorised :func:`_mix_scalar` over uint64 columns (wrapping)."""
    v = v * _U_M1
    v = v ^ (v >> _U33)
    v = v * _U_M2
    h = h ^ v
    h = h * _U_M1
    return h ^ (h >> _U29)


def _float_bits(value: float) -> int:
    """Native-order IEEE-754 bits of ``value`` (matches ndarray views)."""
    return struct.unpack("=Q", struct.pack("=d", value))[0]


def _optional_bits(value: float | None) -> int:
    return _NONE_BITS if value is None else _float_bits(value)


def _optional_column_bits(column: np.ndarray) -> np.ndarray:
    bits = np.ascontiguousarray(column, dtype=np.float64).view(np.uint64).copy()
    bits[np.isnan(column)] = np.uint64(_NONE_BITS)
    return bits


@functools.lru_cache(maxsize=1024)
def comparator_digest(comparator: PlatformComparator) -> tuple[int, int]:
    """Stable ``(lo, hi)`` seed pair for one device pair + suite.

    BLAKE2b over the pickled :func:`comparator_key`, so the digest is
    identical across processes (``hash()`` is salted per run and cannot
    key a persisted cache).  Memoised — heatmap/sweep batches pay this
    once per comparator, not per cell.
    """
    payload = pickle.dumps(comparator_key(comparator), protocol=4)
    raw = hashlib.blake2b(payload, digest_size=16).digest()
    return (
        int.from_bytes(raw[:8], "little"),
        int.from_bytes(raw[8:], "little"),
    )


def pair_digest(comparator: PlatformComparator, scenario: Scenario) -> tuple[int, int]:
    """128-bit digest of one assessment, as ``(lo, hi)`` Python ints.

    Folds the normalised scenario fields over the comparator seeds in
    the same order :func:`batch_digests` folds the batch columns, so a
    uniform-lifetime scenario digests identically either way (and scalar
    vs per-application lifetime spellings collide on purpose, exactly
    like :func:`scenario_key`).
    """
    lo, hi = comparator_digest(comparator)
    lifetimes = scenario.lifetimes
    uniform = all(t == lifetimes[0] for t in lifetimes)
    values = [int(scenario.num_apps)]
    if uniform:
        values.append(_float_bits(lifetimes[0]))
    else:
        values.extend(_float_bits(t) for t in lifetimes)
    # Scenario declares volume: int but only validates >= 1, and the
    # scalar models evaluate a fractional volume exactly.  An integral
    # volume folds as the same int the batch columns carry; a fractional
    # one folds as tagged float bits, so volume=1000.2 and volume=1000.8
    # can never share a digest (such scenarios are kernel-uncovered and
    # digested through this fold on every path).
    volume = scenario.volume
    if volume == int(volume):
        values.append(int(volume))
    else:
        values.append(_FRACTIONAL_VOLUME_TAG)
        values.append(_float_bits(float(volume)))
    values.append(_optional_bits(scenario.evaluation_years))
    values.append(_optional_bits(scenario.app_size_mgates))
    values.append(int(scenario.enforce_chip_lifetime))
    for value in values:
        lo = _mix_scalar(lo, value)
        hi = _mix_scalar(hi, value)
    return lo, hi


def _fold_scenario_columns(
    lo: np.ndarray, hi: np.ndarray, batch: ScenarioBatch
) -> tuple[np.ndarray, np.ndarray]:
    """Fold the six scenario columns into ``(lo, hi)``, vectorised.

    The column twin of the uniform branch of :func:`pair_digest`; shared
    by the scenario-space and parameter-space batch digests so the fold
    order can never drift between them.
    """
    columns = (
        batch.num_apps.astype(np.uint64),
        np.ascontiguousarray(batch.lifetime, dtype=np.float64).view(np.uint64),
        batch.volume.astype(np.uint64),
        _optional_column_bits(batch.evaluation_years),
        _optional_column_bits(batch.app_size_mgates),
        batch.enforce_chip_lifetime.astype(np.uint64),
    )
    for column in columns:
        lo = _mix_columns(lo, column)
        hi = _mix_columns(hi, column)
    return lo, hi


def batch_digests(
    comparator: PlatformComparator, batch: ScenarioBatch
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`pair_digest` over a whole scenario batch.

    Covered (uniform-lifetime) rows are digested as one fold per column;
    the rare uncovered rows fall back to the scalar fold over their
    originating :class:`Scenario` objects so every row's digest agrees
    with the object path bit-for-bit.
    """
    n = batch.size
    seed_lo, seed_hi = comparator_digest(comparator)
    lo = np.full(n, seed_lo, dtype=np.uint64)
    hi = np.full(n, seed_hi, dtype=np.uint64)
    lo, hi = _fold_scenario_columns(lo, hi, batch)
    if not batch.all_covered:
        if batch.scenarios is None:  # pragma: no cover - defensive
            raise ParameterError("uncovered batch rows need Scenario objects")
        for i in np.nonzero(~batch.covered)[0]:
            row_lo, row_hi = pair_digest(comparator, batch.scenarios[int(i)])
            lo[i] = row_lo
            hi[i] = row_hi
    return lo, hi


# ----------------------------------------------------------------------
# Parameter-space digests (the ParameterBatch key contract)
# ----------------------------------------------------------------------

#: Namespace seed of extraction-mode parameter rows (no base comparator
#: to seed from); BLAKE2b of a fixed tag, stable across processes.
_PARAM_SEED_RAW = hashlib.blake2b(
    b"repro-param-space-v1", digest_size=16
).digest()
PARAM_SPACE_SEED = (
    int.from_bytes(_PARAM_SEED_RAW[:8], "little"),
    int.from_bytes(_PARAM_SEED_RAW[8:], "little"),
)


def param_digest(
    base: PlatformComparator,
    scenario: Scenario,
    overrides: "dict[int, float]",
) -> tuple[int, int]:
    """Scalar digest of one base-mode parameter row.

    Seeds from :func:`pair_digest` of the *base* comparator and folds
    each overridden column as ``(column index, value bits)`` in index
    order — so a row with *no* overrides digests identically to the
    plain scenario-space key of ``(base, scenario)`` and shares its
    cached result on purpose.  The vectorised twin is
    :func:`param_batch_digests`; this scalar fold bit-reproduces it.
    """
    lo, hi = pair_digest(base, scenario)
    for index in sorted(overrides):
        for value in (int(index), _float_bits(float(overrides[index]))):
            lo = _mix_scalar(lo, value)
            hi = _mix_scalar(hi, value)
    return lo, hi


def param_row_digest(
    row: "tuple[float, ...] | np.ndarray", scenario: Scenario
) -> tuple[int, int]:
    """Scalar digest of one extraction-mode parameter row.

    Folds the scenario fields then every model-parameter column in
    registry order over the fixed :data:`PARAM_SPACE_SEED`; the
    vectorised twin is :func:`param_batch_digests`.  Only covered
    (uniform-lifetime, integral-volume) scenarios are representable.
    """
    lifetimes = scenario.lifetimes
    if any(t != lifetimes[0] for t in lifetimes) or (
        scenario.volume != int(scenario.volume)
    ):
        raise ParameterError(
            "parameter-row digests require uniform lifetimes and an "
            "integral volume (kernel-covered scenarios)"
        )
    lo, hi = PARAM_SPACE_SEED
    values = [
        int(scenario.num_apps),
        _float_bits(lifetimes[0]),
        int(scenario.volume),
        _optional_bits(scenario.evaluation_years),
        _optional_bits(scenario.app_size_mgates),
        int(scenario.enforce_chip_lifetime),
    ]
    values.extend(_float_bits(float(v)) for v in row)
    for value in values:
        lo = _mix_scalar(lo, value)
        hi = _mix_scalar(hi, value)
    return lo, hi


def param_batch_digests(
    params: "ParameterBatch", batch: ScenarioBatch
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised 128-bit digests of parameter-space rows.

    One splitmix-style fold per *column* — zero per-row hashing work —
    bit-reproduced by the scalar folds:

    * base-mode batches (:meth:`ParameterBatch.from_comparator`) seed
      from the base comparator's digest, fold the scenario columns,
      then fold each override column as ``(index, bits)`` in index
      order — the twin of :func:`param_digest`;
    * extraction-mode batches (:meth:`ParameterBatch.from_comparators`)
      seed from :data:`PARAM_SPACE_SEED` and fold every parameter
      column in registry order — the twin of :func:`param_row_digest`.

    Every row must be kernel-covered (the scenario columns cannot
    represent ragged lifetimes or fractional volumes).
    """
    from repro.engine.vector.params import N_PARAM_COLS

    if params.size != batch.size:
        raise ParameterError(
            f"parameter batch has {params.size} rows, "
            f"scenario batch has {batch.size}"
        )
    if not batch.all_covered:
        raise ParameterError(
            "parameter-space digests require fully covered scenario rows"
        )
    n = batch.size
    if params.base is not None:
        seed_lo, seed_hi = comparator_digest(params.base)
        folds: list[np.ndarray] = []
        for index in sorted(params.overrides):
            folds.append(np.full(1, index, dtype=np.uint64))
            folds.append(
                np.ascontiguousarray(
                    params.overrides[index], dtype=np.float64
                ).view(np.uint64)
            )
    elif len(params.columns) == N_PARAM_COLS:
        seed_lo, seed_hi = PARAM_SPACE_SEED
        folds = [
            np.ascontiguousarray(params.col(i), dtype=np.float64).view(
                np.uint64
            )
            for i in range(N_PARAM_COLS)
        ]
    else:
        raise ParameterError(
            "parameter batch is not digestable: needs a base comparator "
            "or a full column set"
        )
    lo = np.full(n, seed_lo, dtype=np.uint64)
    hi = np.full(n, seed_hi, dtype=np.uint64)
    lo, hi = _fold_scenario_columns(lo, hi, batch)
    for bits in folds:
        lo = _mix_columns(lo, bits)
        hi = _mix_columns(hi, bits)
    return lo, hi


# ----------------------------------------------------------------------
# Packed column layout
# ----------------------------------------------------------------------

_COMPONENTS = CarbonFootprint.COMPONENTS  # 6 names, canonical order

#: Float columns per entry: totals, both component breakdowns, the
#: per-application ASIC components, and the per-chip embodied figures.
FLOAT_COLS = 22
_FT_FPGA_TOTAL = 0
_FT_ASIC_TOTAL = 1
_FT_FPGA_COMP = 2  # .. 7
_FT_ASIC_COMP = 8  # .. 13
_FT_APP_COMP = 14  # .. 19
_FT_FPGA_PC = 20
_FT_ASIC_PC = 21

#: Int columns per entry.
INT_COLS = 4
_IT_N_FPGA = 0
_IT_FPGA_GEN = 1
_IT_ASIC_GEN = 2
_IT_NUM_APPS = 3

#: Bump when the column layout changes; persisted files carry it.
STORE_FORMAT_VERSION = 1


def pack_batch_rows(
    result: BatchResult, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Column blocks for ``rows`` of a kernel-produced :class:`BatchResult`.

    Callers must exclude fallback rows (they have no per-application
    component columns) — the engine only packs covered rows.
    """
    floats = np.empty((rows.size, FLOAT_COLS), dtype=np.float64)
    ints = np.empty((rows.size, INT_COLS), dtype=np.int64)
    floats[:, _FT_FPGA_TOTAL] = result.fpga_totals[rows]
    floats[:, _FT_ASIC_TOTAL] = result.asic_totals[rows]
    for j, name in enumerate(_COMPONENTS):
        floats[:, _FT_FPGA_COMP + j] = result.fpga_components[name][rows]
        floats[:, _FT_ASIC_COMP + j] = result.asic_components[name][rows]
        floats[:, _FT_APP_COMP + j] = result.asic_app_components[name][rows]
    floats[:, _FT_FPGA_PC] = result.fpga_per_chip_embodied_kg[rows]
    floats[:, _FT_ASIC_PC] = result.asic_per_chip_embodied_kg[rows]
    ints[:, _IT_N_FPGA] = result.n_fpga[rows]
    ints[:, _IT_FPGA_GEN] = result.fpga_generations[rows]
    ints[:, _IT_ASIC_GEN] = result.asic_generations[rows]
    ints[:, _IT_NUM_APPS] = result.num_apps[rows]
    return floats, ints


def pack_comparison(
    result: ComparisonResult, comparator: PlatformComparator
) -> tuple[np.ndarray, np.ndarray] | None:
    """One packed row for a scalar-path result, or ``None`` if unpackable.

    Unpackable results — kernel-uncovered scenarios (heterogeneous
    lifetimes, fractional volume), heterogeneous per-application
    footprints, or no applications at all — belong in the object
    side-cache instead.
    """
    apps = result.asic.per_application
    if not apps or not VectorizedEvaluator.covers(result.scenario):
        return None
    first = apps[0]
    if any(app != first for app in apps[1:]):
        return None
    floats = np.empty(FLOAT_COLS, dtype=np.float64)
    ints = np.empty(INT_COLS, dtype=np.int64)
    floats[_FT_FPGA_TOTAL] = result.fpga.footprint.total
    floats[_FT_ASIC_TOTAL] = result.asic.footprint.total
    for j, name in enumerate(_COMPONENTS):
        floats[_FT_FPGA_COMP + j] = getattr(result.fpga.footprint, name)
        floats[_FT_ASIC_COMP + j] = getattr(result.asic.footprint, name)
        floats[_FT_APP_COMP + j] = getattr(first, name)
    floats[_FT_FPGA_PC] = result.fpga.per_chip_embodied_kg
    floats[_FT_ASIC_PC] = result.asic.per_chip_embodied_kg
    ints[_IT_N_FPGA] = result.fpga.n_fpga_per_unit
    ints[_IT_FPGA_GEN] = result.fpga.generations
    ints[_IT_ASIC_GEN] = chip_generations(
        result.scenario.lifetimes[0],
        comparator.asic_device.chip_lifetime_years,
    )
    ints[_IT_NUM_APPS] = result.scenario.num_apps
    return floats, ints


def pack_fallback_row(result: ComparisonResult) -> tuple[np.ndarray, np.ndarray]:
    """Column row for an *unpackable* result, for batch-array scatter.

    Mirrors what :func:`repro.engine.vector.evaluator._patch_fallback_rows`
    writes into a batch's arrays for scalar-fallback rows: totals,
    components and chip counts are exact, per-application components are
    zero and ``asic_generations`` is 0 (undefined for ragged lifetimes).
    Materialisation of such rows is served from the fallback object, so
    the zero columns are never read back as results.
    """
    floats = np.zeros(FLOAT_COLS, dtype=np.float64)
    ints = np.zeros(INT_COLS, dtype=np.int64)
    floats[_FT_FPGA_TOTAL] = result.fpga.footprint.total
    floats[_FT_ASIC_TOTAL] = result.asic.footprint.total
    for j, name in enumerate(_COMPONENTS):
        floats[_FT_FPGA_COMP + j] = getattr(result.fpga.footprint, name)
        floats[_FT_ASIC_COMP + j] = getattr(result.asic.footprint, name)
    floats[_FT_FPGA_PC] = result.fpga.per_chip_embodied_kg
    floats[_FT_ASIC_PC] = result.asic.per_chip_embodied_kg
    ints[_IT_N_FPGA] = result.fpga.n_fpga_per_unit
    ints[_IT_FPGA_GEN] = result.fpga.generations
    ints[_IT_NUM_APPS] = result.scenario.num_apps
    return floats, ints


def materialise_comparison(
    floats: np.ndarray, ints: np.ndarray, scenario: Scenario
) -> ComparisonResult:
    """Rebuild a full :class:`ComparisonResult` from one packed row.

    The lazy half of the store contract: batch callers never pay for
    this, object callers get dataclasses indistinguishable from the
    scalar path's (the components are stored exactly, and ``total`` /
    ``ratio`` are derived properties).
    """
    fpga = FpgaAssessment(
        footprint=CarbonFootprint(
            **{
                name: float(floats[_FT_FPGA_COMP + j])
                for j, name in enumerate(_COMPONENTS)
            }
        ),
        per_chip_embodied_kg=float(floats[_FT_FPGA_PC]),
        n_fpga_per_unit=int(ints[_IT_N_FPGA]),
        generations=int(ints[_IT_FPGA_GEN]),
    )
    app_footprint = CarbonFootprint(
        **{
            name: float(floats[_FT_APP_COMP + j])
            for j, name in enumerate(_COMPONENTS)
        }
    )
    asic = AsicAssessment(
        footprint=CarbonFootprint(
            **{
                name: float(floats[_FT_ASIC_COMP + j])
                for j, name in enumerate(_COMPONENTS)
            }
        ),
        per_chip_embodied_kg=float(floats[_FT_ASIC_PC]),
        per_application=(app_footprint,) * int(ints[_IT_NUM_APPS]),
    )
    return ComparisonResult(scenario=scenario, fpga=fpga, asic=asic)


# ----------------------------------------------------------------------
# Shards
# ----------------------------------------------------------------------


class _Shard:
    """One hash shard: parallel arrays plus a digest -> slot index.

    Not thread-safe on its own — the owning store serialises access.
    The index is keyed on the low digest word only; the high word is
    verified vectorised at lookup, so a (astronomically unlikely) low
    collision degrades to a miss/overwrite, never a wrong answer.
    """

    __slots__ = ("capacity", "lo", "hi", "floats", "ints", "tick", "index", "free")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.lo = np.zeros(capacity, dtype=np.uint64)
        self.hi = np.zeros(capacity, dtype=np.uint64)
        self.floats = np.empty((capacity, FLOAT_COLS), dtype=np.float64)
        self.ints = np.empty((capacity, INT_COLS), dtype=np.int64)
        self.tick = np.zeros(capacity, dtype=np.int64)
        self.index: dict[int, int] = {}
        self.free: list[int] = list(range(capacity - 1, -1, -1))

    def lookup(self, lo: np.ndarray, hi: np.ndarray, clock: int) -> np.ndarray:
        """Slot per query row (``-1`` for a miss), refreshing recency."""
        get = self.index.get
        slots = np.fromiter(
            (get(key, -1) for key in lo.tolist()), dtype=np.int64, count=lo.size
        )
        found = slots >= 0
        if found.any():
            hit_slots = slots[found]
            verified = self.hi[hit_slots] == hi[found]
            if not verified.all():
                slots[np.nonzero(found)[0][~verified]] = -1
                found = slots >= 0
                hit_slots = slots[found]
            self.tick[hit_slots] = clock
        return slots

    def insert(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        floats: np.ndarray,
        ints: np.ndarray,
        clock: int,
    ) -> None:
        """Upsert a batch of rows, evicting the oldest slots when full.

        ``lo`` and ``tick`` are written eagerly per row so that a
        mid-batch eviction (triggered when the batch overflows the free
        list) always consults live slot metadata; the payload columns
        are scattered vectorised afterwards.  Duplicate keys within one
        batch share a slot and the last row wins (fancy assignment
        writes in order), matching dict upsert semantics.
        """
        slots = np.empty(lo.size, dtype=np.int64)
        index = self.index
        for r, key in enumerate(lo.tolist()):
            slot = index.get(key)
            if slot is None:
                if not self.free:
                    self._evict_batch()
                slot = self.free.pop()
                index[key] = slot
                self.lo[slot] = key
                self.tick[slot] = clock
            slots[r] = slot
        self.lo[slots] = lo
        self.hi[slots] = hi
        self.floats[slots] = floats
        self.ints[slots] = ints
        self.tick[slots] = clock

    def _evict_batch(self) -> None:
        """Free the least-recently-touched ~eighth of the shard."""
        count = max(1, self.capacity // 8)
        oldest = np.argpartition(self.tick, count - 1)[:count]
        for slot in oldest.tolist():
            self.index.pop(int(self.lo[slot]), None)
            self.free.append(slot)

    def occupied_slots(self) -> np.ndarray:
        """Slots currently holding entries, oldest first (for save)."""
        slots = np.fromiter(self.index.values(), dtype=np.int64,
                            count=len(self.index))
        return slots[np.argsort(self.tick[slots], kind="stable")]


# ----------------------------------------------------------------------
# The sharded store
# ----------------------------------------------------------------------


class ShardedResultStore:
    """N hash-sharded, array-backed result stores with one lock.

    Args:
        capacity: Total entry bound across the packed shards (``0``
            disables storage entirely while keeping the API and miss
            counters).  The object side-cache for unpackable
            (ragged-lifetime / fractional-volume) results holds at most
            an extra ``capacity // 8`` entries on top.
        shards: Number of hash shards.  Clamped to ``capacity`` so every
            shard holds at least one entry; the total across shards is
            exactly ``capacity``.

    Thread-safe: one lock serialises all shard access, and batch
    lookups copy their gathered blocks before releasing it, so
    concurrent eviction can never corrupt a caller's view.
    """

    def __init__(self, capacity: int = 4096, shards: int = 8) -> None:
        if capacity < 0:
            raise ParameterError(f"cache capacity must be >= 0, got {capacity}")
        if shards < 1:
            raise ParameterError(f"cache shards must be >= 1, got {shards}")
        self.capacity = capacity
        self.n_shards = min(shards, capacity) if capacity else shards
        per = capacity // self.n_shards if capacity else 0
        remainder = capacity - per * self.n_shards if capacity else 0
        self._shards = [
            _Shard(per + (1 if s < remainder else 0))
            for s in range(self.n_shards)
        ]
        self._objects = LruCache(maxsize=max(1, capacity // 8) if capacity else 0)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._clock = 0

    # -- batch (array) interface ---------------------------------------

    def _shard_ids(self, lo: np.ndarray) -> np.ndarray:
        return (lo % np.uint64(self.n_shards)).astype(np.int64)

    def get_batch(
        self, lo: np.ndarray, hi: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised lookup: ``(hit_mask, float_block, int_block)``.

        Rows where ``hit_mask`` is False hold unspecified values in the
        returned blocks.  Every row counts once toward hits/misses.
        """
        n = int(lo.size)
        hits = np.zeros(n, dtype=bool)
        floats = np.empty((n, FLOAT_COLS), dtype=np.float64)
        ints = np.empty((n, INT_COLS), dtype=np.int64)
        if self.capacity == 0 or n == 0:
            with self._lock:
                self._misses += n
            return hits, floats, ints
        with self._lock:
            self._clock += 1
            shard_ids = self._shard_ids(lo)
            for s, shard in enumerate(self._shards):
                rows = np.nonzero(shard_ids == s)[0]
                if rows.size == 0:
                    continue
                slots = shard.lookup(lo[rows], hi[rows], self._clock)
                found = slots >= 0
                hit_rows = rows[found]
                hits[hit_rows] = True
                floats[hit_rows] = shard.floats[slots[found]]
                ints[hit_rows] = shard.ints[slots[found]]
            n_hit = int(np.count_nonzero(hits))
            self._hits += n_hit
            self._misses += n - n_hit
        return hits, floats, ints

    def put_batch(
        self, lo: np.ndarray, hi: np.ndarray, floats: np.ndarray, ints: np.ndarray
    ) -> None:
        """Upsert a batch of packed rows (no effect when disabled)."""
        if self.capacity == 0 or lo.size == 0:
            return
        with self._lock:
            self._clock += 1
            shard_ids = self._shard_ids(lo)
            for s, shard in enumerate(self._shards):
                rows = np.nonzero(shard_ids == s)[0]
                if rows.size == 0:
                    continue
                shard.insert(
                    lo[rows], hi[rows], floats[rows], ints[rows], self._clock
                )

    # -- object side-cache (unpackable results) ------------------------

    def get_object(self, digest: tuple[int, int]) -> ComparisonResult | None:
        """Lookup in the object side-cache (counts one hit or miss)."""
        result = self._objects.get(digest)
        with self._lock:
            if result is None:
                self._misses += 1
            else:
                self._hits += 1
        return result

    def put_object(self, digest: tuple[int, int], result: ComparisonResult) -> None:
        """Store one unpackable result (ragged per-application data)."""
        self._objects.put(digest, result)

    # -- bookkeeping ----------------------------------------------------

    def stats(self) -> CacheStats:
        """Aggregate counters across shards and the object side-cache."""
        with self._lock:
            size = sum(len(shard.index) for shard in self._shards)
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=size + len(self._objects),
                maxsize=self.capacity,
            )

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            for s, shard in enumerate(self._shards):
                self._shards[s] = _Shard(shard.capacity)
            self._hits = 0
            self._misses = 0
            self._clock = 0
        self._objects.clear()

    # -- persistence -----------------------------------------------------

    def save(self, path: "str | Path") -> Path:
        """Write every packed entry to one compressed ``.npz`` file.

        Entries are written oldest-first so a capacity-constrained
        :meth:`load` keeps the most recently used ones.  The object
        side-cache (ragged scenarios) is not persisted.

        The write is crash-safe: the dump goes to a same-directory tmp
        file that is fsynced and atomically renamed over ``path``
        (:func:`repro.engine.atomicio.atomic_write`), so a crash
        mid-save leaves the previous snapshot intact instead of a torn
        file that :meth:`load` would reject.
        """
        path = Path(path)
        with self._lock:
            blocks_lo, blocks_hi, blocks_f, blocks_i, blocks_t = [], [], [], [], []
            for shard in self._shards:
                slots = shard.occupied_slots()
                blocks_lo.append(shard.lo[slots])
                blocks_hi.append(shard.hi[slots])
                blocks_f.append(shard.floats[slots])
                blocks_i.append(shard.ints[slots])
                blocks_t.append(shard.tick[slots])
            lo = np.concatenate(blocks_lo) if blocks_lo else np.empty(0, np.uint64)
            hi = np.concatenate(blocks_hi) if blocks_hi else np.empty(0, np.uint64)
            floats = (
                np.concatenate(blocks_f)
                if blocks_f else np.empty((0, FLOAT_COLS))
            )
            ints = (
                np.concatenate(blocks_i)
                if blocks_i else np.empty((0, INT_COLS), np.int64)
            )
            ticks = np.concatenate(blocks_t) if blocks_t else np.empty(0, np.int64)
        order = np.argsort(ticks, kind="stable")
        return atomic_write(
            path,
            lambda handle: np.savez_compressed(
                handle,
                meta=np.array(
                    [STORE_FORMAT_VERSION, FLOAT_COLS, INT_COLS], dtype=np.int64
                ),
                lo=lo[order],
                hi=hi[order],
                floats=floats[order],
                ints=ints[order],
            ),
        )

    def load(self, path: "str | Path") -> int:
        """Merge a persisted ``.npz`` shard dump into this store.

        Entries are re-sharded on insert, so the saving process may have
        used a different shard count.  Returns the number of entries
        read; counters are untouched (loading is not a lookup).

        Raises :class:`~repro.errors.StoreCorruptError` when the file is
        truncated, corrupted, or written in an incompatible format —
        anything short of a clean, version-matched dump.  A missing file
        still raises :class:`FileNotFoundError` (absence is a different
        condition from damage, and callers branch on it).
        """
        path = Path(path)
        try:
            with np.load(path) as data:
                meta = data["meta"]
                if (
                    meta.shape != (3,)
                    or int(meta[0]) != STORE_FORMAT_VERSION
                    or int(meta[1]) != FLOAT_COLS
                    or int(meta[2]) != INT_COLS
                ):
                    raise StoreCorruptError(
                        f"incompatible cache file {path}: "
                        f"format {meta.tolist()} != "
                        f"{[STORE_FORMAT_VERSION, FLOAT_COLS, INT_COLS]}"
                    )
                lo = data["lo"]
                hi = data["hi"]
                floats = data["floats"]
                ints = data["ints"]
            if not (lo.size == hi.size == floats.shape[0] == ints.shape[0]):
                raise StoreCorruptError(
                    f"inconsistent cache file {path}: column lengths "
                    f"{[lo.size, hi.size, floats.shape[0], ints.shape[0]]}"
                )
        except (FileNotFoundError, StoreCorruptError):
            raise
        except Exception as exc:  # noqa: BLE001 - any decode failure of an untrusted on-disk cache (bad zip, truncated member, pickle refusal, wrong keys) means "corrupt"; re-raised typed
            raise StoreCorruptError(
                f"cannot read cache file {path}: {exc!r}"
            ) from exc
        self.put_batch(
            lo.astype(np.uint64),
            hi.astype(np.uint64),
            floats.astype(np.float64),
            ints.astype(np.int64),
        )
        return int(lo.size)
