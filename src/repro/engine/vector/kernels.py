"""Array kernels mirroring the suite sub-models.

Each kernel reproduces one scalar sub-model's arithmetic — in the same
operation order, so results agree with the scalar path to the last ulp
wherever IEEE semantics permit (NumPy's transcendental implementations
may differ from libm by one ulp, which is far inside the advertised
``rtol=1e-12`` parity bound).

Two kinds of kernel live here:

* **sub-model kernels** (`manufacturing_per_die_kg`, `packaging_per_chip`,
  `eol_per_chip_kg`, `design_project_kg`, `operation_per_chip_year_kg`)
  compute per-chip constants from *model-parameter columns* — one row per
  comparator — enabling multi-comparator batches (Monte-Carlo draws, DSE
  grids) to vectorise the whole lifecycle, not just the scenario axes;
* **composition helpers** (`repeat_add`, `ratio_kernel`, `winner_kernel`)
  reproduce the scenario accounting and the degenerate-ratio semantics of
  :class:`~repro.core.comparison.ComparisonResult` with masks instead of
  branches, raising no floating-point warnings.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import CapacityError
from repro.manufacturing.yield_model import YieldModel
from repro.units import HOURS_PER_YEAR, MM2_PER_CM2, RETICLE_LIMIT_MM2

#: Stable integer codes for the statistical yield models, used because
#: enum members don't belong in float matrices.
YIELD_MODEL_CODES = {
    YieldModel.MURPHY: 0,
    YieldModel.POISSON: 1,
    YieldModel.SEEDS: 2,
}


def _into(ufunc, a, b, out):
    """``ufunc(a, b)`` into ``out`` when shapes permit, fresh otherwise.

    ``out`` must be a temporary the caller owns exclusively — never a
    caller-supplied operand column — so the reuse cannot alias a live
    input.  ``out`` may be ``a`` or ``b`` itself (elementwise ufuncs are
    well-defined with an input as ``out``); values and operation order
    are identical to the out-of-place spelling either way.
    """
    if isinstance(out, np.ndarray) and out.shape == np.broadcast_shapes(
        np.shape(a), np.shape(b)
    ):
        return ufunc(a, b, out=out)
    return ufunc(a, b)


# ----------------------------------------------------------------------
# Composition helpers
# ----------------------------------------------------------------------


def repeat_add(x: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Row-wise ``x + x + ... + x`` (``counts`` times), left-folded.

    The scalar lifecycle models accumulate per-application terms with
    repeated ``+=`` over identical addends; ``counts * x`` rounds
    differently for counts >= 4, so bit-parity requires reproducing the
    fold.  Iterates ``max(counts)`` times over the whole batch — the
    paper's application counts are tens, so this stays cheap even for
    10k-row batches.
    """
    x = np.asarray(x, dtype=np.float64)
    counts = np.asarray(counts)
    acc = np.where(counts >= 1, x, 0.0)
    if counts.size == 0:
        return acc
    for k in range(2, int(counts.max()) + 1):
        acc = np.where(counts >= k, acc + x, acc)
    return acc


#: Epsilon subtracted before ``ceil`` in chip-generation counts, so a
#: study horizon that is an exact multiple of the chip lifetime does not
#: buy one spurious extra generation to float rounding.
GENERATIONS_EPSILON = 1.0e-9


def chip_generations(years: float, chip_lifetime_years: float) -> int:
    """Chip generations consumed over ``years`` (scalar; min 1).

    The single definition of the paper's repurchase count — the scalar
    twin of :func:`generations_kernel`, shared by the store's packing
    and :meth:`BatchResult.from_results` so warm gathers can never
    drift from cold kernel runs.
    """
    return max(
        1, math.ceil(years / chip_lifetime_years - GENERATIONS_EPSILON)
    )


def generations_kernel(
    years: np.ndarray, chip_lifetime_years: "np.ndarray | float"
) -> np.ndarray:
    """Vectorised :func:`chip_generations` (int64 column; min 1)."""
    return np.maximum(
        1,
        np.ceil(
            years / chip_lifetime_years - GENERATIONS_EPSILON
        ).astype(np.int64),
    )


def ratio_kernel(fpga_totals: np.ndarray, asic_totals: np.ndarray) -> np.ndarray:
    """Vectorised :attr:`ComparisonResult.ratio` with degenerate masks.

    A zero ASIC total yields signed infinity (``copysign(inf, fpga)``),
    two zero totals a perfect tie of ``1.0`` — identical semantics to the
    scalar property, with warnings suppressed rather than raised.
    """
    fpga_totals = np.asarray(fpga_totals, dtype=np.float64)
    asic_totals = np.asarray(asic_totals, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        raw = fpga_totals / asic_totals
    return np.where(
        asic_totals == 0.0,
        np.where(fpga_totals == 0.0, 1.0, np.copysign(np.inf, fpga_totals)),
        raw,
    )


def winner_kernel(fpga_totals: np.ndarray, asic_totals: np.ndarray) -> np.ndarray:
    """Vectorised :attr:`ComparisonResult.winner` (ties go to the ASIC)."""
    return np.where(
        np.asarray(fpga_totals) < np.asarray(asic_totals), "fpga", "asic"
    )


# ----------------------------------------------------------------------
# Manufacturing: wafer geometry + yield + carbon-per-area
# ----------------------------------------------------------------------


def dies_per_wafer_kernel(
    die_area_mm2: np.ndarray,
    wafer_diameter_mm: np.ndarray,
    edge_exclusion_mm: np.ndarray,
    scribe_mm: np.ndarray,
) -> np.ndarray:
    """Vectorised :func:`repro.manufacturing.wafer.dies_per_wafer`."""
    die_area_mm2 = np.asarray(die_area_mm2, dtype=np.float64)
    if np.any(die_area_mm2 > RETICLE_LIMIT_MM2):
        worst = float(die_area_mm2.max())
        raise CapacityError(
            f"die area {worst:.0f} mm^2 exceeds the reticle limit "
            f"({RETICLE_LIMIT_MM2:.0f} mm^2); split the design across chips"
        )
    side_mm = np.sqrt(die_area_mm2) + scribe_mm
    footprint_mm2 = side_mm**2
    usable_diameter_mm = wafer_diameter_mm - 2.0 * edge_exclusion_mm
    area_term = np.pi * (usable_diameter_mm / 2.0) ** 2 / footprint_mm2
    edge_term = np.pi * usable_diameter_mm / np.sqrt(2.0 * footprint_mm2)
    gross = np.floor(area_term - edge_term).astype(np.int64)
    if np.any(gross < 1):
        raise CapacityError("a die in the batch does not fit on its wafer")
    return gross


def wafer_area_per_die_kernel(
    die_area_mm2: np.ndarray,
    wafer_diameter_mm: np.ndarray,
    edge_exclusion_mm: np.ndarray,
    scribe_mm: np.ndarray,
) -> np.ndarray:
    """Vectorised :func:`repro.manufacturing.wafer.wafer_area_per_die_cm2`."""
    gross = dies_per_wafer_kernel(
        die_area_mm2, wafer_diameter_mm, edge_exclusion_mm, scribe_mm
    )
    radius_mm = wafer_diameter_mm / 2.0 - edge_exclusion_mm
    if np.any(radius_mm <= 0.0):
        raise CapacityError("edge exclusion leaves no usable wafer area")
    usable_cm2 = (np.pi * radius_mm**2) / MM2_PER_CM2
    return np.maximum(usable_cm2 / gross, die_area_mm2 / MM2_PER_CM2)


def die_yield_kernel(
    area_cm2: np.ndarray,
    defect_density_per_cm2: np.ndarray,
    model_code: np.ndarray,
    line_yield: np.ndarray,
) -> np.ndarray:
    """Vectorised :func:`repro.manufacturing.yield_model.die_yield`.

    ``model_code`` selects the statistical model per row (see
    :data:`YIELD_MODEL_CODES`); rows are masked per model so mixed
    batches (a DSE axis over yield models) stay one kernel call.
    """
    faults = np.asarray(area_cm2, dtype=np.float64) * defect_density_per_cm2
    model_code = np.broadcast_to(np.asarray(model_code), faults.shape)
    statistical = np.empty_like(faults)

    murphy = model_code == YIELD_MODEL_CODES[YieldModel.MURPHY]
    if np.any(murphy):
        f = faults[murphy]
        with np.errstate(divide="ignore", invalid="ignore"):
            curve = (-np.expm1(-f) / f) ** 2
        statistical[murphy] = np.where(f < 1.0e-12, 1.0, curve)
    poisson = model_code == YIELD_MODEL_CODES[YieldModel.POISSON]
    if np.any(poisson):
        statistical[poisson] = np.exp(-faults[poisson])
    seeds = model_code == YIELD_MODEL_CODES[YieldModel.SEEDS]
    if np.any(seeds):
        statistical[seeds] = 1.0 / (1.0 + faults[seeds])
    return statistical * line_yield


def manufacturing_per_die_kg(
    die_area_mm2: np.ndarray,
    epa_kwh_per_cm2: np.ndarray,
    gpa_kg_per_cm2: np.ndarray,
    mpa_new_kg_per_cm2: np.ndarray,
    mpa_recycled_kg_per_cm2: np.ndarray,
    defect_density_per_cm2: np.ndarray,
    line_yield: np.ndarray,
    wafer_diameter_mm: np.ndarray,
    fab_intensity_kg_per_kwh: np.ndarray,
    gas_abatement: np.ndarray,
    edge_exclusion_mm: np.ndarray,
    scribe_mm: np.ndarray,
    recycled_fraction: np.ndarray,
    yield_model_code: np.ndarray,
    charge_wafer_waste: np.ndarray,
) -> np.ndarray:
    """Vectorised :meth:`ManufacturingModel.assess_die` total (kg/good die)."""
    die_area_mm2 = np.asarray(die_area_mm2, dtype=np.float64)
    area_cm2 = np.empty_like(die_area_mm2)
    charge = np.broadcast_to(np.asarray(charge_wafer_waste, dtype=bool),
                             die_area_mm2.shape)
    any_charge = bool(np.any(charge))
    if any_charge:
        area_cm2[charge] = wafer_area_per_die_kernel(
            die_area_mm2[charge],
            np.broadcast_to(wafer_diameter_mm, die_area_mm2.shape)[charge],
            np.broadcast_to(edge_exclusion_mm, die_area_mm2.shape)[charge],
            np.broadcast_to(scribe_mm, die_area_mm2.shape)[charge],
        )
    if not np.all(charge):
        if any_charge:
            area_cm2[~charge] = (die_area_mm2 / MM2_PER_CM2)[~charge]
        else:
            np.divide(die_area_mm2, MM2_PER_CM2, out=area_cm2)
    total_yield = die_yield_kernel(
        die_area_mm2 / MM2_PER_CM2,
        defect_density_per_cm2,
        yield_model_code,
        line_yield,
    )
    # The tails below reuse finished temporaries as ``out=`` buffers
    # (``area_cm2`` is dead once ``scale`` exists, each product owns its
    # left factor): same values, same operation order, about half the
    # full-rank allocations on hot multi-comparator batches.
    scale = _into(np.divide, area_cm2, total_yield, area_cm2)
    energy = np.multiply(epa_kwh_per_cm2, fab_intensity_kg_per_kwh)
    energy = _into(np.multiply, energy, scale, energy)
    gas = np.subtract(1.0, gas_abatement)
    gas = _into(np.multiply, gpa_kg_per_cm2, gas, gas)
    gas = _into(np.multiply, gas, scale, gas)
    blended = np.multiply(recycled_fraction, mpa_recycled_kg_per_cm2)
    other = np.subtract(1.0, recycled_fraction)
    other = _into(np.multiply, other, mpa_new_kg_per_cm2, other)
    blended = _into(np.add, blended, other, blended)
    material = _into(np.multiply, blended, scale, blended)
    total = _into(np.add, energy, gas, energy)
    return _into(np.add, total, material, total)


# ----------------------------------------------------------------------
# Packaging, end-of-life
# ----------------------------------------------------------------------


def packaging_per_chip(
    die_area_mm2: np.ndarray,
    substrate_kg_per_cm2: np.ndarray,
    assembly_kwh_per_package: np.ndarray,
    assembly_intensity_kg_per_kwh: np.ndarray,
    fanout_factor: np.ndarray,
    base_kg_per_package: np.ndarray,
    mass_g_per_cm2: np.ndarray,
    base_mass_g: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :meth:`MonolithicPackagingModel.assess_package`.

    Returns ``(per_package_kg, package_mass_g)`` — the mass feeds the
    EOL kernel exactly like the scalar flow.
    """
    pkg_area_cm2 = (np.asarray(die_area_mm2, dtype=np.float64) * fanout_factor) / MM2_PER_CM2
    substrate = base_kg_per_package + substrate_kg_per_cm2 * pkg_area_cm2
    assembly = assembly_kwh_per_package * assembly_intensity_kg_per_kwh
    mass_g = base_mass_g + mass_g_per_cm2 * pkg_area_cm2
    return substrate + assembly, mass_g


def eol_per_chip_kg(
    package_mass_g: np.ndarray,
    recycled_fraction: np.ndarray,
    discard_kg_per_kg: np.ndarray,
    recycle_credit_kg_per_kg: np.ndarray,
    transport_kg_per_kg: np.ndarray,
) -> np.ndarray:
    """Vectorised :meth:`EolModel.assess_chip` total (may be negative)."""
    mass_kg = np.asarray(package_mass_g, dtype=np.float64) / 1000.0
    delta = recycled_fraction
    discard = (1.0 - delta) * discard_kg_per_kg * mass_kg
    credit = delta * recycle_credit_kg_per_kg * mass_kg
    transport = transport_kg_per_kg * mass_kg
    return discard - credit + transport


# ----------------------------------------------------------------------
# Design, operation, application development
# ----------------------------------------------------------------------


def design_project_kg(
    gates_mgates: np.ndarray,
    annual_energy_kwh_effective: np.ndarray,
    project_years: np.ndarray,
    intensity_kg_per_kwh: np.ndarray,
    avg_gates_per_chip_mgates: np.ndarray,
    gate_scaling_beta: np.ndarray,
) -> np.ndarray:
    """Vectorised :meth:`DesignModel.assess_project` total.

    ``annual_energy_kwh_effective`` is the report energy with overhead
    and allocation already applied (that product is comparator data, not
    scenario data, so it is folded during extraction).
    """
    gate_scale = (
        np.asarray(gates_mgates, dtype=np.float64) / avg_gates_per_chip_mgates
    ) ** gate_scaling_beta
    return annual_energy_kwh_effective * project_years * intensity_kg_per_kwh * gate_scale


def operation_per_chip_year_kg(
    power_w: np.ndarray,
    duty_cycle: np.ndarray,
    idle_fraction_of_peak: np.ndarray,
    pue: np.ndarray,
    intensity_kg_per_kwh: np.ndarray,
) -> np.ndarray:
    """Vectorised :meth:`OperationModel.per_chip_year_kg`."""
    # Same chain as before, accumulated through owned temporaries with
    # ``out=`` where shapes permit (see :func:`_into`): the duty prefix
    # collapses to one buffer instead of three full-rank temporaries.
    idle = np.subtract(1.0, duty_cycle)
    idle = _into(np.multiply, idle, idle_fraction_of_peak, idle)
    effective_duty = _into(np.add, duty_cycle, idle, idle)
    effective_duty = _into(np.multiply, effective_duty, pue, effective_duty)
    energy = np.divide(np.asarray(power_w, dtype=np.float64), 1000.0)
    energy = _into(np.multiply, energy, effective_duty, energy)
    energy = _into(np.multiply, energy, HOURS_PER_YEAR, energy)
    return _into(np.multiply, intensity_kg_per_kwh, energy, energy)
