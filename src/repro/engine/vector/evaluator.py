"""Vectorized batch evaluation of FPGA-vs-ASIC comparisons.

The scalar path rebuilds dataclass pyramids per scenario; this module
computes whole batches as array math in two regimes:

* **same-comparator batches** (heatmap grids, sweeps): the per-chip
  constants — manufacturing, packaging, EOL, design, operation and
  app-dev coefficients — depend only on the device pair and suite, so
  they are computed *once* through the scalar sub-models (guaranteeing
  bit-parity) and the scenario composition is vectorised;
* **multi-comparator batches** (Monte-Carlo draws, DSE grids): each row
  carries its own suite, so the per-chip constants themselves are
  computed through the array kernels in :mod:`repro.engine.vector.kernels`
  from extracted model-parameter columns.  Parity with the scalar path is
  within ``rtol=1e-12`` (NumPy transcendentals may differ from libm by an
  ulp); everything else is exact.

The scenario composition mirrors the scalar models' operation order —
including the per-application left-fold via :func:`repeat_add` — so the
same-comparator path reproduces the scalar results bit-for-bit, which is
what lets the engine fast path share its LRU cache with scalar callers.
"""

from __future__ import annotations

import functools
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.asic_model import AsicAssessment, AsicLifecycleModel
from repro.core.comparison import ComparisonResult, PlatformComparator
from repro.core.fpga_model import FpgaAssessment, FpgaLifecycleModel
from repro.core.lifecycle import CarbonFootprint
from repro.core.scenario import Scenario
from repro.data.grid import carbon_intensity_kg_per_kwh
from repro.data.reports import DesignHouseReport, get_report
from repro.data.warm import WarmFactors, get_material
from repro.engine.vector.columns import ScenarioBatch
from repro.engine.vector.kernels import (
    chip_generations,
    design_project_kg,
    eol_per_chip_kg,
    generations_kernel,
    manufacturing_per_die_kg,
    operation_per_chip_year_kg,
    packaging_per_chip,
    ratio_kernel,
    repeat_add,
    winner_kernel,
)
from repro.engine.vector import params as P
from repro.engine.vector.params import ParameterBatch
from repro.errors import ParameterError
from repro.units import watts_to_kw


#: ArrayLike scalar-or-column type for per-side constants.
Column = "float | np.ndarray"


@dataclass(frozen=True)
class SideConstants:
    """Per-chip constants of one platform side (scalars or row columns).

    Scalar fields broadcast over the scenario batch (same-comparator
    path); ndarray fields carry one value per row (multi-comparator
    path).  Either way the composition kernel is identical.
    """

    design_kg: Column
    mfg_per_chip_kg: Column
    pkg_per_chip_kg: Column
    eol_per_chip_kg: Column
    per_chip_embodied_kg: Column
    op_per_chip_year_kg: Column
    appdev_dev_kg: Column
    appdev_config_kw: Column
    appdev_config_hours_per_unit: Column
    appdev_intensity: Column
    chip_lifetime_years: Column
    capacity_mgates: Column | None = None  # FPGA only


@functools.lru_cache(maxsize=256)
def comparator_constants(
    comparator: PlatformComparator,
) -> tuple[SideConstants, SideConstants]:
    """Exact per-chip constants for one comparator, via the scalar models.

    Every number here is produced by the same code the scalar path runs
    (`per_chip_embodied`, `project_kg`, `per_chip_year_kg`, ...), so the
    vectorized composition built on top is bit-identical to
    :meth:`PlatformComparator.compare` for covered scenarios.
    """
    suite = comparator.suite
    fpga_device = comparator.fpga_device
    asic_device = comparator.asic_device

    appdev_intensity = carbon_intensity_kg_per_kwh(suite.appdev.energy_source)
    farm_kw = watts_to_kw(suite.appdev.farm_power_w)
    config_kw = watts_to_kw(suite.appdev.config_power_w)

    fpga_per_chip = FpgaLifecycleModel(device=fpga_device, suite=suite).per_chip_embodied()
    silicon_gates = (
        fpga_device.area_mm2 * fpga_device.node.gate_density_mgates_per_mm2
    )
    fpga_dev_hours = suite.fpga_effort.per_application_hours()
    fpga_side = SideConstants(
        design_kg=suite.design.project_kg(silicon_gates, suite.fpga_team),
        mfg_per_chip_kg=fpga_per_chip.manufacturing,
        pkg_per_chip_kg=fpga_per_chip.packaging,
        eol_per_chip_kg=fpga_per_chip.eol,
        per_chip_embodied_kg=fpga_per_chip.total,
        op_per_chip_year_kg=suite.operation.per_chip_year_kg(fpga_device.peak_power_w),
        appdev_dev_kg=farm_kw * fpga_dev_hours * appdev_intensity,
        appdev_config_kw=config_kw,
        appdev_config_hours_per_unit=suite.fpga_effort.config_hours_per_unit,
        appdev_intensity=appdev_intensity,
        chip_lifetime_years=fpga_device.chip_lifetime_years,
        capacity_mgates=fpga_device.logic_capacity_mgates,
    )

    asic_per_chip = AsicLifecycleModel(device=asic_device, suite=suite).per_chip_embodied()
    asic_dev_hours = suite.asic_effort.per_application_hours()
    asic_side = SideConstants(
        design_kg=suite.design.project_kg(
            asic_device.logic_gates_mgates, suite.asic_team
        ),
        mfg_per_chip_kg=asic_per_chip.manufacturing,
        pkg_per_chip_kg=asic_per_chip.packaging,
        eol_per_chip_kg=asic_per_chip.eol,
        per_chip_embodied_kg=asic_per_chip.total,
        op_per_chip_year_kg=suite.operation.per_chip_year_kg(asic_device.peak_power_w),
        appdev_dev_kg=farm_kw * asic_dev_hours * appdev_intensity,
        appdev_config_kw=config_kw,
        appdev_config_hours_per_unit=suite.asic_effort.config_hours_per_unit,
        appdev_intensity=appdev_intensity,
        chip_lifetime_years=asic_device.chip_lifetime_years,
        capacity_mgates=None,
    )
    return fpga_side, asic_side


# ----------------------------------------------------------------------
# Parameter-space side constants (columnar)
# ----------------------------------------------------------------------

# The model-parameter column registry and extraction live in
# :mod:`repro.engine.vector.params`; this module only composes columns.


def _kernel_side_constants(
    p: ParameterBatch, *, fpga_side: bool
) -> SideConstants:
    """Per-chip constant columns for one side, via the array kernels.

    Columns come from a :class:`ParameterBatch`, so each one is either a
    per-row array or a length-1 broadcast value.  Sub-models whose
    inputs are all broadcast values produce broadcast constants — a
    Monte-Carlo batch perturbing only the operational intensity computes
    manufacturing/packaging/EOL/design once, not per draw.  The
    manufacturing kernel masks rows internally, so its inputs are
    broadcast to a common shape first.
    """
    if fpga_side:
        area = p.col(P.F_AREA)
        power = p.col(P.F_POWER)
        life = p.col(P.F_LIFE)
        gates = p.col(P.F_GATES)
        epa, gpa = p.col(P.F_EPA), p.col(P.F_GPA)
        mpa_new, mpa_rec = p.col(P.F_MPA_NEW), p.col(P.F_MPA_REC)
        defect, line_yield = p.col(P.F_DEFECT), p.col(P.F_LINE_YIELD)
        wafer_d = p.col(P.F_WAFER_D)
        team_years = p.col(P.F_TEAM_YEARS)
        dev_kg = p.col(P.F_DEV_KG)
        chpu = p.col(P.F_CHPU)
        capacity = p.col(P.F_CAPACITY)
    else:
        area = p.col(P.A_AREA)
        power = p.col(P.A_POWER)
        life = p.col(P.A_LIFE)
        gates = p.col(P.A_GATES)
        epa, gpa = p.col(P.A_EPA), p.col(P.A_GPA)
        mpa_new, mpa_rec = p.col(P.A_MPA_NEW), p.col(P.A_MPA_REC)
        defect, line_yield = p.col(P.A_DEFECT), p.col(P.A_LINE_YIELD)
        wafer_d = p.col(P.A_WAFER_D)
        team_years = p.col(P.A_TEAM_YEARS)
        dev_kg = p.col(P.A_DEV_KG)
        chpu = p.col(P.A_CHPU)
        capacity = None

    (
        b_area, b_epa, b_gpa, b_mpa_new, b_mpa_rec, b_defect, b_line_yield,
        b_wafer_d, b_fab_ci, b_abate, b_edge, b_scribe, b_rho, b_yield,
        b_charge,
    ) = np.broadcast_arrays(
        area, epa, gpa, mpa_new, mpa_rec, defect, line_yield, wafer_d,
        p.col(P.MFG_FAB_CI), p.col(P.MFG_ABATE), p.col(P.MFG_EDGE),
        p.col(P.MFG_SCRIBE), p.col(P.MFG_RHO), p.col(P.MFG_YIELD_CODE),
        p.col(P.MFG_CHARGE),
    )
    mfg = manufacturing_per_die_kg(
        b_area, b_epa, b_gpa, b_mpa_new, b_mpa_rec, b_defect, b_line_yield,
        b_wafer_d, b_fab_ci, b_abate, b_edge, b_scribe, b_rho, b_yield,
        b_charge != 0.0,
    )
    pkg, mass_g = packaging_per_chip(
        area, p.col(P.PKG_SUB), p.col(P.PKG_ASM_KWH), p.col(P.PKG_ASM_CI),
        p.col(P.PKG_FANOUT), p.col(P.PKG_BASE_KG), p.col(P.PKG_MASS_CM2),
        p.col(P.PKG_BASE_MASS),
    )
    eol = eol_per_chip_kg(
        mass_g, p.col(P.EOL_DELTA), p.col(P.EOL_DISCARD),
        p.col(P.EOL_CREDIT), p.col(P.EOL_TRANSPORT),
    )
    design = design_project_kg(
        gates, p.col(P.DES_ANNUAL_KWH), team_years, p.col(P.DES_CI),
        p.col(P.DES_AVG_GATES), p.col(P.DES_BETA),
    )
    op = operation_per_chip_year_kg(
        power, p.col(P.OP_DUTY), p.col(P.OP_IDLE), p.col(P.OP_PUE),
        p.col(P.OP_CI),
    )
    return SideConstants(
        design_kg=design,
        mfg_per_chip_kg=mfg,
        pkg_per_chip_kg=pkg,
        eol_per_chip_kg=eol,
        per_chip_embodied_kg=(mfg + pkg) + eol,
        op_per_chip_year_kg=op,
        appdev_dev_kg=dev_kg,
        appdev_config_kw=p.col(P.AD_CONFIG_KW),
        appdev_config_hours_per_unit=chpu,
        appdev_intensity=p.col(P.AD_CI),
        chip_lifetime_years=life,
        capacity_mgates=capacity,
    )


# ----------------------------------------------------------------------
# Composition: scenario accounting over constants
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BatchResult:
    """Array-valued outcome of one evaluation batch.

    Mirrors a tuple of :class:`ComparisonResult` as struct-of-arrays:
    ``ratios[i]``, ``winners[i]``, totals and per-component breakdowns
    all refer to row ``i`` of the input batch.  Component dicts are keyed
    by :attr:`CarbonFootprint.COMPONENTS`.
    """

    ratios: np.ndarray
    winners: np.ndarray
    fpga_totals: np.ndarray
    asic_totals: np.ndarray
    fpga_components: dict[str, np.ndarray]
    asic_components: dict[str, np.ndarray]
    fpga_per_chip_embodied_kg: np.ndarray
    asic_per_chip_embodied_kg: np.ndarray
    n_fpga: np.ndarray
    fpga_generations: np.ndarray
    #: Per-application ASIC chip generations.  ``0`` marks rows where a
    #: single per-application value is undefined (heterogeneous
    #: lifetimes, served by the scalar fallback).
    asic_generations: np.ndarray
    num_apps: np.ndarray
    #: Per-application ASIC component arrays (uniform applications), for
    #: materialising ``AsicAssessment.per_application``.
    asic_app_components: dict[str, np.ndarray] = field(repr=False, default_factory=dict)
    #: Rows computed via the scalar fallback keep their full results.
    fallback: dict[int, ComparisonResult] = field(repr=False, default_factory=dict)

    @property
    def size(self) -> int:
        """Number of rows in the batch."""
        return int(self.ratios.shape[0])

    def __len__(self) -> int:
        return self.size

    @property
    def fpga_advantage_kg(self) -> np.ndarray:
        """ASIC total minus FPGA total per row (positive = FPGA wins)."""
        return self.asic_totals - self.fpga_totals

    def fpga_footprint(self, index: int) -> CarbonFootprint:
        """Materialise the FPGA footprint of one row."""
        if index in self.fallback:
            return self.fallback[index].fpga.footprint
        return CarbonFootprint(
            **{k: float(v[index]) for k, v in self.fpga_components.items()}
        )

    def asic_footprint(self, index: int) -> CarbonFootprint:
        """Materialise the ASIC footprint of one row."""
        if index in self.fallback:
            return self.fallback[index].asic.footprint
        return CarbonFootprint(
            **{k: float(v[index]) for k, v in self.asic_components.items()}
        )

    def comparison(self, index: int, scenario: Scenario) -> ComparisonResult:
        """Materialise one row as a full :class:`ComparisonResult`.

        Used by the engine fast path to populate the LRU cache; the
        result is indistinguishable from the scalar path's.
        """
        if index in self.fallback:
            return self.fallback[index]
        fpga = FpgaAssessment(
            footprint=self.fpga_footprint(index),
            per_chip_embodied_kg=float(self.fpga_per_chip_embodied_kg[index]),
            n_fpga_per_unit=int(self.n_fpga[index]),
            generations=int(self.fpga_generations[index]),
        )
        app_footprint = CarbonFootprint(
            **{k: float(v[index]) for k, v in self.asic_app_components.items()}
        )
        asic = AsicAssessment(
            footprint=self.asic_footprint(index),
            per_chip_embodied_kg=float(self.asic_per_chip_embodied_kg[index]),
            per_application=(app_footprint,) * int(self.num_apps[index]),
        )
        return ComparisonResult(scenario=scenario, fpga=fpga, asic=asic)

    def slice_rows(self, start: int, stop: int) -> "BatchResult":
        """Row-range view ``[start, stop)`` of this result.

        Array fields are NumPy views (no copy); the fallback dict is
        re-keyed to the slice.  Used by the async serving layer to hand
        each coalesced client request its own rows of a fused batch.
        """
        rows = slice(start, stop)
        return BatchResult(
            ratios=self.ratios[rows],
            winners=self.winners[rows],
            fpga_totals=self.fpga_totals[rows],
            asic_totals=self.asic_totals[rows],
            fpga_components={k: v[rows] for k, v in self.fpga_components.items()},
            asic_components={k: v[rows] for k, v in self.asic_components.items()},
            fpga_per_chip_embodied_kg=self.fpga_per_chip_embodied_kg[rows],
            asic_per_chip_embodied_kg=self.asic_per_chip_embodied_kg[rows],
            n_fpga=self.n_fpga[rows],
            fpga_generations=self.fpga_generations[rows],
            asic_generations=self.asic_generations[rows],
            num_apps=self.num_apps[rows],
            asic_app_components={
                k: v[rows] for k, v in self.asic_app_components.items()
            },
            fallback={
                i - start: r
                for i, r in self.fallback.items()
                if start <= i < stop
            },
        )

    @classmethod
    def concat(cls, parts: "Sequence[BatchResult]") -> "BatchResult":
        """Fuse per-chunk results into one (row order = input order).

        The row-wise inverse of :meth:`slice_rows`, used by the engine's
        chunked parameter-batch dispatch; fallback rows are re-keyed by
        their chunk offsets.
        """
        if not parts:
            raise ParameterError("concat requires at least one BatchResult")
        if len(parts) == 1:
            return parts[0]

        def cat(field_name: str) -> np.ndarray:
            return np.concatenate([getattr(r, field_name) for r in parts])

        def cat_components(field_name: str) -> dict[str, np.ndarray]:
            keys = getattr(parts[0], field_name).keys()
            return {
                k: np.concatenate([getattr(r, field_name)[k] for r in parts])
                for k in keys
            }

        fallback: dict[int, ComparisonResult] = {}
        offset = 0
        for part in parts:
            for i, result in part.fallback.items():
                fallback[offset + i] = result
            offset += part.size
        return cls(
            ratios=cat("ratios"),
            winners=cat("winners"),
            fpga_totals=cat("fpga_totals"),
            asic_totals=cat("asic_totals"),
            fpga_components=cat_components("fpga_components"),
            asic_components=cat_components("asic_components"),
            fpga_per_chip_embodied_kg=cat("fpga_per_chip_embodied_kg"),
            asic_per_chip_embodied_kg=cat("asic_per_chip_embodied_kg"),
            n_fpga=cat("n_fpga"),
            fpga_generations=cat("fpga_generations"),
            asic_generations=cat("asic_generations"),
            num_apps=cat("num_apps"),
            asic_app_components=cat_components("asic_app_components"),
            fallback=fallback,
        )

    @classmethod
    def from_results(
        cls,
        comparisons: Sequence[ComparisonResult],
        comparators: "Sequence[PlatformComparator] | PlatformComparator | None" = None,
    ) -> "BatchResult":
        """Columnise scalar results (the ``vectorize=False`` spelling).

        ``comparators`` (one shared or one per row) supplies the ASIC
        chip lifetimes needed to reconstruct :attr:`asic_generations`,
        which :class:`ComparisonResult` does not carry; without it (or
        for heterogeneous-lifetime rows) those entries are ``0``.
        """
        n = len(comparisons)
        components = CarbonFootprint.COMPONENTS
        fpga_components = {k: np.empty(n) for k in components}
        asic_components = {k: np.empty(n) for k in components}
        fpga_totals = np.empty(n)
        asic_totals = np.empty(n)
        ratios = np.empty(n)
        n_fpga = np.empty(n, dtype=np.int64)
        fpga_gen = np.empty(n, dtype=np.int64)
        asic_gen = np.zeros(n, dtype=np.int64)
        num_apps = np.empty(n, dtype=np.int64)
        fpga_pc = np.empty(n)
        asic_pc = np.empty(n)
        for i, c in enumerate(comparisons):
            for k in components:
                fpga_components[k][i] = getattr(c.fpga.footprint, k)
                asic_components[k][i] = getattr(c.asic.footprint, k)
            fpga_totals[i] = c.fpga.footprint.total
            asic_totals[i] = c.asic.footprint.total
            ratios[i] = c.ratio
            n_fpga[i] = c.fpga.n_fpga_per_unit
            fpga_gen[i] = c.fpga.generations
            num_apps[i] = c.scenario.num_apps
            fpga_pc[i] = c.fpga.per_chip_embodied_kg
            asic_pc[i] = c.asic.per_chip_embodied_kg
            if comparators is not None:
                comparator = (
                    comparators
                    if isinstance(comparators, PlatformComparator)
                    else comparators[i]
                )
                lifetimes = c.scenario.lifetimes
                if all(t == lifetimes[0] for t in lifetimes):
                    asic_gen[i] = chip_generations(
                        lifetimes[0],
                        comparator.asic_device.chip_lifetime_years,
                    )
        return cls(
            ratios=ratios,
            winners=winner_kernel(fpga_totals, asic_totals),
            fpga_totals=fpga_totals,
            asic_totals=asic_totals,
            fpga_components=fpga_components,
            asic_components=asic_components,
            fpga_per_chip_embodied_kg=fpga_pc,
            asic_per_chip_embodied_kg=asic_pc,
            n_fpga=n_fpga,
            fpga_generations=fpga_gen,
            asic_generations=asic_gen,
            num_apps=num_apps,
            asic_app_components={},
            fallback=dict(enumerate(comparisons)),
        )


def _compose(
    fpga: SideConstants, asic: SideConstants, batch: ScenarioBatch
) -> BatchResult:
    """Scenario accounting over per-chip constants, as array math.

    Operation order mirrors :meth:`FpgaLifecycleModel.assess` /
    :meth:`AsicLifecycleModel.assess` exactly (including the
    per-application left-folds), so given exact constants the outputs are
    bit-identical to the scalar path.
    """
    n = batch.size
    num_apps = batch.num_apps
    volume = batch.volume
    vol_f = volume.astype(np.float64)
    lifetime = batch.lifetime

    # N_FPGA = ceil(app_size / capacity), 1 when sized to the device.
    capacity = np.broadcast_to(
        np.asarray(fpga.capacity_mgates, dtype=np.float64), (n,)
    )
    sized = ~np.isnan(batch.app_size_mgates)
    safe_size = np.where(sized, batch.app_size_mgates, capacity)
    units = np.maximum(1, np.ceil(safe_size / capacity).astype(np.int64))
    n_fpga = np.where(sized, units, 1)

    # FPGA chip generations over the study horizon (Fig. 9 semantics).
    total_years = repeat_add(lifetime, num_apps)
    horizon = np.where(
        np.isnan(batch.evaluation_years), total_years, batch.evaluation_years
    )
    fpga_gen = np.where(
        batch.enforce_chip_lifetime,
        generations_kernel(horizon, fpga.chip_lifetime_years),
        1,
    )

    unit_count = volume * n_fpga
    unit_f = unit_count.astype(np.float64)
    fleet = (unit_count * fpga_gen).astype(np.float64)

    zeros = np.zeros(n)
    f_design = zeros + fpga.design_kg
    f_mfg = fpga.mfg_per_chip_kg * fleet
    f_pkg = fpga.pkg_per_chip_kg * fleet
    f_eol = fpga.eol_per_chip_kg * fleet
    op_app = (lifetime * unit_f) * fpga.op_per_chip_year_kg
    f_op = repeat_add(op_app, num_apps)
    config_hours = fpga.appdev_config_hours_per_unit * unit_f
    configuration = (fpga.appdev_config_kw * config_hours) * fpga.appdev_intensity
    appdev_app = fpga.appdev_dev_kg + configuration
    f_appdev = repeat_add(appdev_app, num_apps)
    fpga_totals = (((f_design + f_mfg) + f_pkg) + f_eol) + (f_op + f_appdev)

    asic_gen = generations_kernel(lifetime, asic.chip_lifetime_years)
    chips = (volume * asic_gen).astype(np.float64)
    a_design_app = zeros + asic.design_kg
    a_mfg_app = asic.mfg_per_chip_kg * chips
    a_pkg_app = asic.pkg_per_chip_kg * chips
    a_eol_app = asic.eol_per_chip_kg * chips
    a_op_app = (lifetime * vol_f) * asic.op_per_chip_year_kg
    a_config_hours = asic.appdev_config_hours_per_unit * vol_f
    a_configuration = (asic.appdev_config_kw * a_config_hours) * asic.appdev_intensity
    a_appdev_app = asic.appdev_dev_kg + a_configuration
    a_design = repeat_add(a_design_app, num_apps)
    a_mfg = repeat_add(a_mfg_app, num_apps)
    a_pkg = repeat_add(a_pkg_app, num_apps)
    a_eol = repeat_add(a_eol_app, num_apps)
    a_op = repeat_add(a_op_app, num_apps)
    a_appdev = repeat_add(a_appdev_app, num_apps)
    asic_totals = (((a_design + a_mfg) + a_pkg) + a_eol) + (a_op + a_appdev)

    return BatchResult(
        ratios=ratio_kernel(fpga_totals, asic_totals),
        winners=winner_kernel(fpga_totals, asic_totals),
        fpga_totals=fpga_totals,
        asic_totals=asic_totals,
        fpga_components={
            "design": f_design,
            "manufacturing": f_mfg,
            "packaging": f_pkg,
            "eol": f_eol,
            "appdev": f_appdev,
            "operational": f_op,
        },
        asic_components={
            "design": a_design,
            "manufacturing": a_mfg,
            "packaging": a_pkg,
            "eol": a_eol,
            "appdev": a_appdev,
            "operational": a_op,
        },
        fpga_per_chip_embodied_kg=zeros + fpga.per_chip_embodied_kg,
        asic_per_chip_embodied_kg=zeros + asic.per_chip_embodied_kg,
        n_fpga=n_fpga,
        fpga_generations=fpga_gen,
        asic_generations=asic_gen,
        num_apps=num_apps.copy(),
        asic_app_components={
            "design": a_design_app,
            "manufacturing": a_mfg_app,
            "packaging": a_pkg_app,
            "eol": a_eol_app,
            "appdev": a_appdev_app,
            "operational": a_op_app,
        },
        fallback={},
    )


def _patch_fallback_rows(
    result: BatchResult,
    batch: ScenarioBatch,
    comparators: "Sequence[PlatformComparator] | PlatformComparator",
) -> BatchResult:
    """Recompute uncovered rows through the scalar path, in place.

    ``comparators`` is either one comparator (same-comparator batches) or
    a per-row sequence.  The composed arrays for uncovered rows are
    overwritten with scalar results and the full ``ComparisonResult`` is
    kept for materialisation.
    """
    indices = np.nonzero(~batch.covered)[0]
    if indices.size == 0:
        return result
    for i in (int(j) for j in indices):
        comparator = (
            comparators if isinstance(comparators, PlatformComparator)
            else comparators[i]
        )
        comparison = comparator.compare(batch.scenario_at(i))
        result.fallback[i] = comparison
        for k in CarbonFootprint.COMPONENTS:
            result.fpga_components[k][i] = getattr(comparison.fpga.footprint, k)
            result.asic_components[k][i] = getattr(comparison.asic.footprint, k)
        result.fpga_totals[i] = comparison.fpga.footprint.total
        result.asic_totals[i] = comparison.asic.footprint.total
        result.ratios[i] = comparison.ratio
        result.winners[i] = comparison.winner
        result.fpga_per_chip_embodied_kg[i] = comparison.fpga.per_chip_embodied_kg
        result.asic_per_chip_embodied_kg[i] = comparison.asic.per_chip_embodied_kg
        result.n_fpga[i] = comparison.fpga.n_fpga_per_unit
        result.fpga_generations[i] = comparison.fpga.generations
        result.asic_generations[i] = 0  # undefined for ragged lifetimes
    return result


class VectorizedEvaluator:
    """Batch evaluation through the NumPy kernels.

    Stateless apart from the memoised per-comparator constants and the
    optional fused kernel's scratch pool; safe to share from one thread
    (the engine owns one and the analysis batch entry points reach it
    through the engine).

    ``kernel_tier`` selects the fused single-pass tier for
    :meth:`reduce_batch` (``auto``/``fused``/``numba``/``numpy``; default
    honours the ``REPRO_KERNEL`` environment variable).  ``kernel_dtype``
    (``float32``/``float64``) is the fused tier's summary precision —
    see :class:`~repro.engine.vector.fused.FusedKernel`.
    """

    def __init__(
        self,
        kernel_tier: "str | None" = None,
        kernel_dtype: "np.dtype | type" = np.float64,
    ) -> None:
        from repro.engine.vector.fused import make_kernel

        self._fused = make_kernel(kernel_tier, kernel_dtype)

    @property
    def kernel_tier_name(self) -> str:
        """Resolved backend label (``fused-numpy``/``numpy-chain``/...)."""
        return self._fused.name if self._fused is not None else "numpy-chain"

    def reduce_batch(
        self, params: ParameterBatch, batch: ScenarioBatch
    ) -> "BatchResult | FusedResult":
        """Reduce-only evaluation: fused tier when armed, chain otherwise.

        The streaming chunk workers feed reducers through this method.
        With a fused kernel the return value is the slimmer
        :class:`~repro.engine.vector.fused.FusedResult` (ratios, totals,
        winners, exact win count — everything a
        :class:`~repro.engine.vector.reducers.StreamingReducer`
        consumes); batches the fused tier cannot serve (uncovered rows)
        fall back to the chain transparently.
        """
        if self._fused is not None:
            result = self._fused.evaluate(params, batch)
            if result is not None:
                return result
        return self.evaluate_param_batch(params, batch)

    @staticmethod
    def covers(scenario: Scenario) -> bool:
        """Whether the kernel evaluates ``scenario``.

        Heterogeneous per-application lifetimes and fractional volumes
        (which the int64 volume column would silently truncate) take the
        scalar fallback; everything else — horizon overrides,
        chip-lifetime enforcement, application sizing — is in-kernel.
        """
        lifetimes = scenario.lifetimes
        return (
            all(t == lifetimes[0] for t in lifetimes)
            and scenario.volume == int(scenario.volume)
        )

    def evaluate_batch(
        self,
        comparator: PlatformComparator,
        scenarios: "ScenarioBatch | Iterable[Scenario]",
    ) -> BatchResult:
        """Assess one comparator over a scenario batch, vectorised.

        Per-chip constants come from the scalar sub-models (computed once
        per comparator, memoised), so results are bit-identical to
        :meth:`PlatformComparator.compare` for covered rows; uncovered
        rows fall back to the scalar path transparently.
        """
        batch = (
            scenarios
            if isinstance(scenarios, ScenarioBatch)
            else ScenarioBatch.from_scenarios(tuple(scenarios))
        )
        fpga_side, asic_side = comparator_constants(comparator)
        result = _compose(fpga_side, asic_side, batch)
        return _patch_fallback_rows(result, batch, comparator)

    def evaluate_param_batch(
        self, params: ParameterBatch, batch: ScenarioBatch
    ) -> BatchResult:
        """Assess parameter-space rows against scenario rows, columnar.

        The per-chip constants are computed through the array kernels
        straight from the parameter columns — no comparator objects, no
        per-row extraction.  Broadcast (length-1) parameter columns keep
        unperturbed sub-models scalar; per-row columns vectorise them.
        Parity with the scalar object path is ``rtol <= 1e-12``.

        Rows the kernel does not cover are composed anyway (their
        values are garbage); callers owning comparator objects must
        patch them via the scalar fallback — the engine's
        :meth:`~repro.engine.engine.EvaluationEngine.evaluate_param_batch`
        does this when the batch carries comparators.
        """
        if params.size != batch.size:
            raise ParameterError(
                f"parameter batch has {params.size} rows, "
                f"scenario batch has {batch.size}"
            )
        fpga_side = _kernel_side_constants(params, fpga_side=True)
        asic_side = _kernel_side_constants(params, fpga_side=False)
        return _compose(fpga_side, asic_side, batch)

    def evaluate_pairs_batch(
        self,
        pairs: Iterable[tuple[PlatformComparator, Scenario]],
    ) -> BatchResult:
        """Assess many (comparator, scenario) pairs, fully vectorised.

        Unlike :meth:`evaluate_batch` the per-chip constants are computed
        through the array kernels from extracted model parameters, so
        batches where *every row has its own suite* (Monte-Carlo draws,
        DSE grids) still run as array math.  Parity with the scalar path
        is ``rtol <= 1e-12``.
        """
        pair_list = list(pairs)
        comparators = [c for c, _ in pair_list]
        batch = ScenarioBatch.from_scenarios(tuple(s for _, s in pair_list))
        params = ParameterBatch.from_comparators(comparators)
        result = self.evaluate_param_batch(params, batch)
        return _patch_fallback_rows(result, batch, comparators)
