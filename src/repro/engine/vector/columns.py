"""Column-oriented (struct-of-arrays) scenario batches.

The scalar evaluation path walks one :class:`~repro.core.scenario.Scenario`
at a time through dataclass-built lifecycle models.  The vector kernel
instead consumes whole batches of scenarios as NumPy columns — one array
per scenario field — so a 10k-cell heatmap or a 10k-draw Monte-Carlo run
becomes a handful of array expressions instead of 10k object walks.

A :class:`ScenarioBatch` can be built two ways:

* :meth:`ScenarioBatch.from_scenarios` — from existing ``Scenario``
  objects (the engine fast path).  Rows whose per-application lifetimes
  are heterogeneous are marked uncovered; the engine falls back to the
  scalar path for those pairs.
* :meth:`ScenarioBatch.from_arrays` — directly from axis arrays (the
  analysis batch entry points), never materialising ``Scenario`` objects
  at all.  Validation is vectorised and mirrors ``Scenario.__post_init__``.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.scenario import Scenario
from repro.errors import ParameterError


@dataclass(frozen=True)
class ScenarioBatch:
    """N scenarios as columns, ready for the vector kernel.

    Attributes:
        num_apps: ``N_app`` per row (int64).
        volume: ``N_vol`` per row (int64).
        lifetime: Uniform per-application lifetime per row (float64).
            Only meaningful where :attr:`covered` is True.
        evaluation_years: Horizon override per row; ``nan`` means "derive
            from the application lifetimes" (the ``None`` spelling).
        app_size_mgates: Application size per row; ``nan`` means "sized
            to the device" (``N_FPGA`` = 1).
        enforce_chip_lifetime: Fig. 9 repurchase semantics per row.
        covered: True where the kernel can evaluate the row (uniform
            per-application lifetimes and an integral volume — the
            int64 volume column cannot represent the fractional volumes
            ``Scenario`` tolerates).  Everything else is scalar-path
            territory.
        scenarios: The originating ``Scenario`` objects when built via
            :meth:`from_scenarios` (needed for the scalar fallback);
            ``None`` for pure-array batches, which are covered by
            construction.
    """

    num_apps: np.ndarray
    volume: np.ndarray
    lifetime: np.ndarray
    evaluation_years: np.ndarray
    app_size_mgates: np.ndarray
    enforce_chip_lifetime: np.ndarray
    covered: np.ndarray
    scenarios: tuple[Scenario, ...] | None = None

    @property
    def size(self) -> int:
        """Number of rows (scenarios) in the batch."""
        return int(self.num_apps.shape[0])

    def __len__(self) -> int:
        return self.size

    @property
    def all_covered(self) -> bool:
        """True when every row is kernel-evaluable."""
        return bool(self.covered.all())

    def scenario_at(self, index: int) -> Scenario:
        """The ``Scenario`` object behind row ``index``.

        Returns the originating object when one exists, otherwise
        rebuilds an equivalent scenario from the columns (pure-array
        batches are always uniform, so this is lossless).
        """
        if self.scenarios is not None:
            return self.scenarios[index]
        evaluation = float(self.evaluation_years[index])
        app_size = float(self.app_size_mgates[index])
        return Scenario(
            num_apps=int(self.num_apps[index]),
            app_lifetime_years=float(self.lifetime[index]),
            volume=int(self.volume[index]),
            evaluation_years=None if np.isnan(evaluation) else evaluation,
            app_size_mgates=None if np.isnan(app_size) else app_size,
            enforce_chip_lifetime=bool(self.enforce_chip_lifetime[index]),
        )

    @classmethod
    def tile(cls, scenario: Scenario, n: int) -> "ScenarioBatch":
        """Columnise one scenario ``n`` times (no per-row object work).

        The scenario axis of parameter-space batches: a Monte-Carlo run
        perturbs model parameters under one fixed deployment, so its
        scenario columns are constant.  Covered (uniform-lifetime,
        integral-volume) scenarios tile without keeping any ``Scenario``
        objects; uncovered ones keep the originating object per row so
        the scalar fallback still works.
        """
        if n < 1:
            raise ParameterError(f"tile needs n >= 1, got {n}")
        lifetimes = scenario.lifetimes
        uniform = (
            all(t == lifetimes[0] for t in lifetimes)
            and scenario.volume == int(scenario.volume)
        )

        # Stride-0 broadcast views instead of materialised np.full
        # columns: a tiled batch is constant by construction, so the
        # streaming hot path should not pay n-element allocation and
        # page-fault cost per chunk for seven constant columns.  The
        # views are read-only, which every consumer (kernels, the shm
        # packer, concat/take — both of which copy) already respects,
        # and rank-aware evaluators can detect the uniformity in O(1)
        # from ``strides[0] == 0``.
        def const(value, dtype) -> np.ndarray:
            return np.broadcast_to(np.asarray(value).astype(dtype), (n,))

        return cls(
            num_apps=const(scenario.num_apps, np.int64),
            volume=const(scenario.volume, np.int64),
            lifetime=const(lifetimes[0], np.float64),
            evaluation_years=const(
                np.nan if scenario.evaluation_years is None
                else scenario.evaluation_years,
                np.float64,
            ),
            app_size_mgates=const(
                np.nan if scenario.app_size_mgates is None
                else scenario.app_size_mgates,
                np.float64,
            ),
            enforce_chip_lifetime=const(scenario.enforce_chip_lifetime, bool),
            covered=const(uniform, bool),
            scenarios=None if uniform else (scenario,) * n,
        )

    @classmethod
    def from_scenarios(cls, scenarios: Sequence[Scenario]) -> "ScenarioBatch":
        """Columnise existing ``Scenario`` objects.

        Rows with heterogeneous per-application lifetimes keep their
        first lifetime in the column but are flagged uncovered.
        """
        scenarios = tuple(scenarios)
        n = len(scenarios)
        first = scenarios[0] if scenarios else None
        if n > 1 and all(s is first for s in scenarios):
            # Multi-comparator batches (Monte-Carlo, DSE) reuse one
            # scenario object across every row — columnise it once and
            # keep the originating objects for the scalar fallback.
            batch = cls.tile(first, n)
            return dataclasses.replace(batch, scenarios=scenarios)
        num_apps = np.empty(n, dtype=np.int64)
        volume = np.empty(n, dtype=np.int64)
        lifetime = np.empty(n, dtype=np.float64)
        evaluation = np.empty(n, dtype=np.float64)
        app_size = np.empty(n, dtype=np.float64)
        enforce = np.empty(n, dtype=bool)
        covered = np.empty(n, dtype=bool)
        for i, s in enumerate(scenarios):
            lifetimes = s.lifetimes
            first = lifetimes[0]
            num_apps[i] = s.num_apps
            volume[i] = s.volume
            lifetime[i] = first
            evaluation[i] = np.nan if s.evaluation_years is None else s.evaluation_years
            app_size[i] = np.nan if s.app_size_mgates is None else s.app_size_mgates
            enforce[i] = s.enforce_chip_lifetime
            covered[i] = (
                all(t == first for t in lifetimes)
                and s.volume == int(s.volume)
            )
        return cls(
            num_apps=num_apps,
            volume=volume,
            lifetime=lifetime,
            evaluation_years=evaluation,
            app_size_mgates=app_size,
            enforce_chip_lifetime=enforce,
            covered=covered,
            scenarios=scenarios,
        )

    @classmethod
    def from_arrays(
        cls,
        num_apps: "np.ndarray | Sequence[int] | int",
        lifetime: "np.ndarray | Sequence[float] | float",
        volume: "np.ndarray | Sequence[int] | int",
        evaluation_years: "np.ndarray | float | None" = None,
        app_size_mgates: "np.ndarray | float | None" = None,
        enforce_chip_lifetime: "np.ndarray | bool" = False,
    ) -> "ScenarioBatch":
        """Build a batch straight from axis arrays (no ``Scenario`` objects).

        Scalars broadcast against array inputs.  Validation mirrors
        ``Scenario.__post_init__`` but runs vectorised, once per batch.
        """
        num_apps_a = np.atleast_1d(np.asarray(num_apps, dtype=np.int64))
        lifetime_a = np.atleast_1d(np.asarray(lifetime, dtype=np.float64))
        volume_a = np.atleast_1d(np.asarray(volume, dtype=np.int64))
        evaluation_a = np.atleast_1d(
            np.asarray(
                np.nan if evaluation_years is None else evaluation_years,
                dtype=np.float64,
            )
        )
        app_size_a = np.atleast_1d(
            np.asarray(
                np.nan if app_size_mgates is None else app_size_mgates,
                dtype=np.float64,
            )
        )
        enforce_a = np.atleast_1d(np.asarray(enforce_chip_lifetime, dtype=bool))
        num_apps_a, lifetime_a, volume_a, evaluation_a, app_size_a, enforce_a = (
            np.broadcast_arrays(
                num_apps_a, lifetime_a, volume_a, evaluation_a, app_size_a, enforce_a
            )
        )
        if np.any(num_apps_a < 1):
            raise ParameterError(
                f"num_apps must be >= 1, got {int(num_apps_a.min())}"
            )
        if np.any(volume_a < 1):
            raise ParameterError(f"volume must be >= 1, got {int(volume_a.min())}")
        if np.any(~(lifetime_a > 0.0)):
            raise ParameterError("application lifetime must be > 0")
        finite_eval = evaluation_a[~np.isnan(evaluation_a)]
        if np.any(~(finite_eval > 0.0)):
            raise ParameterError("evaluation_years must be > 0")
        finite_size = app_size_a[~np.isnan(app_size_a)]
        if np.any(~(finite_size > 0.0)):
            raise ParameterError("app_size_mgates must be > 0")
        return cls(
            num_apps=np.ascontiguousarray(num_apps_a),
            volume=np.ascontiguousarray(volume_a),
            lifetime=np.ascontiguousarray(lifetime_a),
            evaluation_years=np.ascontiguousarray(evaluation_a),
            app_size_mgates=np.ascontiguousarray(app_size_a),
            enforce_chip_lifetime=np.ascontiguousarray(enforce_a),
            covered=np.ones(num_apps_a.shape, dtype=bool),
            scenarios=None,
        )

    @classmethod
    def concat(cls, batches: Sequence["ScenarioBatch"]) -> "ScenarioBatch":
        """Fuse several batches into one (row order = input order).

        Used by the async serving layer to coalesce concurrent requests
        into a single kernel dispatch.  All rows must be covered — the
        scalar fallback needs originating ``Scenario`` objects, which a
        fused batch does not carry uniformly; the service dispatches
        uncovered requests standalone instead.
        """
        if not batches:
            raise ParameterError("concat requires at least one batch")
        if len(batches) == 1:
            return batches[0]
        if not all(b.all_covered for b in batches):
            raise ParameterError("concat requires fully covered batches")
        return cls(
            num_apps=np.concatenate([b.num_apps for b in batches]),
            volume=np.concatenate([b.volume for b in batches]),
            lifetime=np.concatenate([b.lifetime for b in batches]),
            evaluation_years=np.concatenate([b.evaluation_years for b in batches]),
            app_size_mgates=np.concatenate([b.app_size_mgates for b in batches]),
            enforce_chip_lifetime=np.concatenate(
                [b.enforce_chip_lifetime for b in batches]
            ),
            covered=np.concatenate([b.covered for b in batches]),
            scenarios=None,
        )

    def slice_rows(self, start: int, stop: int) -> "ScenarioBatch":
        """Row-range view ``[start, stop)`` (NumPy views, no copy).

        Used by the engine's chunked parameter-batch dispatch to hand
        each worker its own column slices of one huge batch.
        """
        rows = slice(start, stop)
        return ScenarioBatch(
            num_apps=self.num_apps[rows],
            volume=self.volume[rows],
            lifetime=self.lifetime[rows],
            evaluation_years=self.evaluation_years[rows],
            app_size_mgates=self.app_size_mgates[rows],
            enforce_chip_lifetime=self.enforce_chip_lifetime[rows],
            covered=self.covered[rows],
            scenarios=(
                None if self.scenarios is None else self.scenarios[start:stop]
            ),
        )

    def take(self, indices: np.ndarray) -> "ScenarioBatch":
        """Row subset (used to split covered / fallback rows)."""
        scenarios = (
            None
            if self.scenarios is None
            else tuple(self.scenarios[int(i)] for i in indices)
        )
        return ScenarioBatch(
            num_apps=self.num_apps[indices],
            volume=self.volume[indices],
            lifetime=self.lifetime[indices],
            evaluation_years=self.evaluation_years[indices],
            app_size_mgates=self.app_size_mgates[indices],
            enforce_chip_lifetime=self.enforce_chip_lifetime[indices],
            covered=self.covered[indices],
            scenarios=scenarios,
        )
