"""Vectorized NumPy evaluation kernel behind the evaluation engine.

See :mod:`repro.engine.vector.evaluator` for the design rationale.
"""

from repro.engine.vector.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    Checkpoint,
    CheckpointJournal,
    source_token,
)
from repro.engine.vector.columns import ScenarioBatch
from repro.engine.vector.evaluator import (
    BatchResult,
    SideConstants,
    VectorizedEvaluator,
    comparator_constants,
)
from repro.engine.vector.params import N_PARAM_COLS, ParameterBatch, extract_row
from repro.engine.vector.reducers import (
    DEFAULT_RESERVOIR_K,
    REDUCE_BLOCK,
    REDUCER_REGISTRY,
    HistogramReducer,
    MomentsReducer,
    ParetoReducer,
    ReservoirQuantiles,
    StreamingReducer,
    StreamingReduction,
    TopKReducer,
    WinCountReducer,
)
from repro.engine.vector.streaming import (
    DEFAULT_STREAM_CHUNK_ROWS,
    MAX_STREAM_WORKERS,
    ArrayChunkSource,
    MonteCarloChunkSource,
    SharedArrayChunkSource,
    aligned_chunk_rows,
    run_stream,
)
from repro.engine.vector.kernels import (
    YIELD_MODEL_CODES,
    design_project_kg,
    die_yield_kernel,
    dies_per_wafer_kernel,
    eol_per_chip_kg,
    manufacturing_per_die_kg,
    operation_per_chip_year_kg,
    packaging_per_chip,
    ratio_kernel,
    repeat_add,
    wafer_area_per_die_kernel,
    winner_kernel,
)

__all__ = [
    "ArrayChunkSource",
    "BatchResult",
    "CHECKPOINT_FORMAT_VERSION",
    "Checkpoint",
    "CheckpointJournal",
    "DEFAULT_RESERVOIR_K",
    "DEFAULT_STREAM_CHUNK_ROWS",
    "HistogramReducer",
    "MAX_STREAM_WORKERS",
    "MomentsReducer",
    "MonteCarloChunkSource",
    "N_PARAM_COLS",
    "ParameterBatch",
    "ParetoReducer",
    "REDUCE_BLOCK",
    "REDUCER_REGISTRY",
    "ReservoirQuantiles",
    "ScenarioBatch",
    "SharedArrayChunkSource",
    "SideConstants",
    "StreamingReducer",
    "StreamingReduction",
    "TopKReducer",
    "WinCountReducer",
    "aligned_chunk_rows",
    "extract_row",
    "run_stream",
    "source_token",
    "VectorizedEvaluator",
    "YIELD_MODEL_CODES",
    "comparator_constants",
    "design_project_kg",
    "die_yield_kernel",
    "dies_per_wafer_kernel",
    "eol_per_chip_kg",
    "manufacturing_per_die_kg",
    "operation_per_chip_year_kg",
    "packaging_per_chip",
    "ratio_kernel",
    "repeat_add",
    "wafer_area_per_die_kernel",
    "winner_kernel",
]
