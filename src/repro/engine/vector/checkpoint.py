"""Durable execution: crash-resumable checkpoints for streaming jobs.

A 100M-draw Monte-Carlo or a fleet-scale DSE sweep is minutes of work
that PR 5 made restartable only from zero: a SIGKILL of the *parent*
process (OOM kill, node preemption, deploy restart) lost everything.
The two contracts that make cheap durable execution possible already
existed — reducer partials merge bit-identically in any order, and
chunk sources regenerate any row range deterministically
(``PCG64.advance``) — so a checkpoint only ever needs to persist the
**merged partials plus a completion bitmap**, never raw draws.

:class:`CheckpointJournal` maintains that state over fixed row ranges
("units", a whole number of chunks each).  As units complete, their
partials merge into the journal and the journal atomically rewrites its
file (tmp + fsync + ``os.replace`` via
:mod:`repro.engine.atomicio`) at a configurable row/time cadence, so a
crash at any instant leaves either the previous checkpoint or the new
one — never a torn file.  On resume the journal revalidates the **job
identity** — source digest, seed, row count, chunk size, unit size,
reduction schema, format version — and raises a typed
:class:`~repro.errors.CheckpointMismatchError` on drift, because
silently merging partials from a different job would produce a wrong
answer with no warning.  A corrupted or truncated checkpoint is
detected by a whole-file checksum and handled like a corrupt cache
snapshot: log and start cold (the checkpoint is a recovery artefact,
never ground truth).

The driver is :func:`repro.engine.vector.streaming.run_stream`
(``checkpoint=`` keyword), surfaced as
``EvaluationEngine.reduce_stream(checkpoint=...)``,
``monte_carlo_stream(checkpoint=...)`` and the CLI's
``mc --stream --checkpoint PATH``.
"""

from __future__ import annotations

import hashlib
import io
import json
import logging
import math
import pickle
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.engine.atomicio import atomic_write_bytes
from repro.engine.vector.reducers import StreamingReduction
from repro.errors import (
    CheckpointMismatchError,
    ParameterError,
    StoreCorruptError,
)

logger = logging.getLogger(__name__)

#: Bumped on any change to the checkpoint layout or reducer state
#: packing; a version mismatch is an identity mismatch (the old file
#: cannot be trusted to deserialize), not a corruption.
CHECKPOINT_FORMAT_VERSION = 1

_MAGIC = b"GFCKPT"
_DIGEST_BYTES = 16

#: Default unit count when no ``every_rows`` cadence is given: the run
#: is split into ~64 resume units so a crash loses at most ~1.6% of a
#: long job, while the bitmap and flush overhead stay negligible.
_DEFAULT_UNITS = 64


@dataclass(frozen=True)
class Checkpoint:
    """Checkpointing configuration for one streaming run.

    ``every_rows`` sets the durability granularity: partials are flushed
    (and resumable) every that-many rows, rounded up to whole chunks.
    When ``None``, the run is split into ~64 units and flushed on the
    ``every_s`` wall-clock cadence instead (plus a final flush either
    way).  ``every_s=None`` disables the timer.
    """

    path: "Path | str"
    every_rows: "int | None" = None
    every_s: "float | None" = 5.0


def source_token(source) -> str:
    """A stable identity digest for a chunk source.

    Sources that define ``checkpoint_token()`` (e.g.
    :class:`~repro.engine.vector.streaming.MonteCarloChunkSource`)
    provide a semantic digest of their study definition; anything else
    falls back to a digest of its pickle, which is exactly the payload
    a span worker would receive.
    """
    token = getattr(source, "checkpoint_token", None)
    if token is not None:
        return str(token())
    return hashlib.blake2b(
        pickle.dumps(source), digest_size=_DIGEST_BYTES
    ).hexdigest()


class CheckpointJournal:
    """Atomic persistence of merged partials + unit-completion bitmap.

    Construct with :meth:`open`, which loads and validates any existing
    file at the configured path.  The streaming executor then drains
    :meth:`pending` and calls :meth:`complete` per finished unit; the
    journal merges, marks, and flushes on its cadence.  :attr:`merged`
    is the live reduction holding everything completed so far.
    """

    def __init__(
        self,
        config: Checkpoint,
        prototype: StreamingReduction,
        identity: dict,
        units: "list[tuple[int, int]]",
    ) -> None:
        self.config = config
        self.path = Path(config.path)
        self.prototype = prototype
        self.identity = identity
        self.units = units
        self.done = np.zeros(len(units), dtype=bool)
        self.merged = prototype.fresh()
        #: Units restored from disk at open() (observability + tests).
        self.resumed_units = 0
        #: Successful flushes this journal performed (tests).
        self.flushes = 0
        self._rows_since_flush = 0
        self._last_flush_s = time.monotonic()

    # -- construction ---------------------------------------------------

    @classmethod
    def open(
        cls,
        config: Checkpoint,
        source,
        reduction: StreamingReduction,
        *,
        n: int,
        chunk_rows: int,
    ) -> "CheckpointJournal":
        """Build a journal for this job, resuming from disk if possible.

        Raises :class:`CheckpointMismatchError` when the file on disk
        belongs to a different job; starts cold (with a warning) when
        the file is corrupt or truncated.
        """
        if config.every_rows is not None and config.every_rows < 1:
            raise ParameterError(
                f"checkpoint every_rows must be >= 1, got {config.every_rows}"
            )
        if config.every_s is not None and config.every_s <= 0:
            raise ParameterError(
                f"checkpoint every_s must be > 0, got {config.every_s}"
            )
        n_chunks = math.ceil(n / chunk_rows)
        if config.every_rows is not None:
            unit_chunks = max(1, math.ceil(config.every_rows / chunk_rows))
        else:
            unit_chunks = max(1, math.ceil(n_chunks / _DEFAULT_UNITS))
        unit_rows = unit_chunks * chunk_rows
        units = [
            (start, min(start + unit_rows, n))
            for start in range(0, n, unit_rows)
        ]
        seed = getattr(source, "seed", None)
        identity = {
            "format": CHECKPOINT_FORMAT_VERSION,
            "source": source_token(source),
            "seed": None if seed is None else int(seed),
            "n_rows": int(n),
            "chunk_rows": int(chunk_rows),
            "unit_chunks": int(unit_chunks),
            "schema": reduction.schema_token(),
        }
        journal = cls(config, reduction, identity, units)
        try:
            raw = journal.path.read_bytes()
        except FileNotFoundError:
            return journal
        try:
            meta, done, state = _decode(raw)
        except StoreCorruptError as error:
            logger.warning(
                "checkpoint %s is unusable (%s); starting from scratch",
                journal.path, error,
            )
            return journal
        stored = {key: meta.get(key) for key in identity}
        if stored != identity:
            drift = sorted(
                key for key in identity if stored[key] != identity[key]
            )
            raise CheckpointMismatchError(
                f"checkpoint {journal.path} belongs to a different job "
                f"(mismatched: {', '.join(drift)}); delete it to start over"
            )
        if done.shape[0] != len(units):
            raise CheckpointMismatchError(
                f"checkpoint {journal.path} has {done.shape[0]} units, "
                f"expected {len(units)}"
            )
        journal.done = done.astype(bool).copy()
        journal.merged = reduction.from_state(state)
        journal.resumed_units = int(np.count_nonzero(journal.done))
        return journal

    # -- progress -------------------------------------------------------

    @property
    def finished(self) -> bool:
        """Whether every unit is already complete."""
        return bool(self.done.all())

    @property
    def rows_done(self) -> int:
        """Rows covered by completed units."""
        return sum(
            stop - start
            for (start, stop), flag in zip(self.units, self.done)
            if flag
        )

    def pending(self) -> "list[tuple[int, int, int]]":
        """``(unit_index, start_row, stop_row)`` of incomplete units."""
        return [
            (index, start, stop)
            for index, (start, stop) in enumerate(self.units)
            if not self.done[index]
        ]

    def complete(self, index: int, partial: StreamingReduction) -> None:
        """Merge one finished unit's partial and maybe flush."""
        if self.done[index]:
            raise ParameterError(f"unit {index} completed twice")
        self.merged.merge(partial)
        self.mark(index)

    def mark(self, index: int) -> None:
        """Record a unit whose rows were folded into :attr:`merged` directly.

        The sequential executor updates :attr:`merged` in place (no
        per-unit partial, no merge pass — reducer state is a pure
        function of which rows were reduced, so the result is identical
        and the per-unit overhead disappears) and then marks here.
        Safe because flushes only ever run from this method, i.e. at
        unit boundaries: persisted state always covers exactly the
        marked units.
        """
        if self.done[index]:
            raise ParameterError(f"unit {index} completed twice")
        self.done[index] = True
        start, stop = self.units[index]
        self._rows_since_flush += stop - start
        self.flush()

    # -- persistence ----------------------------------------------------

    def _due(self) -> bool:
        if self.config.every_rows is not None and (
            self._rows_since_flush >= self.config.every_rows
        ):
            return True
        return self.config.every_s is not None and (
            time.monotonic() - self._last_flush_s >= self.config.every_s
        )

    def flush(self, force: bool = False) -> bool:
        """Atomically rewrite the file if due (or ``force``)."""
        if not force and not self._due():
            return False
        meta = dict(self.identity)
        meta["rows_done"] = int(self.rows_done)
        arrays: dict[str, np.ndarray] = {"done": self.done}
        for key, array in self.merged.to_state().items():
            arrays[f"s.{key}"] = array
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        meta_json = json.dumps(meta, sort_keys=True).encode("utf-8")
        body = (
            len(meta_json).to_bytes(4, "little") + meta_json + buf.getvalue()
        )
        digest = hashlib.blake2b(body, digest_size=_DIGEST_BYTES).digest()
        atomic_write_bytes(self.path, _MAGIC + digest + body)
        self.flushes += 1
        self._rows_since_flush = 0
        self._last_flush_s = time.monotonic()
        return True


def _decode(raw: bytes) -> "tuple[dict, np.ndarray, dict[str, np.ndarray]]":
    """Parse checkpoint bytes into ``(meta, done, reduction_state)``.

    Raises :class:`StoreCorruptError` on any structural damage — the
    whole-file checksum catches truncation and bit flips before the
    payload is ever handed to :mod:`numpy`.
    """
    header = len(_MAGIC) + _DIGEST_BYTES + 4
    if len(raw) < header or not raw.startswith(_MAGIC):
        raise StoreCorruptError("not a checkpoint file (bad magic)")
    digest = raw[len(_MAGIC) : len(_MAGIC) + _DIGEST_BYTES]
    body = raw[len(_MAGIC) + _DIGEST_BYTES :]
    if hashlib.blake2b(body, digest_size=_DIGEST_BYTES).digest() != digest:
        raise StoreCorruptError("checkpoint checksum mismatch")
    meta_len = int.from_bytes(body[:4], "little")
    if meta_len <= 0 or 4 + meta_len > len(body):
        raise StoreCorruptError("checkpoint metadata length out of range")
    try:
        meta = json.loads(body[4 : 4 + meta_len].decode("utf-8"))
        with np.load(io.BytesIO(body[4 + meta_len :])) as archive:
            done = np.asarray(archive["done"], dtype=bool)
            state = {
                name[len("s."):]: archive[name].copy()
                for name in archive.files
                if name.startswith("s.")
            }
    except Exception as error:  # noqa: BLE001 - any decode failure is one corruption
        raise StoreCorruptError(f"checkpoint payload unreadable: {error}") from error
    return meta, done, state
