"""Streaming reducers: mergeable chunk reductions over batch results.

The paper's headline claims are *distributional* — FPGA win
probabilities, ratio quantiles, Pareto frontiers — yet the columnar
pipeline materialised a full :class:`~repro.engine.vector.BatchResult`
row per draw, hitting a memory wall near a million draws.  This module
provides the reduction layer of the fused sample→evaluate→reduce
streaming path: each reducer consumes one chunk of a
:class:`BatchResult` at a time, keeps only a bounded summary state, and
exposes a **mergeable-partials contract** so per-chunk (and per-worker)
reductions combine into exactly the reduction of the whole stream.

Determinism is part of the contract.  Every reducer here produces
**bit-identical state for any chunk size and worker count**, provided
chunk boundaries respect the reducer's :attr:`alignment`:

* :class:`MomentsReducer` — online count/mean/variance/min/max with
  win-independent Kahan–Neumaier compensation.  Partial sums are kept
  per fixed *absolute-index block* (``block`` rows each), so a chunking
  into 8k or 128k rows produces the same block partials; the final
  cross-block combine walks blocks in index order with a compensated
  (Neumaier) accumulator.  Merging unions disjoint block partials.
* :class:`WinCountReducer` — integer win/total counters (exact under
  any chunking by construction).
* :class:`HistogramReducer` — fixed-bin counts plus underflow /
  overflow / non-finite tallies; merging adds counts.
* :class:`ReservoirQuantiles` — a bottom-k priority sample ("reservoir
  sketch"): every draw gets a deterministic pseudo-random priority from
  a splitmix64 hash of its **absolute draw index**, and the sketch
  keeps the ``k`` smallest priorities.  The kept *set* is therefore a
  pure function of the stream, independent of chunking, and merging is
  concatenate-and-recompress.  Quantiles are exact whenever the stream
  holds at most ``k`` finite values, and carry the usual
  ``O(1/sqrt(k))`` rank error beyond that.
* :class:`TopKReducer` / :class:`ParetoReducer` — DSE reductions: the
  ``k`` best rows by greener-platform total (ties broken by row index)
  and the streaming non-dominated front over
  ``(fpga_total, asic_total)``.

:class:`StreamingReduction` bundles named reducers behind one
``update`` / ``merge`` / ``fresh`` surface; the chunk executors in
:mod:`repro.engine.vector.streaming` drive it.

Durability rides on a second contract: every reducer serialises its
complete state to packed NumPy arrays via ``to_state()`` and rebuilds
from them via ``from_state()`` (an instance method on any reducer with
the same configuration, like ``fresh()``).  The round trip is
bit-identical — ``from_state(to_state(r))`` then ``merge`` behaves
exactly like merging ``r`` itself — which is what lets
:class:`~repro.engine.vector.checkpoint.CheckpointJournal` persist
merged partials mid-run and resume a killed job to the exact answer an
uninterrupted run would have produced.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from typing import Protocol, runtime_checkable

import numpy as np

from repro.engine.vector.evaluator import BatchResult
from repro.errors import ParameterError

#: Default absolute-index block of :class:`MomentsReducer` partial sums.
#: Chunk sizes are rounded up to a multiple of the reduction's
#: alignment, so any chunking shares the same block partials and the
#: final moments are bit-identical across chunk sizes and worker counts.
REDUCE_BLOCK = 16_384

#: Default sample size of :class:`ReservoirQuantiles`.  Rank error is
#: ``~sqrt(q(1-q)/k)`` — about 0.2% at the median for the default — and
#: streams with at most ``k`` finite values are summarised exactly.
DEFAULT_RESERVOIR_K = 65_536


@runtime_checkable
class StreamingReducer(Protocol):
    """One mergeable streaming reduction over batch-result chunks.

    Implementations keep bounded state and obey the mergeable-partials
    contract: ``fresh()`` partials updated with disjoint chunk ranges
    and merged (in any order) reach the same state as one reducer fed
    the whole stream in order, bit-identically, provided every chunk
    boundary is a multiple of :attr:`alignment`.
    """

    #: Chunk boundaries must be multiples of this (1 = don't care).
    alignment: int

    def fresh(self) -> "StreamingReducer":
        """An empty reducer with this reducer's configuration."""
        ...

    def update(self, result: BatchResult, offset: int) -> None:
        """Consume a chunk whose first row has absolute index ``offset``."""
        ...

    def merge(self, other: "StreamingReducer") -> None:
        """Fold another partial (over disjoint rows) into this one."""
        ...

    def to_state(self) -> dict[str, np.ndarray]:
        """This reducer's complete state as packed NumPy arrays."""
        ...

    def from_state(self, state: dict[str, np.ndarray]) -> "StreamingReducer":
        """A new reducer rebuilt from :meth:`to_state` output.

        Like :meth:`fresh`, this is called on a configured prototype;
        implementations validate that the state's configuration matches
        and raise :class:`~repro.errors.ParameterError` on drift.
        """
        ...


def _neumaier_sum(values: Iterable[float]) -> float:
    """Compensated (Neumaier) sum, deterministic in iteration order."""
    total = 0.0
    compensation = 0.0
    for value in values:
        t = total + value
        if abs(total) >= abs(value):
            compensation += (total - t) + value
        else:
            compensation += (value - t) + total
        total = t
    return total + compensation


class MomentsReducer:
    """Streaming count/mean/variance/min/max over finite column values.

    Partial sums are kept per fixed absolute-index block (see module
    docstring), making the state — and therefore the final moments —
    bit-identical for any block-aligned chunking.  Non-finite values
    are counted but excluded from the moments, mirroring
    :attr:`MonteCarloResult.finite_ratios` semantics.
    """

    __slots__ = ("alignment", "source", "_blocks")

    def __init__(self, source: str = "ratios", block: int = REDUCE_BLOCK) -> None:
        if block < 1:
            raise ParameterError(f"block must be >= 1, got {block}")
        self.alignment = block
        self.source = source
        #: block index -> (n_total, n_finite, sum, M2, min, max) where
        #: M2 is the block's centred sum of squares — kept instead of a
        #: raw sum of squares so the cross-block (Chan) variance
        #: combine never catastrophically cancels for large-magnitude,
        #: tightly clustered columns (e.g. kg totals).
        self._blocks: dict[int, tuple[int, int, float, float, float, float]] = {}

    def fresh(self) -> "MomentsReducer":
        return MomentsReducer(source=self.source, block=self.alignment)

    def update(self, result: BatchResult, offset: int) -> None:
        values = np.asarray(getattr(result, self.source), dtype=np.float64)
        block = self.alignment
        if offset % block:
            raise ParameterError(
                f"chunk offset {offset} is not aligned to block {block}"
            )
        finite_all = np.isfinite(values)
        all_finite = bool(finite_all.all())
        centred_buf = np.empty(min(block, values.shape[0]))
        for start in range(0, values.shape[0], block):
            segment = values[start : start + block]
            if all_finite:
                # Fast path for fully finite chunks (every realistic
                # stream): same reductions over the same values — the
                # masked spellings below select the whole segment — so
                # the stored partials are bit-identical, without the
                # mask temporaries and fancy-indexed copies.
                n_finite = int(segment.shape[0])
                total = float(segment.sum())
                centred = np.subtract(
                    segment, total / n_finite, out=centred_buf[: n_finite]
                )
                np.multiply(centred, centred, out=centred)
                m2 = float(centred.sum())
                seg_min = float(segment.min())
                seg_max = float(segment.max())
            else:
                finite = finite_all[start : start + block]
                n_finite = int(np.count_nonzero(finite))
                masked = np.where(finite, segment, 0.0)
                total = float(masked.sum())
                if n_finite:
                    centred = np.where(finite, segment - total / n_finite, 0.0)
                    m2 = float((centred * centred).sum())
                else:
                    m2 = 0.0
                seg_min = float(segment[finite].min()) if n_finite else math.inf
                seg_max = float(segment[finite].max()) if n_finite else -math.inf
            key = (offset + start) // block
            if key in self._blocks:
                raise ParameterError(f"block {key} reduced twice")
            self._blocks[key] = (
                int(segment.shape[0]), n_finite, total, m2, seg_min, seg_max,
            )

    def merge(self, other: "MomentsReducer") -> None:
        overlap = self._blocks.keys() & other._blocks.keys()
        if overlap:
            raise ParameterError(f"merging overlapping blocks {sorted(overlap)}")
        self._blocks.update(other._blocks)

    def to_state(self) -> dict[str, np.ndarray]:
        keys = sorted(self._blocks)
        rows = [self._blocks[k] for k in keys]
        return {
            "block": np.array([self.alignment], dtype=np.int64),
            "keys": np.array(keys, dtype=np.int64),
            "counts": np.array([r[:2] for r in rows], dtype=np.int64
                               ).reshape(len(rows), 2),
            "sums": np.array([r[2:] for r in rows], dtype=np.float64
                             ).reshape(len(rows), 4),
        }

    def from_state(self, state: dict[str, np.ndarray]) -> "MomentsReducer":
        if int(state["block"][0]) != self.alignment:
            raise ParameterError(
                f"checkpointed block {int(state['block'][0])} != "
                f"configured block {self.alignment}"
            )
        restored = self.fresh()
        counts = np.asarray(state["counts"], dtype=np.int64)
        sums = np.asarray(state["sums"], dtype=np.float64)
        for i, key in enumerate(np.asarray(state["keys"], dtype=np.int64)):
            restored._blocks[int(key)] = (
                int(counts[i, 0]), int(counts[i, 1]),
                float(sums[i, 0]), float(sums[i, 1]),
                float(sums[i, 2]), float(sums[i, 3]),
            )
        return restored

    # -- finalisation ---------------------------------------------------

    @property
    def n_total(self) -> int:
        """Rows seen (finite or not)."""
        return sum(b[0] for b in self._blocks.values())

    @property
    def n_finite(self) -> int:
        """Rows with a finite value."""
        return sum(b[1] for b in self._blocks.values())

    def moments(self) -> dict[str, float]:
        """``{n, n_finite, mean, var, std, min, max}`` over finite values.

        The cross-block combine walks blocks in index order — a
        Neumaier-compensated accumulator for the mean, Chan's parallel
        M2 update for the variance — so the result is a pure function
        of the stream contents (independent of chunk size and worker
        count) and the variance stays accurate even when the spread is
        many orders of magnitude below the mean.
        """
        ordered = [self._blocks[k] for k in sorted(self._blocks)]
        n = sum(b[0] for b in ordered)
        n_finite = sum(b[1] for b in ordered)
        if n_finite == 0:
            nan = float("nan")
            return {"n": float(n), "n_finite": 0.0, "mean": nan, "var": nan,
                    "std": nan, "min": nan, "max": nan}
        total = _neumaier_sum(b[2] for b in ordered)
        run_n = 0
        run_mean = 0.0
        run_m2 = 0.0
        for b_n, b_finite, b_sum, b_m2, _, _ in ordered:
            if b_finite == 0:
                continue
            b_mean = b_sum / b_finite
            merged = run_n + b_finite
            delta = b_mean - run_mean
            run_m2 += b_m2 + delta * delta * run_n * b_finite / merged
            run_mean += delta * b_finite / merged
            run_n = merged
        var = max(0.0, run_m2 / n_finite)
        return {
            "n": float(n),
            "n_finite": float(n_finite),
            "mean": total / n_finite,
            "var": var,
            "std": math.sqrt(var),
            "min": min(b[4] for b in ordered),
            "max": max(b[5] for b in ordered),
        }


class WinCountReducer:
    """Exact per-platform win counters (totals-based, like ``winners``)."""

    __slots__ = ("alignment", "n", "fpga_wins")

    def __init__(self) -> None:
        self.alignment = 1
        self.n = 0
        self.fpga_wins = 0

    def fresh(self) -> "WinCountReducer":
        return WinCountReducer()

    def update(self, result: BatchResult, offset: int) -> None:
        # Fused-tier results carry an exact precomputed win count
        # (counted on the float64 winner mask) — consuming it skips
        # materialising the string winner column per chunk.
        count = getattr(result, "fpga_win_count", None)
        if count is not None:
            self.n += int(result.size)
            self.fpga_wins += int(count)
            return
        self.n += int(result.winners.shape[0])
        self.fpga_wins += int(np.count_nonzero(result.winners == "fpga"))

    def merge(self, other: "WinCountReducer") -> None:
        self.n += other.n
        self.fpga_wins += other.fpga_wins

    def to_state(self) -> dict[str, np.ndarray]:
        return {"counts": np.array([self.n, self.fpga_wins], dtype=np.int64)}

    def from_state(self, state: dict[str, np.ndarray]) -> "WinCountReducer":
        counts = np.asarray(state["counts"], dtype=np.int64)
        restored = self.fresh()
        restored.n = int(counts[0])
        restored.fpga_wins = int(counts[1])
        return restored

    @property
    def fpga_win_probability(self) -> float:
        """Fraction of rows the FPGA won (0 rows -> ``nan``)."""
        return self.fpga_wins / self.n if self.n else float("nan")


class HistogramReducer:
    """Fixed-bin histogram with underflow/overflow/non-finite tallies.

    Bin edges are ``bins`` equal-width intervals over ``[lo, hi]``
    (right-closed on the last bin, matching :func:`numpy.histogram`).
    Merging adds counts, so any chunking yields identical counts.
    """

    __slots__ = ("alignment", "source", "lo", "hi", "counts",
                 "underflow", "overflow", "non_finite")

    def __init__(
        self, lo: float, hi: float, bins: int = 64, source: str = "ratios"
    ) -> None:
        if not (math.isfinite(lo) and math.isfinite(hi) and hi > lo):
            raise ParameterError(f"need finite hi > lo, got [{lo}, {hi}]")
        if bins < 1:
            raise ParameterError(f"bins must be >= 1, got {bins}")
        self.alignment = 1
        self.source = source
        self.lo = float(lo)
        self.hi = float(hi)
        self.counts = np.zeros(bins, dtype=np.int64)
        self.underflow = 0
        self.overflow = 0
        self.non_finite = 0

    def fresh(self) -> "HistogramReducer":
        return HistogramReducer(self.lo, self.hi, int(self.counts.shape[0]),
                                source=self.source)

    @property
    def edges(self) -> np.ndarray:
        """The ``bins + 1`` bin edges."""
        return np.linspace(self.lo, self.hi, int(self.counts.shape[0]) + 1)

    def update(self, result: BatchResult, offset: int) -> None:
        values = np.asarray(getattr(result, self.source), dtype=np.float64)
        finite = values[np.isfinite(values)]
        self.non_finite += int(values.shape[0] - finite.shape[0])
        self.underflow += int(np.count_nonzero(finite < self.lo))
        self.overflow += int(np.count_nonzero(finite > self.hi))
        inside = finite[(finite >= self.lo) & (finite <= self.hi)]
        self.counts += np.histogram(inside, bins=int(self.counts.shape[0]),
                                    range=(self.lo, self.hi))[0]

    def merge(self, other: "HistogramReducer") -> None:
        if (other.lo, other.hi, other.counts.shape) != (
            self.lo, self.hi, self.counts.shape
        ):
            raise ParameterError("merging histograms with different bins")
        self.counts += other.counts
        self.underflow += other.underflow
        self.overflow += other.overflow
        self.non_finite += other.non_finite

    def to_state(self) -> dict[str, np.ndarray]:
        return {
            "range": np.array([self.lo, self.hi], dtype=np.float64),
            "counts": self.counts.copy(),
            "tallies": np.array(
                [self.underflow, self.overflow, self.non_finite],
                dtype=np.int64,
            ),
        }

    def from_state(self, state: dict[str, np.ndarray]) -> "HistogramReducer":
        rng = np.asarray(state["range"], dtype=np.float64)
        counts = np.asarray(state["counts"], dtype=np.int64)
        if (float(rng[0]), float(rng[1]), counts.shape) != (
            self.lo, self.hi, self.counts.shape
        ):
            raise ParameterError("checkpointed histogram has different bins")
        restored = self.fresh()
        restored.counts = counts.copy()
        tallies = np.asarray(state["tallies"], dtype=np.int64)
        restored.underflow = int(tallies[0])
        restored.overflow = int(tallies[1])
        restored.non_finite = int(tallies[2])
        return restored


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finaliser — a bijection on uint64 (no collisions)."""
    with np.errstate(over="ignore"):  # modular uint64 arithmetic on purpose
        z = x + np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))


def _splitmix64_into(x: np.ndarray, out: np.ndarray, tmp: np.ndarray) -> np.ndarray:
    """:func:`_splitmix64` into caller scratch — identical uint64 results
    (integer arithmetic is exact), zero temporaries."""
    with np.errstate(over="ignore"):  # modular uint64 arithmetic on purpose
        np.add(x, np.uint64(0x9E3779B97F4A7C15), out=out)
        np.right_shift(out, np.uint64(30), out=tmp)
        np.bitwise_xor(out, tmp, out=out)
        np.multiply(out, np.uint64(0xBF58476D1CE4E5B9), out=out)
        np.right_shift(out, np.uint64(27), out=tmp)
        np.bitwise_xor(out, tmp, out=out)
        np.multiply(out, np.uint64(0x94D049BB133111EB), out=out)
        np.right_shift(out, np.uint64(31), out=tmp)
        np.bitwise_xor(out, tmp, out=out)
        return out


class ReservoirQuantiles:
    """Deterministic bottom-k quantile sketch over finite column values.

    Every row's priority is ``splitmix64(index ^ mix(seed))`` — a pure
    function of its absolute draw index — and the sketch keeps the
    ``k`` rows with the smallest priorities (a uniform random sample of
    the stream).  Because priorities ignore chunk boundaries and
    splitmix64 is injective (no ties), the kept set is bit-identical
    for any chunk size and worker count; merging partials is
    concatenate-and-recompress.  Streams with at most ``k`` finite
    values are held in full, so small studies get *exact* quantiles.
    """

    __slots__ = ("alignment", "source", "k", "_seed_mix", "_n_seen",
                 "_priorities", "_values", "_scratch")

    def __init__(
        self, k: int = DEFAULT_RESERVOIR_K, seed: int = 0,
        source: str = "ratios",
    ) -> None:
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        self.alignment = 1
        self.source = source
        self.k = k
        self._seed_mix = int(_splitmix64(np.uint64(seed & 0xFFFFFFFFFFFFFFFF)))
        self._n_seen = 0
        self._priorities = np.empty(0, dtype=np.uint64)
        self._values = np.empty(0, dtype=np.float64)
        self._scratch: tuple[np.ndarray, ...] | None = None

    def fresh(self) -> "ReservoirQuantiles":
        clone = ReservoirQuantiles(k=self.k, source=self.source)
        clone._seed_mix = self._seed_mix
        return clone

    @property
    def n_seen(self) -> int:
        """Finite values observed so far."""
        return self._n_seen

    @property
    def exact(self) -> bool:
        """Whether the sketch still holds *every* finite value."""
        return self._n_seen <= self.k

    def _compress(self) -> None:
        if self._priorities.shape[0] > self.k:
            keep = np.argpartition(self._priorities, self.k - 1)[: self.k]
            self._priorities = self._priorities[keep]
            self._values = self._values[keep]

    def update(self, result: BatchResult, offset: int) -> None:
        values = np.asarray(getattr(result, self.source), dtype=np.float64)
        n = int(values.shape[0])
        finite = np.isfinite(values)
        if n and self._priorities.shape[0] >= self.k and bool(finite.all()):
            # Threshold fast path.  Once the reservoir holds k entries,
            # a new row survives compression only if its priority beats
            # the current k-th smallest (priorities are injective, so
            # strict `<` loses nothing); pre-filtering the chunk down
            # to those survivors yields the same kept *set* as the
            # concatenate-everything path — and the set is the whole
            # contract: `to_state`/`sample`/`quantiles` canonicalise
            # in-memory order.  Priorities come from reused uint64
            # scratch via the in-place splitmix (exact integer ops).
            scratch = self._scratch
            if scratch is None or scratch[0].shape[0] < n:
                scratch = (
                    np.arange(n, dtype=np.uint64),
                    np.empty(n, dtype=np.uint64),
                    np.empty(n, dtype=np.uint64),
                )
                self._scratch = scratch
            base, pri, tmp = (s[:n] for s in scratch)
            with np.errstate(over="ignore"):
                np.add(base, np.uint64(offset), out=tmp)
                np.bitwise_xor(tmp, np.uint64(self._seed_mix), out=tmp)
            _splitmix64_into(tmp, pri, tmp)
            admit = pri < self._priorities.max()
            self._n_seen += n
            if admit.any():
                self._priorities = np.concatenate(
                    [self._priorities, pri[admit]]
                )
                self._values = np.concatenate([self._values, values[admit]])
                self._compress()
            return
        indices = np.nonzero(finite)[0].astype(np.uint64) + np.uint64(offset)
        priorities = _splitmix64(indices ^ np.uint64(self._seed_mix))
        self._n_seen += int(indices.shape[0])
        self._priorities = np.concatenate([self._priorities, priorities])
        self._values = np.concatenate([self._values, values[finite]])
        self._compress()

    def merge(self, other: "ReservoirQuantiles") -> None:
        if other.k != self.k or other._seed_mix != self._seed_mix:
            raise ParameterError("merging reservoirs with different k/seed")
        self._n_seen += other._n_seen
        self._priorities = np.concatenate([self._priorities, other._priorities])
        self._values = np.concatenate([self._values, other._values])
        self._compress()

    def to_state(self) -> dict[str, np.ndarray]:
        # Packed in ascending-priority order: the kept *set* is a pure
        # function of the stream but the in-memory array order is not
        # (argpartition order depends on the merge schedule), and a
        # checkpoint must serialize identically however the run was
        # scheduled.  Priorities are injective, so the order is total.
        order = np.argsort(self._priorities)
        return {
            "config": np.array([self.k, self._seed_mix], dtype=np.uint64),
            "n_seen": np.array([self._n_seen], dtype=np.int64),
            "priorities": self._priorities[order],
            "values": self._values[order],
        }

    def from_state(self, state: dict[str, np.ndarray]) -> "ReservoirQuantiles":
        config = np.asarray(state["config"], dtype=np.uint64)
        if int(config[0]) != self.k or int(config[1]) != self._seed_mix:
            raise ParameterError(
                "checkpointed reservoir has different k/seed"
            )
        restored = self.fresh()
        restored._n_seen = int(state["n_seen"][0])
        restored._priorities = np.asarray(state["priorities"],
                                          dtype=np.uint64).copy()
        restored._values = np.asarray(state["values"],
                                      dtype=np.float64).copy()
        return restored

    def sample(self) -> np.ndarray:
        """The kept values, sorted ascending (a copy)."""
        return np.sort(self._values)

    def quantiles(self, qs: Sequence[float]) -> dict[float, float]:
        """Requested quantiles of the sketch (``nan`` when empty).

        Exact while :attr:`exact` holds; otherwise the estimate carries
        ``~sqrt(q(1-q)/k)`` rank error.
        """
        if self._values.shape[0] == 0:
            return {float(q): float("nan") for q in qs}
        values = np.quantile(self._values, list(qs))
        return {float(q): float(v) for q, v in zip(qs, values)}


class TopKReducer:
    """The ``k`` rows with the smallest greener-platform total.

    Keeps ``(index, fpga_total, asic_total, ratio)`` per kept row.
    Ordering is by ``(min(fpga, asic), index)`` — the index tiebreak
    makes the kept set and its order deterministic under any chunking.
    """

    __slots__ = ("alignment", "k", "_indices", "_fpga", "_asic", "_ratios")

    def __init__(self, k: int = 64) -> None:
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        self.alignment = 1
        self.k = k
        self._indices = np.empty(0, dtype=np.int64)
        self._fpga = np.empty(0, dtype=np.float64)
        self._asic = np.empty(0, dtype=np.float64)
        self._ratios = np.empty(0, dtype=np.float64)

    def fresh(self) -> "TopKReducer":
        return TopKReducer(k=self.k)

    def _compress(self) -> None:
        if self._indices.shape[0] > self.k:
            key = np.minimum(self._fpga, self._asic)
            order = np.lexsort((self._indices, key))[: self.k]
            self._indices = self._indices[order]
            self._fpga = self._fpga[order]
            self._asic = self._asic[order]
            self._ratios = self._ratios[order]

    def update(self, result: BatchResult, offset: int) -> None:
        n = result.size
        self._indices = np.concatenate(
            [self._indices, np.arange(offset, offset + n, dtype=np.int64)]
        )
        self._fpga = np.concatenate([self._fpga, result.fpga_totals])
        self._asic = np.concatenate([self._asic, result.asic_totals])
        self._ratios = np.concatenate([self._ratios, result.ratios])
        self._compress()

    def merge(self, other: "TopKReducer") -> None:
        if other.k != self.k:
            raise ParameterError("merging top-k reducers with different k")
        self._indices = np.concatenate([self._indices, other._indices])
        self._fpga = np.concatenate([self._fpga, other._fpga])
        self._asic = np.concatenate([self._asic, other._asic])
        self._ratios = np.concatenate([self._ratios, other._ratios])
        self._compress()

    def to_state(self) -> dict[str, np.ndarray]:
        return {
            "config": np.array([self.k], dtype=np.int64),
            "indices": self._indices.copy(),
            "fpga": self._fpga.copy(),
            "asic": self._asic.copy(),
            "ratios": self._ratios.copy(),
        }

    def from_state(self, state: dict[str, np.ndarray]) -> "TopKReducer":
        if int(state["config"][0]) != self.k:
            raise ParameterError("checkpointed top-k has different k")
        restored = self.fresh()
        restored._indices = np.asarray(state["indices"], dtype=np.int64).copy()
        restored._fpga = np.asarray(state["fpga"], dtype=np.float64).copy()
        restored._asic = np.asarray(state["asic"], dtype=np.float64).copy()
        restored._ratios = np.asarray(state["ratios"], dtype=np.float64).copy()
        return restored

    def rows(self) -> list[dict[str, float]]:
        """Kept rows ordered greenest-first (then by index)."""
        key = np.minimum(self._fpga, self._asic)
        order = np.lexsort((self._indices, key))
        return [
            {
                "index": int(self._indices[i]),
                "fpga_total_kg": float(self._fpga[i]),
                "asic_total_kg": float(self._asic[i]),
                "ratio": float(self._ratios[i]),
            }
            for i in order
        ]


def _pareto_mask(fpga: np.ndarray, asic: np.ndarray,
                 indices: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows, minimising both totals.

    Domination matches :func:`repro.analysis.dse._dominates`: strictly
    better somewhere, no worse anywhere — exact coordinate duplicates
    do not dominate each other and are all kept.  After sorting by
    ``(fpga, asic)``, any dominator of a row precedes it, so one
    vectorised pass over the strict running minimum of ``asic`` (and
    the ``fpga`` of the row that set it) decides every row.
    """
    n = fpga.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    nan_rows = np.isnan(fpga) | np.isnan(asic)
    if nan_rows.any():
        # NaN never satisfies any comparison, so such rows can neither
        # dominate nor be dominated — the materialized `_dominates`
        # keeps them on the front, and the streamed front must match.
        mask = _pareto_mask(fpga[~nan_rows], asic[~nan_rows],
                            indices[~nan_rows])
        result = np.ones(n, dtype=bool)
        result[~nan_rows] = mask
        return result
    order = np.lexsort((indices, asic, fpga))
    x = fpga[order]
    y = asic[order]
    #: Strict prefix minimum of y (earlier rows only).
    running = np.concatenate(([np.inf], np.minimum.accumulate(y)[:-1]))
    setter = y < running  # rows that lower the minimum are on the front
    #: x of the row that set the current minimum (earliest achiever —
    #: any later equal-y row has x >= it, x being the sort key).
    setter_pos = np.maximum.accumulate(np.where(setter, np.arange(n), -1))
    setter_x = np.where(setter_pos >= 0, x[np.maximum(setter_pos, 0)], np.inf)
    # A non-setter survives only as an exact duplicate of the setter:
    # y == running min and x == setter x (x < setter_x is impossible).
    keep_sorted = setter | ((y == running) & (x == setter_x))
    mask = np.zeros(n, dtype=bool)
    mask[order] = keep_sorted
    return mask


class ParetoReducer:
    """Streaming non-dominated front over ``(fpga_total, asic_total)``.

    The front of a union equals the front of the union of fronts, so
    each update filters the chunk against the running front and merging
    concatenates two fronts and re-filters — deterministic under any
    chunking (the front is a pure set function of the stream; rows are
    reported in index order).
    """

    __slots__ = ("alignment", "_indices", "_fpga", "_asic", "_ratios")

    def __init__(self) -> None:
        self.alignment = 1
        self._indices = np.empty(0, dtype=np.int64)
        self._fpga = np.empty(0, dtype=np.float64)
        self._asic = np.empty(0, dtype=np.float64)
        self._ratios = np.empty(0, dtype=np.float64)

    def fresh(self) -> "ParetoReducer":
        return ParetoReducer()

    def _refilter(self) -> None:
        mask = _pareto_mask(self._fpga, self._asic, self._indices)
        self._indices = self._indices[mask]
        self._fpga = self._fpga[mask]
        self._asic = self._asic[mask]
        self._ratios = self._ratios[mask]

    def update(self, result: BatchResult, offset: int) -> None:
        n = result.size
        self._indices = np.concatenate(
            [self._indices, np.arange(offset, offset + n, dtype=np.int64)]
        )
        self._fpga = np.concatenate([self._fpga, result.fpga_totals])
        self._asic = np.concatenate([self._asic, result.asic_totals])
        self._ratios = np.concatenate([self._ratios, result.ratios])
        self._refilter()

    def merge(self, other: "ParetoReducer") -> None:
        self._indices = np.concatenate([self._indices, other._indices])
        self._fpga = np.concatenate([self._fpga, other._fpga])
        self._asic = np.concatenate([self._asic, other._asic])
        self._ratios = np.concatenate([self._ratios, other._ratios])
        self._refilter()

    def to_state(self) -> dict[str, np.ndarray]:
        return {
            "indices": self._indices.copy(),
            "fpga": self._fpga.copy(),
            "asic": self._asic.copy(),
            "ratios": self._ratios.copy(),
        }

    def from_state(self, state: dict[str, np.ndarray]) -> "ParetoReducer":
        restored = self.fresh()
        restored._indices = np.asarray(state["indices"], dtype=np.int64).copy()
        restored._fpga = np.asarray(state["fpga"], dtype=np.float64).copy()
        restored._asic = np.asarray(state["asic"], dtype=np.float64).copy()
        restored._ratios = np.asarray(state["ratios"], dtype=np.float64).copy()
        return restored

    def rows(self) -> list[dict[str, float]]:
        """Front rows in ascending index order."""
        order = np.argsort(self._indices)
        return [
            {
                "index": int(self._indices[i]),
                "fpga_total_kg": float(self._fpga[i]),
                "asic_total_kg": float(self._asic[i]),
                "ratio": float(self._ratios[i]),
            }
            for i in order
        ]


class StreamingReduction:
    """A named bundle of reducers driven as one unit.

    The chunk executors call :meth:`update` per chunk and :meth:`merge`
    per worker partial; :attr:`alignment` is the least common multiple
    of the member alignments, so one rounded chunk size satisfies every
    member's determinism contract.
    """

    __slots__ = ("reducers",)

    def __init__(self, reducers: dict[str, StreamingReducer]) -> None:
        if not reducers:
            raise ParameterError("StreamingReduction needs at least one reducer")
        for name in reducers:
            if "::" in name:
                # "::" separates member name from state field in the
                # flattened to_state() keys; allowing it in names would
                # make the flattening ambiguous.
                raise ParameterError(f"reducer name {name!r} contains '::'")
        self.reducers = dict(reducers)

    def __getitem__(self, name: str) -> StreamingReducer:
        return self.reducers[name]

    @property
    def alignment(self) -> int:
        return math.lcm(*(r.alignment for r in self.reducers.values()))

    def fresh(self) -> "StreamingReduction":
        return StreamingReduction(
            {name: r.fresh() for name, r in self.reducers.items()}
        )

    def update(self, result: BatchResult, offset: int) -> None:
        for reducer in self.reducers.values():
            reducer.update(result, offset)

    def merge(self, other: "StreamingReduction") -> None:
        if other.reducers.keys() != self.reducers.keys():
            raise ParameterError("merging reductions with different members")
        for name, reducer in self.reducers.items():
            reducer.merge(other.reducers[name])

    def schema_token(self) -> str:
        """A stable identity string for checkpoint compatibility checks.

        Two reductions with the same token have the same member names,
        reducer types, and alignments — the shape-level contract a
        checkpoint must match before its partials can be merged.
        """
        return ";".join(
            f"{name}:{type(self.reducers[name]).__name__}"
            f":{self.reducers[name].alignment}"
            for name in sorted(self.reducers)
        )

    def to_state(self) -> dict[str, np.ndarray]:
        """Member states flattened under ``"<member>::<field>"`` keys."""
        state: dict[str, np.ndarray] = {}
        for name in sorted(self.reducers):
            for field, array in self.reducers[name].to_state().items():
                state[f"{name}::{field}"] = array
        return state

    def from_state(self, state: dict[str, np.ndarray]) -> "StreamingReduction":
        grouped: dict[str, dict[str, np.ndarray]] = {}
        for key, array in state.items():
            name, _, field = key.partition("::")
            grouped.setdefault(name, {})[field] = array
        if grouped.keys() != self.reducers.keys():
            raise ParameterError(
                f"checkpointed members {sorted(grouped)} != "
                f"configured members {sorted(self.reducers)}"
            )
        return StreamingReduction(
            {name: r.from_state(grouped[name])
             for name, r in self.reducers.items()}
        )


#: Every shipped :class:`StreamingReducer` implementation.  The GF-CKPT
#: audit check and the checkpoint round-trip property tests walk this
#: registry, so adding a reducer here forces it through the state
#: contract (``to_state``/``from_state``) and its bit-identity tests.
REDUCER_REGISTRY: tuple[type, ...] = (
    MomentsReducer,
    WinCountReducer,
    HistogramReducer,
    ReservoirQuantiles,
    TopKReducer,
    ParetoReducer,
)
