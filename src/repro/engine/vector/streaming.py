"""Fused sample→evaluate→reduce chunk execution (out-of-core, multi-core).

The materialized parameter-space pipeline (PR 4) allocates every result
column for the whole batch — ~30 float64 columns per row — which walls
out near a million draws.  This module executes parameter-space
workloads as a stream instead: a **chunk source** produces one
``(ParameterBatch, ScenarioBatch)`` chunk at a time, the vector kernels
evaluate it, and a :class:`~repro.engine.vector.reducers.StreamingReduction`
folds the chunk's :class:`BatchResult` into bounded summary state before
the next chunk is generated.  Peak memory is ``O(chunk_rows)``, not
``O(n)`` — a 100M-draw Monte-Carlo fits in the same footprint as a
128k-draw one.

Chunk sources
-------------

* :class:`ArrayChunkSource` — zero-copy row slices of an in-memory
  :class:`ParameterBatch` / :class:`ScenarioBatch` pair (the
  ``reduce=`` mode of :meth:`EvaluationEngine.evaluate_param_batch`).
* :class:`SharedArrayChunkSource` — the multi-process spelling: per-row
  columns are packed once into one
  :class:`multiprocessing.shared_memory.SharedMemory` block; workers
  attach by name and slice NumPy views straight out of the block
  (zero-copy, nothing re-pickled per chunk).
* :class:`MonteCarloChunkSource` — the fully out-of-core spelling for
  Monte-Carlo studies: no input columns exist anywhere.  Each chunk
  *generates* its own draws from a seeded per-chunk RNG stream —
  ``PCG64(seed)`` advanced by ``start * n_distributions`` draws — which
  bit-reproduces the sequential draw order of
  :func:`repro.analysis.montecarlo.sample_value_columns`, so streamed
  studies sample exactly what the materialized (and legacy scalar)
  paths sample.

Execution
---------

:func:`run_stream` drives a reduction over a source either sequentially
or on a caller-supplied ``ProcessPoolExecutor``: the row range is split
into one contiguous **span** per worker (span boundaries are multiples
of the chunk size, chunk sizes are rounded up to the reduction's
alignment), each worker loops its span chunk-by-chunk into a fresh
reduction, and the parent merges the per-worker partials in span order.
The reducers' mergeable-partials contract makes the merged result
bit-identical to a sequential run for any chunk size and worker count.
Pool infrastructure failures degrade, never corrupt: an unpicklable
source streams sequentially, and a worker process dying mid-run costs
only an in-process recompute of the spans it lost (completed partials
are kept; the event is counted in :data:`STREAM_STATS`) — results
never change, only speed.
"""

from __future__ import annotations

import hashlib
import math
import pickle
import threading
from concurrent.futures import BrokenExecutor, Executor
from multiprocessing import shared_memory

import numpy as np

from repro.core.scenario import Scenario
from repro.engine.vector.checkpoint import Checkpoint, CheckpointJournal
from repro.engine.vector.columns import ScenarioBatch
from repro.engine.vector.evaluator import VectorizedEvaluator
from repro.engine.vector.fused import resolve_kernel_tier
from repro.engine.vector.params import ParameterBatch
from repro.engine.vector.reducers import StreamingReduction
from repro.errors import ParameterError

#: Default rows per streamed chunk.  At ~30 result columns of float64
#: plus kernel temporaries this bounds per-worker peak memory around
#: 60–80 MB; it is also the chunk size of the materialized pipeline's
#: thread dispatch, so the two paths share tuning.
DEFAULT_STREAM_CHUNK_ROWS = 131_072

#: Hard cap on streaming workers (the kernels go memory-bandwidth bound).
MAX_STREAM_WORKERS = 8

#: One chain evaluator per process: stateless, shared by every span
#: worker and by fallback paths regardless of the requested tier.
_EVALUATOR = VectorizedEvaluator(kernel_tier="numpy")

#: Per-thread cache of tier-armed evaluators, keyed by resolved backend
#: and summary dtype.  Thread-local because a fused kernel's scratch
#: pool is single-threaded state; resolved per call so ``REPRO_KERNEL``
#: changes (tests, operators) take effect without a process restart.
_TIERED = threading.local()


def _evaluator_for(
    kernel_tier: "str | None", kernel_dtype: "np.dtype | type | str"
) -> VectorizedEvaluator:
    backend = resolve_kernel_tier(kernel_tier)
    if backend == "chain":
        return _EVALUATOR
    cache = getattr(_TIERED, "evaluators", None)
    if cache is None:
        cache = _TIERED.evaluators = {}
    key = (backend, np.dtype(kernel_dtype).str)
    evaluator = cache.get(key)
    if evaluator is None:
        evaluator = VectorizedEvaluator(
            kernel_tier=kernel_tier, kernel_dtype=np.dtype(kernel_dtype)
        )
        cache[key] = evaluator
    return evaluator


class StreamStats:
    """Process-wide counters for streaming fault recovery.

    ``run_stream`` increments these when a worker process dies mid-span
    and the parent recomputes the lost spans in-process.  They exist so
    operators (and the regression tests) can observe that the recovery
    path fired — the *results* are bit-identical either way, which is
    exactly why a counter is the only externally visible trace.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.broken_pool_recoveries = 0
        self.spans_recovered = 0

    def note_recovery(self, spans: int) -> None:
        """Record one broken-pool event that recovered ``spans`` spans."""
        with self._lock:
            self.broken_pool_recoveries += 1
            self.spans_recovered += spans

    def snapshot(self) -> dict[str, int]:
        """Copy the counters (for reports and assertions)."""
        with self._lock:
            return {
                "broken_pool_recoveries": self.broken_pool_recoveries,
                "spans_recovered": self.spans_recovered,
            }

    def reset(self) -> None:
        """Zero the counters (test isolation)."""
        with self._lock:
            self.broken_pool_recoveries = 0
            self.spans_recovered = 0


#: Module-level recovery counters for this process's ``run_stream`` calls.
STREAM_STATS = StreamStats()


def aligned_chunk_rows(chunk_rows: "int | None", alignment: int, n: int) -> int:
    """The effective chunk size: clamped to ``n``, rounded up to alignment."""
    chunk = (
        DEFAULT_STREAM_CHUNK_ROWS if chunk_rows is None else int(chunk_rows)
    )
    if chunk < 1:
        raise ParameterError(f"chunk_rows must be >= 1, got {chunk}")
    alignment = max(1, int(alignment))
    chunk = min(chunk, max(1, n))
    return ((chunk + alignment - 1) // alignment) * alignment


# ----------------------------------------------------------------------
# Chunk sources
# ----------------------------------------------------------------------


class ArrayChunkSource:
    """Chunk view over an in-memory parameter/scenario batch pair."""

    __slots__ = ("params", "batch", "n")

    def __init__(self, params: ParameterBatch, batch: ScenarioBatch) -> None:
        if params.size != batch.size:
            raise ParameterError(
                f"parameter batch has {params.size} rows, "
                f"scenario batch has {batch.size}"
            )
        self.params = params
        self.batch = batch
        self.n = batch.size

    def chunk(self, start: int, stop: int) -> tuple[ParameterBatch, ScenarioBatch]:
        return (
            self.params.slice_rows(start, stop),
            self.batch.slice_rows(start, stop),
        )


class SharedArrayChunkSource:
    """Multi-process chunk source over one shared-memory column block.

    :meth:`pack` copies every per-row column — parameter overrides and
    scenario columns — into a single
    :class:`~multiprocessing.shared_memory.SharedMemory` segment once;
    broadcast (length-1) columns and the base parameter row travel
    inline in the pickled source, which is otherwise just the segment
    name and a column directory.  Workers attach on first use and slice
    zero-copy NumPy views per chunk, so a span task re-pickles nothing
    per chunk and no row data is ever copied to a worker.

    The creating process must call :meth:`close` (which unlinks the
    segment) once streaming is done; :class:`EvaluationEngine` does this
    in a ``finally`` block.
    """

    _SCENARIO_FIELDS = (
        ("num_apps", np.int64),
        ("volume", np.int64),
        ("lifetime", np.float64),
        ("evaluation_years", np.float64),
        ("app_size_mgates", np.float64),
        ("enforce_chip_lifetime", np.bool_),
    )

    def __init__(self) -> None:
        self.n = 0
        self._shm_name: str | None = None
        self._specs: dict[str, tuple[str, int, int]] = {}
        self._inline: dict[int, np.ndarray] = {}
        self._base_row: np.ndarray | None = None
        self._param_keys: tuple[int, ...] = ()
        self._shm: shared_memory.SharedMemory | None = None
        self._owner = False

    @classmethod
    def pack(
        cls, params: ParameterBatch, batch: ScenarioBatch
    ) -> "SharedArrayChunkSource":
        """Copy the pair's per-row columns into one shared block."""
        if params.size != batch.size:
            raise ParameterError(
                f"parameter batch has {params.size} rows, "
                f"scenario batch has {batch.size}"
            )
        if not batch.all_covered:
            raise ParameterError(
                "shared-memory streaming requires a fully covered batch"
            )
        source = cls()
        source.n = batch.size
        source._base_row = (
            None if params.base_row is None
            else np.asarray(params.base_row, dtype=np.float64)
        )
        source._param_keys = tuple(sorted(params.columns))

        arrays: dict[str, np.ndarray] = {}
        for key in source._param_keys:
            column = params.columns[key]
            if column.shape[0] == 1:
                source._inline[key] = column.copy()
            else:
                arrays[f"p{key}"] = column
        for name, dtype in cls._SCENARIO_FIELDS:
            arrays[f"s_{name}"] = np.ascontiguousarray(
                getattr(batch, name), dtype=dtype
            )

        total = sum(a.nbytes for a in arrays.values())
        shm = shared_memory.SharedMemory(create=True, size=max(1, total))
        try:
            offset = 0
            for name, array in arrays.items():
                view = np.ndarray(array.shape, dtype=array.dtype,
                                  buffer=shm.buf, offset=offset)
                view[:] = array
                del view
                source._specs[name] = (array.dtype.str, array.shape[0], offset)
                offset += array.nbytes
        except BaseException:
            # Nobody owns the segment yet — unlink here or leak it.  The
            # half-filled view must drop first or close() sees an
            # exported buffer.
            view = None
            shm.close()
            shm.unlink()
            raise
        source._shm = shm
        source._shm_name = shm.name
        source._owner = True
        return source

    # -- pickling (workers get the name + directory, never the data) ----

    def __getstate__(self) -> dict:
        return {
            "n": self.n,
            "shm_name": self._shm_name,
            "specs": self._specs,
            "inline": self._inline,
            "base_row": self._base_row,
            "param_keys": self._param_keys,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__()
        self.n = state["n"]
        self._shm_name = state["shm_name"]
        self._specs = state["specs"]
        self._inline = state["inline"]
        self._base_row = state["base_row"]
        self._param_keys = state["param_keys"]

    def _attach(self) -> shared_memory.SharedMemory:
        # Workers spawned by the engine's pool share the parent's
        # resource-tracker process, so the attach-side registration is
        # an idempotent no-op and the parent's unlink cleans up exactly
        # once — no per-worker unregister gymnastics needed.
        if self._shm is None:
            self._shm = shared_memory.SharedMemory(name=self._shm_name)
        return self._shm

    def _view(self, name: str) -> np.ndarray:
        dtype, length, offset = self._specs[name]
        return np.ndarray((length,), dtype=np.dtype(dtype),
                          buffer=self._attach().buf, offset=offset)

    def chunk(self, start: int, stop: int) -> tuple[ParameterBatch, ScenarioBatch]:
        m = stop - start
        columns: dict[int, np.ndarray] = {}
        for key in self._param_keys:
            inline = self._inline.get(key)
            if inline is not None:
                columns[key] = inline
            else:
                columns[key] = self._view(f"p{key}")[start:stop]
        params = ParameterBatch(
            m, base_row=self._base_row, columns=columns
        )
        fields = {
            name: self._view(f"s_{name}")[start:stop]
            for name, _ in self._SCENARIO_FIELDS
        }
        batch = ScenarioBatch(
            covered=np.ones(m, dtype=bool), scenarios=None, **fields
        )
        return params, batch

    def close(self) -> None:
        """Detach; the creating process also unlinks the segment."""
        shm, self._shm = self._shm, None
        if shm is not None:
            shm.close()
            if self._owner:
                shm.unlink()


class MonteCarloChunkSource:
    """Chunkwise Monte-Carlo draw generation — no materialized inputs.

    Holds only the study definition: the base comparator's extracted
    parameter row, the distributions (which must all provide
    ``apply_column`` — validated by the caller), the seed and the fixed
    scenario.  ``chunk(start, stop)`` advances a fresh ``PCG64(seed)``
    by ``start * n_distributions`` draws and samples the chunk's value
    matrix, bit-reproducing rows ``[start, stop)`` of the sequential
    draw order (one unit double per value, row-major) that
    :func:`~repro.analysis.montecarlo.sample_value_columns` consumes.
    Workers therefore sample their own spans independently with zero
    coordination and zero shipped data.
    """

    __slots__ = ("n", "base_row", "distributions", "seed", "scenario", "_scratch")

    def __init__(
        self,
        base_row: np.ndarray,
        distributions: tuple,
        seed: int,
        scenario: Scenario,
        n: int,
    ) -> None:
        if n < 1:
            raise ParameterError(f"n_samples must be >= 1, got {n}")
        self.n = n
        self.base_row = np.asarray(base_row, dtype=np.float64)
        self.distributions = tuple(distributions)
        self.seed = seed
        self.scenario = scenario
        self._scratch = threading.local()

    def __getstate__(self):
        # Scratch buffers are per-process, per-thread; workers rebuild
        # their own on first chunk.
        return (self.n, self.base_row, self.distributions, self.seed,
                self.scenario)

    def __setstate__(self, state) -> None:
        self.n, self.base_row, self.distributions, self.seed, self.scenario = state
        self._scratch = threading.local()

    def _buffers(self, m: int, k: int) -> tuple[np.ndarray, list[np.ndarray]]:
        """Per-thread sampling scratch: the unit matrix + value columns.

        Streaming spans consume each chunk fully (evaluate + reduce)
        before requesting the next, so the value columns handed to
        ``ParameterBatch`` may be recycled chunk-over-chunk — that turns
        ~6 MB of per-chunk allocation (and the page faults behind it)
        into steady-state buffer reuse.  Buffers are thread-local
        because thread-pool workers share one source instance.
        """
        tls = self._scratch
        bufs = getattr(tls, "bufs", None)
        if bufs is None or bufs[0].shape != (m, k):
            bufs = (np.empty((m, k)), [np.empty(m) for _ in range(k)])
            tls.bufs = bufs
        return bufs

    def chunk(self, start: int, stop: int) -> tuple[ParameterBatch, ScenarioBatch]:
        m = stop - start
        k = len(self.distributions)
        rng = np.random.default_rng(self.seed)
        rng.bit_generator.advance(start * k)
        u, cols = self._buffers(m, k)
        rng.random(out=u)
        params = ParameterBatch(m, base_row=self.base_row)
        for j, dist in enumerate(self.distributions):
            dist.apply_column(params, dist.column_from_uniform(u[:, j], out=cols[j]))
        return params, ScenarioBatch.tile(self.scenario, m)

    def checkpoint_token(self) -> str:
        """Semantic job-identity digest for checkpoint validation.

        Covers everything that determines the evaluated rows *except*
        the seed, which the checkpoint identity records separately (a
        seed drift should name the seed, not an opaque source digest).
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(self.base_row.tobytes())
        digest.update(repr(self.scenario).encode("utf-8"))
        digest.update(str(self.n).encode("utf-8"))
        for dist in self.distributions:
            digest.update(repr((
                getattr(dist, "name", type(dist).__name__),
                getattr(dist, "low", None),
                getattr(dist, "high", None),
                getattr(dist, "kind", None),
            )).encode("utf-8"))
        return digest.hexdigest()


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def _reduce_span(
    source,
    reduction: StreamingReduction,
    start: int,
    stop: int,
    chunk_rows: int,
    close_source: bool = True,
    kernel_tier: "str | None" = None,
    kernel_dtype: str = "<f8",
) -> StreamingReduction:
    """Worker body: fold one contiguous row span, chunk by chunk.

    Spawned workers receive their own unpickled ``source`` copy; for
    shared-memory sources that copy attaches lazily to the segment, so
    the worker must detach before returning or each span task strands a
    mapping until process exit.  ``close()`` is idempotent and only the
    packing process unlinks, so the parent-side sequential path may run
    through here too.

    ``close_source=False`` is the parent-side *recovery* spelling: when
    ``run_stream`` recomputes a dead worker's span in-process it must
    not close the parent's own source between spans — for an owning
    shared-memory source that close would unlink the segment out from
    under the remaining spans.  The caller's ``finally`` closes it once
    at the end instead.
    """
    evaluator = _evaluator_for(kernel_tier, kernel_dtype)
    try:
        for s in range(start, stop, chunk_rows):
            e = min(s + chunk_rows, stop)
            params, batch = source.chunk(s, e)
            reduction.update(evaluator.reduce_batch(params, batch), s)
            # Drop the chunk views before the next lap (and before the
            # detach below — a live view keeps the mapping exported).
            del params, batch
    finally:
        close = getattr(source, "close", None)
        if close is not None and close_source:
            close()
    return reduction


def _spans(n: int, chunk_rows: int, workers: int) -> list[tuple[int, int]]:
    """Split ``[0, n)`` into one chunk-aligned contiguous span per worker."""
    n_chunks = math.ceil(n / chunk_rows)
    workers = max(1, min(workers, n_chunks))
    base, extra = divmod(n_chunks, workers)
    spans: list[tuple[int, int]] = []
    chunk_start = 0
    for w in range(workers):
        count = base + (1 if w < extra else 0)
        start = chunk_start * chunk_rows
        chunk_start += count
        spans.append((start, min(chunk_start * chunk_rows, n)))
    return spans


def run_stream(
    source,
    reduction: StreamingReduction,
    *,
    chunk_rows: "int | None" = None,
    workers: int = 1,
    pool: "Executor | None" = None,
    checkpoint: "Checkpoint | None" = None,
    kernel_tier: "str | None" = None,
    kernel_dtype: "np.dtype | type | str" = np.float64,
) -> StreamingReduction:
    """Reduce a chunk source, sequentially or on a process pool.

    ``kernel_tier``/``kernel_dtype`` select the fused kernel tier the
    chunk workers evaluate through (see
    :mod:`repro.engine.vector.fused`); the default honours
    ``REPRO_KERNEL`` in each worker process, chain when unset.

    Returns a **new** reduction (the caller's ``reduction`` is only a
    prototype).  With ``workers > 1`` and a ``pool``, one span task per
    worker runs :func:`_reduce_span` over its own fresh partial and the
    parent merges the partials in span order.

    Fault tolerance: a worker process dying mid-span (OOM kill, crash,
    SIGKILL) breaks the pool and fails every unfinished span future —
    but completed partials are already in hand, and partials are
    mergeable, so the parent recomputes **only the lost spans**
    in-process and merges as usual.  The merged result stays
    bit-identical to the fault-free run by the reducer contract; the
    event is counted in :data:`STREAM_STATS`.  A pool that is already
    broken at submit time degrades to the fully sequential path.
    Model errors raised by the kernels propagate unchanged.

    Durability: with ``checkpoint=``, progress is journalled through a
    :class:`~repro.engine.vector.checkpoint.CheckpointJournal` — merged
    partials plus a unit-completion bitmap, atomically rewritten on the
    configured cadence — and a rerun against the same checkpoint path
    validates the job identity, skips completed units, and finishes to
    a result **bit-identical** to an uninterrupted run (the kernels are
    deterministic and the final reduction state is a pure function of
    which rows were reduced, not of how the work was scheduled).
    """
    n = int(source.n)
    if n < 1:
        raise ParameterError("streaming reduction needs at least one row")
    dtype_str = np.dtype(kernel_dtype).str
    chunk = aligned_chunk_rows(chunk_rows, reduction.alignment, n)
    if checkpoint is not None:
        journal = CheckpointJournal.open(
            checkpoint, source, reduction, n=n, chunk_rows=chunk
        )
        return _run_stream_checkpointed(
            source, reduction, journal, chunk,
            workers if pool is not None else 1, pool,
            kernel_tier, dtype_str,
        )
    spans = _spans(n, chunk, workers if pool is not None else 1)
    if len(spans) > 1 and _picklable(source, reduction):
        try:
            futures = [
                pool.submit(_reduce_span, source, reduction.fresh(), start,
                            stop, chunk, True, kernel_tier, dtype_str)
                for start, stop in spans
            ]
        except BrokenExecutor:
            # The pool's workers were already dead before this run
            # started: nothing was dispatched, stream sequentially.
            futures = []
        else:
            parts: "list[StreamingReduction | None]" = [None] * len(spans)
            lost: list[int] = []
            try:
                for index, future in enumerate(futures):
                    try:
                        parts[index] = future.result()
                    except BrokenExecutor:
                        # This span's worker died (or the broken pool
                        # failed the span before it started).  Completed
                        # siblings keep their partials; recompute just
                        # this span in the parent, without closing the
                        # parent's source between spans.
                        lost.append(index)
                        start, stop = spans[index]
                        parts[index] = _reduce_span(
                            source, reduction.fresh(), start, stop, chunk,
                            close_source=False, kernel_tier=kernel_tier,
                            kernel_dtype=dtype_str,
                        )
            except BaseException:
                # A model error from one span: cancel unstarted siblings
                # so the (cached, reused) pool is not left grinding
                # through a doomed run's remaining spans, then propagate
                # unchanged.
                for future in futures:
                    future.cancel()
                raise
            if lost:
                STREAM_STATS.note_recovery(len(lost))
            merged = reduction.fresh()
            for part in parts:
                merged.merge(part)
            return merged
    return _reduce_span(
        source, reduction.fresh(), 0, n, chunk,
        kernel_tier=kernel_tier, kernel_dtype=dtype_str,
    )


def _run_stream_checkpointed(
    source,
    reduction: StreamingReduction,
    journal: CheckpointJournal,
    chunk: int,
    workers: int,
    pool: "Executor | None",
    kernel_tier: "str | None" = None,
    kernel_dtype: str = "<f8",
) -> StreamingReduction:
    """Drain a journal's pending units, parallel or sequential.

    Scheduling mirrors :func:`run_stream`'s span path — one task per
    pending unit, broken-pool spans recomputed in-process — with the
    journal merging and persisting each finished unit.  An
    already-finished checkpoint returns without touching the source.
    """
    pending = journal.pending()
    if not pending:
        return journal.merged
    if (
        len(pending) > 1 and workers > 1 and pool is not None
        and _picklable(source, reduction)
    ):
        try:
            futures = [
                pool.submit(_reduce_span, source, reduction.fresh(), start,
                            stop, chunk, True, kernel_tier, kernel_dtype)
                for _, start, stop in pending
            ]
        except BrokenExecutor:
            futures = []
        if futures:
            lost = 0
            try:
                for future, (index, start, stop) in zip(futures, pending):
                    try:
                        part = future.result()
                    except BrokenExecutor:
                        lost += 1
                        part = _reduce_span(
                            source, reduction.fresh(), start, stop, chunk,
                            close_source=False, kernel_tier=kernel_tier,
                            kernel_dtype=kernel_dtype,
                        )
                    journal.complete(index, part)
            except BaseException:
                for future in futures:
                    future.cancel()
                # Persist what completed before the failure: a model
                # error (or Ctrl-C) should not cost the finished units.
                journal.flush(force=True)
                raise
            if lost:
                STREAM_STATS.note_recovery(lost)
            journal.flush(force=True)
            return journal.merged
    try:
        for index, start, stop in pending:
            # Fold straight into the journal's merged reduction — no
            # per-unit partial to build and merge.  Because merged may
            # hold a *half-done* unit the moment an error interrupts
            # the span, this path must never flush outside mark()
            # (which runs exactly at unit boundaries): an interruption
            # simply keeps the last cadence flush as the recovery
            # point, which is the documented durability granularity.
            _reduce_span(
                source, journal.merged, start, stop, chunk,
                close_source=False, kernel_tier=kernel_tier,
                kernel_dtype=kernel_dtype,
            )
            journal.mark(index)
        journal.flush(force=True)
    finally:
        close = getattr(source, "close", None)
        if close is not None:
            close()
    return journal.merged


def _picklable(source, reduction: StreamingReduction) -> bool:
    """Whether the span tasks can ship to spawn workers at all.

    Probed up-front (the state is small — shared-memory sources pickle
    a name and a directory, Monte-Carlo sources a study definition) so
    an unpicklable payload — e.g. distributions applied via lambdas —
    degrades to the sequential path instead of failing mid-stream, and
    genuine worker-side model errors are never masked by the fallback.
    """
    try:
        pickle.dumps((source, reduction))
        return True
    except (pickle.PicklingError, TypeError, AttributeError, ValueError):
        return False
