"""Columnar parameter-space batches (the model-parameter twin of
:class:`~repro.engine.vector.columns.ScenarioBatch`).

Scenario-space workloads (sweeps, heatmaps) vary the *scenario* columns
under one comparator; parameter-space workloads (Monte-Carlo draws, DSE
grids, tornado endpoints) vary the *model parameters* themselves.  The
historical path materialised one perturbed
:class:`~repro.core.comparison.PlatformComparator` per row and flattened
it with :func:`extract_row` — a Python loop that dominated the
multi-comparator kernel's runtime.  A :class:`ParameterBatch` instead
holds the parameter space as columns:

* **canonical column registry** — every number the vector kernels
  consume is one of :data:`N_PARAM_COLS` named columns (``OP_CI``,
  ``MFG_RHO``, ``F_AREA``...), shared by the extraction path, the
  kernels and the digest folds;
* **base + overrides** (:meth:`ParameterBatch.from_comparator`) — one
  base comparator extracted *once*, with perturbed columns written
  directly from vectorised distribution draws.  Unperturbed columns
  stay length-1 broadcast arrays, so a 1M-draw batch that perturbs two
  knobs carries two 1M-row columns and 55 scalars — the sub-models
  whose inputs are all scalars are then computed once and broadcast;
* **per-row extraction** (:meth:`ParameterBatch.from_comparators`) —
  the compatibility spelling for callers that already hold perturbed
  comparator objects (DSE grids, tornado, the object-path engine API);
* **zero-copy slicing** (:meth:`ParameterBatch.slice_rows` /
  :meth:`ParameterBatch.take`) — chunked multi-core dispatch splits a
  huge batch into per-worker column views without copying row data.

Digesting parameter rows for the sharded result store lives in
:mod:`repro.engine.store` (:func:`~repro.engine.store.param_batch_digests`),
next to the scenario fold it extends.
"""

from __future__ import annotations

import dataclasses
import functools
from collections.abc import Sequence

import numpy as np

from repro.core.comparison import PlatformComparator
from repro.data.grid import carbon_intensity_kg_per_kwh
from repro.data.reports import DesignHouseReport, get_report
from repro.data.warm import WarmFactors, get_material
from repro.engine.vector.kernels import YIELD_MODEL_CODES
from repro.errors import ParameterError
from repro.manufacturing.yield_model import YieldModel
from repro.units import gwh_to_kwh, watts_to_kw

# ----------------------------------------------------------------------
# Canonical column registry
# ----------------------------------------------------------------------

#: Column indices of the model-parameter space (one row per comparator).
#: Shared suite knobs first, then the FPGA and ASIC sides.  These are
#: *the* public names: distribution ``apply_column`` callbacks, the
#: kernels' side-constant builder and the store's digest folds all
#: address columns through them.
(
    MFG_FAB_CI, MFG_ABATE, MFG_EDGE, MFG_SCRIBE, MFG_RHO,
    MFG_YIELD_CODE, MFG_CHARGE,
    PKG_SUB, PKG_ASM_KWH, PKG_ASM_CI, PKG_FANOUT, PKG_BASE_KG,
    PKG_MASS_CM2, PKG_BASE_MASS,
    EOL_DELTA, EOL_DISCARD, EOL_CREDIT, EOL_TRANSPORT,
    DES_ANNUAL_KWH, DES_CI, DES_AVG_GATES, DES_BETA,
    OP_CI, OP_DUTY, OP_IDLE, OP_PUE,
    AD_CI, AD_CONFIG_KW,
    F_AREA, F_POWER, F_LIFE, F_CAPACITY, F_GATES,
    F_EPA, F_GPA, F_MPA_NEW, F_MPA_REC, F_DEFECT, F_LINE_YIELD,
    F_WAFER_D, F_TEAM_YEARS, F_DEV_KG, F_CHPU,
    A_AREA, A_POWER, A_LIFE, A_GATES,
    A_EPA, A_GPA, A_MPA_NEW, A_MPA_REC, A_DEFECT, A_LINE_YIELD,
    A_WAFER_D, A_TEAM_YEARS, A_DEV_KG, A_CHPU,
) = range(57)

#: Total model-parameter columns per row.
N_PARAM_COLS = 57

#: Registry column names, in column order (``COLUMN_NAMES[MFG_RHO] ==
#: "MFG_RHO"``).  The audit subsystem renders findings and parity
#: reports through these.
COLUMN_NAMES: tuple[str, ...] = (
    "MFG_FAB_CI", "MFG_ABATE", "MFG_EDGE", "MFG_SCRIBE", "MFG_RHO",
    "MFG_YIELD_CODE", "MFG_CHARGE",
    "PKG_SUB", "PKG_ASM_KWH", "PKG_ASM_CI", "PKG_FANOUT", "PKG_BASE_KG",
    "PKG_MASS_CM2", "PKG_BASE_MASS",
    "EOL_DELTA", "EOL_DISCARD", "EOL_CREDIT", "EOL_TRANSPORT",
    "DES_ANNUAL_KWH", "DES_CI", "DES_AVG_GATES", "DES_BETA",
    "OP_CI", "OP_DUTY", "OP_IDLE", "OP_PUE",
    "AD_CI", "AD_CONFIG_KW",
    "F_AREA", "F_POWER", "F_LIFE", "F_CAPACITY", "F_GATES",
    "F_EPA", "F_GPA", "F_MPA_NEW", "F_MPA_REC", "F_DEFECT", "F_LINE_YIELD",
    "F_WAFER_D", "F_TEAM_YEARS", "F_DEV_KG", "F_CHPU",
    "A_AREA", "A_POWER", "A_LIFE", "A_GATES",
    "A_EPA", "A_GPA", "A_MPA_NEW", "A_MPA_REC", "A_DEFECT", "A_LINE_YIELD",
    "A_WAFER_D", "A_TEAM_YEARS", "A_DEV_KG", "A_CHPU",
)


@dataclasses.dataclass(frozen=True)
class ColumnSpec:
    """Where one registry column is consumed on the scalar model path.

    The static kernel-coverage audit cross-references every registry
    column against the scalar sub-models: ``scalar_packages`` are the
    ``src/repro`` sub-packages whose code must read at least one of the
    ``scalar_attrs`` attribute names for the column to count as consumed
    by the scalar path (the kernel side is detected directly from
    ``P.<NAME>`` reads in ``engine/vector/``).  The attribute names are
    exactly what the extractors above pull off the model objects, so the
    mapping cannot drift from the extraction without failing the audit.
    """

    index: int
    name: str
    group: str
    scalar_packages: tuple[str, ...]
    scalar_attrs: tuple[str, ...]


def _specs() -> tuple[ColumnSpec, ...]:
    mfg, pkg, eol = ("manufacturing",), ("packaging",), ("eol",)
    des, op, ad = ("design",), ("operation",), ("appdev",)
    dev = ("core", "devices")
    table: tuple[tuple[int, str, tuple[str, ...], tuple[str, ...]], ...] = (
        (MFG_FAB_CI, "manufacturing", mfg, ("carbon_intensity_kg_per_kwh",)),
        (MFG_ABATE, "manufacturing", mfg, ("gas_abatement",)),
        (MFG_EDGE, "manufacturing", mfg, ("edge_exclusion_mm",)),
        (MFG_SCRIBE, "manufacturing", mfg, ("scribe_mm",)),
        (MFG_RHO, "manufacturing", mfg, ("recycled_fraction",)),
        (MFG_YIELD_CODE, "manufacturing", mfg, ("yield_model",)),
        (MFG_CHARGE, "manufacturing", mfg, ("charge_wafer_waste",)),
        (PKG_SUB, "packaging", pkg, ("substrate_kg_per_cm2",)),
        (PKG_ASM_KWH, "packaging", pkg, ("assembly_kwh_per_package",)),
        (PKG_ASM_CI, "packaging", pkg, ("assembly_energy_source",)),
        (PKG_FANOUT, "packaging", pkg, ("fanout_factor",)),
        (PKG_BASE_KG, "packaging", pkg, ("base_kg_per_package",)),
        (PKG_MASS_CM2, "packaging", pkg, ("mass_g_per_cm2",)),
        (PKG_BASE_MASS, "packaging", pkg, ("base_mass_g",)),
        (EOL_DELTA, "eol", eol, ("recycled_fraction",)),
        (EOL_DISCARD, "eol", eol, ("discard_kg_per_kg",)),
        (EOL_CREDIT, "eol", eol, ("recycle_credit_kg_per_kg",)),
        (EOL_TRANSPORT, "eol", eol, ("transport_kg_per_kg",)),
        (DES_ANNUAL_KWH, "design", des,
         ("annual_energy_gwh", "overhead_factor", "allocation")),
        (DES_CI, "design", des, ("carbon_intensity",)),
        (DES_AVG_GATES, "design", des, ("avg_gates_per_chip_mgates",)),
        (DES_BETA, "design", des, ("gate_scaling_beta",)),
        (OP_CI, "operation", op, ("energy_source",)),
        (OP_DUTY, "operation", op, ("duty_cycle",)),
        (OP_IDLE, "operation", op, ("idle_fraction_of_peak",)),
        (OP_PUE, "operation", op, ("pue",)),
        (AD_CI, "appdev", ad, ("energy_source",)),
        (AD_CONFIG_KW, "appdev", ad, ("config_power_w",)),
        (F_AREA, "fpga_device", dev, ("area_mm2",)),
        (F_POWER, "fpga_device", dev, ("peak_power_w",)),
        (F_LIFE, "fpga_device", dev, ("chip_lifetime_years",)),
        (F_CAPACITY, "fpga_device", dev, ("logic_capacity_mgates",)),
        (F_GATES, "fpga_device", dev, ("gate_density_mgates_per_mm2",)),
        (F_EPA, "fpga_node", mfg, ("epa_kwh_per_cm2",)),
        (F_GPA, "fpga_node", mfg, ("gpa_kg_per_cm2",)),
        (F_MPA_NEW, "fpga_node", mfg, ("mpa_new_kg_per_cm2",)),
        (F_MPA_REC, "fpga_node", mfg, ("mpa_recycled_kg_per_cm2",)),
        (F_DEFECT, "fpga_node", mfg, ("defect_density_per_cm2",)),
        (F_LINE_YIELD, "fpga_node", mfg, ("line_yield",)),
        (F_WAFER_D, "fpga_node", mfg, ("wafer_diameter_mm",)),
        (F_TEAM_YEARS, "fpga_team", des, ("project_years",)),
        (F_DEV_KG, "fpga_effort", ad,
         ("farm_power_w", "per_application_hours")),
        (F_CHPU, "fpga_effort", ad, ("config_hours_per_unit",)),
        (A_AREA, "asic_device", dev, ("area_mm2",)),
        (A_POWER, "asic_device", dev, ("peak_power_w",)),
        (A_LIFE, "asic_device", dev, ("chip_lifetime_years",)),
        (A_GATES, "asic_device", dev, ("logic_gates_mgates",)),
        (A_EPA, "asic_node", mfg, ("epa_kwh_per_cm2",)),
        (A_GPA, "asic_node", mfg, ("gpa_kg_per_cm2",)),
        (A_MPA_NEW, "asic_node", mfg, ("mpa_new_kg_per_cm2",)),
        (A_MPA_REC, "asic_node", mfg, ("mpa_recycled_kg_per_cm2",)),
        (A_DEFECT, "asic_node", mfg, ("defect_density_per_cm2",)),
        (A_LINE_YIELD, "asic_node", mfg, ("line_yield",)),
        (A_WAFER_D, "asic_node", mfg, ("wafer_diameter_mm",)),
        (A_TEAM_YEARS, "asic_team", des, ("project_years",)),
        (A_DEV_KG, "asic_effort", ad,
         ("farm_power_w", "per_application_hours")),
        (A_CHPU, "asic_effort", ad, ("config_hours_per_unit",)),
    )
    return tuple(
        ColumnSpec(index, COLUMN_NAMES[index], group, packages, attrs)
        for index, group, packages, attrs in table
    )


#: One :class:`ColumnSpec` per registry column, in column order — the
#: column→model mapping the audit subsystem (coverage checker and
#: parity auditor) walks.
COLUMN_SPECS: tuple[ColumnSpec, ...] = _specs()


# The per-sub-model extractors below are memoised on the (frozen,
# hashable) model objects themselves: a Monte-Carlo draw typically
# perturbs one or two sub-models, so the other five rows' worth of
# attribute walking and registry lookups collapse into cache hits.


@functools.lru_cache(maxsize=1024)
def mfg_cols(mfg) -> tuple[float, ...]:
    """``MFG_*`` columns of one manufacturing model."""
    fab = mfg.fab
    return (
        fab.carbon_intensity_kg_per_kwh,
        fab.gas_abatement,
        fab.edge_exclusion_mm,
        fab.scribe_mm,
        mfg.recycled_fraction,
        float(YIELD_MODEL_CODES[YieldModel.coerce(mfg.yield_model)]),
        float(mfg.charge_wafer_waste),
    )


@functools.lru_cache(maxsize=1024)
def pkg_cols(pkg) -> tuple[float, ...]:
    """``PKG_*`` columns of one packaging model."""
    return (
        pkg.substrate_kg_per_cm2,
        pkg.assembly_kwh_per_package,
        carbon_intensity_kg_per_kwh(pkg.assembly_energy_source),
        pkg.fanout_factor,
        pkg.base_kg_per_package,
        pkg.mass_g_per_cm2,
        pkg.base_mass_g,
    )


@functools.lru_cache(maxsize=1024)
def eol_cols(eol) -> tuple[float, ...]:
    """``EOL_*`` columns of one end-of-life model."""
    material = (
        eol.material
        if isinstance(eol.material, WarmFactors)
        else get_material(eol.material)
    )
    return (
        eol.recycled_fraction,
        material.discard_kg_per_kg,
        material.recycle_credit_kg_per_kg,
        eol.transport_kg_per_kg,
    )


@functools.lru_cache(maxsize=1024)
def design_cols(design) -> tuple[float, ...]:
    """``DES_*`` columns of one design model."""
    report = (
        design.report
        if isinstance(design.report, DesignHouseReport)
        else get_report(design.report)
    )
    return (
        gwh_to_kwh(report.annual_energy_gwh)
        * design.overhead_factor
        * design.allocation,
        design.carbon_intensity(),
        report.avg_gates_per_chip_mgates,
        design.gate_scaling_beta,
    )


@functools.lru_cache(maxsize=1024)
def op_cols(operation) -> tuple[float, ...]:
    """``OP_*`` columns of one operation model."""
    profile = operation.profile
    return (
        carbon_intensity_kg_per_kwh(operation.energy_source),
        profile.duty_cycle,
        profile.idle_fraction_of_peak,
        profile.pue,
    )


@functools.lru_cache(maxsize=1024)
def appdev_cols(appdev, fpga_effort, asic_effort) -> tuple[float, ...]:
    """``(ad_ci, config_kw, fpga_dev_kg, fpga_chpu, asic_dev_kg, asic_chpu)``."""
    intensity = carbon_intensity_kg_per_kwh(appdev.energy_source)
    farm_kw = watts_to_kw(appdev.farm_power_w)
    return (
        intensity,
        watts_to_kw(appdev.config_power_w),
        farm_kw * fpga_effort.per_application_hours() * intensity,
        fpga_effort.config_hours_per_unit,
        farm_kw * asic_effort.per_application_hours() * intensity,
        asic_effort.config_hours_per_unit,
    )


@functools.lru_cache(maxsize=1024)
def fpga_device_cols(device) -> tuple[float, ...]:
    """``F_AREA .. F_WAFER_D`` columns of one FPGA device."""
    node = device.node
    return (
        device.area_mm2,
        device.peak_power_w,
        device.chip_lifetime_years,
        device.logic_capacity_mgates,
        device.area_mm2 * node.gate_density_mgates_per_mm2,
        node.epa_kwh_per_cm2,
        node.gpa_kg_per_cm2,
        node.mpa_new_kg_per_cm2,
        node.mpa_recycled_kg_per_cm2,
        node.defect_density_per_cm2,
        node.line_yield,
        node.wafer_diameter_mm,
    )


@functools.lru_cache(maxsize=1024)
def asic_device_cols(device) -> tuple[float, ...]:
    """``A_AREA .. A_WAFER_D`` columns of one ASIC device."""
    node = device.node
    return (
        device.area_mm2,
        device.peak_power_w,
        device.chip_lifetime_years,
        device.logic_gates_mgates,
        node.epa_kwh_per_cm2,
        node.gpa_kg_per_cm2,
        node.mpa_new_kg_per_cm2,
        node.mpa_recycled_kg_per_cm2,
        node.defect_density_per_cm2,
        node.line_yield,
        node.wafer_diameter_mm,
    )


def extract_row(comparator: PlatformComparator) -> tuple[float, ...]:
    """Flatten one comparator into a model-parameter row.

    Pure attribute reads and registry lookups — no footprint math — and
    memoised per sub-model, so repeated extraction of similar suites
    spends a few microseconds per row here and the heavy arithmetic
    happens once, vectorised, in the kernels.
    """
    suite = comparator.suite
    ad = appdev_cols(suite.appdev, suite.fpga_effort, suite.asic_effort)
    return (
        mfg_cols(suite.manufacturing)
        + pkg_cols(suite.packaging)
        + eol_cols(suite.eol)
        + design_cols(suite.design)
        + op_cols(suite.operation)
        + ad[:2]
        + fpga_device_cols(comparator.fpga_device)
        + (suite.fpga_team.project_years, ad[2], ad[3])
        + asic_device_cols(comparator.asic_device)
        + (suite.asic_team.project_years, ad[4], ad[5])
    )


# ----------------------------------------------------------------------
# ParameterBatch
# ----------------------------------------------------------------------


class ParameterBatch:
    """N model-parameter rows as columns, ready for the vector kernels.

    Two construction modes share one evaluation path:

    * :meth:`from_comparator` — a *base* comparator extracted once plus
      perturbed columns written by ``apply_column`` callbacks.  Columns
      never written stay length-1 broadcast arrays, so a million-draw
      batch perturbing two knobs costs two (n,)-columns, not an
      (n, 57) matrix; sub-models whose inputs are all unperturbed are
      evaluated once and broadcast.
    * :meth:`from_comparators` — one extracted row per comparator
      object (DSE grids, tornado endpoints, the object-path engine
      API); keeps the comparators for the scalar fallback of
      kernel-uncovered scenario rows.

    Column arrays are float64 and either length ``n`` (per-row values)
    or length 1 (broadcast); :meth:`col` returns them as-is, so kernel
    callers rely on NumPy broadcasting instead of materialised tiles.
    """

    __slots__ = ("n", "base", "base_row", "columns", "comparators")

    def __init__(
        self,
        n: int,
        *,
        base: PlatformComparator | None = None,
        base_row: "np.ndarray | None" = None,
        columns: "dict[int, np.ndarray] | None" = None,
        comparators: "tuple[PlatformComparator, ...] | None" = None,
    ) -> None:
        if n < 0:
            raise ParameterError(f"ParameterBatch size must be >= 0, got {n}")
        if base is None and base_row is None and not columns:
            raise ParameterError(
                "ParameterBatch needs a base comparator or explicit columns"
            )
        self.n = n
        self.base = base
        self.base_row = base_row
        self.columns: dict[int, np.ndarray] = dict(columns or {})
        self.comparators = comparators

    # -- construction ---------------------------------------------------

    @classmethod
    def from_comparator(
        cls, comparator: PlatformComparator, n: int
    ) -> "ParameterBatch":
        """Base-plus-overrides batch: extract the base row exactly once.

        Every column starts as the base comparator's value; perturb
        columns with :meth:`set_col` (typically via a distribution's
        ``apply_column`` callback).
        """
        if n < 1:
            raise ParameterError(f"ParameterBatch size must be >= 1, got {n}")
        base_row = np.asarray(extract_row(comparator), dtype=np.float64)
        return cls(n, base=comparator, base_row=base_row)

    @classmethod
    def from_comparators(
        cls, comparators: Sequence[PlatformComparator]
    ) -> "ParameterBatch":
        """Per-row extraction of existing comparator objects."""
        comparators = tuple(comparators)
        matrix = np.array(
            [extract_row(c) for c in comparators], dtype=np.float64
        ).reshape(len(comparators), N_PARAM_COLS)
        columns = {i: matrix[:, i] for i in range(N_PARAM_COLS)}
        return cls(len(comparators), columns=columns, comparators=comparators)

    # -- column access --------------------------------------------------

    @property
    def size(self) -> int:
        """Number of parameter rows in the batch."""
        return self.n

    def __len__(self) -> int:
        return self.n

    def col(self, index: int) -> np.ndarray:
        """Column ``index`` as a float64 array of length ``n`` or 1.

        Length-1 columns broadcast against per-row columns in the
        kernels; callers must not assume length ``n``.
        """
        column = self.columns.get(index)
        if column is not None:
            return column
        if self.base_row is None:
            raise ParameterError(f"parameter column {index} is not populated")
        return self.base_row[index : index + 1]

    def set_col(self, index: int, values: "np.ndarray | float") -> None:
        """Write a parameter column (a per-row array or one broadcast value).

        The canonical write path of ``apply_column`` distribution
        callbacks; values are coerced to float64 and must have length
        ``n`` or 1.
        """
        if not 0 <= index < N_PARAM_COLS:
            raise ParameterError(
                f"parameter column index {index} outside [0, {N_PARAM_COLS})"
            )
        column = np.atleast_1d(np.asarray(values, dtype=np.float64))
        if column.ndim != 1 or column.shape[0] not in (1, self.n):
            raise ParameterError(
                f"column {index}: expected 1 or {self.n} values, "
                f"got shape {column.shape}"
            )
        self.columns[index] = column

    @property
    def overrides(self) -> dict[int, np.ndarray]:
        """The explicitly written columns (digest material in base mode)."""
        return self.columns

    @property
    def digestable(self) -> bool:
        """Whether the store can key these rows without per-row hashing.

        Base-mode batches fold the base comparator's digest with the
        override columns; extraction-mode batches fold all columns from
        a fixed namespace seed.  Both are vectorised in
        :func:`repro.engine.store.param_batch_digests`.
        """
        return self.base is not None or len(self.columns) == N_PARAM_COLS

    # -- row subsetting (zero-copy) ------------------------------------

    def slice_rows(self, start: int, stop: int) -> "ParameterBatch":
        """Row-range view ``[start, stop)`` — column slices are views.

        Length-1 broadcast columns are shared as-is, so chunked
        dispatch over a huge base-mode batch copies no row data.
        """
        columns = {
            i: (c if c.shape[0] == 1 else c[start:stop])
            for i, c in self.columns.items()
        }
        comparators = (
            None if self.comparators is None else self.comparators[start:stop]
        )
        return ParameterBatch(
            stop - start,
            base=self.base,
            base_row=self.base_row,
            columns=columns,
            comparators=comparators,
        )

    def take(self, rows: np.ndarray) -> "ParameterBatch":
        """Row subset by index array (used to split store hits/misses)."""
        rows = np.asarray(rows)
        columns = {
            i: (c if c.shape[0] == 1 else c[rows])
            for i, c in self.columns.items()
        }
        comparators = (
            None
            if self.comparators is None
            else tuple(self.comparators[int(i)] for i in rows)
        )
        return ParameterBatch(
            int(rows.size),
            base=self.base,
            base_row=self.base_row,
            columns=columns,
            comparators=comparators,
        )

    def __repr__(self) -> str:
        mode = "base" if self.base is not None else "rows"
        return (
            f"ParameterBatch(n={self.n}, mode={mode}, "
            f"columns={sorted(self.columns)})"
        )
