"""Fused single-pass kernel tier for reduce-only streaming workloads.

The plain kernel chain (:mod:`repro.engine.vector.kernels` composed by
:mod:`repro.engine.vector.evaluator`) broadcasts every sub-model input
to full batch rank and allocates a fresh temporary per expression — on a
131072-row chunk that is dozens of megabytes of allocation and memory
traffic per chunk, most of it spent recomputing values that are constant
across the batch.  This module closes that gap with two interchangeable
backends behind one :class:`FusedKernel` interface:

* **buffer-reuse NumPy** (always available): the kernel chain rewritten
  over a :class:`ScratchPool` of preallocated per-chunk buffers with
  ``out=``/in-place ufuncs, and — crucially — *rank- and
  linearity-aware*: length-1 broadcast parameter columns and
  value-uniform scenario columns are computed as scalars, and the
  lifecycle algebra over genuinely per-row columns flows through
  deferred linear forms (:class:`_Lin`: ``sum(c_i * base_i) + offset``)
  whose scalar coefficients absorb every multiply/add/divide-by-scalar
  and fold at zero full-rank passes.  Full-rank work happens only at
  nonlinear boundaries (yield curves, ceil, products of two per-row
  chains, the final ratio) — on the Table-1 streaming workload that is
  ~25 vectorised passes per chunk instead of the chain's ~150.
  Reassociating scalar algebra changes rounding, so per-element parity
  with the chain is ``rtol <= 1e-12`` (measured ~1e-14) rather than
  bitwise — but winners are still decided on float64 totals and
  ``tests/test_fused.py`` verifies they match the chain bit-for-bit,
  draw for draw, on the committed studies.  Per-row results depend only
  on the row's values, never on chunk shape, so streaming summaries
  remain bit-identical across any chunk size and worker count.  After
  the first chunk the pool serves every request from its free lists:
  zero per-chunk array allocation, verified by ``tracemalloc``.
* **Numba** (optional): an ``@njit(parallel=False, cache=True)``
  single-pass loop computing per-row FPGA/ASIC totals, ratios and
  winners in one walk over the 57-column registry slabs.  The import is
  guarded — an absent Numba is a silent no-op and the tier degrades to
  the buffer-reuse backend.  Basic arithmetic matches the chain
  bit-for-bit (same IEEE operation order); transcendentals go through
  libm instead of NumPy's SIMD loops, so the parity contract for this
  backend is the registry-wide ``rtol <= 1e-12`` bound with winners
  decided on float64 totals.

Backend selection is automatic: the ``REPRO_KERNEL`` environment
variable (``fused``/``numpy``/``auto``, plus ``numba`` to insist on the
compiled backend) or the ``EvaluationEngine(kernel_tier=)`` knob, with
the pure-NumPy chain as the always-available fallback (``numpy``).

Every ``fused_*`` kernel here has a NumPy twin of the same name (minus
the prefix) in :mod:`repro.engine.vector.kernels` with an identical
positional signature — the GF-FUSE audit check enforces the pairing.

The tier is *reduce-only*: it produces a :class:`FusedResult` (ratios,
totals, a lazy winner column and an exact FPGA win count) for streaming
reducers, not the full component breakdown of ``BatchResult``.
"""

from __future__ import annotations

import math
import os

import numpy as np

from repro.engine.vector import params as P
from repro.engine.vector.columns import ScenarioBatch
from repro.engine.vector.kernels import (
    GENERATIONS_EPSILON,
    YIELD_MODEL_CODES,
    die_yield_kernel,
    manufacturing_per_die_kg,
    repeat_add,
)
from repro.engine.vector.params import ParameterBatch
from repro.errors import CapacityError, ParameterError
from repro.manufacturing.yield_model import YieldModel
from repro.units import HOURS_PER_YEAR, MM2_PER_CM2, RETICLE_LIMIT_MM2

try:  # guarded: absent Numba must be a silent no-op
    from numba import njit as _njit  # type: ignore[import-not-found]

    NUMBA_AVAILABLE = True
except Exception:  # noqa: BLE001 - absent/broken Numba must be a silent no-op
    _njit = None
    NUMBA_AVAILABLE = False

#: Environment knob selecting the kernel tier for new evaluators.
KERNEL_TIER_ENV = "REPRO_KERNEL"

#: Accepted ``REPRO_KERNEL`` / ``kernel_tier=`` spellings.
KERNEL_TIERS = ("auto", "fused", "numba", "numpy")

_MURPHY = YIELD_MODEL_CODES[YieldModel.MURPHY]
_POISSON = YIELD_MODEL_CODES[YieldModel.POISSON]
_SEEDS = YIELD_MODEL_CODES[YieldModel.SEEDS]


def resolve_kernel_tier(requested: "str | None" = None) -> str:
    """Resolve a tier request to a concrete backend name.

    ``requested`` wins over the ``REPRO_KERNEL`` environment variable;
    both default to ``auto``.  Returns ``"numba"``, ``"numpy-fused"``
    or ``"chain"`` (the plain kernel chain, i.e. no fused tier).
    ``fused``/``auto`` prefer Numba when importable and degrade to the
    buffer-reuse NumPy backend silently — as does an explicit ``numba``
    request, per the silent-no-op contract for the missing compiler.
    """
    tier = requested if requested is not None else os.environ.get(KERNEL_TIER_ENV)
    tier = str(tier).strip().lower() if tier is not None else "auto"
    if not tier:
        tier = "auto"
    if tier not in KERNEL_TIERS:
        raise ParameterError(
            f"unknown kernel tier {tier!r}; expected one of {KERNEL_TIERS}"
        )
    if tier == "numpy":
        return "chain"
    if tier == "numba" or tier == "auto" or tier == "fused":
        return "numba" if NUMBA_AVAILABLE else "numpy-fused"
    raise ParameterError(f"unhandled kernel tier {tier!r}")  # pragma: no cover


def kernel_tier_label(requested: "str | None" = None) -> str:
    """Human-readable name of the tier a request resolves to.

    ``fused-numba`` / ``fused-numpy`` / ``numpy-chain`` — printed by
    ``greenfpga mc`` and embedded in bench artifacts so they are
    self-describing.
    """
    backend = resolve_kernel_tier(requested)
    if backend == "chain":
        return "numpy-chain"
    return "fused-numba" if backend == "numba" else "fused-numpy"


def make_kernel(
    requested: "str | None" = None, dtype: "np.dtype | type" = np.float64
) -> "FusedKernel | None":
    """Build a :class:`FusedKernel` for a tier request.

    Returns ``None`` when the request resolves to the plain chain
    (``REPRO_KERNEL=numpy``) — callers fall back to the existing
    evaluator path.
    """
    backend = resolve_kernel_tier(requested)
    if backend == "chain":
        return None
    return FusedKernel(backend=backend, dtype=dtype)


# ----------------------------------------------------------------------
# Scratch buffers
# ----------------------------------------------------------------------


class ScratchPool:
    """Reusable ndarray buffers keyed by (length, dtype).

    ``take`` hands out a buffer (recycled when one of the right shape is
    free, freshly allocated otherwise); ``reclaim`` returns everything
    lent since the last reclaim to the free lists.  A kernel reclaims at
    the *start* of each evaluation, so the buffers backing the previous
    :class:`FusedResult` stay valid until the next call — and because a
    streaming workload's rank pattern is constant across chunks, every
    chunk after the first is served entirely from the free lists (the
    zero-allocation property ``tests/test_fused.py`` verifies with
    ``tracemalloc``).
    """

    __slots__ = ("_free", "_lent")

    def __init__(self) -> None:
        self._free: dict[tuple[int, str], list[np.ndarray]] = {}
        self._lent: list[np.ndarray] = []

    def take(self, length: int, dtype: "np.dtype | type" = np.float64) -> np.ndarray:
        """A writable 1-D buffer of ``length`` elements (contents undefined)."""
        key = (int(length), np.dtype(dtype).str)
        stack = self._free.get(key)
        arr = stack.pop() if stack else np.empty(key[0], dtype=dtype)
        self._lent.append(arr)
        return arr

    def mark(self) -> int:
        """Checkpoint of the lent list, for scoped reclaims."""
        return len(self._lent)

    def reclaim(self, mark: int = 0) -> None:
        """Return buffers lent since ``mark`` (default: all) to the pool.

        The tiled evaluation loop reclaims per tile so every tile reuses
        the same cache-hot buffers; output buffers taken before the mark
        stay lent until the next full reclaim.
        """
        free = self._free
        lent = self._lent
        for arr in lent[mark:]:
            free.setdefault((arr.shape[0], arr.dtype.str), []).append(arr)
        del lent[mark:]


def _blen(*operands: "np.ndarray | float") -> int:
    """Broadcast length of 1-D operands (scalars count as length 1)."""
    n = 1
    for o in operands:
        if isinstance(o, np.ndarray) and o.shape[0] > n:
            n = o.shape[0]
    return n


def _pyf(o):
    """Length-1 float64 columns as Python floats.

    A Python-scalar operand is the cheapest thing a ufunc can consume
    (no second array to stream, no broadcasting machinery, and crucially
    ``power(x, scalar)`` dispatches its fast path where ``power(x,
    length-1 array)`` does not).  Bit-for-bit this changes nothing:
    ufuncs on this build produce identical results for scalar, length-1
    and full-rank operands, which ``tests/test_fused.py`` locks in.
    """
    if isinstance(o, np.ndarray) and o.shape == (1,) and o.dtype == np.float64:
        return float(o[0])
    return o


def _uniform_view(pool: ScratchPool, x: np.ndarray) -> "np.ndarray | None":
    """``x[:1]`` when every element of ``x`` equals ``x[0]``, else None.

    NaN columns count as uniform when they are all-NaN (the ``nan``
    spelling of "unset" in scenario columns).  The comparison runs
    through a pooled buffer so uniformity detection itself allocates
    nothing in steady state.
    """
    n = x.shape[0]
    if n <= 1:
        return x
    if x.strides[0] == 0:
        # Stride-0 broadcast column (ScenarioBatch.tile) — uniform by
        # construction, no scan needed.
        return x[:1]
    first = x[0]
    buf = pool.take(n, np.bool_)
    if x.dtype.kind == "f" and np.isnan(first):
        np.isnan(x, out=buf)
    else:
        np.equal(x, first, out=buf)
    return x[:1] if bool(buf.all()) else None


# ----------------------------------------------------------------------
# Deferred linear forms
#
# The lifecycle model is affine in almost every registry column: a
# per-row column enters the final totals through chains of
# multiply-by-scalar / add-scalar / add-each-other steps, with only a
# handful of genuinely nonlinear joints (yield curves, ``ceil``, the
# operation ``ci * duty`` product, the final ratio).  ``_Lin`` carries
# ``sum(coeff_i * base_i) + offset`` symbolically — scalar algebra
# lands in the coefficients for free — and materialises (``_flush``)
# only at those joints, so the number of full-rank vectorised passes
# per chunk tracks the number of nonlinearities, not the number of
# expressions.  Reassociating scalar algebra perturbs rounding by a few
# ULPs (measured ~1e-14 relative), inside the tier's ``rtol <= 1e-12``
# parity contract; winners stay bit-identical because both sides drift
# together by amounts far below any realistic FPGA/ASIC gap.
# ----------------------------------------------------------------------

_F64 = np.float64
_L_ZERO = _F64(0.0)
_L_ONE = _F64(1.0)


class _Lin:
    """A deferred linear form over full-rank base columns.

    ``terms`` maps ``id(base) -> (base, coeff)``; the value it denotes
    is ``sum(coeff * base) + offset``.  Instances are immutable after
    construction (helpers always build fresh dicts), and bases are
    treated as read-only, so flushing a single-term, unit-coefficient,
    zero-offset form can return the base array itself without a copy.
    """

    __slots__ = ("terms", "offset")

    def __init__(self, terms, offset=_L_ZERO):
        self.terms = terms
        self.offset = offset


class _AffineCtx:
    """Per-evaluation context: the scratch pool plus a product cache.

    Products of two per-row bases (``ci * duty`` is the one the model
    produces) are cached by unordered id pair, so both platform sides
    share a single full-rank multiply per chunk.
    """

    __slots__ = ("pool", "products")

    def __init__(self, pool: ScratchPool) -> None:
        self.pool = pool
        self.products: dict[tuple[int, int], np.ndarray] = {}


def _val(ctx: _AffineCtx, x):
    """Normalise an operand to ``np.float64`` scalar or :class:`_Lin`."""
    if isinstance(x, (_Lin, _F64)):
        return x
    if isinstance(x, np.ndarray):
        if x.ndim == 0 or x.shape[0] == 1:
            return _F64(x.flat[0])
        if x.strides[0] == 0:
            return _F64(x[0])
        if x.dtype != np.float64:
            base = ctx.pool.take(x.shape[0])
            np.copyto(base, x, casting="unsafe")
        else:
            base = x
        return _Lin({id(base): (base, _L_ONE)})
    return _F64(x)


def _flush(ctx: _AffineCtx, x) -> "np.ndarray | np.float64":
    """Materialise a value: scalars pass through, forms become arrays."""
    if not isinstance(x, _Lin):
        return x
    items = list(x.terms.values())
    base0, c0 = items[0]
    if len(items) == 1 and c0 == 1.0 and x.offset == 0.0:
        return base0
    out = ctx.pool.take(base0.shape[0])
    if c0 == 1.0:
        np.copyto(out, base0)
    else:
        np.multiply(base0, c0, out=out)
    if len(items) > 1:
        scratch = ctx.pool.take(base0.shape[0])
        for base, c in items[1:]:
            if c == 1.0:
                np.add(out, base, out=out)
            else:
                np.multiply(base, c, out=scratch)
                np.add(out, scratch, out=out)
    if x.offset != 0.0:
        np.add(out, x.offset, out=out)
    return out


def _as_col(ctx: _AffineCtx, x) -> np.ndarray:
    """Materialise to a 1-D float64 array (length 1 for scalars)."""
    flushed = _flush(ctx, _val(ctx, x))
    if isinstance(flushed, np.ndarray):
        return flushed
    out = ctx.pool.take(1)
    out[0] = flushed
    return out


def _product(ctx: _AffineCtx, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    key = (id(a), id(b)) if id(a) <= id(b) else (id(b), id(a))
    got = ctx.products.get(key)
    if got is None:
        got = ctx.pool.take(a.shape[0])
        np.multiply(a, b, out=got)
        ctx.products[key] = got
    return got


def _scaled(lin: _Lin, s) -> _Lin:
    return _Lin(
        {k: (base, c * s) for k, (base, c) in lin.terms.items()},
        lin.offset * s,
    )


def _mul(ctx: _AffineCtx, a, b):
    a = _val(ctx, a)
    b = _val(ctx, b)
    if isinstance(a, _Lin):
        if isinstance(b, _Lin):
            return _mul_lin(ctx, a, b)
        if b == 1.0:
            return a
        return _scaled(a, b)
    if isinstance(b, _Lin):
        if a == 1.0:
            return b
        return _scaled(b, a)
    return a * b


def _mul_lin(ctx: _AffineCtx, a: _Lin, b: _Lin) -> _Lin:
    # Expanding a product multiplies term counts; re-base wide operands
    # so pathological chains cannot blow the form up combinatorially.
    if len(a.terms) * len(b.terms) > 4:
        rebased = _flush(ctx, a)
        a = _Lin({id(rebased): (rebased, _L_ONE)}, _L_ZERO)
    terms: dict[int, tuple[np.ndarray, np.float64]] = {}

    def acc(base, c):
        key = id(base)
        old = terms.get(key)
        terms[key] = (base, old[1] + c) if old else (base, c)

    for base_a, ca in a.terms.values():
        for base_b, cb in b.terms.values():
            acc(_product(ctx, base_a, base_b), ca * cb)
        if b.offset != 0.0:
            acc(base_a, ca * b.offset)
    if a.offset != 0.0:
        for base_b, cb in b.terms.values():
            acc(base_b, cb * a.offset)
    return _Lin(terms, a.offset * b.offset)


def _add(ctx: _AffineCtx, a, b):
    a = _val(ctx, a)
    b = _val(ctx, b)
    if isinstance(a, _Lin):
        if isinstance(b, _Lin):
            terms = dict(a.terms)
            for key, (base, c) in b.terms.items():
                old = terms.get(key)
                terms[key] = (base, old[1] + c) if old else (base, c)
            return _Lin(terms, a.offset + b.offset)
        return _Lin(a.terms, a.offset + b)
    if isinstance(b, _Lin):
        return _Lin(b.terms, b.offset + a)
    return a + b


def _neg(x):
    if isinstance(x, _Lin):
        return _scaled(x, _F64(-1.0))
    return -x


def _sub(ctx: _AffineCtx, a, b):
    return _add(ctx, _val(ctx, a), _neg(_val(ctx, b)))


def _div(ctx: _AffineCtx, a, b):
    a = _val(ctx, a)
    b = _val(ctx, b)
    if not isinstance(b, _Lin):
        if isinstance(a, _Lin):
            if b == 1.0:
                return a
            if b != 0.0 and math.isfinite(b):
                return _scaled(a, _L_ONE / b)
            # Zero/non-finite divisors: coefficient-wise division would
            # turn per-row sign information into sign-of-coefficient
            # infinities; divide the materialised numerator instead.
            num = _flush(ctx, a)
            out = ctx.pool.take(num.shape[0])
            np.divide(num, b, out=out)
            return _Lin({id(out): (out, _L_ONE)})
        return a / b
    den = _flush(ctx, b)
    out = ctx.pool.take(den.shape[0])
    np.divide(_flush(ctx, a), den, out=out)
    return _Lin({id(out): (out, _L_ONE)})


def _un_flushed(ctx: _AffineCtx, ufunc, x):
    """Nonlinear unary op: flush, apply into a pool buffer (or scalar)."""
    x = _val(ctx, x)
    if isinstance(x, _Lin):
        arr = _flush(ctx, x)
        out = ctx.pool.take(arr.shape[0])
        ufunc(arr, out=out)
        return _Lin({id(out): (out, _L_ONE)})
    return ufunc(x)


def _pow(ctx: _AffineCtx, a, b):
    a = _val(ctx, a)
    b = _val(ctx, b)
    if isinstance(b, _Lin) or isinstance(a, _Lin):
        if not isinstance(b, _Lin) and b == 1.0:
            return a
        base = _flush(ctx, a)
        exp = _flush(ctx, b)
        if isinstance(base, np.ndarray) or isinstance(exp, np.ndarray):
            out = ctx.pool.take(_blen(base, exp))
            np.power(_pyf(base), _pyf(exp), out=out)
            return _Lin({id(out): (out, _L_ONE)})
        return np.power(base, exp)
    return np.power(a, b)


def _maximum(ctx: _AffineCtx, a, b):
    a = _val(ctx, a)
    b = _val(ctx, b)
    if isinstance(a, _Lin) or isinstance(b, _Lin):
        fa, fb = _flush(ctx, a), _flush(ctx, b)
        out = ctx.pool.take(_blen(fa, fb))
        np.maximum(_pyf(fa), _pyf(fb), out=out)
        return _Lin({id(out): (out, _L_ONE)})
    return np.maximum(a, b)


# ----------------------------------------------------------------------
# Fused twins of the chain kernels (buffer-reuse NumPy backend)
#
# Each ``fused_*`` function mirrors its twin in ``kernels.py`` —
# identical positional signature (GF-FUSE enforces this), same model
# algebra to ``rtol <= 1e-12`` — but computes over deferred linear
# forms at natural rank into pool buffers instead of broadcasting
# everything to batch rank.  Twins accept raw column arrays, scalars or
# :class:`_Lin` values and return a scalar or :class:`_Lin`; callers
# materialise with ``_flush``/``_as_col``.
# ----------------------------------------------------------------------


def fused_repeat_add(x, counts, *, ctx: _AffineCtx):
    """Twin of :func:`~repro.engine.vector.kernels.repeat_add`.

    Uniform counts (the tiled-scenario streaming case) collapse the
    ``count``-step left fold to a single multiply on the deferred form
    (``x+x+...+x`` and ``x*count`` agree to a couple of ULPs, inside
    the tier's parity bound); ragged counts delegate to the chain twin.
    """
    counts = np.asarray(counts)
    if counts.size > 1 and counts.min() != counts.max():
        return _val(ctx, repeat_add(_as_col(ctx, x), counts))
    if counts.size == 0:
        return _val(ctx, x)
    c = int(counts.flat[0])
    if c == 1:
        # A one-step fold is the operand itself (the chain's masked
        # fold selects x verbatim at step 1).
        return _val(ctx, x)
    if c < 1:
        return _F64(0.0)
    return _mul(ctx, x, _F64(c))


def fused_generations_kernel(years, chip_lifetime_years, *, ctx: _AffineCtx):
    """Twin of :func:`~repro.engine.vector.kernels.generations_kernel`.

    Returns float64 generation counts (exact small integers) instead of
    the chain's int64 — downstream fleet arithmetic is float either
    way.
    """
    t = _div(ctx, years, chip_lifetime_years)
    t = _sub(ctx, t, _F64(GENERATIONS_EPSILON))
    t = _un_flushed(ctx, np.ceil, t)
    return _maximum(ctx, _F64(1.0), t)


def fused_ratio_kernel(fpga_totals, asic_totals, *, pool: ScratchPool) -> np.ndarray:
    """Twin of :func:`~repro.engine.vector.kernels.ratio_kernel`."""
    out = pool.take(_blen(fpga_totals, asic_totals))
    with np.errstate(divide="ignore", invalid="ignore"):
        np.divide(_pyf(fpga_totals), _pyf(asic_totals), out=out)
    asic = np.asarray(asic_totals, dtype=np.float64)
    if np.count_nonzero(asic) != asic.size:  # degenerate rows: rare path
        zero = np.broadcast_to(asic, out.shape) == 0.0
        fpga = np.broadcast_to(
            np.asarray(fpga_totals, dtype=np.float64), out.shape
        )[zero]
        out[zero] = np.where(fpga == 0.0, 1.0, np.copysign(np.inf, fpga))
    return out


def fused_winner_kernel(fpga_totals, asic_totals, *, pool: ScratchPool) -> np.ndarray:
    """Twin of :func:`~repro.engine.vector.kernels.winner_kernel`.

    Returns the boolean FPGA-wins mask instead of materialised strings;
    :class:`FusedResult` renders ``winners`` lazily from it (reducers on
    the hot path count wins without ever touching a string array).
    """
    lt = pool.take(_blen(fpga_totals, asic_totals), np.bool_)
    np.less(fpga_totals, asic_totals, out=lt)
    return lt


def fused_dies_per_wafer_kernel(
    die_area_mm2, wafer_diameter_mm, edge_exclusion_mm, scribe_mm, *, ctx: _AffineCtx
):
    """Twin of :func:`~repro.engine.vector.kernels.dies_per_wafer_kernel`."""
    area = _val(ctx, die_area_mm2)
    if isinstance(area, _Lin):
        arr = _flush(ctx, area)
        over = ctx.pool.take(arr.shape[0], np.bool_)
        np.greater(arr, RETICLE_LIMIT_MM2, out=over)
        too_big, worst = bool(over.any()), float(arr.max()) if over.any() else 0.0
    else:
        too_big, worst = bool(area > RETICLE_LIMIT_MM2), float(area)
    if too_big:
        raise CapacityError(
            f"die area {worst:.0f} mm^2 exceeds the reticle limit "
            f"({RETICLE_LIMIT_MM2:.0f} mm^2); split the design across chips"
        )
    side_mm = _add(ctx, _un_flushed(ctx, np.sqrt, area), scribe_mm)
    footprint_mm2 = _pow(ctx, side_mm, 2.0)
    usable = _sub(
        ctx, wafer_diameter_mm, _mul(ctx, 2.0, edge_exclusion_mm)
    )
    half = _div(ctx, usable, 2.0)
    area_term = _div(
        ctx, _mul(ctx, np.pi, _pow(ctx, half, 2.0)), footprint_mm2
    )
    denom = _un_flushed(ctx, np.sqrt, _mul(ctx, 2.0, footprint_mm2))
    edge_term = _div(ctx, _mul(ctx, np.pi, usable), denom)
    gross = _un_flushed(ctx, np.floor, _sub(ctx, area_term, edge_term))
    if isinstance(gross, _Lin):
        garr = _flush(ctx, gross)
        low = ctx.pool.take(garr.shape[0], np.bool_)
        np.less(garr, 1.0, out=low)
        no_fit = bool(low.any())
    else:
        no_fit = bool(gross < 1.0)
    if no_fit:
        raise CapacityError("a die in the batch does not fit on its wafer")
    return gross


def fused_wafer_area_per_die_kernel(
    die_area_mm2, wafer_diameter_mm, edge_exclusion_mm, scribe_mm, *, ctx: _AffineCtx
):
    """Twin of :func:`~repro.engine.vector.kernels.wafer_area_per_die_kernel`."""
    gross = fused_dies_per_wafer_kernel(
        die_area_mm2, wafer_diameter_mm, edge_exclusion_mm, scribe_mm, ctx=ctx
    )
    radius_mm = _sub(
        ctx, _div(ctx, wafer_diameter_mm, 2.0), edge_exclusion_mm
    )
    if isinstance(radius_mm, _Lin):
        rarr = _flush(ctx, radius_mm)
        bad = ctx.pool.take(rarr.shape[0], np.bool_)
        np.less_equal(rarr, 0.0, out=bad)
        degenerate = bool(bad.any())
    else:
        degenerate = bool(radius_mm <= 0.0)
    if degenerate:
        raise CapacityError("edge exclusion leaves no usable wafer area")
    usable_cm2 = _div(
        ctx, _mul(ctx, np.pi, _pow(ctx, radius_mm, 2.0)), MM2_PER_CM2
    )
    per_die = _div(ctx, usable_cm2, gross)
    alt = _div(ctx, die_area_mm2, MM2_PER_CM2)
    return _maximum(ctx, per_die, alt)


def fused_die_yield_kernel(
    area_cm2, defect_density_per_cm2, model_code, line_yield, *, ctx: _AffineCtx
):
    """Twin of :func:`~repro.engine.vector.kernels.die_yield_kernel`.

    Uniform model codes (every realistic batch) take a single branch at
    natural rank; per-row mixed codes delegate to the chain twin.
    """
    code = np.asarray(model_code)
    if code.size > 1 and code.min() != code.max():
        return _val(ctx, die_yield_kernel(
            _as_col(ctx, area_cm2), defect_density_per_cm2, model_code,
            line_yield,
        ))
    faults = _flush(ctx, _mul(ctx, area_cm2, defect_density_per_cm2))
    c = int(code.flat[0])
    if c == _MURPHY:
        with np.errstate(divide="ignore", invalid="ignore"):
            if isinstance(faults, np.ndarray):
                curve = ctx.pool.take(faults.shape[0])
                np.negative(faults, out=curve)
                np.expm1(curve, out=curve)
                np.negative(curve, out=curve)
                np.divide(curve, faults, out=curve)
                np.power(curve, 2.0, out=curve)
                small = ctx.pool.take(faults.shape[0], np.bool_)
                np.less(faults, 1.0e-12, out=small)
                curve[small] = 1.0
                statistical = _Lin({id(curve): (curve, _L_ONE)})
            else:
                if faults < 1.0e-12:
                    statistical = _F64(1.0)
                else:
                    ramp = -np.expm1(-faults) / faults
                    statistical = ramp * ramp
    elif c == _POISSON:
        statistical = _un_flushed(ctx, np.exp, _neg(_val(ctx, faults)))
    elif c == _SEEDS:
        statistical = _div(ctx, 1.0, _add(ctx, 1.0, faults))
    else:
        return _val(ctx, die_yield_kernel(
            _as_col(ctx, area_cm2), defect_density_per_cm2, model_code,
            line_yield,
        ))
    return _mul(ctx, statistical, line_yield)


def fused_manufacturing_per_die_kg(
    die_area_mm2,
    epa_kwh_per_cm2,
    gpa_kg_per_cm2,
    mpa_new_kg_per_cm2,
    mpa_recycled_kg_per_cm2,
    defect_density_per_cm2,
    line_yield,
    wafer_diameter_mm,
    fab_intensity_kg_per_kwh,
    gas_abatement,
    edge_exclusion_mm,
    scribe_mm,
    recycled_fraction,
    yield_model_code,
    charge_wafer_waste,
    *,
    ctx: _AffineCtx,
):
    """Twin of :func:`~repro.engine.vector.kernels.manufacturing_per_die_kg`.

    Structurally mixed batches (per-row charge flags or yield models)
    delegate to the chain twin over broadcast inputs — exactly what the
    chain's side-constant builder does — so the fused path only ever
    takes uniform branches.
    """
    die_area_mm2 = np.asarray(die_area_mm2, dtype=np.float64)
    charge = np.asarray(charge_wafer_waste)
    code = np.asarray(yield_model_code)
    mixed_charge = charge.size > 1 and charge.min() != charge.max()
    mixed_code = code.size > 1 and code.min() != code.max()
    if mixed_charge or mixed_code:
        broadcast = np.broadcast_arrays(
            die_area_mm2, epa_kwh_per_cm2, gpa_kg_per_cm2, mpa_new_kg_per_cm2,
            mpa_recycled_kg_per_cm2, defect_density_per_cm2, line_yield,
            wafer_diameter_mm, fab_intensity_kg_per_kwh, gas_abatement,
            edge_exclusion_mm, scribe_mm, recycled_fraction, yield_model_code,
            charge_wafer_waste,
        )
        return _val(
            ctx, manufacturing_per_die_kg(*broadcast[:-1], broadcast[-1] != 0.0)
        )
    if bool(charge.flat[0]):
        area_cm2 = fused_wafer_area_per_die_kernel(
            die_area_mm2, wafer_diameter_mm, edge_exclusion_mm, scribe_mm,
            ctx=ctx,
        )
    else:
        area_cm2 = _div(ctx, die_area_mm2, MM2_PER_CM2)
    total_yield = fused_die_yield_kernel(
        _div(ctx, die_area_mm2, MM2_PER_CM2),
        defect_density_per_cm2,
        yield_model_code,
        line_yield,
        ctx=ctx,
    )
    scale = _div(ctx, area_cm2, total_yield)
    energy = _mul(
        ctx, _mul(ctx, epa_kwh_per_cm2, fab_intensity_kg_per_kwh), scale
    )
    gas = _mul(ctx, gpa_kg_per_cm2, _sub(ctx, 1.0, gas_abatement))
    gas = _mul(ctx, gas, scale)
    blended = _mul(ctx, recycled_fraction, mpa_recycled_kg_per_cm2)
    other = _mul(
        ctx, _sub(ctx, 1.0, recycled_fraction), mpa_new_kg_per_cm2
    )
    material = _mul(ctx, _add(ctx, blended, other), scale)
    return _add(ctx, _add(ctx, energy, gas), material)


def fused_packaging_per_chip(
    die_area_mm2,
    substrate_kg_per_cm2,
    assembly_kwh_per_package,
    assembly_intensity_kg_per_kwh,
    fanout_factor,
    base_kg_per_package,
    mass_g_per_cm2,
    base_mass_g,
    *,
    ctx: _AffineCtx,
):
    """Twin of :func:`~repro.engine.vector.kernels.packaging_per_chip`."""
    pkg_area_cm2 = _div(
        ctx, _mul(ctx, die_area_mm2, fanout_factor), MM2_PER_CM2
    )
    substrate = _add(
        ctx, base_kg_per_package,
        _mul(ctx, substrate_kg_per_cm2, pkg_area_cm2),
    )
    assembly = _mul(
        ctx, assembly_kwh_per_package, assembly_intensity_kg_per_kwh
    )
    mass_g = _add(ctx, base_mass_g, _mul(ctx, mass_g_per_cm2, pkg_area_cm2))
    return _add(ctx, substrate, assembly), mass_g


def fused_eol_per_chip_kg(
    package_mass_g,
    recycled_fraction,
    discard_kg_per_kg,
    recycle_credit_kg_per_kg,
    transport_kg_per_kg,
    *,
    ctx: _AffineCtx,
):
    """Twin of :func:`~repro.engine.vector.kernels.eol_per_chip_kg`."""
    mass_kg = _div(ctx, package_mass_g, 1000.0)
    discard_coef = _mul(
        ctx, _sub(ctx, 1.0, recycled_fraction), discard_kg_per_kg
    )
    discard = _mul(ctx, discard_coef, mass_kg)
    credit = _mul(
        ctx, _mul(ctx, recycled_fraction, recycle_credit_kg_per_kg), mass_kg
    )
    transport = _mul(ctx, transport_kg_per_kg, mass_kg)
    return _add(ctx, _sub(ctx, discard, credit), transport)


def fused_design_project_kg(
    gates_mgates,
    annual_energy_kwh_effective,
    project_years,
    intensity_kg_per_kwh,
    avg_gates_per_chip_mgates,
    gate_scaling_beta,
    *,
    ctx: _AffineCtx,
):
    """Twin of :func:`~repro.engine.vector.kernels.design_project_kg`."""
    gate_scale = _pow(
        ctx, _div(ctx, gates_mgates, avg_gates_per_chip_mgates),
        gate_scaling_beta,
    )
    total = _mul(ctx, annual_energy_kwh_effective, project_years)
    total = _mul(ctx, total, intensity_kg_per_kwh)
    return _mul(ctx, total, gate_scale)


def fused_operation_per_chip_year_kg(
    power_w,
    duty_cycle,
    idle_fraction_of_peak,
    pue,
    intensity_kg_per_kwh,
    *,
    ctx: _AffineCtx,
):
    """Twin of :func:`~repro.engine.vector.kernels.operation_per_chip_year_kg`.

    The duty/PUE prefix stays a deferred form over the duty column, so
    both platform sides share its bases (and the single ``ci * duty``
    product pass) through the evaluation context's caches.
    """
    idle = _mul(ctx, _sub(ctx, 1.0, duty_cycle), idle_fraction_of_peak)
    effective_duty = _mul(ctx, _add(ctx, duty_cycle, idle), pue)
    energy = _mul(ctx, _div(ctx, power_w, 1000.0), effective_duty)
    energy = _mul(ctx, energy, HOURS_PER_YEAR)
    return _mul(ctx, intensity_kg_per_kwh, energy)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------


class FusedResult:
    """Reduce-only batch outcome (the fused tier's ``BatchResult``).

    Carries exactly what streaming reducers consume — ``ratios``,
    ``fpga_totals``, ``asic_totals`` — plus an exact ``fpga_win_count``
    (``count_nonzero(fpga < asic)``, always computed on float64 totals)
    that :class:`~repro.engine.vector.reducers.WinCountReducer` uses to
    skip the string winner column entirely.  ``winners`` materialises
    lazily for consumers that do want strings.

    The arrays are views into the owning kernel's scratch pool: valid
    until the next ``evaluate`` on the same kernel, which is exactly the
    lifetime of one ``reduction.update`` call in the streaming loop.
    """

    __slots__ = (
        "ratios", "fpga_totals", "asic_totals", "fpga_win_count",
        "_fpga_wins_mask", "_winners",
    )

    def __init__(
        self,
        ratios: np.ndarray,
        fpga_totals: np.ndarray,
        asic_totals: np.ndarray,
        fpga_wins_mask: np.ndarray,
    ) -> None:
        self.ratios = ratios
        self.fpga_totals = fpga_totals
        self.asic_totals = asic_totals
        self._fpga_wins_mask = fpga_wins_mask
        self.fpga_win_count = int(np.count_nonzero(fpga_wins_mask))
        self._winners: "np.ndarray | None" = None

    @property
    def size(self) -> int:
        """Number of rows in the batch."""
        return int(self.ratios.shape[0])

    def __len__(self) -> int:
        return self.size

    @property
    def winners(self) -> np.ndarray:
        """Per-row winner strings, materialised on first access."""
        if self._winners is None:
            self._winners = np.where(self._fpga_wins_mask, "fpga", "asic")
        return self._winners

    @property
    def fpga_advantage_kg(self) -> np.ndarray:
        """ASIC total minus FPGA total per row (positive = FPGA wins)."""
        return self.asic_totals - self.fpga_totals


class _FusedSide:
    """Per-chip constant columns of one side, at natural rank."""

    __slots__ = (
        "design", "mfg", "pkg", "eol", "op",
        "dev_kg", "config_kw", "chpu", "ad_ci", "life", "capacity",
    )

    def __init__(self, **fields) -> None:
        for name, value in fields.items():
            setattr(self, name, value)


# ----------------------------------------------------------------------
# The kernel
# ----------------------------------------------------------------------


class FusedKernel:
    """One reusable fused evaluator (scratch persists across chunks).

    Build one per worker (the streaming layer keeps one per resolved
    tier per process) and call :meth:`evaluate` per chunk; the scratch
    pool is sized by the first chunk and recycled afterwards.

    ``dtype=np.float32`` opts the *summary feed* (``ratios``) into
    float32: lifecycle arithmetic and the winner comparison stay in
    float64 — win counts remain exact and totals bit-identical — while
    the ratio column reducers consume is downcast once per chunk, so
    float32 summaries agree with a float64 run to ``rtol <= 1e-5``
    (the only error source is the final rounding, ~1e-7 relative).
    """

    def __init__(
        self,
        backend: str = "numpy-fused",
        dtype: "np.dtype | type" = np.float64,
    ) -> None:
        if backend not in ("numba", "numpy-fused"):
            raise ParameterError(f"unknown fused backend {backend!r}")
        dt = np.dtype(dtype)
        if dt not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ParameterError(
                f"fused kernel dtype must be float64 or float32, got {dt}"
            )
        if backend == "numba" and not NUMBA_AVAILABLE:
            backend = "numpy-fused"
        self.backend = backend
        self.dtype = dt
        self.pool = ScratchPool()

    @property
    def name(self) -> str:
        """Tier label for bench artifacts (``fused-numba``/``fused-numpy``)."""
        return "fused-numba" if self.backend == "numba" else "fused-numpy"

    def evaluate(
        self, params: ParameterBatch, batch: ScenarioBatch
    ) -> "FusedResult | None":
        """One fused pass over a chunk; ``None`` when the tier must yield.

        Returns ``None`` for batches with uncovered scenario rows —
        those need the chain + scalar fallback path.  Raises the same
        :class:`~repro.errors.CapacityError` family as the chain for
        infeasible geometry.
        """
        if params.size != batch.size:
            raise ParameterError(
                f"parameter batch has {params.size} rows, "
                f"scenario batch has {batch.size}"
            )
        if batch.size == 0 or not batch.all_covered:
            return None
        self.pool.reclaim()
        if self.backend == "numba":
            try:
                return self._evaluate_numba(params, batch)
            except CapacityError:
                raise
            except Exception:  # noqa: BLE001 - compiled tier degrades, never fails
                # Any compiled-path failure degrades to the NumPy
                # backend for this kernel's remaining lifetime.
                self.backend = "numpy-fused"
        return self._evaluate_numpy(params, batch)

    # -- buffer-reuse NumPy backend ------------------------------------

    def _side_constants(
        self,
        p: ParameterBatch,
        ctx: _AffineCtx,
        *,
        fpga_side: bool,
    ) -> _FusedSide:
        if fpga_side:
            area, power, life = p.col(P.F_AREA), p.col(P.F_POWER), p.col(P.F_LIFE)
            gates = p.col(P.F_GATES)
            epa, gpa = p.col(P.F_EPA), p.col(P.F_GPA)
            mpa_new, mpa_rec = p.col(P.F_MPA_NEW), p.col(P.F_MPA_REC)
            defect, line_yield = p.col(P.F_DEFECT), p.col(P.F_LINE_YIELD)
            wafer_d = p.col(P.F_WAFER_D)
            team_years, dev_kg = p.col(P.F_TEAM_YEARS), p.col(P.F_DEV_KG)
            chpu = p.col(P.F_CHPU)
            capacity = p.col(P.F_CAPACITY)
        else:
            area, power, life = p.col(P.A_AREA), p.col(P.A_POWER), p.col(P.A_LIFE)
            gates = p.col(P.A_GATES)
            epa, gpa = p.col(P.A_EPA), p.col(P.A_GPA)
            mpa_new, mpa_rec = p.col(P.A_MPA_NEW), p.col(P.A_MPA_REC)
            defect, line_yield = p.col(P.A_DEFECT), p.col(P.A_LINE_YIELD)
            wafer_d = p.col(P.A_WAFER_D)
            team_years, dev_kg = p.col(P.A_TEAM_YEARS), p.col(P.A_DEV_KG)
            chpu = p.col(P.A_CHPU)
            capacity = None
        mfg = fused_manufacturing_per_die_kg(
            area, epa, gpa, mpa_new, mpa_rec, defect, line_yield, wafer_d,
            p.col(P.MFG_FAB_CI), p.col(P.MFG_ABATE), p.col(P.MFG_EDGE),
            p.col(P.MFG_SCRIBE), p.col(P.MFG_RHO), p.col(P.MFG_YIELD_CODE),
            p.col(P.MFG_CHARGE), ctx=ctx,
        )
        pkg, mass_g = fused_packaging_per_chip(
            area, p.col(P.PKG_SUB), p.col(P.PKG_ASM_KWH), p.col(P.PKG_ASM_CI),
            p.col(P.PKG_FANOUT), p.col(P.PKG_BASE_KG), p.col(P.PKG_MASS_CM2),
            p.col(P.PKG_BASE_MASS), ctx=ctx,
        )
        eol = fused_eol_per_chip_kg(
            mass_g, p.col(P.EOL_DELTA), p.col(P.EOL_DISCARD),
            p.col(P.EOL_CREDIT), p.col(P.EOL_TRANSPORT), ctx=ctx,
        )
        design = fused_design_project_kg(
            gates, p.col(P.DES_ANNUAL_KWH), team_years, p.col(P.DES_CI),
            p.col(P.DES_AVG_GATES), p.col(P.DES_BETA), ctx=ctx,
        )
        op = fused_operation_per_chip_year_kg(
            power, p.col(P.OP_DUTY), p.col(P.OP_IDLE), p.col(P.OP_PUE),
            p.col(P.OP_CI), ctx=ctx,
        )
        return _FusedSide(
            design=design, mfg=mfg, pkg=pkg, eol=eol, op=op,
            dev_kg=dev_kg, config_kw=p.col(P.AD_CONFIG_KW), chpu=chpu,
            ad_ci=p.col(P.AD_CI), life=life, capacity=capacity,
        )

    def _fold(self, x: np.ndarray) -> np.ndarray:
        """Fold a scenario column to length 1 when value-uniform."""
        folded = _uniform_view(self.pool, x)
        return x if folded is None else folded

    #: Rows per evaluation tile.  Streaming chunks fit in one tile and
    #: take the copy-free fast path below; the tile bound only kicks in
    #: for huge materialized batches, where it caps the scratch pool at
    #: a few dozen 2 MB buffers instead of a few dozen ``n``-row ones.
    TILE_ROWS = 262_144

    def _evaluate_numpy(self, p: ParameterBatch, batch: ScenarioBatch) -> FusedResult:
        pool = self.pool
        n = batch.size
        tile = self.TILE_ROWS
        if n <= tile:
            ratios, ftot, atot, wins = self._evaluate_tile(p, batch)
            return self._package(ratios, ftot, atot, wins, n)
        out_ratios = pool.take(n)
        out_ftot = pool.take(n)
        out_atot = pool.take(n)
        out_wins = pool.take(n, np.bool_)
        for start in range(0, n, tile):
            stop = min(start + tile, n)
            mark = pool.mark()
            ratios, ftot, atot, wins = self._evaluate_tile(
                p.slice_rows(start, stop), batch.slice_rows(start, stop)
            )
            np.copyto(out_ratios[start:stop], np.broadcast_to(ratios, (stop - start,)))
            np.copyto(out_ftot[start:stop], np.broadcast_to(ftot, (stop - start,)))
            np.copyto(out_atot[start:stop], np.broadcast_to(atot, (stop - start,)))
            np.copyto(out_wins[start:stop], np.broadcast_to(wins, (stop - start,)))
            pool.reclaim(mark)
        return self._package(out_ratios, out_ftot, out_atot, out_wins, n)

    def _evaluate_tile(
        self, p: ParameterBatch, batch: ScenarioBatch
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        pool = self.pool
        ctx = _AffineCtx(pool)

        fpga = self._side_constants(p, ctx, fpga_side=True)
        asic = self._side_constants(p, ctx, fpga_side=False)

        num_apps = self._fold(batch.num_apps)
        volume = self._fold(batch.volume)
        lifetime = self._fold(batch.lifetime)
        eval_years = self._fold(batch.evaluation_years)
        app_size = self._fold(batch.app_size_mgates)
        enforce = self._fold(batch.enforce_chip_lifetime)

        # N_FPGA = ceil(app_size / capacity), 1 when sized to the device.
        capacity = fpga.capacity
        if app_size.shape[0] == 1:
            if np.isnan(app_size[0]):
                n_fpga = _F64(1.0)
            else:
                units = _div(ctx, app_size, capacity)
                n_fpga = _maximum(ctx, 1.0, _un_flushed(ctx, np.ceil, units))
        else:
            # Mixed sized/unsized apps: rare materialized-batch path.
            sized = ~np.isnan(app_size)
            cap = np.broadcast_to(
                np.asarray(capacity, dtype=np.float64), app_size.shape
            )
            safe_size = np.where(sized, app_size, cap)
            units = np.maximum(1.0, np.ceil(safe_size / cap))
            n_fpga = _val(ctx, np.where(sized, units, 1.0))

        total_years = fused_repeat_add(lifetime, num_apps, ctx=ctx)
        if eval_years.shape[0] == 1:
            horizon = total_years if np.isnan(eval_years[0]) else _val(
                ctx, eval_years
            )
        else:
            horizon = _val(ctx, np.where(
                np.isnan(eval_years),
                np.broadcast_to(_as_col(ctx, total_years), eval_years.shape),
                eval_years,
            ))
        if enforce.shape[0] == 1:
            if enforce[0]:
                fpga_gen = fused_generations_kernel(horizon, fpga.life, ctx=ctx)
            else:
                fpga_gen = _F64(1.0)
        else:
            gens = fused_generations_kernel(horizon, fpga.life, ctx=ctx)
            fpga_gen = _val(ctx, np.where(
                enforce,
                np.broadcast_to(_as_col(ctx, gens), enforce.shape),
                1.0,
            ))

        unit_count = _mul(ctx, volume, n_fpga)
        fleet = _mul(ctx, unit_count, fpga_gen)

        f_design = _add(ctx, 0.0, fpga.design)
        f_mfg = _mul(ctx, fpga.mfg, fleet)
        f_pkg = _mul(ctx, fpga.pkg, fleet)
        f_eol = _mul(ctx, fpga.eol, fleet)
        op_app = _mul(ctx, _mul(ctx, lifetime, unit_count), fpga.op)
        f_op = fused_repeat_add(op_app, num_apps, ctx=ctx)
        config_hours = _mul(ctx, fpga.chpu, unit_count)
        configuration = _mul(
            ctx, _mul(ctx, fpga.config_kw, config_hours), fpga.ad_ci
        )
        appdev_app = _add(ctx, fpga.dev_kg, configuration)
        f_appdev = fused_repeat_add(appdev_app, num_apps, ctx=ctx)
        fpga_totals = _add(ctx, f_design, f_mfg)
        fpga_totals = _add(ctx, fpga_totals, f_pkg)
        fpga_totals = _add(ctx, fpga_totals, f_eol)
        fpga_totals = _add(ctx, fpga_totals, _add(ctx, f_op, f_appdev))

        asic_gen = fused_generations_kernel(lifetime, asic.life, ctx=ctx)
        chips = _mul(ctx, volume, asic_gen)
        a_design_app = _add(ctx, 0.0, asic.design)
        a_mfg_app = _mul(ctx, asic.mfg, chips)
        a_pkg_app = _mul(ctx, asic.pkg, chips)
        a_eol_app = _mul(ctx, asic.eol, chips)
        a_op_app = _mul(ctx, _mul(ctx, lifetime, volume), asic.op)
        a_config_hours = _mul(ctx, asic.chpu, volume)
        a_configuration = _mul(
            ctx, _mul(ctx, asic.config_kw, a_config_hours), asic.ad_ci
        )
        a_appdev_app = _add(ctx, asic.dev_kg, a_configuration)
        a_design = fused_repeat_add(a_design_app, num_apps, ctx=ctx)
        a_mfg = fused_repeat_add(a_mfg_app, num_apps, ctx=ctx)
        a_pkg = fused_repeat_add(a_pkg_app, num_apps, ctx=ctx)
        a_eol = fused_repeat_add(a_eol_app, num_apps, ctx=ctx)
        a_op = fused_repeat_add(a_op_app, num_apps, ctx=ctx)
        a_appdev = fused_repeat_add(a_appdev_app, num_apps, ctx=ctx)
        asic_totals = _add(ctx, a_design, a_mfg)
        asic_totals = _add(ctx, asic_totals, a_pkg)
        asic_totals = _add(ctx, asic_totals, a_eol)
        asic_totals = _add(ctx, asic_totals, _add(ctx, a_op, a_appdev))

        fpga_col = _as_col(ctx, fpga_totals)
        asic_col = _as_col(ctx, asic_totals)
        ratios = fused_ratio_kernel(fpga_col, asic_col, pool=pool)
        wins = fused_winner_kernel(fpga_col, asic_col, pool=pool)
        return ratios, fpga_col, asic_col, wins

    def _package(
        self,
        ratios: np.ndarray,
        fpga_totals: np.ndarray,
        asic_totals: np.ndarray,
        wins: np.ndarray,
        n: int,
    ) -> FusedResult:
        if self.dtype == np.float32:
            narrow = self.pool.take(ratios.shape[0], np.float32)
            np.copyto(narrow, ratios, casting="same_kind")
            ratios = narrow
        return FusedResult(
            np.broadcast_to(ratios, (n,)),
            np.broadcast_to(fpga_totals, (n,)),
            np.broadcast_to(asic_totals, (n,)),
            np.broadcast_to(wins, (n,)),
        )

    # -- Numba backend --------------------------------------------------

    def _evaluate_numba(self, p: ParameterBatch, batch: ScenarioBatch) -> FusedResult:
        pool = self.pool
        n = batch.size
        kernel = _get_numba_kernel()

        per_row = [
            j for j in range(P.N_PARAM_COLS) if p.col(j).shape[0] != 1
        ]
        scalars = pool.take(P.N_PARAM_COLS)
        rowmap = pool.take(P.N_PARAM_COLS, np.int64)
        rowmap.fill(-1)
        for j in range(P.N_PARAM_COLS):
            scalars[j] = p.col(j)[0] if j not in per_row else 0.0
        rowdata = pool.take(max(1, len(per_row)) * n).reshape(-1, n)
        for k, j in enumerate(per_row):
            rowmap[j] = k
            np.copyto(rowdata[k], p.col(j))

        # Geometry feasibility checks run outside the loop so the jitted
        # kernel never raises — identical error semantics to the chain.
        for fpga_side in (True, False):
            area = p.col(P.F_AREA if fpga_side else P.A_AREA)
            charge = p.col(P.MFG_CHARGE)
            if np.any(charge != 0.0):
                fused_dies_per_wafer_kernel(
                    area,
                    p.col(P.F_WAFER_D if fpga_side else P.A_WAFER_D),
                    p.col(P.MFG_EDGE), p.col(P.MFG_SCRIBE),
                    ctx=_AffineCtx(pool),
                )
                radius = (
                    np.asarray(
                        p.col(P.F_WAFER_D if fpga_side else P.A_WAFER_D),
                        dtype=np.float64,
                    ) / 2.0 - p.col(P.MFG_EDGE)
                )
                if np.any(radius <= 0.0):
                    raise CapacityError(
                        "edge exclusion leaves no usable wafer area"
                    )
            elif np.any(np.asarray(area, dtype=np.float64) > RETICLE_LIMIT_MM2):
                worst = float(np.asarray(area).max())
                raise CapacityError(
                    f"die area {worst:.0f} mm^2 exceeds the reticle limit "
                    f"({RETICLE_LIMIT_MM2:.0f} mm^2); split the design "
                    "across chips"
                )

        fpga_totals = pool.take(n)
        asic_totals = pool.take(n)
        ratios = pool.take(n)
        wins = pool.take(n, np.bool_)
        kernel(
            scalars, rowdata, rowmap,
            np.ascontiguousarray(batch.num_apps),
            np.ascontiguousarray(batch.volume),
            np.ascontiguousarray(batch.lifetime),
            np.ascontiguousarray(batch.evaluation_years),
            np.ascontiguousarray(batch.app_size_mgates),
            np.ascontiguousarray(batch.enforce_chip_lifetime),
            fpga_totals, asic_totals, ratios, wins,
        )
        return self._package(ratios, fpga_totals, asic_totals, wins, n)


# ----------------------------------------------------------------------
# Numba single-pass kernel (compiled lazily, only when importable)
# ----------------------------------------------------------------------

_NUMBA_KERNEL = None

# Column indices bound as module globals so the jitted kernel folds them
# into constants at compile time.
_I_MFG_FAB_CI, _I_MFG_ABATE = P.MFG_FAB_CI, P.MFG_ABATE
_I_MFG_EDGE, _I_MFG_SCRIBE = P.MFG_EDGE, P.MFG_SCRIBE
_I_MFG_RHO, _I_MFG_YIELD, _I_MFG_CHARGE = P.MFG_RHO, P.MFG_YIELD_CODE, P.MFG_CHARGE
_I_PKG_SUB, _I_PKG_ASM_KWH, _I_PKG_ASM_CI = P.PKG_SUB, P.PKG_ASM_KWH, P.PKG_ASM_CI
_I_PKG_FANOUT, _I_PKG_BASE_KG = P.PKG_FANOUT, P.PKG_BASE_KG
_I_PKG_MASS_CM2, _I_PKG_BASE_MASS = P.PKG_MASS_CM2, P.PKG_BASE_MASS
_I_EOL_DELTA, _I_EOL_DISCARD = P.EOL_DELTA, P.EOL_DISCARD
_I_EOL_CREDIT, _I_EOL_TRANSPORT = P.EOL_CREDIT, P.EOL_TRANSPORT
_I_DES_ANNUAL_KWH, _I_DES_CI = P.DES_ANNUAL_KWH, P.DES_CI
_I_DES_AVG_GATES, _I_DES_BETA = P.DES_AVG_GATES, P.DES_BETA
_I_OP_CI, _I_OP_DUTY, _I_OP_IDLE, _I_OP_PUE = P.OP_CI, P.OP_DUTY, P.OP_IDLE, P.OP_PUE
_I_AD_CI, _I_AD_CONFIG_KW = P.AD_CI, P.AD_CONFIG_KW
_I_F_AREA, _I_F_POWER, _I_F_LIFE = P.F_AREA, P.F_POWER, P.F_LIFE
_I_F_CAPACITY, _I_F_GATES = P.F_CAPACITY, P.F_GATES
_I_F_EPA, _I_F_GPA = P.F_EPA, P.F_GPA
_I_F_MPA_NEW, _I_F_MPA_REC = P.F_MPA_NEW, P.F_MPA_REC
_I_F_DEFECT, _I_F_LINE_YIELD, _I_F_WAFER_D = P.F_DEFECT, P.F_LINE_YIELD, P.F_WAFER_D
_I_F_TEAM_YEARS, _I_F_DEV_KG, _I_F_CHPU = P.F_TEAM_YEARS, P.F_DEV_KG, P.F_CHPU
_I_A_AREA, _I_A_POWER, _I_A_LIFE, _I_A_GATES = P.A_AREA, P.A_POWER, P.A_LIFE, P.A_GATES
_I_A_EPA, _I_A_GPA = P.A_EPA, P.A_GPA
_I_A_MPA_NEW, _I_A_MPA_REC = P.A_MPA_NEW, P.A_MPA_REC
_I_A_DEFECT, _I_A_LINE_YIELD, _I_A_WAFER_D = P.A_DEFECT, P.A_LINE_YIELD, P.A_WAFER_D
_I_A_TEAM_YEARS, _I_A_DEV_KG, _I_A_CHPU = P.A_TEAM_YEARS, P.A_DEV_KG, P.A_CHPU
_N_COLS = P.N_PARAM_COLS
_HOURS_PER_YEAR = float(HOURS_PER_YEAR)
_MM2_PER_CM2 = float(MM2_PER_CM2)
_GEN_EPS = float(GENERATIONS_EPSILON)


def _get_numba_kernel():
    """Compile (once) and return the single-pass jitted kernel."""
    global _NUMBA_KERNEL
    if _NUMBA_KERNEL is not None:
        return _NUMBA_KERNEL
    if not NUMBA_AVAILABLE:  # pragma: no cover - guarded by callers
        raise ParameterError("numba is not importable")

    @_njit(parallel=False, cache=True)
    def _chip_constants(
        row, i_area, i_power, i_life, i_gates, i_epa, i_gpa, i_mpa_new,
        i_mpa_rec, i_defect, i_line_yield, i_wafer_d, i_team_years,
        i_dev_kg,
    ):  # pragma: no cover - requires numba
        area = row[i_area]
        # -- manufacturing (mirrors manufacturing_per_die_kg) ----------
        faults = (area / _MM2_PER_CM2) * row[i_defect]
        code = int(row[_I_MFG_YIELD])
        if code == 0:  # Murphy
            if faults < 1.0e-12:
                statistical = 1.0
            else:
                curve = -math.expm1(-faults) / faults
                statistical = curve**2
        elif code == 1:  # Poisson
            statistical = math.exp(-faults)
        else:  # Seeds
            statistical = 1.0 / (1.0 + faults)
        total_yield = statistical * row[i_line_yield]
        if row[_I_MFG_CHARGE] != 0.0:
            side_mm = math.sqrt(area) + row[_I_MFG_SCRIBE]
            footprint_mm2 = side_mm**2
            usable_d = row[i_wafer_d] - 2.0 * row[_I_MFG_EDGE]
            area_term = math.pi * (usable_d / 2.0) ** 2 / footprint_mm2
            edge_term = math.pi * usable_d / math.sqrt(2.0 * footprint_mm2)
            gross = math.floor(area_term - edge_term)
            radius_mm = row[i_wafer_d] / 2.0 - row[_I_MFG_EDGE]
            usable_cm2 = (math.pi * radius_mm**2) / _MM2_PER_CM2
            area_cm2 = max(usable_cm2 / gross, area / _MM2_PER_CM2)
        else:
            area_cm2 = area / _MM2_PER_CM2
        scale = area_cm2 / total_yield
        energy = row[i_epa] * row[_I_MFG_FAB_CI] * scale
        gas = row[i_gpa] * (1.0 - row[_I_MFG_ABATE]) * scale
        blended = (
            row[_I_MFG_RHO] * row[i_mpa_rec]
            + (1.0 - row[_I_MFG_RHO]) * row[i_mpa_new]
        )
        mfg = energy + gas + blended * scale
        # -- packaging (mirrors packaging_per_chip) --------------------
        pkg_area_cm2 = (area * row[_I_PKG_FANOUT]) / _MM2_PER_CM2
        substrate = row[_I_PKG_BASE_KG] + row[_I_PKG_SUB] * pkg_area_cm2
        assembly = row[_I_PKG_ASM_KWH] * row[_I_PKG_ASM_CI]
        mass_g = row[_I_PKG_BASE_MASS] + row[_I_PKG_MASS_CM2] * pkg_area_cm2
        pkg = substrate + assembly
        # -- end of life (mirrors eol_per_chip_kg) ---------------------
        mass_kg = mass_g / 1000.0
        delta = row[_I_EOL_DELTA]
        discard = (1.0 - delta) * row[_I_EOL_DISCARD] * mass_kg
        credit = delta * row[_I_EOL_CREDIT] * mass_kg
        transport = row[_I_EOL_TRANSPORT] * mass_kg
        eol = discard - credit + transport
        # -- design (mirrors design_project_kg) ------------------------
        gate_scale = (row[i_gates] / row[_I_DES_AVG_GATES]) ** row[_I_DES_BETA]
        design = (
            row[_I_DES_ANNUAL_KWH] * row[i_team_years] * row[_I_DES_CI]
            * gate_scale
        )
        # -- operation (mirrors operation_per_chip_year_kg) ------------
        idle = (1.0 - row[_I_OP_DUTY]) * row[_I_OP_IDLE]
        effective_duty = (row[_I_OP_DUTY] + idle) * row[_I_OP_PUE]
        op_energy = (row[i_power] / 1000.0) * effective_duty * _HOURS_PER_YEAR
        op = row[_I_OP_CI] * op_energy
        return design, mfg, pkg, eol, op, row[i_dev_kg], row[i_life]

    @_njit(parallel=False, cache=True)
    def _kernel(
        scalars, rowdata, rowmap, num_apps, volume, lifetime, eval_years,
        app_size, enforce, fpga_totals, asic_totals, ratios, wins,
    ):  # pragma: no cover - requires numba
        n = fpga_totals.shape[0]
        row = np.empty(_N_COLS)
        for i in range(n):
            for j in range(_N_COLS):
                m = rowmap[j]
                row[j] = rowdata[m, i] if m >= 0 else scalars[j]
            f_design_c, f_mfg_c, f_pkg_c, f_eol_c, f_op_c, f_dev, f_life = (
                _chip_constants(
                    row, _I_F_AREA, _I_F_POWER, _I_F_LIFE, _I_F_GATES,
                    _I_F_EPA, _I_F_GPA, _I_F_MPA_NEW, _I_F_MPA_REC,
                    _I_F_DEFECT, _I_F_LINE_YIELD, _I_F_WAFER_D,
                    _I_F_TEAM_YEARS, _I_F_DEV_KG,
                )
            )
            a_design_c, a_mfg_c, a_pkg_c, a_eol_c, a_op_c, a_dev, a_life = (
                _chip_constants(
                    row, _I_A_AREA, _I_A_POWER, _I_A_LIFE, _I_A_GATES,
                    _I_A_EPA, _I_A_GPA, _I_A_MPA_NEW, _I_A_MPA_REC,
                    _I_A_DEFECT, _I_A_LINE_YIELD, _I_A_WAFER_D,
                    _I_A_TEAM_YEARS, _I_A_DEV_KG,
                )
            )
            apps = num_apps[i]
            vol = volume[i]
            life_app = lifetime[i]
            # N_FPGA = ceil(app_size / capacity), 1 when device-sized.
            size = app_size[i]
            if size == size:
                units = int(math.ceil(size / row[_I_F_CAPACITY]))
                n_fpga = units if units > 1 else 1
            else:
                n_fpga = 1
            # Study horizon and FPGA generations (left-fold, as scalar).
            total_years = 0.0
            if apps >= 1:
                total_years = life_app
                for _ in range(apps - 1):
                    total_years = total_years + life_app
            ev = eval_years[i]
            horizon = total_years if ev != ev else ev
            if enforce[i]:
                g = int(math.ceil(horizon / f_life - _GEN_EPS))
                fpga_gen = g if g > 1 else 1
            else:
                fpga_gen = 1
            unit_count = vol * n_fpga
            unit_f = float(unit_count)
            fleet = float(unit_count * fpga_gen)
            f_design = 0.0 + f_design_c
            f_mfg = f_mfg_c * fleet
            f_pkg = f_pkg_c * fleet
            f_eol = f_eol_c * fleet
            op_app = (life_app * unit_f) * f_op_c
            f_op = 0.0
            if apps >= 1:
                f_op = op_app
                for _ in range(apps - 1):
                    f_op = f_op + op_app
            config_hours = row[_I_F_CHPU] * unit_f
            configuration = (
                row[_I_AD_CONFIG_KW] * config_hours
            ) * row[_I_AD_CI]
            appdev_app = f_dev + configuration
            f_appdev = 0.0
            if apps >= 1:
                f_appdev = appdev_app
                for _ in range(apps - 1):
                    f_appdev = f_appdev + appdev_app
            ftot = (((f_design + f_mfg) + f_pkg) + f_eol) + (f_op + f_appdev)

            g = int(math.ceil(life_app / a_life - _GEN_EPS))
            asic_gen = g if g > 1 else 1
            chips = float(vol * asic_gen)
            vol_f = float(vol)
            a_design_app = 0.0 + a_design_c
            a_mfg_app = a_mfg_c * chips
            a_pkg_app = a_pkg_c * chips
            a_eol_app = a_eol_c * chips
            a_op_app = (life_app * vol_f) * a_op_c
            a_config_hours = row[_I_A_CHPU] * vol_f
            a_configuration = (
                row[_I_AD_CONFIG_KW] * a_config_hours
            ) * row[_I_AD_CI]
            a_appdev_app = a_dev + a_configuration
            a_design = 0.0
            a_mfg = 0.0
            a_pkg = 0.0
            a_eol = 0.0
            a_op = 0.0
            a_appdev = 0.0
            if apps >= 1:
                a_design = a_design_app
                a_mfg = a_mfg_app
                a_pkg = a_pkg_app
                a_eol = a_eol_app
                a_op = a_op_app
                a_appdev = a_appdev_app
                for _ in range(apps - 1):
                    a_design = a_design + a_design_app
                    a_mfg = a_mfg + a_mfg_app
                    a_pkg = a_pkg + a_pkg_app
                    a_eol = a_eol + a_eol_app
                    a_op = a_op + a_op_app
                    a_appdev = a_appdev + a_appdev_app
            atot = (((a_design + a_mfg) + a_pkg) + a_eol) + (a_op + a_appdev)

            fpga_totals[i] = ftot
            asic_totals[i] = atot
            if atot == 0.0:
                ratios[i] = 1.0 if ftot == 0.0 else math.copysign(np.inf, ftot)
            else:
                ratios[i] = ftot / atot
            wins[i] = ftot < atot

    _NUMBA_KERNEL = _kernel
    return _NUMBA_KERNEL
