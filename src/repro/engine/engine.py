"""Shared batch evaluation engine for FPGA-vs-ASIC comparisons.

Every analysis layer that reproduces the paper's figures — sweeps,
heatmaps, design-space exploration, Monte-Carlo and tornado sensitivity —
reduces to the same primitive: assess a (comparator, scenario) pair and
read the FPGA:ASIC ratio.  Historically each module looped
``PlatformComparator.compare()`` privately, rebuilding identical
assessments point by point.  :class:`EvaluationEngine` centralises that
loop behind one batch API with

* an LRU result cache keyed on ``(device pair, suite, scenario)``, so
  overlapping grids (e.g. the three Fig. 8 panels, which share a whole
  edge of cells) and repeated Monte-Carlo draws are computed once;
* memoised :meth:`repro.config.Parameters.build_suite` construction, so
  DSE grids revisiting a configuration reuse the same suite; and
* opt-in process parallelism (``workers=N``) with chunked dispatch to
  amortise pickling, for dense grids and large Monte-Carlo runs.

Evaluation is pure — ``compare()`` depends only on the frozen comparator
and scenario — so cached and parallel execution return results
bit-identical to the sequential per-point loops.
"""

from __future__ import annotations

import dataclasses
import functools
import pickle
from collections.abc import Iterable, Sequence
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Hashable

from repro.config import Parameters
from repro.core.comparison import ComparisonResult, PlatformComparator
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.engine.cache import CacheStats, LruCache
from repro.errors import ParameterError

#: Default chunk size for parallel dispatch — large enough that pickling
#: a chunk's comparators is amortised over many assessments.
DEFAULT_CHUNK_SIZE = 32


def scenario_key(scenario: Scenario) -> Hashable:
    """Canonical hashable identity of a scenario.

    Uses the normalised ``lifetimes`` tuple rather than the raw
    ``app_lifetime_years`` field so that scalar and per-application
    spellings of the same deployment hash identically (and so that
    list-valued lifetimes do not break hashing).
    """
    return (
        scenario.num_apps,
        scenario.lifetimes,
        scenario.volume,
        scenario.evaluation_years,
        scenario.app_size_mgates,
        scenario.enforce_chip_lifetime,
    )


def comparator_key(comparator: PlatformComparator) -> Hashable:
    """Canonical hashable identity of a device pair + suite."""
    return (comparator.fpga_device, comparator.asic_device, comparator.suite)


def evaluation_key(comparator: PlatformComparator, scenario: Scenario) -> Hashable:
    """Cache key of one assessment: ``(device pair, suite, scenario)``."""
    return (comparator_key(comparator), scenario_key(scenario))


@functools.lru_cache(maxsize=256)
def _suite_from_parameters(params: Parameters) -> ModelSuite:
    return params.build_suite()


def build_suite_cached(params: Parameters) -> ModelSuite:
    """Memoised :meth:`Parameters.build_suite`.

    :class:`Parameters` is frozen and hashable, and ``build_suite`` is a
    pure constructor, so identical parameter sets share one suite object.
    DSE grids that revisit a configuration (or differ only in scenario)
    skip the rebuild entirely.
    """
    return _suite_from_parameters(params)


def _compare_chunk(
    chunk: Sequence[tuple[PlatformComparator, Scenario]],
) -> list[ComparisonResult]:
    """Worker-side body: sequentially assess one chunk of pairs."""
    return [comparator.compare(scenario) for comparator, scenario in chunk]


class EvaluationEngine:
    """Batch evaluator with caching and opt-in parallelism.

    One engine instance is meant to be shared across analyses: the cache
    then spans sweeps, heatmap panels, DSE grids and Monte-Carlo draws
    alike.  A module-level default (:func:`default_engine`) backs every
    analysis entry point unless the caller injects their own.

    Args:
        cache_size: LRU bound on stored :class:`ComparisonResult` objects
            (``0`` disables caching).
        workers: ``None`` or ``1`` evaluates in-process; ``N > 1`` farms
            cache misses out to a :class:`ProcessPoolExecutor` of ``N``
            processes.  Results are identical either way.
        chunk_size: Pairs per parallel task; tune upward for very cheap
            models to keep pickling overhead negligible.
    """

    def __init__(
        self,
        cache_size: int = 4096,
        workers: int | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if workers is not None and workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        self._cache = LruCache(maxsize=cache_size)
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/size counters of the result cache."""
        return self._cache.stats()

    def clear_cache(self) -> None:
        """Drop cached results and reset counters."""
        self._cache.clear()

    def close(self) -> None:
        """Shut down the worker pool (if one was started)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Suite construction
    # ------------------------------------------------------------------

    def suite_for(self, params: Parameters) -> ModelSuite:
        """Memoised suite construction (see :func:`build_suite_cached`)."""
        return build_suite_cached(params)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(
        self, comparator: PlatformComparator, scenario: Scenario
    ) -> ComparisonResult:
        """Assess one pair through the cache."""
        return self.evaluate_pairs(((comparator, scenario),))[0]

    def evaluate_many(
        self, comparator: PlatformComparator, scenarios: Iterable[Scenario]
    ) -> tuple[ComparisonResult, ...]:
        """Assess one comparator across many scenarios, in order."""
        return self.evaluate_pairs([(comparator, s) for s in scenarios])

    def evaluate_pairs(
        self, pairs: Iterable[tuple[PlatformComparator, Scenario]]
    ) -> tuple[ComparisonResult, ...]:
        """Assess many (comparator, scenario) pairs, preserving order.

        Duplicate pairs within the batch are assessed once; pairs seen by
        earlier calls are served from the LRU cache.  Misses run either
        in-process or on the worker pool, then populate the cache.
        """
        pair_list = list(pairs)
        keys = [evaluation_key(c, s) for c, s in pair_list]

        results: dict[Hashable, ComparisonResult] = {}
        misses: list[tuple[Hashable, PlatformComparator, Scenario]] = []
        for key, (comparator, scenario) in zip(keys, pair_list):
            if key in results:
                continue
            cached = self._cache.get(key, None)
            if cached is not None:
                results[key] = cached
            else:
                results[key] = None  # placeholder keeps dedup within batch
                misses.append((key, comparator, scenario))

        if misses:
            computed = self._compute([(c, s) for _, c, s in misses])
            for (key, _, _), result in zip(misses, computed):
                results[key] = result
                self._cache.put(key, result)

        ordered: list[ComparisonResult] = []
        for key, (_, scenario) in zip(keys, pair_list):
            result = results[key]
            if result.scenario != scenario:
                # The key normalises equivalent scenario spellings (scalar
                # vs per-application lifetimes), but callers must get back
                # the exact scenario they passed in.
                result = dataclasses.replace(result, scenario=scenario)
            ordered.append(result)
        return tuple(ordered)

    def _pool_get(self) -> ProcessPoolExecutor:
        """The engine's worker pool, started lazily and reused per batch."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _compute(
        self, pairs: Sequence[tuple[PlatformComparator, Scenario]]
    ) -> list[ComparisonResult]:
        """Assess uncached pairs, parallel when configured and worthwhile."""
        workers = self.workers or 1
        if workers <= 1 or len(pairs) <= self.chunk_size:
            return _compare_chunk(pairs)
        chunks = [
            pairs[i : i + self.chunk_size]
            for i in range(0, len(pairs), self.chunk_size)
        ]
        try:
            chunk_results = list(self._pool_get().map(_compare_chunk, chunks))
        except (pickle.PicklingError, BrokenExecutor):
            # Pool infrastructure failures (unpicklable suites, killed
            # workers) must never change results — discard the pool and
            # fall back to the sequential path.  Model errors raised by
            # ``compare()`` itself propagate unchanged.
            self.close()
            return _compare_chunk(pairs)
        return [result for chunk in chunk_results for result in chunk]


_DEFAULT_ENGINE = EvaluationEngine()


def default_engine() -> EvaluationEngine:
    """The process-wide engine backing analysis calls with no injection."""
    return _DEFAULT_ENGINE


def resolve_engine(engine: EvaluationEngine | None) -> EvaluationEngine:
    """``engine`` if given, else the shared default."""
    return engine if engine is not None else _DEFAULT_ENGINE
