"""Shared batch evaluation engine for FPGA-vs-ASIC comparisons.

Every analysis layer that reproduces the paper's figures — sweeps,
heatmaps, design-space exploration, Monte-Carlo and tornado sensitivity —
reduces to the same primitive: assess a (comparator, scenario) pair and
read the FPGA:ASIC ratio.  Historically each module looped
``PlatformComparator.compare()`` privately, rebuilding identical
assessments point by point.  :class:`EvaluationEngine` centralises that
loop behind one batch API with

* an LRU result cache keyed on ``(device pair, suite, scenario)``, so
  overlapping grids (e.g. the three Fig. 8 panels, which share a whole
  edge of cells) and repeated Monte-Carlo draws are computed once;
* memoised :meth:`repro.config.Parameters.build_suite` construction, so
  DSE grids revisiting a configuration reuse the same suite; and
* opt-in process parallelism (``workers=N``) with chunked dispatch to
  amortise pickling, for dense grids and large Monte-Carlo runs.

Evaluation is pure — ``compare()`` depends only on the frozen comparator
and scenario — so cached and parallel execution return results
bit-identical to the sequential per-point loops.
"""

from __future__ import annotations

import atexit
import dataclasses
import functools
import pickle
import threading
from collections.abc import Iterable, Sequence
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Hashable

from repro.config import Parameters
from repro.core.comparison import ComparisonResult, PlatformComparator
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.engine.cache import CacheStats, LruCache
from repro.engine.vector import BatchResult, ScenarioBatch, VectorizedEvaluator
from repro.errors import ParameterError

#: Default chunk size for parallel dispatch — large enough that pickling
#: a chunk's comparators is amortised over many assessments.
DEFAULT_CHUNK_SIZE = 32

#: Smallest same-comparator miss group worth routing through the vector
#: kernel: below this the per-batch NumPy overhead beats the saving.
MIN_VECTOR_BATCH = 8


def scenario_key(scenario: Scenario) -> Hashable:
    """Canonical hashable identity of a scenario.

    Uses the normalised ``lifetimes`` tuple rather than the raw
    ``app_lifetime_years`` field so that scalar and per-application
    spellings of the same deployment hash identically (and so that
    list-valued lifetimes do not break hashing).
    """
    return (
        scenario.num_apps,
        scenario.lifetimes,
        scenario.volume,
        scenario.evaluation_years,
        scenario.app_size_mgates,
        scenario.enforce_chip_lifetime,
    )


def comparator_key(comparator: PlatformComparator) -> Hashable:
    """Canonical hashable identity of a device pair + suite."""
    return (comparator.fpga_device, comparator.asic_device, comparator.suite)


def evaluation_key(comparator: PlatformComparator, scenario: Scenario) -> Hashable:
    """Cache key of one assessment: ``(device pair, suite, scenario)``."""
    return (comparator_key(comparator), scenario_key(scenario))


@functools.lru_cache(maxsize=256)
def _suite_from_parameters(params: Parameters) -> ModelSuite:
    return params.build_suite()


def build_suite_cached(params: Parameters) -> ModelSuite:
    """Memoised :meth:`Parameters.build_suite`.

    :class:`Parameters` is frozen and hashable, and ``build_suite`` is a
    pure constructor, so identical parameter sets share one suite object.
    DSE grids that revisit a configuration (or differ only in scenario)
    skip the rebuild entirely.
    """
    return _suite_from_parameters(params)


def _compare_chunk(
    chunk: Sequence[tuple[PlatformComparator, Scenario]],
) -> list[ComparisonResult]:
    """Worker-side body: sequentially assess one chunk of pairs."""
    return [comparator.compare(scenario) for comparator, scenario in chunk]


class EvaluationEngine:
    """Batch evaluator with caching and opt-in parallelism.

    One engine instance is meant to be shared across analyses: the cache
    then spans sweeps, heatmap panels, DSE grids and Monte-Carlo draws
    alike.  A module-level default (:func:`default_engine`) backs every
    analysis entry point unless the caller injects their own.

    Args:
        cache_size: LRU bound on stored :class:`ComparisonResult` objects
            (``0`` disables caching).
        workers: ``None`` or ``1`` evaluates in-process; ``N > 1`` farms
            cache misses out to a :class:`ProcessPoolExecutor` of ``N``
            processes.  Results are identical either way.
        chunk_size: Pairs per parallel task; tune upward for very cheap
            models to keep pickling overhead negligible.
        vectorize: Route same-comparator cache-miss batches through the
            NumPy kernel (:class:`VectorizedEvaluator`).  Results stay
            bit-identical to the scalar path — the kernel mirrors its
            operation order exactly — and still populate the LRU cache,
            so scalar and vector callers share warmth.  ``False``
            restores the pure scalar path everywhere (including the
            ``*_batch`` APIs, which then columnise scalar results).
        min_vector_batch: Smallest same-comparator miss group sent to
            the kernel; smaller groups (and scenarios the kernel doesn't
            cover, e.g. heterogeneous per-application lifetimes) take
            the scalar path per pair.
    """

    def __init__(
        self,
        cache_size: int = 4096,
        workers: int | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        vectorize: bool = True,
        min_vector_batch: int = MIN_VECTOR_BATCH,
    ) -> None:
        if workers is not None and workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
        if min_vector_batch < 1:
            raise ParameterError(
                f"min_vector_batch must be >= 1, got {min_vector_batch}"
            )
        self.workers = workers
        self.chunk_size = chunk_size
        self.vectorize = vectorize
        self.min_vector_batch = min_vector_batch
        self._vector = VectorizedEvaluator()
        self._cache = LruCache(maxsize=cache_size)
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/size counters of the result cache."""
        return self._cache.stats()

    def clear_cache(self) -> None:
        """Drop cached results and reset counters."""
        self._cache.clear()

    def close(self) -> None:
        """Shut down the worker pool (if one was started)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Suite construction
    # ------------------------------------------------------------------

    def suite_for(self, params: Parameters) -> ModelSuite:
        """Memoised suite construction (see :func:`build_suite_cached`)."""
        return build_suite_cached(params)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(
        self, comparator: PlatformComparator, scenario: Scenario
    ) -> ComparisonResult:
        """Assess one pair through the cache."""
        return self.evaluate_pairs(((comparator, scenario),))[0]

    def evaluate_many(
        self, comparator: PlatformComparator, scenarios: Iterable[Scenario]
    ) -> tuple[ComparisonResult, ...]:
        """Assess one comparator across many scenarios, in order."""
        return self.evaluate_pairs([(comparator, s) for s in scenarios])

    def evaluate_pairs(
        self, pairs: Iterable[tuple[PlatformComparator, Scenario]]
    ) -> tuple[ComparisonResult, ...]:
        """Assess many (comparator, scenario) pairs, preserving order.

        Duplicate pairs within the batch are assessed once; pairs seen by
        earlier calls are served from the LRU cache.  Misses run either
        in-process or on the worker pool, then populate the cache.
        """
        pair_list = list(pairs)
        keys = [evaluation_key(c, s) for c, s in pair_list]

        results: dict[Hashable, ComparisonResult] = {}
        misses: list[tuple[Hashable, PlatformComparator, Scenario]] = []
        for key, (comparator, scenario) in zip(keys, pair_list):
            if key in results:
                continue
            cached = self._cache.get(key, None)
            if cached is not None:
                results[key] = cached
            else:
                results[key] = None  # placeholder keeps dedup within batch
                misses.append((key, comparator, scenario))

        if misses:
            if self.vectorize:
                misses = self._vector_compute(misses, results)
            if misses:
                computed = self._compute([(c, s) for _, c, s in misses])
                for (key, _, _), result in zip(misses, computed):
                    results[key] = result
                    self._cache.put(key, result)

        ordered: list[ComparisonResult] = []
        for key, (_, scenario) in zip(keys, pair_list):
            result = results[key]
            if result.scenario != scenario:
                # The key normalises equivalent scenario spellings (scalar
                # vs per-application lifetimes), but callers must get back
                # the exact scenario they passed in.
                result = dataclasses.replace(result, scenario=scenario)
            ordered.append(result)
        return tuple(ordered)

    def _vector_compute(
        self,
        misses: list[tuple[Hashable, PlatformComparator, Scenario]],
        results: dict[Hashable, ComparisonResult],
    ) -> list[tuple[Hashable, PlatformComparator, Scenario]]:
        """Serve miss groups through the vector kernel; return the rest.

        Misses are grouped by comparator identity; groups of at least
        ``min_vector_batch`` kernel-covered scenarios are evaluated as
        one batch, materialised into :class:`ComparisonResult` objects,
        and inserted into the cache exactly like scalar results.  The
        remainder (small groups, uncovered scenarios) is returned for
        the scalar/parallel path, preserving batch order.
        """
        groups: dict[Hashable, list[int]] = {}
        for index, (_, comparator, _) in enumerate(misses):
            groups.setdefault(comparator_key(comparator), []).append(index)

        handled: set[int] = set()
        for indices in groups.values():
            covered = [
                i for i in indices if self._vector.covers(misses[i][2])
            ]
            if len(covered) < self.min_vector_batch:
                continue
            comparator = misses[covered[0]][1]
            scenarios = [misses[i][2] for i in covered]
            batch = self._vector.evaluate_batch(comparator, scenarios)
            for row, i in enumerate(covered):
                key, _, scenario = misses[i]
                result = batch.comparison(row, scenario)
                results[key] = result
                self._cache.put(key, result)
                handled.add(i)
        if not handled:
            return misses
        return [m for i, m in enumerate(misses) if i not in handled]

    # ------------------------------------------------------------------
    # Array-land batch evaluation (no per-row result materialisation)
    # ------------------------------------------------------------------

    def evaluate_batch(
        self,
        comparator: PlatformComparator,
        scenarios: "ScenarioBatch | Iterable[Scenario]",
    ) -> BatchResult:
        """Assess one comparator over a batch, staying in array-land.

        The vector kernel computes ratios, winners, totals and component
        breakdowns as arrays without materialising per-row
        :class:`ComparisonResult` objects (use :meth:`evaluate_many` when
        those are wanted).  With ``vectorize=False`` the scalar path runs
        instead and its results are columnised, so callers see one API
        either way.
        """
        if self.vectorize:
            return self._vector.evaluate_batch(comparator, scenarios)
        if isinstance(scenarios, ScenarioBatch):
            scenario_list = [
                scenarios.scenario_at(i) for i in range(scenarios.size)
            ]
        else:
            scenario_list = list(scenarios)
        return BatchResult.from_results(
            self.evaluate_many(comparator, scenario_list), comparator
        )

    def evaluate_pairs_batch(
        self, pairs: Iterable[tuple[PlatformComparator, Scenario]]
    ) -> BatchResult:
        """Assess many (comparator, scenario) pairs, staying in array-land.

        Every row may carry its own suite (Monte-Carlo draws, DSE grids);
        the kernel extracts model parameters into columns and vectorises
        the sub-models themselves.  Parity with the scalar path is
        ``rtol <= 1e-12``.
        """
        if self.vectorize:
            return self._vector.evaluate_pairs_batch(pairs)
        pair_list = list(pairs)
        return BatchResult.from_results(
            self.evaluate_pairs(pair_list), [c for c, _ in pair_list]
        )

    def _pool_get(self) -> ProcessPoolExecutor:
        """The engine's worker pool, started lazily and reused per batch."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _compute(
        self, pairs: Sequence[tuple[PlatformComparator, Scenario]]
    ) -> list[ComparisonResult]:
        """Assess uncached pairs, parallel when configured and worthwhile."""
        workers = self.workers or 1
        if workers <= 1 or len(pairs) <= self.chunk_size:
            return _compare_chunk(pairs)
        chunks = [
            pairs[i : i + self.chunk_size]
            for i in range(0, len(pairs), self.chunk_size)
        ]
        try:
            chunk_results = list(self._pool_get().map(_compare_chunk, chunks))
        except (pickle.PicklingError, BrokenExecutor):
            # Pool infrastructure failures (unpicklable suites, killed
            # workers) must never change results — discard the pool and
            # fall back to the sequential path.  Model errors raised by
            # ``compare()`` itself propagate unchanged.
            self.close()
            return _compare_chunk(pairs)
        return [result for chunk in chunk_results for result in chunk]


_DEFAULT_ENGINE: EvaluationEngine | None = None
_DEFAULT_ENGINE_LOCK = threading.Lock()


def default_engine() -> EvaluationEngine:
    """The process-wide engine backing analysis calls with no injection.

    Created lazily; its worker pool (if any) is shut down by an
    ``atexit`` hook so a lazily-started :class:`ProcessPoolExecutor`
    never leaks at interpreter exit.
    """
    global _DEFAULT_ENGINE
    with _DEFAULT_ENGINE_LOCK:
        if _DEFAULT_ENGINE is None:
            _DEFAULT_ENGINE = EvaluationEngine()
        return _DEFAULT_ENGINE


def reset_default_engine() -> None:
    """Close and discard the shared default engine.

    The next :func:`default_engine` call builds a fresh default.  Used
    by tests (cache isolation), by :func:`configure_default_engine`, and
    as the interpreter-exit hook.
    """
    global _DEFAULT_ENGINE
    with _DEFAULT_ENGINE_LOCK:
        engine, _DEFAULT_ENGINE = _DEFAULT_ENGINE, None
    if engine is not None:
        engine.close()


def configure_default_engine(**kwargs: object) -> EvaluationEngine:
    """Replace the shared default engine with a freshly configured one.

    Accepts :class:`EvaluationEngine` constructor arguments (``workers``,
    ``vectorize``, ``cache_size``, ...).  The previous default (and its
    worker pool) is closed.  Returns the new default so callers can keep
    a handle — the CLI uses this for ``--workers`` / ``--no-vectorize``.
    """
    global _DEFAULT_ENGINE
    engine = EvaluationEngine(**kwargs)  # type: ignore[arg-type]
    with _DEFAULT_ENGINE_LOCK:
        previous, _DEFAULT_ENGINE = _DEFAULT_ENGINE, engine
    if previous is not None:
        previous.close()
    return engine


atexit.register(reset_default_engine)


def resolve_engine(engine: EvaluationEngine | None) -> EvaluationEngine:
    """``engine`` if given, else the shared default."""
    return engine if engine is not None else default_engine()
