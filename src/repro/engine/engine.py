"""Shared batch evaluation engine for FPGA-vs-ASIC comparisons.

Every analysis layer that reproduces the paper's figures — sweeps,
heatmaps, design-space exploration, Monte-Carlo and tornado sensitivity —
reduces to the same primitive: assess a (comparator, scenario) pair and
read the FPGA:ASIC ratio.  :class:`EvaluationEngine` centralises that
primitive behind one batch API with

* an array-backed sharded result store
  (:class:`~repro.engine.store.ShardedResultStore`) keyed on stable
  128-bit digests of ``(device pair, suite, scenario)``.  Batch callers
  are answered with vectorised gather straight from packed NumPy column
  blocks — no :class:`ComparisonResult` is allocated on the batch path;
  object callers get dataclasses materialised lazily from the same
  columns.  ``save_cache`` / ``load_cache`` persist the shards to
  ``.npz`` so warmth survives across processes and CLI runs;
* memoised :meth:`repro.config.Parameters.build_suite` construction
  (safe under concurrent access), so DSE grids revisiting a
  configuration reuse the same suite object; and
* opt-in process parallelism (``workers=N``) with chunked dispatch to
  amortise pickling, for scalar-path misses.

Evaluation is pure — ``compare()`` depends only on the frozen comparator
and scenario — so cached, vectorised and parallel execution return
results bit-identical to the sequential per-point loops.  For awaitable,
micro-batched serving on top of this engine see
:class:`repro.engine.service.AsyncEvaluationEngine`.
"""

from __future__ import annotations

import atexit
import dataclasses
import logging
import multiprocessing
import os
import pickle
import threading
from collections.abc import Iterable, Sequence
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from pathlib import Path

import numpy as np

from repro.config import Parameters
from repro.core.comparison import ComparisonResult, PlatformComparator
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.engine.cache import CacheStats, LruCache  # noqa: F401 (re-export)
from repro.engine.store import (  # noqa: F401 (keys re-exported for compat)
    FLOAT_COLS,
    INT_COLS,
    ShardedResultStore,
    batch_digests,
    comparator_digest,
    comparator_key,
    evaluation_key,
    materialise_comparison,
    pack_batch_rows,
    pack_comparison,
    pack_fallback_row,
    pair_digest,
    param_batch_digests,
    param_digest,
    param_row_digest,
    scenario_key,
)
from repro.engine.vector import (
    BatchResult,
    ParameterBatch,
    ScenarioBatch,
    VectorizedEvaluator,
)
from repro.engine.vector.checkpoint import Checkpoint
from repro.engine.vector.evaluator import _patch_fallback_rows
from repro.engine.vector.fused import kernel_tier_label
from repro.engine.vector.kernels import ratio_kernel, winner_kernel
from repro.engine.vector.reducers import StreamingReduction
from repro.engine.vector.streaming import (
    MAX_STREAM_WORKERS,
    ArrayChunkSource,
    SharedArrayChunkSource,
    aligned_chunk_rows,
    run_stream,
)
from repro.errors import ParameterError, StoreCorruptError

#: Default chunk size for parallel dispatch — large enough that pickling
#: a chunk's comparators is amortised over many assessments.
DEFAULT_CHUNK_SIZE = 32

#: Smallest same-comparator miss group worth routing through the vector
#: kernel: below this the per-batch NumPy overhead beats the saving.
MIN_VECTOR_BATCH = 8

#: Default shard count of the result store.
DEFAULT_CACHE_SHARDS = 8

#: Rows per chunk of the parameter-batch dispatch.  Batches above this
#: are split into per-worker column slices (zero-copy NumPy views) and
#: composed on a thread pool — the heavy array kernels release the GIL —
#: which also bounds peak temporary memory for million-row batches.
PARAM_CHUNK_ROWS = 131_072

#: Hard cap on parameter-dispatch threads (beyond this the kernels are
#: memory-bandwidth bound and extra threads only add contention).
MAX_PARAM_THREADS = 8


#: A scenario routes through the packed array store exactly when the
#: kernel covers it — one definition, shared with the batch path, so the
#: object side-cache and the column shards never split a key.
_kernel_packable = VectorizedEvaluator.covers


# ----------------------------------------------------------------------
# Suite memoisation (thread-safe)
# ----------------------------------------------------------------------

_SUITE_CACHE: dict[Parameters, ModelSuite] = {}
_SUITE_LOCK = threading.Lock()
_SUITE_CACHE_MAX = 256


def build_suite_cached(params: Parameters) -> ModelSuite:
    """Memoised :meth:`Parameters.build_suite`, safe under concurrency.

    :class:`Parameters` is frozen and hashable, and ``build_suite`` is a
    pure constructor, so identical parameter sets share one suite
    object.  A double-checked lock guarantees exactly one build per
    parameter set even when many threads (or async tasks dispatched to a
    worker pool) race on the same configuration — every caller gets the
    *same* object, which keeps digest/key identity coherent.
    """
    suite = _SUITE_CACHE.get(params)
    if suite is not None:
        return suite
    with _SUITE_LOCK:
        suite = _SUITE_CACHE.get(params)
        if suite is None:
            suite = params.build_suite()
            while len(_SUITE_CACHE) >= _SUITE_CACHE_MAX:
                _SUITE_CACHE.pop(next(iter(_SUITE_CACHE)))
            _SUITE_CACHE[params] = suite
    return suite


def _compare_chunk(
    chunk: Sequence[tuple[PlatformComparator, Scenario]],
) -> list[ComparisonResult]:
    """Worker-side body: sequentially assess one chunk of pairs."""
    return [comparator.compare(scenario) for comparator, scenario in chunk]


class EvaluationEngine:
    """Batch evaluator with a sharded array cache and opt-in parallelism.

    One engine instance is meant to be shared across analyses: the store
    then spans sweeps, heatmap panels, DSE grids and Monte-Carlo draws
    alike.  A module-level default (:func:`default_engine`) backs every
    analysis entry point unless the caller injects their own.

    Args:
        cache_size: Total entry bound of the sharded result store
            (``0`` disables caching).
        workers: ``None`` or ``1`` evaluates in-process; ``N > 1`` farms
            scalar cache misses out to a :class:`ProcessPoolExecutor` of
            ``N`` processes.  Results are identical either way.
        chunk_size: Pairs per parallel task; tune upward for very cheap
            models to keep pickling overhead negligible.
        vectorize: Route same-comparator cache-miss batches through the
            NumPy kernel (:class:`VectorizedEvaluator`).  Results stay
            bit-identical to the scalar path — the kernel mirrors its
            operation order exactly — and still populate the store, so
            scalar and vector callers share warmth.  ``False`` restores
            the pure scalar path everywhere (including the ``*_batch``
            APIs, which then columnise scalar results).
        min_vector_batch: Smallest same-comparator miss group sent to
            the kernel; smaller groups (and scenarios the kernel doesn't
            cover, e.g. heterogeneous per-application lifetimes) take
            the scalar path per pair.
        cache_shards: Hash shards of the result store (the digest's low
            word routes each entry).
        kernel_tier: Fused kernel tier for the streaming reduce paths
            (``auto``/``fused``/``numba``/``numpy``); ``None`` honours
            the ``REPRO_KERNEL`` environment variable.  See
            :mod:`repro.engine.vector.fused`.
        cache_file: Optional ``.npz`` path; when it exists its entries
            are loaded at construction, and :meth:`save_cache` with no
            argument writes back to it — cache warmth then survives
            across processes and CLI runs.
    """

    def __init__(
        self,
        cache_size: int = 4096,
        workers: int | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        vectorize: bool = True,
        min_vector_batch: int = MIN_VECTOR_BATCH,
        cache_shards: int = DEFAULT_CACHE_SHARDS,
        cache_file: "str | Path | None" = None,
        kernel_tier: "str | None" = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
        if min_vector_batch < 1:
            raise ParameterError(
                f"min_vector_batch must be >= 1, got {min_vector_batch}"
            )
        self.workers = workers
        self.chunk_size = chunk_size
        self.vectorize = vectorize
        self.min_vector_batch = min_vector_batch
        # Validates the spelling eagerly: a bad tier fails at
        # construction, not mid-stream in a worker process.
        kernel_tier_label(kernel_tier)
        self.kernel_tier = kernel_tier
        self._vector = VectorizedEvaluator()
        self._store = ShardedResultStore(capacity=cache_size, shards=cache_shards)
        self._pool: ProcessPoolExecutor | None = None
        self._stream_pool: ProcessPoolExecutor | None = None
        self._stream_pool_workers = 0
        self._pool_lock = threading.Lock()
        self._computed_lock = threading.Lock()
        self._rows_computed = 0
        self.cache_file = Path(cache_file) if cache_file is not None else None
        if self.cache_file is not None and self.cache_file.exists():
            self.load_cache(self.cache_file)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/size counters of the result store."""
        return self._store.stats()

    @property
    def kernel_tier_name(self) -> str:
        """Label of the kernel tier streaming reduces resolve to.

        ``fused-numba``/``fused-numpy``/``numpy-chain`` — resolved live
        so an engine with no explicit ``kernel_tier`` reflects the
        current ``REPRO_KERNEL`` environment."""
        return kernel_tier_label(self.kernel_tier)

    @property
    def result_store(self) -> ShardedResultStore:
        """The engine's sharded result store (for persistence/inspection)."""
        return self._store

    @property
    def rows_computed(self) -> int:
        """Kernel/scalar assessments actually computed (deduplicated).

        Cache hits and in-batch duplicates never increment this — it is
        the ground truth for "concurrent clients never recompute a
        cell" assertions in the serving tests.
        """
        with self._computed_lock:
            return self._rows_computed

    def _note_computed(self, count: int) -> None:
        with self._computed_lock:
            self._rows_computed += count

    def clear_cache(self) -> None:
        """Drop cached results and reset counters."""
        self._store.clear()

    def save_cache(self, path: "str | Path | None" = None) -> Path:
        """Persist the result store to ``path`` (default: ``cache_file``)."""
        target = Path(path) if path is not None else self.cache_file
        if target is None:
            raise ParameterError(
                "no cache file configured; pass a path or set cache_file"
            )
        return self._store.save(target)

    def load_cache(self, path: "str | Path") -> int:
        """Merge a persisted store into this engine; returns entries read.

        A truncated, corrupted, or format-incompatible cache file is
        logged and skipped (returns 0) — the engine starts cold instead
        of crashing, because a damaged cache only costs recomputation,
        never correctness.  A missing file still raises
        :class:`FileNotFoundError`.
        """
        try:
            return self._store.load(path)
        except StoreCorruptError as exc:
            logging.getLogger(__name__).warning(
                "discarding unusable cache file %s (starting cold): %s",
                path, exc,
            )
            return 0

    def close(self) -> None:
        """Shut down the worker pools (if any were started).

        Idempotent and safe under concurrent callers: the pools are
        detached under a lock, so exactly one caller shuts each down
        and repeated/racing ``close()`` calls are no-ops.  The engine
        stays usable afterwards — pools restart lazily on demand.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
            stream_pool, self._stream_pool = self._stream_pool, None
            self._stream_pool_workers = 0
        if pool is not None:
            pool.shutdown(wait=True)
        if stream_pool is not None:
            stream_pool.shutdown(wait=True)

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Suite construction
    # ------------------------------------------------------------------

    def suite_for(self, params: Parameters) -> ModelSuite:
        """Memoised suite construction (see :func:`build_suite_cached`)."""
        return build_suite_cached(params)

    # ------------------------------------------------------------------
    # Evaluation (object path, lazy materialisation)
    # ------------------------------------------------------------------

    def evaluate(
        self, comparator: PlatformComparator, scenario: Scenario
    ) -> ComparisonResult:
        """Assess one pair through the store."""
        return self.evaluate_pairs(((comparator, scenario),))[0]

    def evaluate_many(
        self, comparator: PlatformComparator, scenarios: Iterable[Scenario]
    ) -> tuple[ComparisonResult, ...]:
        """Assess one comparator across many scenarios, in order."""
        return self.evaluate_pairs([(comparator, s) for s in scenarios])

    def evaluate_pairs(
        self, pairs: Iterable[tuple[PlatformComparator, Scenario]]
    ) -> tuple[ComparisonResult, ...]:
        """Assess many (comparator, scenario) pairs, preserving order.

        Duplicate pairs within the batch are assessed once; pairs seen
        by earlier calls are served from the sharded store, with the
        :class:`ComparisonResult` materialised lazily from the packed
        columns (bit-identical to the originally computed object).
        Misses run in-process, on the worker pool, or through the vector
        kernel, then populate the store.
        """
        pair_list = list(pairs)
        if not pair_list:
            return ()
        digests = [pair_digest(c, s) for c, s in pair_list]

        unique: dict[tuple[int, int], tuple[PlatformComparator, Scenario]] = {}
        for digest, pair in zip(digests, pair_list):
            unique.setdefault(digest, pair)

        results: dict[tuple[int, int], ComparisonResult] = {}
        misses: list[tuple[tuple[int, int], PlatformComparator, Scenario]] = []
        packable: list[tuple[int, int]] = []
        for digest, (comparator, scenario) in unique.items():
            if _kernel_packable(scenario):
                packable.append(digest)
            else:
                cached = self._store.get_object(digest)
                if cached is not None:
                    results[digest] = cached
                else:
                    misses.append((digest, comparator, scenario))
        if packable:
            lo = np.fromiter(
                (d[0] for d in packable), dtype=np.uint64, count=len(packable)
            )
            hi = np.fromiter(
                (d[1] for d in packable), dtype=np.uint64, count=len(packable)
            )
            hits, floats, ints = self._store.get_batch(lo, hi)
            for j, digest in enumerate(packable):
                comparator, scenario = unique[digest]
                if hits[j]:
                    results[digest] = materialise_comparison(
                        floats[j], ints[j], scenario
                    )
                else:
                    misses.append((digest, comparator, scenario))

        if misses:
            if self.vectorize:
                misses = self._vector_compute(misses, results)
            if misses:
                computed = self._compute([(c, s) for _, c, s in misses])
                self._note_computed(len(computed))
                pack_lo: list[int] = []
                pack_hi: list[int] = []
                pack_f: list[np.ndarray] = []
                pack_i: list[np.ndarray] = []
                for (digest, comparator, _), result in zip(misses, computed):
                    results[digest] = result
                    packed = pack_comparison(result, comparator)
                    if packed is None:
                        self._store.put_object(digest, result)
                    else:
                        pack_lo.append(digest[0])
                        pack_hi.append(digest[1])
                        pack_f.append(packed[0])
                        pack_i.append(packed[1])
                if pack_lo:
                    self._store.put_batch(
                        np.array(pack_lo, dtype=np.uint64),
                        np.array(pack_hi, dtype=np.uint64),
                        np.array(pack_f),
                        np.array(pack_i),
                    )

        ordered: list[ComparisonResult] = []
        for digest, (_, scenario) in zip(digests, pair_list):
            result = results[digest]
            if result.scenario != scenario:
                # The digest normalises equivalent scenario spellings
                # (scalar vs per-application lifetimes), but callers must
                # get back the exact scenario they passed in.
                result = dataclasses.replace(result, scenario=scenario)
            ordered.append(result)
        return tuple(ordered)

    def _vector_compute(
        self,
        misses: list[tuple[tuple[int, int], PlatformComparator, Scenario]],
        results: dict[tuple[int, int], ComparisonResult],
    ) -> list[tuple[tuple[int, int], PlatformComparator, Scenario]]:
        """Serve miss groups through the vector kernel; return the rest.

        Misses are grouped by comparator identity; groups of at least
        ``min_vector_batch`` kernel-covered scenarios are evaluated as
        one batch, packed into the store as column rows, and
        materialised into :class:`ComparisonResult` objects for the
        caller.  The remainder (small groups, uncovered scenarios) is
        returned for the scalar/parallel path, preserving batch order.
        """
        groups: dict[tuple[int, int], list[int]] = {}
        for index, (_, comparator, _) in enumerate(misses):
            groups.setdefault(comparator_digest(comparator), []).append(index)

        handled: set[int] = set()
        for indices in groups.values():
            covered = [i for i in indices if self._vector.covers(misses[i][2])]
            if len(covered) < self.min_vector_batch:
                continue
            comparator = misses[covered[0]][1]
            scenarios = [misses[i][2] for i in covered]
            batch = self._vector.evaluate_batch(comparator, scenarios)
            self._note_computed(len(covered))
            rows = np.arange(len(covered))
            floats, ints = pack_batch_rows(batch, rows)
            self._store.put_batch(
                np.fromiter(
                    (misses[i][0][0] for i in covered),
                    dtype=np.uint64, count=len(covered),
                ),
                np.fromiter(
                    (misses[i][0][1] for i in covered),
                    dtype=np.uint64, count=len(covered),
                ),
                floats,
                ints,
            )
            for row, i in enumerate(covered):
                digest, _, scenario = misses[i]
                results[digest] = batch.comparison(row, scenario)
                handled.add(i)
        if not handled:
            return misses
        return [m for i, m in enumerate(misses) if i not in handled]

    # ------------------------------------------------------------------
    # Array-land batch evaluation (no per-row result materialisation)
    # ------------------------------------------------------------------

    def evaluate_batch(
        self,
        comparator: PlatformComparator,
        scenarios: "ScenarioBatch | Iterable[Scenario]",
    ) -> BatchResult:
        """Assess one comparator over a batch, staying in array-land.

        Cache hits are answered with a vectorised gather from the
        sharded store — no ``Scenario`` or :class:`ComparisonResult`
        objects exist anywhere on a warm path — and misses run through
        the vector kernel (deduplicated by digest within the batch),
        then populate the store, so batch and object callers share
        warmth in both directions.  With ``vectorize=False`` the scalar
        path runs instead and its results are columnised, so callers see
        one API either way.
        """
        if not self.vectorize:
            if isinstance(scenarios, ScenarioBatch):
                scenario_list = [
                    scenarios.scenario_at(i) for i in range(scenarios.size)
                ]
            else:
                scenario_list = list(scenarios)
            return BatchResult.from_results(
                self.evaluate_many(comparator, scenario_list), comparator
            )
        batch = (
            scenarios
            if isinstance(scenarios, ScenarioBatch)
            else ScenarioBatch.from_scenarios(tuple(scenarios))
        )
        if self._store.capacity == 0:
            self._note_computed(batch.size)
            return self._vector.evaluate_batch(comparator, batch)

        lo, hi = batch_digests(comparator, batch)
        n = batch.size
        hits = np.zeros(n, dtype=bool)
        floats = np.empty((n, FLOAT_COLS), dtype=np.float64)
        ints = np.empty((n, INT_COLS), dtype=np.int64)

        covered_idx = np.nonzero(batch.covered)[0]
        if covered_idx.size:
            c_hits, c_floats, c_ints = self._store.get_batch(
                lo[covered_idx], hi[covered_idx]
            )
            hit_rows = covered_idx[c_hits]
            hits[hit_rows] = True
            floats[hit_rows] = c_floats[c_hits]
            ints[hit_rows] = c_ints[c_hits]
        object_hits: dict[int, ComparisonResult] = {}
        for i in np.nonzero(~batch.covered)[0]:
            cached = self._store.get_object((int(lo[i]), int(hi[i])))
            if cached is not None:
                object_hits[int(i)] = cached
                hits[i] = True
                row_f, row_i = pack_fallback_row(cached)
                floats[i] = row_f
                ints[i] = row_i

        miss_idx = np.nonzero(~hits)[0]
        fallback: dict[int, ComparisonResult] = dict(object_hits)
        if miss_idx.size:
            packed = np.empty(
                miss_idx.size, dtype=[("lo", np.uint64), ("hi", np.uint64)]
            )
            packed["lo"] = lo[miss_idx]
            packed["hi"] = hi[miss_idx]
            _, first, inverse = np.unique(
                packed, return_index=True, return_inverse=True
            )
            unique_rows = miss_idx[first]
            computed = self._vector.evaluate_batch(
                comparator, batch.take(unique_rows)
            )
            self._note_computed(int(unique_rows.size))
            comp_f, comp_i = pack_batch_rows(
                computed, np.arange(unique_rows.size)
            )
            store_rows = np.array(
                [r for r in range(unique_rows.size) if r not in computed.fallback],
                dtype=np.int64,
            )
            if store_rows.size:
                self._store.put_batch(
                    lo[unique_rows[store_rows]],
                    hi[unique_rows[store_rows]],
                    comp_f[store_rows],
                    comp_i[store_rows],
                )
            for r, comparison in computed.fallback.items():
                key = (int(lo[unique_rows[r]]), int(hi[unique_rows[r]]))
                self._store.put_object(key, comparison)
            floats[miss_idx] = comp_f[inverse]
            ints[miss_idx] = comp_i[inverse]
            for j, m in enumerate(miss_idx):
                u = int(inverse[j])
                if u in computed.fallback:
                    fallback[int(m)] = computed.fallback[u]

        return self._assemble_batch(batch, floats, ints, fallback)

    @staticmethod
    def _assemble_batch(
        batch: ScenarioBatch,
        floats: np.ndarray,
        ints: np.ndarray,
        fallback: dict[int, ComparisonResult],
    ) -> BatchResult:
        """Build a :class:`BatchResult` over gathered/scattered columns.

        Ratios and winners are recomputed from the stored totals with
        the same kernels the vector path uses, so they are bit-identical
        to a fresh evaluation.
        """
        from repro.engine.store import (
            _COMPONENTS,
            _FT_APP_COMP,
            _FT_ASIC_COMP,
            _FT_ASIC_PC,
            _FT_ASIC_TOTAL,
            _FT_FPGA_COMP,
            _FT_FPGA_PC,
            _FT_FPGA_TOTAL,
            _IT_ASIC_GEN,
            _IT_FPGA_GEN,
            _IT_N_FPGA,
        )

        fpga_totals = np.ascontiguousarray(floats[:, _FT_FPGA_TOTAL])
        asic_totals = np.ascontiguousarray(floats[:, _FT_ASIC_TOTAL])
        return BatchResult(
            ratios=ratio_kernel(fpga_totals, asic_totals),
            winners=winner_kernel(fpga_totals, asic_totals),
            fpga_totals=fpga_totals,
            asic_totals=asic_totals,
            fpga_components={
                name: floats[:, _FT_FPGA_COMP + j]
                for j, name in enumerate(_COMPONENTS)
            },
            asic_components={
                name: floats[:, _FT_ASIC_COMP + j]
                for j, name in enumerate(_COMPONENTS)
            },
            fpga_per_chip_embodied_kg=floats[:, _FT_FPGA_PC],
            asic_per_chip_embodied_kg=floats[:, _FT_ASIC_PC],
            n_fpga=ints[:, _IT_N_FPGA],
            fpga_generations=ints[:, _IT_FPGA_GEN],
            asic_generations=ints[:, _IT_ASIC_GEN],
            num_apps=batch.num_apps.copy(),
            asic_app_components={
                name: floats[:, _FT_APP_COMP + j]
                for j, name in enumerate(_COMPONENTS)
            },
            fallback=fallback,
        )

    def evaluate_pairs_batch(
        self, pairs: Iterable[tuple[PlatformComparator, Scenario]]
    ) -> BatchResult:
        """Assess many (comparator, scenario) pairs, staying in array-land.

        Every row may carry its own suite (DSE grids, tornado
        endpoints, legacy Monte-Carlo callers); the pairs are columnised
        into a :class:`ParameterBatch` and routed through
        :meth:`evaluate_param_batch`, so the sub-models are vectorised
        from extracted parameter columns and rows are cached in the
        sharded store under vectorised column-fold digests (batches
        larger than the store bypass it).  Parity with the scalar path
        is ``rtol <= 1e-12``.
        """
        pair_list = list(pairs)
        if not self.vectorize:
            return BatchResult.from_results(
                self.evaluate_pairs(pair_list), [c for c, _ in pair_list]
            )
        params = ParameterBatch.from_comparators([c for c, _ in pair_list])
        batch = ScenarioBatch.from_scenarios(tuple(s for _, s in pair_list))
        return self.evaluate_param_batch(params, batch)

    def evaluate_param_batch(
        self,
        params: ParameterBatch,
        scenarios: "ScenarioBatch | Iterable[Scenario]",
        *,
        reduce: "StreamingReduction | None" = None,
        chunk_rows: "int | None" = None,
        stream_workers: "int | None" = None,
    ) -> "BatchResult | StreamingReduction":
        """Assess parameter-space rows, columnar end to end.

        The workhorse of the parameter-space pipeline: Monte-Carlo
        draws, DSE grids and tornado endpoints all reduce to a
        :class:`ParameterBatch` against a :class:`ScenarioBatch`.

        * Fully covered batches that fit the result store are keyed by
          vectorised column-fold digests
          (:func:`~repro.engine.store.param_batch_digests`) — warm rows
          are answered by the store's batched gather, misses run
          through the kernels and populate it, so a re-run of the same
          seeded study is pure gather.
        * Batches larger than the store (or with kernel-uncovered
          scenario rows) bypass it; uncovered rows are patched through
          the scalar path when the batch carries comparator objects.
        * Huge batches are split into per-worker column slices
          (:data:`PARAM_CHUNK_ROWS` rows each, zero-copy views) and
          composed on a thread pool — NumPy releases the GIL in the
          kernels, so chunks genuinely run multi-core.

        With ``reduce=`` a :class:`StreamingReduction` prototype, the
        batch streams through :meth:`reduce_stream` instead: chunks are
        evaluated and folded into the reducers without ever holding
        more than ``chunk_rows`` result rows per worker, the sharded
        store is bypassed entirely (reduced rows are summarised, not
        cached), and the *merged reduction* is returned in place of a
        :class:`BatchResult`.  Multi-worker streaming packs the per-row
        columns into a shared-memory block once, so spawn workers slice
        them zero-copy.  Requires ``vectorize=True`` and a fully
        kernel-covered scenario batch.

        With ``vectorize=False`` the rows are evaluated through the
        scalar object path (requires an extraction-mode batch carrying
        its comparators) and columnised, so callers see one API.
        """
        batch = (
            scenarios
            if isinstance(scenarios, ScenarioBatch)
            else ScenarioBatch.from_scenarios(tuple(scenarios))
        )
        if params.size != batch.size:
            raise ParameterError(
                f"parameter batch has {params.size} rows, "
                f"scenario batch has {batch.size}"
            )
        if reduce is not None:
            return self._reduce_param_batch(
                params, batch, reduce, chunk_rows, stream_workers
            )
        if not self.vectorize:
            if params.comparators is None:
                raise ParameterError(
                    "vectorize=False needs a comparator-backed "
                    "ParameterBatch (from_comparators)"
                )
            pair_list = [
                (c, batch.scenario_at(i))
                for i, c in enumerate(params.comparators)
            ]
            return BatchResult.from_results(
                self.evaluate_pairs(pair_list), list(params.comparators)
            )

        use_store = (
            0 < batch.size <= self._store.capacity
            and batch.all_covered
            and params.digestable
        )
        if not use_store:
            result = self._compute_param_chunks(params, batch)
            self._note_computed(batch.size)
            if not batch.all_covered:
                if params.comparators is None:
                    raise ParameterError(
                        "kernel-uncovered scenario rows need a "
                        "comparator-backed ParameterBatch"
                    )
                _patch_fallback_rows(result, batch, params.comparators)
            return result

        lo, hi = param_batch_digests(params, batch)
        hits, floats, ints = self._store.get_batch(lo, hi)
        miss = np.nonzero(~hits)[0]
        if miss.size:
            computed = self._compute_param_chunks(
                params.take(miss), batch.take(miss)
            )
            self._note_computed(int(miss.size))
            comp_f, comp_i = pack_batch_rows(computed, np.arange(miss.size))
            self._store.put_batch(lo[miss], hi[miss], comp_f, comp_i)
            floats[miss] = comp_f
            ints[miss] = comp_i
        return self._assemble_batch(batch, floats, ints, {})

    def _reduce_param_batch(
        self,
        params: ParameterBatch,
        batch: ScenarioBatch,
        reduction: StreamingReduction,
        chunk_rows: "int | None",
        stream_workers: "int | None",
    ) -> StreamingReduction:
        """Stream an in-memory batch through :meth:`reduce_stream`."""
        if not self.vectorize:
            raise ParameterError(
                "streaming reduction requires vectorize=True"
            )
        if not batch.all_covered:
            raise ParameterError(
                "streaming reduction requires kernel-covered scenario rows "
                "(uniform per-application lifetimes, integral volumes)"
            )
        workers = self.stream_workers(stream_workers)
        # A batch that fits one (aligned) chunk runs as a single
        # sequential span either way — packing shared memory for it
        # would be pure copy overhead.
        single_chunk = batch.size <= aligned_chunk_rows(
            chunk_rows, reduction.alignment, batch.size
        )
        if workers > 1 and not single_chunk:
            source = SharedArrayChunkSource.pack(params, batch)
            try:
                return self.reduce_stream(
                    source, reduction, chunk_rows=chunk_rows, workers=workers
                )
            finally:
                source.close()
        return self.reduce_stream(
            ArrayChunkSource(params, batch), reduction,
            chunk_rows=chunk_rows, workers=1,
        )

    def _compute_param_chunks(
        self, params: ParameterBatch, batch: ScenarioBatch
    ) -> BatchResult:
        """Kernel-evaluate a parameter batch, chunked and multi-core.

        Small batches run as one kernel call.  Larger ones are split
        into :data:`PARAM_CHUNK_ROWS`-row column slices; slices are
        NumPy views (and base-mode broadcast columns are shared), so
        splitting copies no row data.  Chunks are composed concurrently
        on a thread pool unless ``workers=1`` pinned the engine to
        sequential execution; results are concatenated in row order, so
        chunking never changes values.
        """
        n = batch.size
        if n <= PARAM_CHUNK_ROWS:
            return self._vector.evaluate_param_batch(params, batch)
        ranges = [
            (start, min(start + PARAM_CHUNK_ROWS, n))
            for start in range(0, n, PARAM_CHUNK_ROWS)
        ]

        def piece(bounds: tuple[int, int]) -> BatchResult:
            start, stop = bounds
            return self._vector.evaluate_param_batch(
                params.slice_rows(start, stop), batch.slice_rows(start, stop)
            )

        threads = min(
            len(ranges),
            self.workers or (os.cpu_count() or 1),
            MAX_PARAM_THREADS,
        )
        if threads <= 1:
            parts = [piece(bounds) for bounds in ranges]
        else:
            # A per-call pool sized to the computed bound: chunked
            # dispatch only triggers for 100k+-row batches, so pool
            # startup is noise, and a `workers` pin is always honoured.
            with ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix="repro-vector"
            ) as pool:
                parts = list(pool.map(piece, ranges))
        return BatchResult.concat(parts)

    def _pool_get(self) -> ProcessPoolExecutor:
        """The engine's worker pool, started lazily and reused per batch.

        Pinned to the ``spawn`` start method: fork would inherit the
        parent's suite caches and RNG state, so results (and pool
        health) could depend on the platform default.  Spawned workers
        re-import the model stack once per pool, and evaluation is pure,
        so results are identical under either method — spawn just makes
        that true by construction everywhere.
        """
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context("spawn"),
                )
            return self._pool

    def _stream_pool_get(self, workers: int) -> ProcessPoolExecutor:
        """The streaming chunk pool (spawn), resized when workers change.

        A pool whose workers died (OOM-killed mid-stream) is discarded
        and rebuilt here, so one broken run degrades that run to the
        sequential fallback without losing parallelism forever.
        """
        with self._pool_lock:
            if self._stream_pool is not None and (
                self._stream_pool_workers != workers
                # ProcessPoolExecutor flags itself once a worker dies;
                # submitting to it would only ever raise BrokenExecutor.
                or getattr(self._stream_pool, "_broken", False)
            ):
                stale, self._stream_pool = self._stream_pool, None
                stale.shutdown(wait=False)
            if self._stream_pool is None:
                self._stream_pool = ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=multiprocessing.get_context("spawn"),
                )
                self._stream_pool_workers = workers
            return self._stream_pool

    def stream_workers(self, workers: "int | None" = None) -> int:
        """Effective streaming worker count (multi-core by default).

        ``workers`` if given, else the engine's ``workers`` pin, else
        every available core — always capped at
        :data:`MAX_STREAM_WORKERS` (the kernels go memory-bandwidth
        bound, and each worker holds a chunk of result columns).
        """
        if workers is None:
            resolved = self.workers or (os.cpu_count() or 1)
        else:
            resolved = workers
        if resolved < 1:
            raise ParameterError(f"workers must be >= 1, got {resolved}")
        return min(resolved, MAX_STREAM_WORKERS)

    def reduce_stream(
        self,
        source,
        reduction: StreamingReduction,
        *,
        chunk_rows: "int | None" = None,
        workers: "int | None" = None,
        checkpoint: "Checkpoint | None" = None,
        dtype: "type | None" = None,
    ) -> StreamingReduction:
        """Fold a chunk source through the kernels into ``reduction``.

        The fused sample→evaluate→reduce executor behind the streaming
        (``reduce=``) modes: never materialises more than one chunk of
        rows per worker and never touches the result store.  With more
        than one effective worker the chunks run on the engine's cached
        ``spawn`` process pool (see
        :func:`repro.engine.vector.streaming.run_stream` for the span
        protocol and the sequential fallback); the returned reduction
        is bit-identical for any chunk size and worker count.

        ``checkpoint=`` (a :class:`~repro.engine.vector.Checkpoint`)
        makes the run durable: progress persists atomically on the
        configured cadence and a rerun resumes from completed units —
        still bit-identical to an uninterrupted run.

        ``dtype=np.float32`` opts the fused tier's summary feed into
        float32 (summaries within ``rtol <= 1e-5`` of a float64 run,
        win counts still exact); ignored on the chain tier, which is
        always float64.
        """
        workers = self.stream_workers(workers)
        pool = self._stream_pool_get(workers) if workers > 1 else None
        result = run_stream(
            source, reduction, chunk_rows=chunk_rows, workers=workers,
            pool=pool, checkpoint=checkpoint, kernel_tier=self.kernel_tier,
            kernel_dtype=dtype if dtype is not None else np.float64,
        )
        self._note_computed(int(source.n))
        return result

    def _compute(
        self, pairs: Sequence[tuple[PlatformComparator, Scenario]]
    ) -> list[ComparisonResult]:
        """Assess uncached pairs, parallel when configured and worthwhile."""
        workers = self.workers or 1
        if workers <= 1 or len(pairs) <= self.chunk_size:
            return _compare_chunk(pairs)
        chunks = [
            pairs[i : i + self.chunk_size]
            for i in range(0, len(pairs), self.chunk_size)
        ]
        try:
            chunk_results = list(self._pool_get().map(_compare_chunk, chunks))
        except (pickle.PicklingError, BrokenExecutor):
            # Pool infrastructure failures (unpicklable suites, killed
            # workers) must never change results — discard the pool and
            # fall back to the sequential path.  Model errors raised by
            # ``compare()`` itself propagate unchanged.
            self.close()
            return _compare_chunk(pairs)
        return [result for chunk in chunk_results for result in chunk]


_DEFAULT_ENGINE: EvaluationEngine | None = None
_DEFAULT_ENGINE_LOCK = threading.Lock()


def default_engine() -> EvaluationEngine:
    """The process-wide engine backing analysis calls with no injection.

    Created lazily under a lock (safe to race from threads/tasks — every
    caller observes the same instance); its worker pool (if any) is shut
    down by an ``atexit`` hook so a lazily-started
    :class:`ProcessPoolExecutor` never leaks at interpreter exit.
    """
    global _DEFAULT_ENGINE
    with _DEFAULT_ENGINE_LOCK:
        if _DEFAULT_ENGINE is None:
            _DEFAULT_ENGINE = EvaluationEngine()
        return _DEFAULT_ENGINE


def reset_default_engine() -> None:
    """Close and discard the shared default engine.

    The next :func:`default_engine` call builds a fresh default.  Used
    by tests (cache isolation), by :func:`configure_default_engine`, and
    as the interpreter-exit hook.
    """
    global _DEFAULT_ENGINE
    with _DEFAULT_ENGINE_LOCK:
        engine, _DEFAULT_ENGINE = _DEFAULT_ENGINE, None
    if engine is not None:
        engine.close()


def configure_default_engine(**kwargs: object) -> EvaluationEngine:
    """Replace the shared default engine with a freshly configured one.

    Accepts :class:`EvaluationEngine` constructor arguments (``workers``,
    ``vectorize``, ``cache_size``, ``cache_shards``, ``cache_file``,
    ...).  The previous default (and its worker pool) is closed.
    Returns the new default so callers can keep a handle — the CLI uses
    this for ``--workers`` / ``--no-vectorize`` / ``--cache-shards`` /
    ``--cache-file``.
    """
    global _DEFAULT_ENGINE
    engine = EvaluationEngine(**kwargs)  # type: ignore[arg-type]
    with _DEFAULT_ENGINE_LOCK:
        previous, _DEFAULT_ENGINE = _DEFAULT_ENGINE, engine
    if previous is not None:
        previous.close()
    return engine


atexit.register(reset_default_engine)


def resolve_engine(engine: EvaluationEngine | None) -> EvaluationEngine:
    """``engine`` if given, else the shared default."""
    return engine if engine is not None else default_engine()
