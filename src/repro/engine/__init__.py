"""Shared batch evaluation engine (caching + parallel assessment).

See :mod:`repro.engine.engine` for the design rationale.
"""

from repro.engine.cache import CacheStats, LruCache
from repro.engine.engine import (
    EvaluationEngine,
    build_suite_cached,
    comparator_key,
    default_engine,
    evaluation_key,
    resolve_engine,
    scenario_key,
)

__all__ = [
    "CacheStats",
    "EvaluationEngine",
    "LruCache",
    "build_suite_cached",
    "comparator_key",
    "default_engine",
    "evaluation_key",
    "resolve_engine",
    "scenario_key",
]
