"""Shared batch evaluation engine (sharded store + async serving + kernel).

See :mod:`repro.engine.engine` for the engine design rationale,
:mod:`repro.engine.store` for the array-backed sharded result store,
:mod:`repro.engine.service` for the awaitable micro-batching front-end,
and :mod:`repro.engine.vector` for the NumPy kernel behind the fast path.
"""

from repro.engine.cache import CacheStats, LruCache
from repro.engine.engine import (
    DEFAULT_CACHE_SHARDS,
    MIN_VECTOR_BATCH,
    PARAM_CHUNK_ROWS,
    EvaluationEngine,
    build_suite_cached,
    configure_default_engine,
    default_engine,
    reset_default_engine,
    resolve_engine,
)
from repro.engine.service import AsyncEvaluationEngine, serving_benchmark
from repro.engine.store import (
    ShardedResultStore,
    batch_digests,
    comparator_digest,
    comparator_key,
    evaluation_key,
    pair_digest,
    param_batch_digests,
    param_digest,
    param_row_digest,
    scenario_key,
)
from repro.engine.vector import (
    BatchResult,
    ParameterBatch,
    ScenarioBatch,
    VectorizedEvaluator,
)

__all__ = [
    "AsyncEvaluationEngine",
    "BatchResult",
    "CacheStats",
    "DEFAULT_CACHE_SHARDS",
    "EvaluationEngine",
    "LruCache",
    "MIN_VECTOR_BATCH",
    "PARAM_CHUNK_ROWS",
    "ParameterBatch",
    "ScenarioBatch",
    "ShardedResultStore",
    "VectorizedEvaluator",
    "batch_digests",
    "build_suite_cached",
    "comparator_digest",
    "comparator_key",
    "configure_default_engine",
    "default_engine",
    "evaluation_key",
    "pair_digest",
    "param_batch_digests",
    "param_digest",
    "param_row_digest",
    "reset_default_engine",
    "resolve_engine",
    "scenario_key",
    "serving_benchmark",
]
