"""Shared batch evaluation engine (caching + parallel + vector kernel).

See :mod:`repro.engine.engine` for the engine design rationale and
:mod:`repro.engine.vector` for the NumPy kernel behind the fast path.
"""

from repro.engine.cache import CacheStats, LruCache
from repro.engine.engine import (
    MIN_VECTOR_BATCH,
    EvaluationEngine,
    build_suite_cached,
    comparator_key,
    configure_default_engine,
    default_engine,
    evaluation_key,
    reset_default_engine,
    resolve_engine,
    scenario_key,
)
from repro.engine.vector import BatchResult, ScenarioBatch, VectorizedEvaluator

__all__ = [
    "BatchResult",
    "CacheStats",
    "EvaluationEngine",
    "LruCache",
    "MIN_VECTOR_BATCH",
    "ScenarioBatch",
    "VectorizedEvaluator",
    "build_suite_cached",
    "comparator_key",
    "configure_default_engine",
    "default_engine",
    "evaluation_key",
    "reset_default_engine",
    "resolve_engine",
    "scenario_key",
]
