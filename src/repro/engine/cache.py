"""Bounded LRU cache with hit/miss accounting.

Historically the engine's only result cache (one finished
:class:`~repro.core.comparison.ComparisonResult` per key); since the
array-backed :class:`~repro.engine.store.ShardedResultStore` took over
the hot path, this class serves as the store's *object side-cache* for
results that cannot be packed into uniform columns (heterogeneous
per-application lifetimes).  A plain ``OrderedDict`` guarded by a lock,
so it can be shared by analysis code running on worker threads; worker
*processes* never see it — they return results to the parent, which
inserts them.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.errors import ParameterError

#: Sentinel distinguishing "missing" from a cached ``None``.
_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of cache effectiveness counters."""

    hits: int
    misses: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class LruCache:
    """A size-bounded least-recently-used mapping.

    Args:
        maxsize: Maximum number of entries.  ``0`` disables storage
            entirely (every lookup is a miss) while keeping the API.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 0:
            raise ParameterError(f"cache maxsize must be >= 0, got {maxsize}")
        self._maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    @property
    def maxsize(self) -> int:
        """Entry bound this cache was built with."""
        return self._maxsize

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (marking it most-recent) or ``default``."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``value``, evicting the least-recently-used overflow."""
        if self._maxsize == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0

    def stats(self) -> CacheStats:
        """Current counters as an immutable snapshot."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._data),
                maxsize=self._maxsize,
            )
