"""Crash-safe file replacement shared by every persistence path.

A snapshot writer that opens its destination with ``open("wb")`` and
crashes mid-write destroys the *previous* good snapshot along with the
new one.  Every durable artefact in this package — result-store
``.npz`` snapshots, streaming checkpoints, serve-tier warm-store
dumps — goes through :func:`atomic_write_bytes` instead: write to a
same-directory temporary file, flush + ``fsync`` it, then
``os.replace`` it over the destination.  ``os.replace`` is atomic on
POSIX and Windows for same-filesystem paths (the same-directory tmp
guarantees that), so a crash at any point leaves either the old file
or the complete new file, never a torn hybrid.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from pathlib import Path
from typing import BinaryIO


def atomic_write(path: Path, write_body: Callable[[BinaryIO], None]) -> Path:
    """Atomically (re)place ``path`` with bytes produced by ``write_body``.

    ``write_body`` receives a binary file handle for a temporary file in
    ``path``'s directory.  After it returns, the tmp file is flushed,
    fsynced, and renamed over ``path``; the directory entry is fsynced
    too so the rename itself survives a power loss.  On any failure the
    tmp file is removed and the previous ``path`` is left untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f"{path.name}.tmp.{os.getpid()}"
    try:
        with tmp.open("wb") as handle:
            write_body(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_dir(path.parent)
    return path


def atomic_write_bytes(path: Path, payload: bytes) -> Path:
    """Atomically (re)place ``path`` with ``payload``."""
    return atomic_write(path, lambda handle: handle.write(payload))


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry; best-effort on filesystems without it."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # e.g. Windows, or a filesystem refusing O_RDONLY on dirs
    try:
        os.fsync(fd)
    except OSError:
        pass  # some filesystems cannot fsync directories; rename still atomic
    finally:
        os.close(fd)
