"""Process-tree memory measurement for streaming workloads.

The streaming reduction pipeline promises *bounded* peak memory —
``O(chunk_rows)`` per worker, not ``O(n)`` — so the benchmarks, the CLI
and ``scripts/bench_compare.py`` need a number to hold it to: the peak
resident set of the whole process tree (the parent plus its spawn
workers) over a measured phase.  Linux exposes everything required in
``/proc``; this module reads it directly so the measurement works in
the bare test container (no ``psutil``).

:class:`PeakRssSampler` polls ``VmRSS`` of the current process and
every live descendant on a background thread and keeps the maximum of
the sums.  Sampling is approximate by nature (a spike between polls is
missed), which is exactly the fidelity a >25%-headroom RSS budget gate
needs — and the only kind available without instrumenting every
allocation.  On platforms without ``/proc`` the sampler degrades to
reporting ``0.0`` rather than failing the workload it observes.
"""

from __future__ import annotations

import os
import threading

_PROC = "/proc"


def _vm_rss_kb(pid: int) -> int:
    """``VmRSS`` of one process in kB (0 if gone or unreadable).

    A process may exit between discovery and this read, leaving the
    ``/proc/<pid>`` entry missing, unreadable, or garbled mid-write —
    all of those count as "gone" (0), never an exception: a sampler
    must not crash the workload it observes.
    """
    try:
        with open(f"{_PROC}/{pid}/status", "rb") as handle:
            for line in handle:
                if line.startswith(b"VmRSS:"):
                    return int(line.split()[1])
    except (OSError, IndexError, ValueError):
        pass
    return 0


def _parent_map() -> dict[int, int]:
    """``pid -> ppid`` for every live process (empty without /proc)."""
    parents: dict[int, int] = {}
    try:
        entries = os.listdir(_PROC)
    except OSError:
        return parents
    for entry in entries:
        if not entry.isdigit():
            continue
        try:
            with open(f"{_PROC}/{entry}/stat", "rb") as handle:
                stat = handle.read()
        except OSError:
            continue
        # Field 4 (ppid) follows the parenthesised comm, which may
        # itself contain spaces/parens — split after the last ')'.
        try:
            parents[int(entry)] = int(stat.rpartition(b")")[2].split()[1])
        except (IndexError, ValueError):
            continue
    return parents


def process_tree_pids(root: "int | None" = None) -> list[int]:
    """The root pid plus every live descendant (workers included)."""
    root = os.getpid() if root is None else root
    parents = _parent_map()
    children: dict[int, list[int]] = {}
    for pid, ppid in parents.items():
        children.setdefault(ppid, []).append(pid)
    pids = [root]
    frontier = [root]
    while frontier:
        pid = frontier.pop()
        for child in children.get(pid, ()):
            pids.append(child)
            frontier.append(child)
    return pids


def process_tree_rss_mb(root: "int | None" = None) -> float:
    """Current summed RSS of the process tree, in MiB."""
    return sum(_vm_rss_kb(pid) for pid in process_tree_pids(root)) / 1024.0


class PeakRssSampler:
    """Track the peak process-tree RSS over a ``with`` block.

    Descendants are re-discovered every sample, so workers spawned
    mid-phase are counted from their next poll onwards.

    >>> with PeakRssSampler() as rss:
    ...     run_workload()
    >>> rss.peak_mb
    812.4
    """

    def __init__(self, interval_s: float = 0.05) -> None:
        self.interval_s = interval_s
        self.peak_mb = 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _run(self) -> None:
        while True:
            self.peak_mb = max(self.peak_mb, process_tree_rss_mb())
            if self._stop.wait(self.interval_s):
                return

    def __enter__(self) -> "PeakRssSampler":
        self.peak_mb = process_tree_rss_mb()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-rss-sampler", daemon=True
        )
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.peak_mb = max(self.peak_mb, process_tree_rss_mb())
