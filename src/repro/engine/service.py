"""Async batch-serving front-end over the evaluation engine.

:class:`AsyncEvaluationEngine` multiplexes many concurrent clients over
one shared :class:`~repro.engine.engine.EvaluationEngine` (and therefore
one shared warm result store):

* **awaitable API** — ``evaluate_many`` / ``evaluate_batch`` /
  ``sweep_batch`` / ``heatmap_batch`` mirror the sync entry points but
  never block the event loop: CPU-bound kernel work runs on a worker
  pool.
* **micro-batching** — requests arriving within one batching window are
  coalesced per comparator into a single fused
  :class:`~repro.engine.vector.ScenarioBatch` and dispatched as *one*
  kernel/gather call; each client then receives its own row slice of
  the fused :class:`~repro.engine.vector.BatchResult`.  Aggregate
  throughput under concurrency therefore rises with the number of
  clients, while a lone client pays at most one window of latency.
* **no duplicated work** — fused batches are deduplicated by digest
  inside the engine, and flush rounds are processed sequentially, so a
  cell requested by many concurrent clients is computed exactly once
  and every later request is a store hit (see
  ``EvaluationEngine.rows_computed``).

The serving benchmark harness (:func:`serving_benchmark`) drives the
same front-end for the CLI ``serve-bench`` command and
``benchmarks/test_bench_serving.py``.
"""

from __future__ import annotations

import asyncio
import functools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.comparison import ComparisonResult, PlatformComparator
from repro.core.scenario import Scenario
from repro.engine.engine import EvaluationEngine
from repro.engine.store import comparator_digest
from repro.engine.vector import BatchResult, ScenarioBatch
from repro.engine.vector.fused import kernel_tier_label
from repro.errors import ParameterError

#: Default micro-batching window: long enough to coalesce a burst of
#: concurrent submissions, short enough to stay invisible to humans.
DEFAULT_BATCH_WINDOW_S = 0.002


@dataclass
class _Request:
    """One queued batch request awaiting a flush round."""

    comparator: PlatformComparator
    batch: ScenarioBatch
    future: "asyncio.Future[BatchResult]" = field(repr=False)


class AsyncEvaluationEngine:
    """Awaitable, micro-batching front-end over one shared engine.

    Args:
        engine: Engine to serve from.  ``None`` builds (and owns) a
            default-configured engine, closed again by :meth:`close`.
        batch_window_s: Micro-batching window.  Requests submitted while
            a window is open are fused into one kernel dispatch per
            comparator; ``0`` still coalesces whatever arrives within
            one event-loop pass.
        eager_single: Dispatch a lone queued request immediately instead
            of holding it for the window, unconditionally.  Implied by
            the default adaptive window; keep for explicit
            latency-pinned configurations.
        adaptive_window: Auto-eager when the queue is idle (the
            default): a request that is *alone* after the enqueue pass —
            no other pending clients to fuse with — skips the window,
            so a serialized client pays per-dispatch cost only, while
            any concurrent burst (two or more pending) still gets the
            full window and fuses.  ``False`` restores the
            unconditional window, the classic micro-batching trade.
        workers: Threads of the dispatch pool running the CPU-bound
            kernel/gather work (NumPy releases the GIL for the heavy
            array operations).

    The instance is bound to the event loop it first serves on; share
    one per loop, not across loops.  All mutable queue state is only
    touched from loop callbacks, so no extra locking is needed — the
    underlying engine and store are themselves thread-safe for the
    executor threads.
    """

    def __init__(
        self,
        engine: EvaluationEngine | None = None,
        *,
        batch_window_s: float = DEFAULT_BATCH_WINDOW_S,
        eager_single: bool = False,
        adaptive_window: bool = True,
        workers: int = 4,
    ) -> None:
        if batch_window_s < 0.0:
            raise ParameterError(
                f"batch_window_s must be >= 0, got {batch_window_s}"
            )
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        self._engine = engine if engine is not None else EvaluationEngine()
        self._owns_engine = engine is None
        self.batch_window_s = batch_window_s
        self.eager_single = eager_single
        self.adaptive_window = adaptive_window
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._pending: list[_Request] = []
        self._flusher: asyncio.Task | None = None
        self._closed = False
        #: Requests answered (each client call counts once).
        self.requests_served = 0
        #: Fused dispatches that coalesced >= 2 requests.
        self.batches_fused = 0
        #: Requests that rode in a fused dispatch.
        self.requests_coalesced = 0
        #: Windows skipped for idle-queue lone requests (adaptive/eager).
        self.windows_skipped = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def engine(self) -> EvaluationEngine:
        """The engine (and store) this front-end serves from."""
        return self._engine

    def close(self) -> None:
        """Stop accepting work and release the dispatch pool.

        Safe to call with requests still in flight — no awaiting client
        is ever left hanging:

        * requests still **queued** for a future flush round get a
          :class:`~repro.errors.ParameterError` delivered to their
          futures immediately;
        * requests already **dispatched** to the worker pool finish
          normally (the shutdown below waits for them) and receive
          their results.

        Idempotent: the first call wins, later calls are no-ops.  The
        owned engine (if any) is closed too.
        """
        if self._closed:
            return
        self._closed = True
        # Fail the queued-but-undispatched futures *before* blocking on
        # the executor: their flush round will never run (the flusher
        # sees an empty queue and exits), so an error now is the only
        # alternative to a silent hang.
        pending, self._pending = self._pending, []
        for request in pending:
            if not request.future.done():
                request.future.set_exception(
                    ParameterError(
                        "AsyncEvaluationEngine closed with requests in flight"
                    )
                )
        self._executor.shutdown(wait=True)
        if self._owns_engine:
            self._engine.close()

    async def __aenter__(self) -> "AsyncEvaluationEngine":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Awaitable evaluation API
    # ------------------------------------------------------------------

    async def evaluate_batch(
        self,
        comparator: PlatformComparator,
        scenarios: "ScenarioBatch | Sequence[Scenario]",
    ) -> BatchResult:
        """Awaitable :meth:`EvaluationEngine.evaluate_batch`.

        Fully covered batches join the micro-batching queue and may be
        fused with concurrent requests for the same comparator;
        uncovered batches (heterogeneous per-application lifetimes) are
        dispatched standalone.
        """
        if self._closed:
            raise ParameterError("AsyncEvaluationEngine is closed")
        batch = (
            scenarios
            if isinstance(scenarios, ScenarioBatch)
            else ScenarioBatch.from_scenarios(tuple(scenarios))
        )
        if not batch.all_covered:
            result = await self._run(
                self._engine.evaluate_batch, comparator, batch
            )
            self.requests_served += 1
            return result
        loop = asyncio.get_running_loop()
        future: asyncio.Future[BatchResult] = loop.create_future()
        self._pending.append(_Request(comparator, batch, future))
        if self._flusher is None or self._flusher.done():
            self._flusher = loop.create_task(self._flush_loop())
        result = await future
        self.requests_served += 1
        return result

    async def evaluate_many(
        self, comparator: PlatformComparator, scenarios: Sequence[Scenario]
    ) -> tuple[ComparisonResult, ...]:
        """Awaitable :meth:`EvaluationEngine.evaluate_many`.

        Uniform-lifetime scenario lists ride the coalescing batch path
        and are materialised from the fused result's rows; anything else
        runs the object path on the worker pool.  Results are identical
        to the sync spelling either way.
        """
        scenario_list = tuple(scenarios)
        if not scenario_list:
            return ()
        batch = ScenarioBatch.from_scenarios(scenario_list)
        if not batch.all_covered:
            result = await self._run(
                self._engine.evaluate_many, comparator, scenario_list
            )
            self.requests_served += 1
            return result
        batch_result = await self.evaluate_batch(comparator, batch)
        return tuple(
            batch_result.comparison(i, scenario)
            for i, scenario in enumerate(scenario_list)
        )

    async def sweep_batch(
        self,
        comparator: PlatformComparator,
        base_scenario: Scenario,
        axis: str,
        values: Sequence[float],
    ):
        """Awaitable :func:`repro.analysis.sweep.sweep_batch`."""
        from repro.analysis.sweep import SweepBatch, sweep_columns

        batch = sweep_columns(base_scenario, axis, values)
        result = await self.evaluate_batch(comparator, batch)
        return SweepBatch(
            axis=axis,
            values=np.asarray(values, dtype=np.float64),
            batch=result,
        )

    async def heatmap_batch(
        self,
        comparator: PlatformComparator,
        base_scenario: Scenario,
        x_axis: str,
        x_values: Sequence[float],
        y_axis: str,
        y_values: Sequence[float],
    ):
        """Awaitable :func:`repro.analysis.heatmap.pairwise_heatmap_batch`."""
        from repro.analysis.heatmap import HeatmapResult, heatmap_columns

        batch = heatmap_columns(
            base_scenario, x_axis, x_values, y_axis, y_values
        )
        result = await self.evaluate_batch(comparator, batch)
        return HeatmapResult(
            x_axis=x_axis,
            y_axis=y_axis,
            x_values=tuple(float(v) for v in x_values),
            y_values=tuple(float(v) for v in y_values),
            ratios=result.ratios.reshape((len(y_values), len(x_values))),
        )

    # ------------------------------------------------------------------
    # Micro-batching internals
    # ------------------------------------------------------------------

    async def _run(self, fn: Callable, *args: Any) -> Any:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, functools.partial(fn, *args)
        )

    async def _flush_loop(self) -> None:
        """Drain the queue: wait one window, fuse what arrived, dispatch.

        The leading ``sleep(0)`` lets every already-runnable submitter
        enqueue before the round is sized; the batching window then
        collects the rest of the burst.  A request still alone after
        that pass has no concurrent peers to fuse with, so the adaptive
        window (and ``eager_single``) dispatches it immediately instead
        of charging it the window — a burst of two or more always waits
        the window out and fuses.  Flush rounds run sequentially, so
        everything computed in round K is in the store before round K+1
        is fused — concurrent clients asking for the same cells across
        rounds always hit warmth.

        No exception may escape a round: a failure anywhere in dispatch
        is delivered to that round's futures, otherwise every queued
        client would hang on ``await`` forever.
        """
        try:
            while self._pending:
                await asyncio.sleep(0)
                lone = len(self._pending) == 1
                if lone and (self.adaptive_window or self.eager_single):
                    self.windows_skipped += 1
                else:
                    await asyncio.sleep(self.batch_window_s)
                pending, self._pending = self._pending, []
                try:
                    await self._dispatch(pending)
                except Exception as exc:  # noqa: BLE001 - fed to futures
                    for request in pending:
                        if not request.future.done():
                            request.future.set_exception(exc)
        finally:
            self._flusher = None

    async def _dispatch(self, pending: list[_Request]) -> None:
        groups: dict[tuple[int, int], list[_Request]] = {}
        for request in pending:
            groups.setdefault(
                comparator_digest(request.comparator), []
            ).append(request)
        for requests in groups.values():
            if len(requests) == 1:
                await self._dispatch_one(requests[0])
                continue
            try:
                fused = ScenarioBatch.concat([r.batch for r in requests])
                self.batches_fused += 1
                self.requests_coalesced += len(requests)
                result = await self._run(
                    self._engine.evaluate_batch, requests[0].comparator, fused
                )
            except Exception as exc:  # noqa: BLE001 - delivered to every coalesced request future
                for request in requests:
                    if not request.future.done():
                        request.future.set_exception(exc)
                continue
            offset = 0
            for request in requests:
                stop = offset + request.batch.size
                if not request.future.done():
                    request.future.set_result(result.slice_rows(offset, stop))
                offset = stop

    async def _dispatch_one(self, request: _Request) -> None:
        try:
            result = await self._run(
                self._engine.evaluate_batch, request.comparator, request.batch
            )
        except Exception as exc:  # noqa: BLE001 - delivered to the request future
            if not request.future.done():
                request.future.set_exception(exc)
        else:
            if not request.future.done():
                request.future.set_result(result)


# ----------------------------------------------------------------------
# Serving benchmark harness (CLI `serve-bench` + benchmarks/)
# ----------------------------------------------------------------------


def _client_jobs(
    clients: int, requests_per_client: int, cells_per_request: int
) -> list[list[tuple[Scenario, tuple[int, ...]]]]:
    """Per-client request lists over one shared cell universe.

    Every client sweeps the same ``requests_per_client`` lifetime rows
    (each ``cells_per_request`` ``num_apps`` cells), so concurrent
    clients genuinely contend for — and share — the same cache lines.
    """
    lifetimes = np.linspace(0.5, 3.0, requests_per_client)
    values = tuple(range(1, cells_per_request + 1))
    jobs: list[list[tuple[Scenario, tuple[int, ...]]]] = []
    for _ in range(clients):
        rows = [
            (
                Scenario(
                    num_apps=5, app_lifetime_years=float(t), volume=1_000_000
                ),
                values,
            )
            for t in lifetimes
        ]
        jobs.append(rows)
    return jobs


async def _drive(
    served: AsyncEvaluationEngine,
    comparator: PlatformComparator,
    jobs: list[list[tuple[Scenario, tuple[int, ...]]]],
) -> float:
    """Run every client's jobs concurrently; return elapsed seconds."""

    async def client(rows: list[tuple[Scenario, tuple[int, ...]]]) -> None:
        for base, values in rows:
            await served.sweep_batch(comparator, base, "num_apps", values)

    start = time.perf_counter()
    await asyncio.gather(*(client(rows) for rows in jobs))
    return time.perf_counter() - start


def serving_benchmark(
    *,
    clients: int = 8,
    requests_per_client: int = 24,
    cells_per_request: int = 100,
    batch_window_s: float = DEFAULT_BATCH_WINDOW_S,
    cache_file: "str | Path | None" = None,
    domain: str = "dnn",
) -> dict:
    """Measure serving throughput: 1 vs N clients, cold vs persisted-warm.

    Phases over one shared cell universe (`clients` x
    `requests_per_client` sweep requests of ``cells_per_request`` cells):

    * ``cold_serialized_1`` — fresh store, one client awaiting each
      request in turn through the micro-batching server (the default
      adaptive window: lone requests dispatch eagerly);
    * ``cold_concurrent_N`` — fresh store, ``clients`` concurrent
      clients coalesced by the micro-batcher;
    * ``warm_serialized_1`` / ``warm_concurrent_N`` — the same two
      modes against a store loaded from the ``.npz`` the cold phase
      persisted (``cache_file``; a throwaway file when not given);
    * ``warm_serialized_1_windowed`` — reference: the same serialized
      drive with ``adaptive_window=False``, i.e. the classic
      unconditional window every micro-batching server charges lone
      requests.  The concurrent-speedup gate compares against this
      phase, since it is the dispatch mode concurrency amortises;
    * ``warm_serialized_1_eager`` — reference: ``eager_single=True``
      (window never held for lone requests).  The adaptive-window gate
      compares ``warm_serialized_1`` against this phase — adaptive
      dispatch must serve an idle-queue serialized client at
      near-eager latency.

    Returns a JSON-ready dict with per-phase elapsed seconds and
    scenarios/sec plus two headline ratios the ``BENCH_serving.json``
    gates track: coalesced concurrent clients vs windowed serialized
    dispatch (the micro-batching win), and adaptive serialized vs eager
    serialized (the idle-queue window penalty, which the adaptive
    window exists to remove).
    """
    comparator = PlatformComparator.for_domain(domain)
    total_requests = clients * requests_per_client
    total_cells = total_requests * cells_per_request
    own_cache = cache_file is None
    if own_cache:
        import tempfile

        handle = tempfile.NamedTemporaryFile(
            suffix=".npz", delete=False
        )
        handle.close()
        cache_file = handle.name
    cache_path = Path(cache_file)

    def serialized_jobs() -> list[list[tuple[Scenario, tuple[int, ...]]]]:
        per_client = _client_jobs(clients, requests_per_client, cells_per_request)
        return [[row for rows in per_client for row in rows]]

    async def phase(
        jobs: list[list[tuple[Scenario, tuple[int, ...]]]],
        *,
        load: bool,
        eager_single: bool = False,
        adaptive_window: bool = True,
        repeats: int = 1,
    ) -> tuple[float, EvaluationEngine]:
        """One timed drive; ``repeats > 1`` keeps the fastest run.

        Timing noise is strictly additive, so min-of-N is the right
        estimator for the latency-*ratio* gates (adaptive vs eager) —
        each warm repeat rebuilds the engine from the same ``.npz``, so
        no repeat sees extra warmth.
        """
        best = float("inf")
        engine = None
        for _ in range(repeats):
            engine = EvaluationEngine()
            if load:
                engine.load_cache(cache_path)
            async with AsyncEvaluationEngine(
                engine,
                batch_window_s=batch_window_s,
                eager_single=eager_single,
                adaptive_window=adaptive_window,
            ) as served:
                best = min(best, await _drive(served, comparator, jobs))
        return best, engine

    async def run_all() -> dict:
        cold_1_s, _ = await phase(serialized_jobs(), load=False)
        cold_n_s, warm_engine = await phase(
            _client_jobs(clients, requests_per_client, cells_per_request),
            load=False,
        )
        warm_engine.save_cache(cache_path)
        persisted = warm_engine.cache_stats.size
        warm_1_s, _ = await phase(serialized_jobs(), load=True, repeats=3)
        warm_1_windowed_s, _ = await phase(
            serialized_jobs(), load=True, adaptive_window=False
        )
        warm_1_eager_s, _ = await phase(
            serialized_jobs(), load=True, eager_single=True, repeats=3
        )
        warm_n_s, warm_n_engine = await phase(
            _client_jobs(clients, requests_per_client, cells_per_request),
            load=True,
        )
        warm_hit_rate = warm_n_engine.cache_stats.hit_rate
        warm_recomputed = warm_n_engine.rows_computed

        def entry(elapsed: float) -> dict:
            return {
                "elapsed_s": round(elapsed, 4),
                "scenarios_per_s": round(total_cells / elapsed, 1),
            }

        return {
            "clients": clients,
            "requests_per_client": requests_per_client,
            "cells_per_request": cells_per_request,
            "total_scenarios": total_cells,
            "batch_window_s": batch_window_s,
            # Serving always materialises result rows (clients receive
            # per-row slices); recorded so BENCH_serving.json stays
            # comparable if a streaming reducer mode lands here too.
            # kernel_tier is the tier a reduce= path would serve under
            # the current REPRO_KERNEL resolution, making the artifact
            # self-describing about the deployed kernel stack.
            "reduce_mode": "materialized",
            "kernel_tier": kernel_tier_label(None),
            "persisted_entries": int(persisted),
            "warm_concurrent_hit_rate": round(float(warm_hit_rate), 4),
            "warm_concurrent_rows_recomputed": int(warm_recomputed),
            "phases": {
                "cold_serialized_1": entry(cold_1_s),
                f"cold_concurrent_{clients}": entry(cold_n_s),
                "warm_serialized_1": entry(warm_1_s),
                "warm_serialized_1_windowed": entry(warm_1_windowed_s),
                "warm_serialized_1_eager": entry(warm_1_eager_s),
                f"warm_concurrent_{clients}": entry(warm_n_s),
            },
            "speedup_concurrent_vs_windowed_serialized_warm": round(
                warm_1_windowed_s / warm_n_s, 2
            ),
            "adaptive_serialized_over_eager_warm": round(
                warm_1_s / warm_1_eager_s, 2
            ),
        }

    try:
        return asyncio.run(run_all())
    finally:
        if own_cache:
            cache_path.unlink(missing_ok=True)
