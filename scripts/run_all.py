#!/usr/bin/env python
"""Regenerate every paper artifact: reports to stdout, CSVs to results/.

Run:
    python scripts/run_all.py [output_dir]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.experiments.registry import EXPERIMENT_IDS, run_experiment


def main() -> int:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results")
    out_dir.mkdir(parents=True, exist_ok=True)
    for experiment_id in EXPERIMENT_IDS:
        started = time.time()
        report = run_experiment(experiment_id, csv_dir=out_dir)
        elapsed = time.time() - started
        (out_dir / f"{experiment_id}.txt").write_text(report.render() + "\n")
        print(f"{experiment_id:16s} done in {elapsed:5.1f}s "
              f"({len(report.tables)} tables)")
    print(f"\nall artifacts written to {out_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
