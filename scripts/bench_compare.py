#!/usr/bin/env python
"""Diff freshly emitted BENCH_*.json against the committed baselines.

The benchmark emitters (``benchmarks/test_bench_vector.py``,
``benchmarks/test_bench_serving.py``, ...) overwrite
``benchmarks/BENCH_*.json`` in place on every run; the committed
trajectory anchors live in ``benchmarks/baselines/``.  This script
compares every throughput metric against its baseline with a
``--threshold`` (default 25%) regression floor, in two tiers:

* **dimensionless ``*speedup*`` ratios** (vector vs scalar, concurrent
  vs serialized) are machine-portable — a regression beyond the
  threshold **fails**;
* **absolute ``*_per_s`` rates** are reciprocal wall-clock and track
  the machine as much as the code — a regression beyond the threshold
  is printed as a **warning** only, so a slower laptop or a loaded CI
  runner cannot fail the gate while the ratio tier still catches real
  hot-path regressions;
* **latency percentiles** (``p50_ms`` / ``p99_ms``, emitted by the
  serving latency benchmark) are lower-is-better: a **p99** increase
  beyond the threshold **fails** — tail latency is the serving tier's
  contract — while **p50** drift only **warns** (median latency on a
  loaded runner moves with the machine).  Percentiles from the
  fault-injected ``one_kill`` phases also only **warn**: their p99 *is*
  the replay spike of the injected worker kill, whose magnitude is
  scheduler timing, not code — the chaos test suite separately asserts
  the hard bound (no reply past the deadline).

Additionally, every workload that declares a peak-RSS budget
(``peak_rss_mb`` + ``rss_budget_mb``, e.g. the streaming
``monte_carlo_100M`` workload) is checked against that budget with the
same threshold of headroom — exceeding it **fails**, baseline or not:
the streaming pipeline's bounded-memory contract is a gate, not a
trajectory.

Absolute floors work the same way: a top-level ``min_<metric>_gate``
key applies to every workload dict carrying ``<metric>`` (currently
``min_fused_speedup_gate`` vs the ``mc_stream_fused`` workload's
``fused_speedup``) and a value below the floor **fails** with no
headroom — the emitting benchmark asserts the identical bound, so the
comparison can only trip when someone hand-edits the JSON or the
emitter's assert is bypassed, and then it must trip.

Usage:
    python scripts/bench_compare.py [--threshold 0.25]
    python scripts/bench_compare.py --update-baselines   # re-anchor

``scripts/check.sh`` runs the comparison after the benchmark emitters,
so a hot-path regression fails the local gate before it ships.  After
an intentional perf change, re-anchor with ``--update-baselines`` and
commit the refreshed baselines together with the change.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
BASELINE_DIR = BENCH_DIR / "baselines"

#: Keys that are never throughput metrics even if they match patterns.
_EXCLUDED_SUFFIXES = ("_gate",)


def _is_throughput_key(key: str) -> bool:
    """Higher-is-better metric selector (rates and speedup ratios)."""
    if any(key.endswith(suffix) for suffix in _EXCLUDED_SUFFIXES):
        return False
    return key.endswith("_per_s") or "speedup" in key


def _is_latency_key(key: str) -> bool:
    """Lower-is-better metric selector (latency percentiles)."""
    if any(key.endswith(suffix) for suffix in _EXCLUDED_SUFFIXES):
        return False
    return key.endswith("p50_ms") or key.endswith("p99_ms")


def _is_gating_key(path: str) -> bool:
    """Whether a regression in this metric fails (vs warns).

    Dimensionless speedup ratios and fault-free p99 latency
    percentiles gate; absolute ``*_per_s`` rates and p50 medians are
    machine-relative and warn only.  ``one_kill`` chaos-phase
    percentiles also warn only: their tail is the injected kill's
    replay spike, whose size is scheduling noise (the chaos suite
    asserts the deadline bound instead).
    """
    leaf = path.rsplit(".", 1)[-1]
    if ".one_kill." in path:
        return False
    return "speedup" in leaf or leaf.endswith("p99_ms")


def _collect_metrics(node: object, prefix: str = "") -> dict[str, float]:
    """Flatten a bench JSON tree into ``path -> value`` gated metrics."""
    metrics: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, (dict, list)):
                metrics.update(_collect_metrics(value, path))
            elif isinstance(value, (int, float)) and (
                _is_throughput_key(key) or _is_latency_key(key)
            ):
                metrics[path] = float(value)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            metrics.update(_collect_metrics(value, f"{prefix}[{index}]"))
    return metrics


def _collect_rss_checks(
    node: object, prefix: str = ""
) -> list[tuple[str, float, float]]:
    """Find ``(path, peak_rss_mb, rss_budget_mb)`` workload entries.

    Any dict that declares both keys opts into the peak-RSS gate —
    currently the streaming ``monte_carlo_100M`` workload, whose whole
    contract is bounded memory.
    """
    checks: list[tuple[str, float, float]] = []
    if isinstance(node, dict):
        if "peak_rss_mb" in node and "rss_budget_mb" in node:
            checks.append(
                (prefix or ".", float(node["peak_rss_mb"]),
                 float(node["rss_budget_mb"]))
            )
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            checks.extend(_collect_rss_checks(value, path))
    elif isinstance(node, list):
        for index, value in enumerate(node):
            checks.extend(_collect_rss_checks(value, f"{prefix}[{index}]"))
    return checks


def check_rss_budgets(
    fresh_path: Path, threshold: float
) -> tuple[list[str], list[str]]:
    """Peak-RSS vs declared budget: ``(report_lines, violations)``.

    A workload exceeding its declared budget by more than ``threshold``
    (the same fraction as the throughput gate, 25% by default) fails —
    memory blow-ups are regressions exactly like throughput drops.
    Checked against the *fresh* file alone, so the gate holds even
    before a baseline exists.
    """
    lines: list[str] = []
    violations: list[str] = []
    for path, peak, budget in _collect_rss_checks(
        json.loads(fresh_path.read_text())
    ):
        ceiling = budget * (1.0 + threshold)
        marker = "!" if peak > ceiling else " "
        lines.append(
            f"  {marker} {path + '.peak_rss_mb':<60} "
            f"{peak:>12g} / budget {budget:g} MB"
        )
        if peak > ceiling:
            violations.append(
                f"{fresh_path.name}: {path} peak RSS {peak:g} MB exceeds "
                f"its {budget:g} MB budget by more than {threshold:.0%}"
            )
    return lines, violations


def _collect_floor_gates(tree: dict) -> list[tuple[str, float, float]]:
    """``(path, value, floor)`` for metrics with a declared floor.

    Each top-level ``min_<metric>_gate`` key pairs with every workload
    dict that carries ``<metric>``; unmatched gates are ignored (they
    describe bounds the emitter asserts on derived quantities).
    """
    floors = {
        key[len("min_"):-len("_gate")]: float(value)
        for key, value in tree.items()
        if key.startswith("min_") and key.endswith("_gate")
        and isinstance(value, (int, float))
    }
    gates: list[tuple[str, float, float]] = []

    def visit(node: object, prefix: str) -> None:
        if isinstance(node, dict):
            for metric, floor in floors.items():
                if isinstance(node.get(metric), (int, float)):
                    path = f"{prefix}.{metric}" if prefix else metric
                    gates.append((path, float(node[metric]), floor))
            for key, value in node.items():
                visit(value, f"{prefix}.{key}" if prefix else key)
        elif isinstance(node, list):
            for index, value in enumerate(node):
                visit(value, f"{prefix}[{index}]")

    visit(tree.get("workloads", {}), "workloads")
    return gates


def check_floor_gates(fresh_path: Path) -> tuple[list[str], list[str]]:
    """Declared absolute floors: ``(report_lines, violations)``.

    Checked against the fresh file alone with zero headroom — a
    declared floor is a hard gate, not a machine-relative trajectory.
    """
    lines: list[str] = []
    violations: list[str] = []
    for path, value, floor in _collect_floor_gates(
        json.loads(fresh_path.read_text())
    ):
        marker = "!" if value < floor else " "
        lines.append(
            f"  {marker} {path:<60} {value:>12g} / floor {floor:g}"
        )
        if value < floor:
            violations.append(
                f"{fresh_path.name}: {path} {value:g} is below its "
                f"declared floor of {floor:g}"
            )
    return lines, violations


def compare_file(
    fresh_path: Path, baseline_path: Path, threshold: float
) -> tuple[list[str], list[str], list[str]]:
    """Compare one bench file: ``(report_lines, regressions, warnings)``."""
    fresh = _collect_metrics(json.loads(fresh_path.read_text()))
    baseline = _collect_metrics(json.loads(baseline_path.read_text()))
    lines: list[str] = []
    regressions: list[str] = []
    warnings: list[str] = []
    for path in sorted(baseline):
        base_value = baseline[path]
        fresh_value = fresh.get(path)
        if fresh_value is None:
            regressions.append(
                f"{fresh_path.name}: metric {path!r} disappeared "
                f"(baseline {base_value:g})"
            )
            continue
        ratio = fresh_value / base_value if base_value else float("inf")
        marker = " "
        lower_is_better = _is_latency_key(path.rsplit(".", 1)[-1])
        if lower_is_better:
            regressed = base_value > 0 and (
                fresh_value > base_value * (1.0 + threshold)
            )
            bound = f"ceiling {1.0 + threshold:.2f}x"
        else:
            regressed = base_value > 0 and (
                fresh_value < base_value * (1.0 - threshold)
            )
            bound = f"floor {1.0 - threshold:.2f}x"
        if regressed:
            message = (
                f"{fresh_path.name}: {path} regressed to {fresh_value:g} "
                f"from {base_value:g} ({ratio:.2f}x, {bound})"
            )
            if _is_gating_key(path):
                marker = "!"
                regressions.append(message)
            else:
                marker = "~"
                warnings.append(message + " [machine-relative: warning]")
        lines.append(
            f"  {marker} {path:<60} {base_value:>12g} -> {fresh_value:>12g} "
            f"({ratio:.2f}x)"
        )
    for path in sorted(set(fresh) - set(baseline)):
        lines.append(
            f"  + {path:<60} {'new':>12} -> {fresh[path]:>12g}"
        )
    return lines, regressions, warnings


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="maximum tolerated fractional throughput drop (default 0.25)",
    )
    parser.add_argument(
        "--update-baselines", action="store_true",
        help="copy the fresh BENCH_*.json files over the baselines",
    )
    args = parser.parse_args(argv)

    fresh_files = sorted(BENCH_DIR.glob("BENCH_*.json"))
    if not fresh_files:
        print("bench_compare: no benchmarks/BENCH_*.json emitted", file=sys.stderr)
        return 1

    if args.update_baselines:
        BASELINE_DIR.mkdir(parents=True, exist_ok=True)
        for path in fresh_files:
            if "audit_version" in json.loads(path.read_text()):
                print(f"bench_compare: skipping audit report {path.name}")
                continue
            shutil.copy2(path, BASELINE_DIR / path.name)
            print(f"bench_compare: re-anchored baselines/{path.name}")
        return 0

    all_regressions: list[str] = []
    all_warnings: list[str] = []
    for path in fresh_files:
        if "audit_version" in json.loads(path.read_text()):
            # greenfpga audit reports share the benchmarks directory but
            # carry pass/fail verdicts, not throughput trajectories.
            print(f"bench_compare: skipping audit report {path.name}")
            continue
        rss_lines, rss_violations = check_rss_budgets(path, args.threshold)
        if rss_lines:
            print(f"== {path.name} peak-RSS budgets ==")
            print("\n".join(rss_lines))
        all_regressions.extend(rss_violations)
        floor_lines, floor_violations = check_floor_gates(path)
        if floor_lines:
            print(f"== {path.name} declared floors ==")
            print("\n".join(floor_lines))
        all_regressions.extend(floor_violations)
        baseline_path = BASELINE_DIR / path.name
        if not baseline_path.exists():
            print(
                f"bench_compare: no baseline for {path.name} — run "
                f"'python scripts/bench_compare.py --update-baselines' "
                f"and commit benchmarks/baselines/",
                file=sys.stderr,
            )
            all_regressions.append(f"{path.name}: missing baseline")
            continue
        print(f"== {path.name} vs baselines/{path.name} ==")
        lines, regressions, warnings = compare_file(
            path, baseline_path, args.threshold
        )
        print("\n".join(lines))
        all_regressions.extend(regressions)
        all_warnings.extend(warnings)

    for warning in all_warnings:
        print(f"bench_compare: warning: {warning}", file=sys.stderr)
    if all_regressions:
        print(
            f"\nbench_compare: {len(all_regressions)} throughput "
            f"regression(s) beyond {args.threshold:.0%}:",
            file=sys.stderr,
        )
        for regression in all_regressions:
            print(f"  - {regression}", file=sys.stderr)
        return 1
    print(f"\nbench_compare: all throughput metrics within {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
