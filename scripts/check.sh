#!/usr/bin/env bash
# Local CI gate: tier-1 tests + evaluation-engine benchmarks in smoke mode.
#
# Usage: scripts/check.sh [--full-bench]
#   --full-bench  additionally run the engine benchmarks with timing
#                 statistics (slower; default is one smoke iteration).
#
# The smoke run executes every engine bench once (--benchmark-disable),
# including the warm-vs-cold speedup assertion and the vector-kernel
# >= 10x gate, so a perf regression in the hot evaluation path fails
# here before it ships.  The vector bench emits
# benchmarks/BENCH_engine.json (cold scalar vs cold vector vs warm
# cache on a 10k-cell grid and a 10k-draw Monte-Carlo), which this
# script surfaces so the perf trajectory is visible run over run.

set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: unit + integration tests =="
python -m pytest tests -x -q

echo
echo "== engine benchmarks (smoke) =="
python -m pytest benchmarks/test_bench_engine.py benchmarks/test_bench_vector.py \
    -x -q --benchmark-disable

echo
echo "== BENCH_engine.json =="
if [[ -f benchmarks/BENCH_engine.json ]]; then
    cat benchmarks/BENCH_engine.json
else
    echo "error: benchmarks/BENCH_engine.json was not emitted" >&2
    exit 1
fi

if [[ "${1:-}" == "--full-bench" ]]; then
    echo
    echo "== engine benchmarks (full statistics) =="
    python -m pytest benchmarks/test_bench_engine.py benchmarks/test_bench_vector.py -x -q
fi

echo
echo "check.sh: all gates passed"
