#!/usr/bin/env bash
# Local CI gate: static audit + tier-1 tests + engine/serving benchmarks.
#
# Usage: scripts/check.sh [--full-bench]
#   --full-bench  additionally run the engine benchmarks with timing
#                 statistics, at FULL gated scale (BENCH_QUICK=0): the
#                 streaming monte_carlo_100M workload runs its real
#                 100M draws plus the 1->4 worker scaling measurement
#                 (slower; default is one quick smoke iteration).
#
# The smoke run executes every engine bench once (--benchmark-disable)
# under BENCH_QUICK=1 (unless the caller pinned it), which scales the
# gated streaming workload ~100x down so this script stays under a
# minute on laptops.  Gates exercised either way: the warm-vs-cold
# speedup assertion, the vector-kernel >= 10x heatmap gate, the
# columnar Monte-Carlo >= 50x gate, the gated 1M-draw Monte-Carlo
# budget, the warm-store gate (warm_cache_s <= 2x cold_vector_s on the
# 10k-cell grid), and the streaming monte_carlo_100M workload's
# time + peak-RSS (< 2 GB process tree) budgets with
# streaming-vs-materialized summary parity — so a perf or memory
# regression in the hot evaluation path fails here before it ships.
# The serving bench drives the async micro-batching front-end (1 vs 8
# concurrent clients, cold vs persisted-warm store) and gates >= 4x
# aggregate throughput for coalesced concurrent clients over windowed
# serialized dispatch plus near-eager latency for the adaptive window.
# The durable-execution gates: the kill-and-resume chaos suite
# (SIGKILLed streaming Monte-Carlo resumed to bit-identical results)
# and the checkpoint_stream workload's <= 5% overhead budget over the
# fault-free stream.
# The fused kernel tier gates: the registry parity sweep runs twice —
# once on the default tier resolution (fused; Numba when importable,
# the buffer-reuse NumPy backend otherwise) and once pinned to the
# plain chain via REPRO_KERNEL=numpy, so both tiers hold the
# rtol<=1e-12 + bit-identical-winners contract with and without the
# compiled backend — and the mc_stream_fused workload must clear its
# >= 4x draws/s gate over the NumPy chain (min_fused_speedup_gate,
# re-checked as an absolute floor by bench_compare.py).
# Both benches emit JSON trajectories (benchmarks/BENCH_engine.json,
# benchmarks/BENCH_serving.json), which this script surfaces and then
# diffs against the committed anchors in benchmarks/baselines/ via
# scripts/bench_compare.py (a >25% regression in a speedup ratio
# fails; a >25% *increase* in a latency p99_ms fails, p50_ms warns;
# machine-relative *_per_s rates warn only; workloads that declare an
# RSS budget fail when they exceed it by >25%; re-anchor intentional
# perf changes with --update-baselines).

set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
# Quick gated workloads by default; see --full-bench below.
export BENCH_QUICK="${BENCH_QUICK:-1}"

echo "== static analysis + registry parity audit =="
# Lint always runs at full scope; the parity sweep's per-column draw
# count auto-scales with BENCH_QUICK (2 values quick, 4 full).  The
# JSON report lands next to the bench trajectories; bench_compare.py
# recognises its audit_version marker and skips it.
python -m repro.cli audit --json benchmarks/BENCH_audit.json

echo
echo "== registry parity sweep, chain tier (REPRO_KERNEL=numpy) =="
# The audit above swept the fused tier (the default REPRO_KERNEL
# resolution); this pass pins the always-available chain fallback so a
# missing/broken Numba can never hide a parity break in either tier.
REPRO_KERNEL=numpy python -m repro.cli audit --parity-only

echo
echo "== tier-1: unit + integration tests =="
python -m pytest tests -x -q \
    --ignore=tests/test_service.py --ignore=tests/test_store.py \
    --ignore=tests/test_serve_chaos.py --ignore=tests/test_checkpoint.py

echo
echo "== async serving + store test suite =="
python -m pytest tests/test_service.py tests/test_store.py -x -q

echo
echo "== serving chaos suite (quick fault-injection scale) =="
# Deterministic fault injection against the socket serving tier:
# worker kills, crash loops, truncated response frames, corrupted
# cache shards.  CHAOS_QUICK scales request counts down; the
# bit-identity and bounded-latency invariants asserted are identical.
CHAOS_QUICK=1 python -m pytest tests/test_serve_chaos.py -x -q

echo
echo "== durable-execution chaos suite (kill-and-resume, quick scale) =="
# Crash-resumable streaming: reducer state round-trips, atomic journal
# persistence, and a streaming Monte-Carlo SIGKILLed mid-run (real
# process, seeded kill schedule) resumed to bit-identical results.
# CHAOS_QUICK scales the SIGKILL study to 1M draws (4M at full scale).
CHAOS_QUICK=1 python -m pytest tests/test_checkpoint.py -x -q

echo
echo "== engine benchmarks (smoke) =="
python -m pytest benchmarks/test_bench_engine.py benchmarks/test_bench_vector.py \
    -x -q --benchmark-disable

echo
echo "== serving benchmarks =="
python -m pytest benchmarks/test_bench_serving.py -x -q --benchmark-disable

echo
echo "== BENCH_engine.json =="
if [[ -f benchmarks/BENCH_engine.json ]]; then
    cat benchmarks/BENCH_engine.json
else
    echo "error: benchmarks/BENCH_engine.json was not emitted" >&2
    exit 1
fi

echo
echo "== BENCH_serving.json =="
if [[ -f benchmarks/BENCH_serving.json ]]; then
    cat benchmarks/BENCH_serving.json
else
    echo "error: benchmarks/BENCH_serving.json was not emitted" >&2
    exit 1
fi

echo
echo "== bench trajectory vs committed baselines =="
python scripts/bench_compare.py

if [[ "${1:-}" == "--full-bench" ]]; then
    echo
    echo "== engine benchmarks (full statistics, full gated scale) =="
    BENCH_QUICK=0 python -m pytest benchmarks/test_bench_engine.py \
        benchmarks/test_bench_vector.py \
        benchmarks/test_bench_serving.py -x -q
fi

echo
echo "check.sh: all gates passed"
