#!/usr/bin/env bash
# Local CI gate: tier-1 tests + evaluation-engine benchmark in smoke mode.
#
# Usage: scripts/check.sh [--full-bench]
#   --full-bench  additionally run the engine benchmark with timing
#                 statistics (slower; default is one smoke iteration).
#
# The smoke run executes every engine bench once (--benchmark-disable),
# including the warm-vs-cold speedup assertion, so a perf regression in
# the hot evaluation path fails here before it ships.

set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: unit + integration tests =="
python -m pytest tests -x -q

echo
echo "== engine benchmark (smoke) =="
python -m pytest benchmarks/test_bench_engine.py -x -q --benchmark-disable

if [[ "${1:-}" == "--full-bench" ]]; then
    echo
    echo "== engine benchmark (full statistics) =="
    python -m pytest benchmarks/test_bench_engine.py -x -q
fi

echo
echo "check.sh: all gates passed"
