#!/usr/bin/env python
"""Quickstart: is an FPGA or an ASIC the greener accelerator for you?

Builds the paper's iso-performance comparison for one domain, prints the
full lifecycle carbon breakdown of both platforms, and reports the
FPGA:ASIC ratio and winner.

Run:
    python examples/quickstart.py
"""

from repro import Scenario, compare_domain
from repro.reporting.chart import bar_chart
from repro.reporting.table import format_table


def main() -> None:
    # A product team plans 6 application generations, each living 2 years,
    # shipping one million units per generation.
    scenario = Scenario(num_apps=6, app_lifetime_years=2.0, volume=1_000_000)

    result = compare_domain("dnn", scenario)

    rows = [
        {"platform": "FPGA (reconfigured)", **result.fpga.footprint.as_dict()},
        {"platform": "ASIC (remade per app)", **result.asic.footprint.as_dict()},
    ]
    print(format_table(rows, precision=0,
                       title="Lifecycle CFP, DNN domain (kg CO2e)"))
    print()
    print(bar_chart(
        ["FPGA", "ASIC"],
        [result.fpga.footprint.total, result.asic.footprint.total],
        title="Total CFP (kg CO2e)",
    ))
    print()
    print(f"FPGA:ASIC ratio = {result.ratio:.3f}")
    print(f"Greener platform: {result.winner.upper()}")
    print(f"Carbon saved by choosing it: {abs(result.fpga_advantage_kg):,.0f} kg CO2e")


if __name__ == "__main__":
    main()
