#!/usr/bin/env python
"""Industry testcases: CFP breakdown of real accelerator-class parts.

Reproduces the paper's Section 4.3 (Figs. 10-11): the two industry FPGAs
(Agilex 7-like, Stratix 10-like) reprogrammed three times over six years,
and the two industry ASICs (Antoum-like, TPU-like) serving one
application for six years — all at one million units — plus a what-if
rerun on a renewables-heavy deployment grid.

Run:
    python examples/industry_testcases.py
"""

from repro import ModelSuite, Scenario
from repro.core.asic_model import AsicLifecycleModel
from repro.core.fpga_model import FpgaLifecycleModel
from repro.devices.catalog import INDUSTRY_ASICS, INDUSTRY_FPGAS
from repro.operation.model import OperationModel
from repro.reporting.chart import bar_chart
from repro.reporting.table import format_table

FPGA_SCENARIO = Scenario(num_apps=3, app_lifetime_years=2.0, volume=1_000_000)
ASIC_SCENARIO = Scenario(num_apps=1, app_lifetime_years=6.0, volume=1_000_000)


def breakdown_rows(footprint) -> list[dict[str, object]]:
    return [
        {"component": name, "kg CO2e": getattr(footprint, name),
         "share": f"{footprint.fraction_of_total(name):.1%}"}
        for name in footprint.COMPONENTS
    ]


def assess(suite: ModelSuite) -> dict[str, object]:
    footprints = {}
    for key, device in INDUSTRY_FPGAS.items():
        footprints[device.name] = FpgaLifecycleModel(device, suite).assess(
            FPGA_SCENARIO
        ).footprint
    for key, device in INDUSTRY_ASICS.items():
        footprints[device.name] = AsicLifecycleModel(device, suite).assess(
            ASIC_SCENARIO
        ).footprint
    return footprints


def main() -> None:
    suite = ModelSuite.default()
    print("=== Industry testcases (Table 3), default green-datacenter grid ===")
    for name, footprint in assess(suite).items():
        print()
        print(format_table(breakdown_rows(footprint), precision=0, title=name))
        print(f"{name} total: {footprint.total:,.0f} kg CO2e "
              f"({footprint.total / 1.0e6:,.1f} kt)")

    # What-if: the same fleets on a wind-dominated grid.  Operational CFP
    # collapses and embodied carbon becomes the story — the regime where
    # the paper's embodied-focused modelling matters most.
    wind = suite.with_overrides(operation=OperationModel(energy_source="wind"))
    print("\n=== Same fleets on a wind-dominated grid ===")
    rows = []
    for name, footprint in assess(wind).items():
        rows.append(
            {
                "testcase": name,
                "total kg": footprint.total,
                "operational share": f"{footprint.operational / footprint.total:.0%}",
                "embodied share": f"{footprint.embodied / footprint.total:.0%}",
            }
        )
    print(format_table(rows, precision=0))
    print()
    footprints = assess(wind)
    print(bar_chart(
        list(footprints),
        [fp.embodied for fp in footprints.values()],
        title="Embodied CFP on a clean grid (kg CO2e)",
    ))


if __name__ == "__main__":
    main()
