#!/usr/bin/env python
"""Scenario study: planning a 10-year ML accelerator roadmap.

An ML infrastructure team expects model architectures to turn over every
18 months or so.  Should the fleet be built on reconfigurable FPGAs or on
per-generation ASICs?  This example sweeps the workload-churn rate and
fleet size, locates the A2F/F2A sustainability boundaries, and prints a
recommendation table — the paper's Figs. 4-6 methodology applied to a
concrete planning question.

Run:
    python examples/accelerator_roadmap.py
"""

import numpy as np

from repro.analysis.crossover import first_crossover
from repro.analysis.sweep import sweep
from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.reporting.chart import line_chart
from repro.reporting.table import format_table

ROADMAP_YEARS = 10.0
FLEET_SIZES = (50_000, 250_000, 1_000_000, 4_000_000)


def churn_study(comparator: PlatformComparator, volume: int) -> dict[str, object]:
    """How fast must workloads churn for the FPGA to win at this volume?"""
    lifetimes = [round(t, 2) for t in np.arange(0.5, 5.01, 0.25)]
    rows = []
    for lifetime in lifetimes:
        num_apps = max(1, round(ROADMAP_YEARS / lifetime))
        scenario = Scenario(
            num_apps=num_apps, app_lifetime_years=lifetime, volume=volume
        )
        comparison = comparator.compare(scenario)
        rows.append(
            {"lifetime": lifetime, "num_apps": num_apps, "ratio": comparison.ratio}
        )
    # The slowest churn (longest lifetime) at which the FPGA still wins.
    winning = [r for r in rows if r["ratio"] < 1.0]
    threshold = max((r["lifetime"] for r in winning), default=None)
    return {"rows": rows, "max_winning_lifetime": threshold}


def main() -> None:
    comparator = PlatformComparator.for_domain("dnn")

    print(f"=== {ROADMAP_YEARS:.0f}-year DNN accelerator roadmap ===\n")

    summary = []
    for volume in FLEET_SIZES:
        study = churn_study(comparator, volume)
        threshold = study["max_winning_lifetime"]
        summary.append(
            {
                "fleet size": f"{volume:,}",
                "FPGA wins if app lifetime <=": (
                    f"{threshold:.2f} y" if threshold else "never"
                ),
            }
        )
    print(format_table(summary, title="Workload-churn threshold per fleet size"))

    # Detail for the mid-size fleet: ratio vs lifetime.
    study = churn_study(comparator, 1_000_000)
    rows = study["rows"]
    print()
    print(line_chart(
        [r["lifetime"] for r in rows],
        {"FPGA:ASIC ratio": [r["ratio"] for r in rows]},
        title="1M-unit fleet: ratio vs application lifetime (1.0 = parity)",
        y_label="app lifetime (y)",
    ))

    # Classic volume crossover at 2-year churn (the paper's Fig. 6 view).
    base = Scenario(num_apps=5, app_lifetime_years=2.0, volume=1)
    volumes = [int(v) for v in np.geomspace(1e3, 1e7, 25)]
    result = sweep(comparator, base, "volume", volumes)
    f2a = first_crossover(result.values, result.fpga_totals, result.asic_totals, "F2A")
    print()
    if f2a is not None:
        print(f"At 2-year churn, FPGAs stay greener up to ~{f2a.x:,.0f} units "
              "per application (paper: ~2M for DNN).")
    else:
        print("No volume crossover found in 1e3..1e7 units.")


if __name__ == "__main__":
    main()
