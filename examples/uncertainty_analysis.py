#!/usr/bin/env python
"""Uncertainty study: how robust is the FPGA-vs-ASIC verdict?

The paper's Section 5 stresses that inputs (grid intensities, duty
cycles, project durations, recycling rates) are coarse.  This example
propagates the Table 1 ranges through the model with Monte Carlo, prints
the distribution of the FPGA:ASIC ratio, and ranks the drivers with a
tornado analysis.

Run:
    python examples/uncertainty_analysis.py
"""

import dataclasses

from repro.analysis.montecarlo import ParameterDistribution, monte_carlo
from repro.analysis.sensitivity import tornado
from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.design.model import DesignModel
from repro.eol.model import EolModel
from repro.manufacturing.act import ManufacturingModel
from repro.operation.energy import OperatingProfile
from repro.operation.model import OperationModel
from repro.reporting.chart import bar_chart
from repro.reporting.table import format_table

SCENARIO = Scenario(num_apps=5, app_lifetime_years=2.0, volume=1_000_000)


def _with_suite(comparator, **overrides):
    return dataclasses.replace(
        comparator, suite=comparator.suite.with_overrides(**overrides)
    )


def set_use_intensity(comparator, value):
    profile = comparator.suite.operation.profile
    return _with_suite(
        comparator, operation=OperationModel(energy_source=value, profile=profile)
    )


def set_duty_cycle(comparator, value):
    operation = comparator.suite.operation
    return _with_suite(
        comparator,
        operation=OperationModel(
            energy_source=operation.energy_source,
            profile=OperatingProfile(duty_cycle=value),
        ),
    )


def set_recycled_materials(comparator, value):
    return _with_suite(
        comparator, manufacturing=ManufacturingModel(recycled_fraction=value)
    )


def set_eol_recycling(comparator, value):
    return _with_suite(comparator, eol=EolModel(recycled_fraction=value))


def set_design_intensity(comparator, value):
    return _with_suite(comparator, design=DesignModel(energy_source=value))


DISTRIBUTIONS = [
    ParameterDistribution("use grid intensity (g/kWh)", 30.0, 700.0,
                          set_use_intensity, kind="loguniform"),
    ParameterDistribution("duty cycle", 0.05, 0.95, set_duty_cycle),
    ParameterDistribution("recycled material fraction (rho)", 0.0, 1.0,
                          set_recycled_materials),
    ParameterDistribution("EOL recycling fraction (delta)", 0.0, 1.0,
                          set_eol_recycling),
    ParameterDistribution("design grid intensity (g/kWh)", 30.0, 700.0,
                          set_design_intensity, kind="loguniform"),
]


def main() -> None:
    comparator = PlatformComparator.for_domain("dnn")
    print(f"Baseline FPGA:ASIC ratio: {comparator.ratio(SCENARIO):.3f}\n")

    result = monte_carlo(comparator, SCENARIO, DISTRIBUTIONS, n_samples=400)
    summary = result.summary()
    print(format_table([summary], title="Monte Carlo over Table 1 ranges"))
    print()
    quantiles = result.quantiles((0.05, 0.25, 0.5, 0.75, 0.95))
    print(format_table(
        [{"quantile": f"p{int(q * 100):02d}", "ratio": v} for q, v in quantiles.items()],
        title="Ratio distribution",
    ))
    print(f"\nP(FPGA greener) = {result.fpga_win_probability:.1%}\n")

    sensitivity = tornado(comparator, SCENARIO, DISTRIBUTIONS)
    print(format_table(sensitivity.rows(), title="Tornado (one-at-a-time) analysis"))
    print()
    entries = sensitivity.sorted_by_span()
    print(bar_chart(
        [e.name for e in entries],
        [e.span for e in entries],
        title="Ratio span per knob (tornado widths)",
    ))


if __name__ == "__main__":
    main()
