#!/usr/bin/env python
"""Bring your own device: assessing a custom FPGA/ASIC pair.

Shows the full public-API surface beyond the built-in catalog: defining
devices at a chosen node, sizing multi-FPGA deployments via equivalent
gates (N_FPGA), customising the model suite (fab location, recycled
sourcing, EOL strategy), and reading per-chip manufacturing diagnostics.

Run:
    python examples/custom_device.py
"""

from repro import (
    AsicDevice,
    AsicLifecycleModel,
    FpgaDevice,
    FpgaLifecycleModel,
    ModelSuite,
    Scenario,
)
from repro.eol.model import EolModel
from repro.manufacturing.act import FabProfile, ManufacturingModel
from repro.reporting.table import format_table


def main() -> None:
    # A 5 nm datacenter video-transcode ASIC, and a large 7 nm FPGA whose
    # fabric fits 60 Mgates of ASIC-equivalent logic.
    asic = AsicDevice(
        name="transcode-asic", area_mm2=210.0, node_name="5nm", peak_power_w=45.0
    )
    fpga = FpgaDevice(
        name="big-fpga", area_mm2=620.0, node_name="7nm", peak_power_w=95.0,
        capacity_mgates=60.0,
    )

    # Custom suite: fab in a hydro-powered region, 40% recycled material
    # sourcing, aggressive 80% end-of-life recycling.
    suite = ModelSuite.default().with_overrides(
        manufacturing=ManufacturingModel(
            fab=FabProfile(energy_source="iceland"),
            recycled_fraction=0.4,
        ),
        eol=EolModel(recycled_fraction=0.8),
    )

    # The application needs 100 Mgates: it will not fit in one FPGA.
    scenario = Scenario(
        num_apps=4,
        app_lifetime_years=1.5,
        volume=200_000,
        app_size_mgates=100.0,
    )

    fpga_model = FpgaLifecycleModel(fpga, suite)
    asic_model = AsicLifecycleModel(asic, suite)
    fpga_result = fpga_model.assess(scenario)
    asic_result = asic_model.assess(scenario)

    print(f"N_FPGA per deployed unit: {fpga_result.n_fpga_per_unit} "
          f"(app 100 Mgates / capacity {fpga.logic_capacity_mgates:.0f} Mgates)\n")

    rows = [
        {"platform": fpga.name, **fpga_result.footprint.as_dict()},
        {"platform": asic.name, **asic_result.footprint.as_dict()},
    ]
    print(format_table(rows, precision=0, title="Lifecycle CFP (kg CO2e)"))

    ratio = fpga_result.footprint.total / asic_result.footprint.total
    print(f"\nFPGA:ASIC ratio = {ratio:.3f} -> "
          f"{'FPGA' if ratio < 1 else 'ASIC'} is greener here")

    # Per-chip manufacturing diagnostics (yield, wafer share, components).
    mfg = suite.manufacturing.assess_die(fpga.area_mm2, fpga.node)
    print()
    print(format_table([mfg.as_dict()], title=f"{fpga.name} per-die manufacturing"))


if __name__ == "__main__":
    main()
