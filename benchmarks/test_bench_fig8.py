"""Bench: regenerate Fig. 8 (pairwise-sweep heatmaps, DNN)."""

import numpy as np
import pytest

from repro.experiments import fig8_heatmaps


@pytest.mark.parametrize("held", [p[0] for p in fig8_heatmaps.PANELS])
def test_bench_fig8(benchmark, suite, held):
    result = benchmark(fig8_heatmaps.panel, held, suite)
    assert result.ratios.shape == (len(result.y_values), len(result.x_values))
    assert np.all(result.ratios > 0.0)
    # The grid must contain both regimes (a boundary exists on every panel).
    mask = result.fpga_sustainable_mask()
    assert mask.any() and not mask.all()
    assert result.boundary_cells()


def test_bench_fig8_structure(benchmark, suite):
    """Paper: ratio falls with N_app, rises with T_i and N_vol."""
    result = benchmark(fig8_heatmaps.panel, "volume", suite)  # x=num_apps, y=lifetime
    ratios = result.ratios
    # Along increasing N_app (columns), ratio is non-increasing.
    assert np.all(np.diff(ratios, axis=1) <= 1e-9)
    # Along increasing lifetime (rows), ratio is non-decreasing — except at
    # N_app = 1, where the FPGA's embodied dominance (ratio > the 3x power
    # ratio) makes the ratio *fall* toward 3 as operation accumulates.
    assert np.all(np.diff(ratios[:, 1:], axis=0) >= -1e-9)
