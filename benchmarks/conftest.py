"""Shared fixtures for the benchmark harness.

Each bench regenerates one paper artifact via pytest-benchmark, asserting
the paper's qualitative shape on the produced data so a calibration
regression fails the bench rather than silently shifting numbers.
"""

from __future__ import annotations

import pytest

from repro.core.suite import ModelSuite


@pytest.fixture(scope="session")
def suite() -> ModelSuite:
    """Calibrated default suite shared by all benches."""
    return ModelSuite.default()
