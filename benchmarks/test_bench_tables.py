"""Bench: regenerate Tables 1-3 and verify them against the paper."""

from repro.experiments import tables


def test_bench_table1(benchmark):
    rows = benchmark(tables.table1_rows)
    assert len(rows) == 10  # every Table 1 parameter
    assert all(row["in_range"] for row in rows)


def test_bench_table2(benchmark):
    rows = benchmark(tables.table2_rows)
    by_domain = {row["domain"]: row for row in rows}
    assert by_domain["dnn"]["area_ratio"] == 4.0
    assert by_domain["dnn"]["power_ratio"] == 3.0
    assert by_domain["imgproc"]["area_ratio"] == 7.42
    assert by_domain["imgproc"]["power_ratio"] == 1.25
    assert by_domain["crypto"]["area_ratio"] == 1.0
    assert by_domain["crypto"]["power_ratio"] == 1.0


def test_bench_table3(benchmark):
    rows = benchmark(tables.table3_rows)
    by_name = {row["testcase"]: row for row in rows}
    assert by_name["IndustryASIC1"]["area_mm2"] == 340.0
    assert by_name["IndustryASIC2"]["power_w"] == 192.0
    assert by_name["IndustryFPGA1"]["node"] == "14nm"
    assert by_name["IndustryFPGA2"]["area_mm2"] == 550.0
