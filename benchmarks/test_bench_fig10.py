"""Bench: regenerate Fig. 10 (industry FPGA component breakdown)."""

from repro.experiments import fig10_industry_fpga


def test_bench_fig10(benchmark, suite):
    footprints = benchmark(fig10_industry_fpga.assess_all, suite)
    assert set(footprints) == {"industry_fpga1", "industry_fpga2"}
    for key, fp in footprints.items():
        # Paper ordering: operational > manufacturing > design.
        assert fp.operational > fp.manufacturing > fp.design, key
        # App-dev minimal even after three reconfigurations.
        assert fp.appdev < 0.01 * fp.total, key
        # Design a substantial minority of embodied (paper: ~15%).
        assert 0.05 < fp.design / fp.embodied < 0.50, key
        # EOL a very small contributor.
        assert abs(fp.eol) < 0.05 * fp.total, key
