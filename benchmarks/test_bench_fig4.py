"""Bench: regenerate Fig. 4 (CFP vs N_app, A2F crossovers per domain)."""

import pytest

from repro.experiments import fig4_num_apps


@pytest.mark.parametrize("domain", ["dnn", "imgproc", "crypto"])
def test_bench_fig4(benchmark, suite, domain):
    result, crossings = benchmark(fig4_num_apps.domain_sweep, domain, suite)
    assert len(result.values) == len(fig4_num_apps.NUM_APPS_VALUES)
    a2f = next((c for c in crossings if c.kind == "A2F"), None)
    paper = fig4_num_apps.PAPER_A2F[domain]
    assert a2f is not None, f"{domain}: no A2F crossover found"
    # Same rough location as the paper (factor-3 band; crypto crosses at 1).
    if domain == "crypto":
        assert a2f.x <= 2.0
    else:
        assert paper / 3.0 <= a2f.x <= paper * 3.0
