"""Bench: regenerate Fig. 7 (DNN component breakdown panels)."""

import pytest

from repro.experiments import fig7_breakdown


@pytest.mark.parametrize("axis,values", fig7_breakdown.PANELS,
                         ids=[p[0] for p in fig7_breakdown.PANELS])
def test_bench_fig7(benchmark, suite, axis, values):
    rows = benchmark(fig7_breakdown.panel_breakdowns, axis, values, suite)
    fpga, asic = rows["fpga"], rows["asic"]
    assert len(fpga) == len(values) == len(asic)
    if axis == "num_apps":
        # Paper: FPGA EC flat, ASIC EC grows with applications.
        assert fpga[0]["embodied"] == pytest.approx(fpga[-1]["embodied"])
        assert asic[-1]["embodied"] > asic[0]["embodied"] * 1.5
        assert fpga[-1]["operational"] > fpga[0]["operational"]
    if axis == "lifetime":
        # Paper: EC flat in lifetime; FPGA OC grows faster than ASIC OC.
        assert fpga[0]["embodied"] == pytest.approx(fpga[-1]["embodied"])
        fpga_oc_growth = fpga[-1]["operational"] - fpga[0]["operational"]
        asic_oc_growth = asic[-1]["operational"] - asic[0]["operational"]
        assert fpga_oc_growth > asic_oc_growth
    if axis == "volume":
        # Paper: at low volume EC dominates; ASIC EC >> FPGA EC per app.
        assert asic[0]["embodied"] > asic[0]["operational"]
        assert asic[0]["embodied"] > fpga[0]["embodied"]
