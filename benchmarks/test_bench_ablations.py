"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation perturbs one modelling decision and checks the documented
effect on the headline DNN comparison, quantifying how load-bearing the
choice is.
"""

import pytest

from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.design.model import DesignModel
from repro.manufacturing.act import ManufacturingModel
from repro.operation.model import OperationModel

BASELINE = Scenario(num_apps=5, app_lifetime_years=2.0, volume=1_000_000)


def _ratio_with(suite):
    return PlatformComparator.for_domain("dnn", suite).ratio(BASELINE)


@pytest.mark.parametrize("yield_model", ["murphy", "poisson", "seeds"])
def test_bench_ablation_yield_model(benchmark, yield_model):
    """Yield-model choice: Poisson punishes the 4x-area FPGA hardest."""
    suite = ModelSuite.default().with_overrides(
        manufacturing=ManufacturingModel(yield_model=yield_model)
    )
    ratio = benchmark(_ratio_with, suite)
    assert ratio > 0.0
    seeds = _ratio_with(
        ModelSuite.default().with_overrides(
            manufacturing=ManufacturingModel(yield_model="seeds")
        )
    )
    poisson = _ratio_with(
        ModelSuite.default().with_overrides(
            manufacturing=ManufacturingModel(yield_model="poisson")
        )
    )
    assert poisson >= seeds  # clustered defects favour big FPGA dies


@pytest.mark.parametrize("beta", [0.0, 0.35, 1.0])
def test_bench_ablation_design_beta(benchmark, beta):
    """Gate-scaling exponent: beta=1 (the paper's literal form) makes the
    FPGA's larger silicon carry proportionally larger design CFP."""
    suite = ModelSuite.default().with_overrides(
        design=DesignModel(gate_scaling_beta=beta)
    )
    ratio = benchmark(_ratio_with, suite)
    assert ratio > 0.0
    flat = _ratio_with(
        ModelSuite.default().with_overrides(design=DesignModel(gate_scaling_beta=0.0))
    )
    proportional = _ratio_with(
        ModelSuite.default().with_overrides(design=DesignModel(gate_scaling_beta=1.0))
    )
    assert proportional > flat


@pytest.mark.parametrize("rho", [0.0, 0.5, 1.0])
def test_bench_ablation_recycled_materials(benchmark, rho):
    """Eq. (5) recycled sourcing: helps the larger-silicon FPGA more."""
    suite = ModelSuite.default().with_overrides(
        manufacturing=ManufacturingModel(recycled_fraction=rho)
    )
    ratio = benchmark(_ratio_with, suite)
    assert ratio > 0.0
    base = _ratio_with(ModelSuite.default())
    full = _ratio_with(
        ModelSuite.default().with_overrides(
            manufacturing=ManufacturingModel(recycled_fraction=1.0)
        )
    )
    assert full <= base + 1e-9


@pytest.mark.parametrize("source", ["wind", "green_datacenter", "coal"])
def test_bench_ablation_grid_intensity(benchmark, source):
    """Use-phase grid: dirty grids penalise the 3x-power FPGA."""
    suite = ModelSuite.default().with_overrides(
        operation=OperationModel(energy_source=source)
    )
    ratio = benchmark(_ratio_with, suite)
    assert ratio > 0.0
    clean = _ratio_with(
        ModelSuite.default().with_overrides(operation=OperationModel(energy_source="wind"))
    )
    dirty = _ratio_with(
        ModelSuite.default().with_overrides(operation=OperationModel(energy_source="coal"))
    )
    assert dirty > clean
