"""Bench: the shared evaluation engine on its two headline workloads.

Demonstrates the engine's value on (a) a dense heatmap grid, where a
warm cache serves the whole grid without recomputation, and (b) a
2000-draw Monte-Carlo run batched through ``evaluate_pairs``.  Each
bench asserts the engine results stay identical to the direct per-point
loop, so the speedup can never come at the cost of parity.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np
import pytest

from repro.analysis.heatmap import pairwise_heatmap
from repro.analysis.montecarlo import ParameterDistribution, monte_carlo
from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.engine import EvaluationEngine
from repro.operation.model import OperationModel

BASELINE = Scenario(num_apps=5, app_lifetime_years=2.0, volume=1_000_000)

#: Dense Fig. 8-style grid: 30 x 30 = 900 cells.
NUM_APPS_VALUES = tuple(range(1, 31))
LIFETIME_VALUES = tuple(float(t) for t in np.linspace(0.5, 3.0, 30))

N_MC_DRAWS = 2_000


def _set_use_intensity(comparator, value):
    suite = comparator.suite.with_overrides(
        operation=OperationModel(
            energy_source=value, profile=comparator.suite.operation.profile
        )
    )
    return dataclasses.replace(comparator, suite=suite)


@pytest.fixture(scope="module")
def comparator(suite):
    return PlatformComparator.for_domain("dnn", suite)


def _dense_heatmap(comparator, engine):
    return pairwise_heatmap(
        comparator, BASELINE,
        "num_apps", NUM_APPS_VALUES,
        "lifetime", LIFETIME_VALUES,
        engine=engine,
    )


def test_bench_engine_heatmap_warm_cache(benchmark, comparator):
    """Dense 900-cell grid served from a warm engine cache."""
    engine = EvaluationEngine(cache_size=8192)
    cold = _dense_heatmap(comparator, engine)  # populate

    result = benchmark(_dense_heatmap, comparator, engine)

    np.testing.assert_array_equal(result.ratios, cold.ratios)
    stats = engine.cache_stats
    assert stats.misses == len(NUM_APPS_VALUES) * len(LIFETIME_VALUES)
    assert stats.hits >= stats.misses  # every bench round was cache-served


def test_bench_engine_heatmap_cold(benchmark, comparator):
    """The same grid computed from scratch — the baseline the cache beats."""

    def cold_run():
        return _dense_heatmap(comparator, EvaluationEngine(cache_size=0))

    result = benchmark(cold_run)
    assert result.ratios.shape == (len(LIFETIME_VALUES), len(NUM_APPS_VALUES))
    assert np.all(np.isfinite(result.ratios)) and np.all(result.ratios > 0.0)


def test_bench_engine_monte_carlo_2k(benchmark, comparator):
    """2000-draw Monte-Carlo batched through the engine."""
    dists = [
        ParameterDistribution("use_intensity", 30.0, 700.0, _set_use_intensity,
                              kind="loguniform"),
    ]
    engine = EvaluationEngine(cache_size=4096)

    result = benchmark(
        monte_carlo, comparator, BASELINE, dists,
        n_samples=N_MC_DRAWS, seed=2024, engine=engine,
    )

    assert result.n_samples == N_MC_DRAWS
    assert 0.0 <= result.fpga_win_probability <= 1.0
    assert result.n_non_finite == 0
    # Determinism through the cache: a fresh engine reproduces the draws.
    check = monte_carlo(comparator, BASELINE, dists, n_samples=N_MC_DRAWS,
                        seed=2024, engine=EvaluationEngine())
    np.testing.assert_array_equal(result.ratios, check.ratios)


def test_engine_warm_cache_speedup(comparator):
    """A warm cache must beat scalar recomputation of the grid outright.

    Not a pytest-benchmark case (no statistics needed): cache reads are
    orders of magnitude cheaper than 900 lifecycle assessments, so a
    conservative 2x bound keeps the assertion robust on noisy machines.
    The cold baseline disables the vector kernel — scalar recomputation
    is the work a warm cache actually avoids (the kernel has its own
    cold-vs-scalar gate in ``test_bench_vector.py``).
    """
    engine = EvaluationEngine(cache_size=8192)

    t0 = time.perf_counter()
    _dense_heatmap(comparator, EvaluationEngine(cache_size=0, vectorize=False))
    cold_s = time.perf_counter() - t0

    cold = _dense_heatmap(comparator, engine)  # populate the cache
    t0 = time.perf_counter()
    warm = _dense_heatmap(comparator, engine)
    warm_s = time.perf_counter() - t0

    np.testing.assert_array_equal(warm.ratios, cold.ratios)
    assert warm_s < cold_s / 2.0, (
        f"warm cache {warm_s:.4f}s not faster than cold compute {cold_s:.4f}s"
    )
