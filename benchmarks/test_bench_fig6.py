"""Bench: regenerate Fig. 6 (CFP vs application volume)."""

import pytest

from repro.experiments import fig6_volume


@pytest.mark.parametrize("domain", ["dnn", "imgproc", "crypto"])
def test_bench_fig6(benchmark, suite, domain):
    result, crossings = benchmark(fig6_volume.domain_sweep, domain, suite)
    paper = fig6_volume.PAPER_F2A[domain]
    f2a = next((c for c in crossings if c.kind == "F2A"), None)
    if paper is None:
        assert all(r < 1.0 for r in result.ratios), "crypto: FPGA at any volume"
    else:
        assert f2a is not None, f"{domain}: F2A crossover expected"
        assert paper / 3.0 <= f2a.x <= paper * 3.0
    # Totals grow monotonically with volume for both platforms.
    assert all(b > a for a, b in zip(result.fpga_totals, result.fpga_totals[1:]))
    assert all(b > a for a, b in zip(result.asic_totals, result.asic_totals[1:]))
