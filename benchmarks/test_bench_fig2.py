"""Bench: regenerate Fig. 2 (1 vs 10 applications, DNN)."""

from repro.experiments import fig2_motivation


def test_bench_fig2(benchmark, suite):
    one, ten = benchmark(fig2_motivation.ratios, suite)
    # Paper shape: FPGA worse alone, ~25% better across ten applications.
    assert one > 1.0
    assert ten < 1.0
    assert 0.05 < 1.0 - ten < 0.60
