"""Bench: the vector kernel against the scalar per-point path.

Measures the headline workloads — a cold 100x100 heatmap grid, a
10k-draw Monte-Carlo run, a gated 1M-draw Monte-Carlo run and the gated
*streaming* ``monte_carlo_100M`` workload — against the scalar object
path and the warm store, and emits ``benchmarks/BENCH_engine.json`` so
the perf trajectory is tracked from run to run (``scripts/check.sh``
surfaces it and ``scripts/bench_compare.py`` diffs it against the
committed baseline, including the per-workload peak-RSS budgets).

Gates:

* the vector kernel must beat the scalar path by >= 10x on the heatmap
  grid;
* the *columnar* Monte-Carlo pipeline (draws sampled straight into
  parameter columns, no per-draw comparator objects) must beat the
  scalar path by >= 50x;
* the warm store-served grid must cost at most 2x the cold vector run
  (the warm-path inversion the sharded store exists to fix);
* the 1M-draw Monte-Carlo must complete within its wall-clock budget;
* the streaming ``monte_carlo_100M`` workload must finish within its
  time budget **under its peak-RSS budget (< 2 GB for the whole
  process tree)**, its summary must match the materialized 1M-draw
  path (exact win-probability/counters, ``rtol <= 1e-12`` moments,
  sketch-tolerance quantiles), and — on >= 4-core machines running the
  full scale — 4 streaming workers must beat 1 by >= 2x.

``BENCH_QUICK`` scales the gated workloads for laptop/tier-1 runs:
unset or ``1`` runs the streaming workload at 1M draws (~100x down, so
``scripts/check.sh`` stays under a minute); ``BENCH_QUICK=0`` runs the
full 100M-draw workload and the 1->4 worker scaling measurement
(``scripts/check.sh --full-bench``).  The emitted JSON records the
actual ``draws`` and the ``quick`` flag.

Every timed path must agree with the scalar reference to
``rtol=1e-12`` (bit-identically where asserted), so speedups can never
come at the cost of parity.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.heatmap import pairwise_heatmap, pairwise_heatmap_batch
from repro.analysis.montecarlo import (
    ParameterDistribution,
    monte_carlo,
    monte_carlo_batch,
    monte_carlo_stream,
)
from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.engine import EvaluationEngine, PeakRssSampler
from repro.engine.vector import params as pcols
from repro.experiments.ext_uncertainty import distributions as table1_distributions
from repro.operation.model import OperationModel
from repro.units import g_per_kwh_to_kg_per_kwh

BENCH_JSON = Path(__file__).parent / "BENCH_engine.json"

#: BENCH_QUICK=0 runs gated workloads at full scale; anything else (or
#: unset) scales them ~100x down so tier-1/laptop runs stay fast.
BENCH_QUICK = os.environ.get("BENCH_QUICK", "1") != "0"

BASELINE = Scenario(num_apps=5, app_lifetime_years=2.0, volume=1_000_000)

#: Dense 100 x 100 = 10k-cell grid over the Fig. 8 axes.
NUM_APPS_VALUES = tuple(range(1, 101))
LIFETIME_VALUES = tuple(float(t) for t in np.linspace(0.5, 3.0, 100))

N_MC_DRAWS = 10_000
N_MC_1M_DRAWS = 1_000_000

#: The streaming workload: 100M draws at full scale, ~100x down under
#: BENCH_QUICK (the default for tier-1 and plain check.sh runs).
N_MC_STREAM_DRAWS = N_MC_1M_DRAWS if BENCH_QUICK else 100_000_000

#: The speedup floor the vector kernel must clear on the heatmap grid.
MIN_SPEEDUP = 10.0

#: The speedup floor of the columnar Monte-Carlo pipeline over the
#: scalar object path.  The per-row object path (one perturbed
#: comparator + extraction per draw) topped out at ~11x; sampling
#: straight into parameter columns measures in the hundreds.
MIN_MC_SPEEDUP = 50.0

#: Wall-clock budget of the 1M-draw Table 1 Monte-Carlo (all five
#: knobs perturbed per draw).  Measures ~2 s on one container core;
#: the budget keeps the gate robust on slow shared machines.
MAX_MC_1M_S = 30.0

#: Wall-clock budget of the streaming Monte-Carlo workload.  Full
#: scale covers a worst-case sequential 100M run (~450k draws/s on one
#: core) with margin; quick scale covers spawn-pool startup plus a 1M
#: stream on a slow laptop.
MAX_MC_STREAM_S = 60.0 if BENCH_QUICK else 900.0

#: Peak process-tree RSS budget of the streaming workload: the whole
#: point of the reduction pipeline is that 100M draws fit in the same
#: bounded footprint as 100k.  scripts/bench_compare.py re-checks the
#: emitted peak against this budget (+25% headroom) on every run.
MC_STREAM_RSS_BUDGET_MB = 2048.0

#: Streaming workers for the gated workload (multi-core by default,
#: capped at the 4 workers the scaling gate talks about).
STREAM_WORKERS = min(4, os.cpu_count() or 1)

#: 4 workers must beat 1 by this factor on the full-scale workload
#: (only measurable with >= 4 physical cores; recorded, and gated,
#: when the measurement ran).
MIN_STREAM_SCALING = 2.0

#: Draws in the gated checkpoint-overhead workload, and the ceiling on
#: how much slower the checkpointed stream may be than the fault-free
#: one at the default flush cadence.  The cost model is per-flush
#: (state serialize + fsync + rename, ~12 ms), not per-row, so the
#: fraction only shrinks with scale; the quick size is picked so the
#: true overhead (~1%) sits well under the gate even with a few percent
#: of wall-clock measurement noise on a busy machine.
N_CKPT_DRAWS = 3_000_000 if BENCH_QUICK else 10_000_000
MAX_CHECKPOINT_OVERHEAD = 0.05

#: Draws in the gated fused-tier workload, and the speedup floor the
#: fused single-pass kernel must clear over the NumPy chain on the same
#: streaming run.  Both arms are timed back-to-back in-run (machine
#: speed cancels out of the ratio); measures ~6x on one container core
#: with the buffer-reuse NumPy backend, so the 4x gate keeps margin for
#: shared-machine noise.
N_FUSED_DRAWS = 1_000_000 if BENCH_QUICK else 10_000_000
MIN_FUSED_SPEEDUP = 4.0

#: The warm-path gate: serving the 10k-cell grid from the sharded store
#: must cost at most twice a cold vector run.  Before the array-backed
#: store this was inverted ~35x (0.65 s warm vs 0.018 s cold) — per-cell
#: ComparisonResult materialisation and dict lookups dominating.
MAX_WARM_OVER_COLD = 2.0


def _set_use_intensity(comparator, value):
    suite = comparator.suite.with_overrides(
        operation=OperationModel(
            energy_source=value, profile=comparator.suite.operation.profile
        )
    )
    return dataclasses.replace(comparator, suite=suite)


def _use_intensity_cols(params, values):
    params.set_col(pcols.OP_CI, g_per_kwh_to_kg_per_kwh(values))


@pytest.fixture(scope="module")
def comparator(suite):
    return PlatformComparator.for_domain("dnn", suite)


def test_vector_speedup_and_emit_bench_json(comparator):
    """Cold scalar vs cold vector vs warm cache; emit BENCH_engine.json."""
    # Warm both code paths at miniature size first so one-time costs
    # (NumPy ufunc dispatch, import machinery) stay out of the timings.
    # No *results* are reused: every timed run recomputes its batch.
    dists = [
        ParameterDistribution("use_intensity", 30.0, 700.0, _set_use_intensity,
                              kind="loguniform",
                              apply_column=_use_intensity_cols),
    ]
    for warm_engine in (EvaluationEngine(cache_size=0, vectorize=False),
                        EvaluationEngine()):
        pairwise_heatmap_batch(
            comparator, BASELINE, "num_apps", (1, 2), "lifetime", (1.0, 2.0),
            engine=warm_engine,
        )
        monte_carlo_batch(comparator, BASELINE, dists, n_samples=32,
                          engine=warm_engine)

    # ------------------------------------------------------------------
    # Workload A: cold 100x100 heatmap grid.
    # ------------------------------------------------------------------
    scalar_engine = EvaluationEngine(cache_size=16384, vectorize=False)
    t0 = time.perf_counter()
    scalar_grid = pairwise_heatmap(
        comparator, BASELINE,
        "num_apps", NUM_APPS_VALUES, "lifetime", LIFETIME_VALUES,
        engine=scalar_engine,
    )
    heatmap_cold_scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    object_warm_grid = pairwise_heatmap(
        comparator, BASELINE,
        "num_apps", NUM_APPS_VALUES, "lifetime", LIFETIME_VALUES,
        engine=scalar_engine,
    )
    heatmap_warm_objects_s = time.perf_counter() - t0

    vector_engine = EvaluationEngine(cache_size=16384)
    t0 = time.perf_counter()
    vector_grid = pairwise_heatmap_batch(
        comparator, BASELINE,
        "num_apps", NUM_APPS_VALUES, "lifetime", LIFETIME_VALUES,
        engine=vector_engine,
    )
    heatmap_cold_vector_s = time.perf_counter() - t0

    # The same grid again on the now-warm engine: answered entirely by a
    # vectorised gather from the sharded store (no kernel work, no
    # per-cell objects).  This is the path the warm-cache gate guards.
    t0 = time.perf_counter()
    warm_grid = pairwise_heatmap_batch(
        comparator, BASELINE,
        "num_apps", NUM_APPS_VALUES, "lifetime", LIFETIME_VALUES,
        engine=vector_engine,
    )
    heatmap_warm_s = time.perf_counter() - t0
    assert vector_engine.rows_computed == len(NUM_APPS_VALUES) * len(LIFETIME_VALUES)

    np.testing.assert_array_equal(object_warm_grid.ratios, scalar_grid.ratios)
    np.testing.assert_array_equal(warm_grid.ratios, vector_grid.ratios)
    np.testing.assert_allclose(
        vector_grid.ratios, scalar_grid.ratios, rtol=1.0e-12, atol=0.0
    )
    # Drop the 10k cached ComparisonResult graphs before timing the next
    # workload: keeping them alive inflates the cyclic-GC pauses taken
    # during the Monte-Carlo measurement by ~60%.
    scalar_engine.clear_cache()

    # ------------------------------------------------------------------
    # Workload B: 10k-draw Monte-Carlo, columnar parameter pipeline.
    # ------------------------------------------------------------------
    t0 = time.perf_counter()
    scalar_mc = monte_carlo(
        comparator, BASELINE, dists, n_samples=N_MC_DRAWS, seed=2024,
        engine=EvaluationEngine(cache_size=0, vectorize=False),
    )
    mc_cold_scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    vector_mc = monte_carlo_batch(
        comparator, BASELINE, dists, n_samples=N_MC_DRAWS, seed=2024,
        engine=EvaluationEngine(),
    )
    mc_cold_vector_s = time.perf_counter() - t0

    assert vector_mc.samples == scalar_mc.samples  # identical RNG draws
    np.testing.assert_allclose(
        vector_mc.ratios, scalar_mc.ratios, rtol=1.0e-12, atol=0.0
    )

    # ------------------------------------------------------------------
    # Workload C: 1M-draw Monte-Carlo over all five Table 1 knobs.
    # Chunked column slices; no per-draw objects anywhere.
    # ------------------------------------------------------------------
    t0 = time.perf_counter()
    mc_1m = monte_carlo_batch(
        comparator, BASELINE, table1_distributions(),
        n_samples=N_MC_1M_DRAWS, seed=2024, engine=EvaluationEngine(),
    )
    mc_1m_s = time.perf_counter() - t0
    assert mc_1m.n_samples == N_MC_1M_DRAWS
    assert 0.0 <= mc_1m.fpga_win_probability <= 1.0

    # ------------------------------------------------------------------
    # Workload D: the gated streaming Monte-Carlo ("monte_carlo_100M").
    # Fused sample->evaluate->reduce in bounded memory, multi-core by
    # default; 100M draws at full scale, 1M under BENCH_QUICK.
    # ------------------------------------------------------------------
    with EvaluationEngine(cache_size=0) as stream_engine:
        t0 = time.perf_counter()
        with PeakRssSampler() as stream_rss:
            mc_stream = monte_carlo_stream(
                comparator, BASELINE, table1_distributions(),
                n_samples=N_MC_STREAM_DRAWS, seed=2024,
                engine=stream_engine, workers=STREAM_WORKERS,
            )
        mc_stream_s = time.perf_counter() - t0

        # Streaming-vs-materialized fidelity, against the 1M-draw
        # materialized run above.  At quick scale the gated run *is*
        # the same seeded 1M study, so the comparison is direct; at
        # full scale a separate 1M streaming run keeps it seed-exact.
        if N_MC_STREAM_DRAWS == N_MC_1M_DRAWS:
            mc_stream_1m = mc_stream
        else:
            mc_stream_1m = monte_carlo_stream(
                comparator, BASELINE, table1_distributions(),
                n_samples=N_MC_1M_DRAWS, seed=2024,
                engine=stream_engine, workers=STREAM_WORKERS,
            )

        # 1 -> N worker scaling, measurable only at full scale on a
        # machine that actually has the cores (spawn startup would
        # dominate the quick workload).
        stream_scaling = None
        if not BENCH_QUICK and STREAM_WORKERS >= 4:
            t0 = time.perf_counter()
            mc_stream_seq = monte_carlo_stream(
                comparator, BASELINE, table1_distributions(),
                n_samples=N_MC_STREAM_DRAWS, seed=2024,
                engine=stream_engine, workers=1,
            )
            stream_scaling = (time.perf_counter() - t0) / mc_stream_s
            assert mc_stream_seq.summary() == mc_stream.summary()

    assert mc_stream_1m.n_samples == mc_1m.n_samples
    assert mc_stream_1m.fpga_win_probability == mc_1m.fpga_win_probability
    assert mc_stream_1m.n_non_finite == mc_1m.n_non_finite
    np.testing.assert_allclose(
        mc_stream_1m.ratio_mean, mc_1m.summary()["ratio_mean"],
        rtol=1e-12, atol=0.0,
    )
    stream_q = mc_stream_1m.quantiles((0.05, 0.5, 0.95))
    mat_q = mc_1m.quantiles((0.05, 0.5, 0.95))
    for q in (0.05, 0.5, 0.95):
        # Bottom-k sketch tolerance: ~0.2% rank error at the default k
        # maps to well under 2% in ratio value on this distribution.
        assert abs(stream_q[q] - mat_q[q]) <= 0.02 * abs(mat_q[q]), (
            f"streaming p{int(q * 100):02d} {stream_q[q]:.6f} drifted "
            f"beyond sketch tolerance of materialized {mat_q[q]:.6f}"
        )

    heatmap_speedup = heatmap_cold_scalar_s / heatmap_cold_vector_s
    mc_speedup = mc_cold_scalar_s / mc_cold_vector_s

    BENCH_JSON.write_text(json.dumps({
        "generated_unix": time.time(),
        "min_speedup_gate": MIN_SPEEDUP,
        "min_mc_speedup_gate": MIN_MC_SPEEDUP,
        "max_warm_over_cold_gate": MAX_WARM_OVER_COLD,
        "max_mc_1m_s_gate": MAX_MC_1M_S,
        "workloads": {
            "heatmap_100x100": {
                "cells": len(NUM_APPS_VALUES) * len(LIFETIME_VALUES),
                "cold_scalar_s": round(heatmap_cold_scalar_s, 4),
                "cold_vector_s": round(heatmap_cold_vector_s, 4),
                "warm_cache_s": round(heatmap_warm_s, 4),
                "warm_object_path_s": round(heatmap_warm_objects_s, 4),
                "vector_speedup": round(heatmap_speedup, 1),
                "warm_speedup": round(heatmap_cold_scalar_s / heatmap_warm_s, 1),
                "warm_over_cold_vector": round(
                    heatmap_warm_s / heatmap_cold_vector_s, 2
                ),
            },
            "monte_carlo_10k": {
                "draws": N_MC_DRAWS,
                "cold_scalar_s": round(mc_cold_scalar_s, 4),
                "cold_vector_s": round(mc_cold_vector_s, 4),
                "vector_speedup": round(mc_speedup, 1),
            },
            "monte_carlo_1M": {
                "draws": N_MC_1M_DRAWS,
                "knobs": len(table1_distributions()),
                "cold_vector_s": round(mc_1m_s, 4),
                "draws_per_s": round(N_MC_1M_DRAWS / mc_1m_s, 1),
            },
            "monte_carlo_100M": {
                "draws": N_MC_STREAM_DRAWS,
                "quick": BENCH_QUICK,
                "knobs": len(table1_distributions()),
                "workers": STREAM_WORKERS,
                "kernel_tier": stream_engine.kernel_tier_name,
                "elapsed_s": round(mc_stream_s, 4),
                "time_budget_s": MAX_MC_STREAM_S,
                "draws_per_s": round(N_MC_STREAM_DRAWS / mc_stream_s, 1),
                "peak_rss_mb": round(stream_rss.peak_mb, 1),
                "rss_budget_mb": MC_STREAM_RSS_BUDGET_MB,
                **(
                    {"scaling_1_to_4_workers": round(stream_scaling, 2)}
                    if stream_scaling is not None else {}
                ),
            },
        },
    }, indent=2) + "\n")

    assert heatmap_speedup >= MIN_SPEEDUP, (
        f"vector heatmap only {heatmap_speedup:.1f}x faster than scalar "
        f"({heatmap_cold_vector_s:.3f}s vs {heatmap_cold_scalar_s:.3f}s)"
    )
    assert heatmap_warm_s <= MAX_WARM_OVER_COLD * heatmap_cold_vector_s, (
        f"warm store path {heatmap_warm_s:.4f}s slower than "
        f"{MAX_WARM_OVER_COLD:g}x the cold vector run "
        f"({heatmap_cold_vector_s:.4f}s): the warm-path inversion is back"
    )
    assert mc_speedup >= MIN_MC_SPEEDUP, (
        f"columnar Monte-Carlo only {mc_speedup:.1f}x faster than scalar "
        f"({mc_cold_vector_s:.3f}s vs {mc_cold_scalar_s:.3f}s): "
        f"the parameter-space pipeline has regressed toward the "
        f"per-row object path"
    )
    assert mc_1m_s <= MAX_MC_1M_S, (
        f"1M-draw Monte-Carlo took {mc_1m_s:.1f}s "
        f"(budget {MAX_MC_1M_S:g}s)"
    )
    assert mc_stream_s <= MAX_MC_STREAM_S, (
        f"streaming {N_MC_STREAM_DRAWS}-draw Monte-Carlo took "
        f"{mc_stream_s:.1f}s (budget {MAX_MC_STREAM_S:g}s)"
    )
    assert stream_rss.peak_mb <= MC_STREAM_RSS_BUDGET_MB, (
        f"streaming Monte-Carlo peaked at {stream_rss.peak_mb:.0f} MB RSS "
        f"(budget {MC_STREAM_RSS_BUDGET_MB:g} MB): the out-of-core "
        f"pipeline is materializing rows again"
    )
    if stream_scaling is not None:
        assert stream_scaling >= MIN_STREAM_SCALING, (
            f"streaming 1->{STREAM_WORKERS} worker scaling only "
            f"{stream_scaling:.2f}x (gate {MIN_STREAM_SCALING:g}x)"
        )


def test_checkpoint_overhead_within_gate(comparator, tmp_path):
    """Durable execution must be nearly free: a checkpointed streaming
    Monte-Carlo (default time-based flush cadence) may cost at most
    ``MAX_CHECKPOINT_OVERHEAD`` over the fault-free run.

    Measured min-of-N on the same warm engine, with the two arms
    interleaved (plain, checkpointed, plain, ...) so a transient load
    spike on a shared machine biases both mins rather than one; the
    result is folded into ``BENCH_engine.json`` as the
    ``checkpoint_stream`` workload.

    Pinned to the numpy-chain kernel tier: the committed baseline was
    measured on that tier, and the fused tier shrinks the fault-free
    denominator ~6x, turning the 5% relative gate into ~10 ms of
    wall-clock — pure timer noise.  The fused tier has its own gated
    workload (``mc_stream_fused``).
    """
    from repro.engine.vector import Checkpoint

    repeats = 3 if BENCH_QUICK else 2

    with EvaluationEngine(cache_size=0, kernel_tier="numpy") as engine:

        def run(checkpoint=None):
            t0 = time.perf_counter()
            result = monte_carlo_stream(
                comparator, BASELINE, table1_distributions(),
                n_samples=N_CKPT_DRAWS, seed=2024, engine=engine,
                workers=1, checkpoint=checkpoint,
            )
            return time.perf_counter() - t0, result

        run()  # warm-up: model construction, allocator, page cache
        plain_s = ckpt_s = float("inf")
        for i in range(repeats):
            elapsed, plain_result = run()
            plain_s = min(plain_s, elapsed)
            elapsed, checkpointed = run(
                Checkpoint(tmp_path / f"bench-{i}.ckpt")
            )
            ckpt_s = min(ckpt_s, elapsed)

    # Durability must not change the answer, bit for bit.
    assert checkpointed.summary() == plain_result.summary()
    np.testing.assert_array_equal(
        checkpointed.quantile_sample, plain_result.quantile_sample
    )

    overhead = ckpt_s / plain_s - 1.0

    payload = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {
        "workloads": {}
    }
    payload["max_checkpoint_overhead_gate"] = MAX_CHECKPOINT_OVERHEAD
    payload.setdefault("workloads", {})["checkpoint_stream"] = {
        "draws": N_CKPT_DRAWS,
        "quick": BENCH_QUICK,
        "fault_free_s": round(plain_s, 4),
        "checkpointed_s": round(ckpt_s, 4),
        "overhead_fraction": round(max(0.0, overhead), 4),
        # Unclamped signed value for diagnosability: a clamped 0.0 with
        # a negative raw overhead means the checkpointed arm measured
        # *faster* than the fault-free arm — timer noise, i.e. the run
        # was taken on a contended machine and should be re-recorded.
        "overhead_fraction_raw": round(overhead, 4),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    assert overhead <= MAX_CHECKPOINT_OVERHEAD, (
        f"checkpointing cost {overhead * 100:.1f}% over the fault-free "
        f"stream ({ckpt_s:.3f}s vs {plain_s:.3f}s; gate "
        f"{MAX_CHECKPOINT_OVERHEAD * 100:g}%)"
    )


def test_fused_stream_speedup_within_gate(comparator):
    """The fused single-pass tier must clear ``MIN_FUSED_SPEEDUP`` over
    the NumPy chain on the gated streaming Monte-Carlo workload.

    Both arms run back-to-back on warm engines (min-of-N, interleaved,
    one worker each) so the ratio is machine-independent; summaries must
    agree to the tier's contract — exact win counters, ``rtol <= 1e-12``
    moments and quantile sample — and the fused run must stay inside the
    existing streaming RSS budget.  Folded into ``BENCH_engine.json`` as
    the ``mc_stream_fused`` workload, which
    ``scripts/bench_compare.py`` gates against the committed baseline.
    """
    repeats = 2

    def run(engine):
        t0 = time.perf_counter()
        result = monte_carlo_stream(
            comparator, BASELINE, table1_distributions(),
            n_samples=N_FUSED_DRAWS, seed=2024, engine=engine, workers=1,
        )
        return time.perf_counter() - t0, result

    with EvaluationEngine(cache_size=0, kernel_tier="numpy") as chain_engine:
        with EvaluationEngine(cache_size=0, kernel_tier="fused") as fused_engine:
            tier = fused_engine.kernel_tier_name
            run(chain_engine)  # warm-up: models, allocator, page cache
            run(fused_engine)
            chain_s = fused_s = float("inf")
            with PeakRssSampler() as fused_rss:
                for _ in range(repeats):
                    elapsed, chain_result = run(chain_engine)
                    chain_s = min(chain_s, elapsed)
                    elapsed, fused_result = run(fused_engine)
                    fused_s = min(fused_s, elapsed)

    # Parity at full workload scale: exact counters, contract-rtol
    # values (the sketch keeps the same rows on both tiers — priorities
    # are index-pure — so the samples align element for element).
    assert fused_result.n_samples == chain_result.n_samples
    assert fused_result.fpga_win_probability == chain_result.fpga_win_probability
    assert fused_result.n_non_finite == chain_result.n_non_finite
    np.testing.assert_allclose(
        fused_result.ratio_mean, chain_result.ratio_mean, rtol=1e-12, atol=0.0
    )
    np.testing.assert_allclose(
        fused_result.quantile_sample, chain_result.quantile_sample,
        rtol=1e-12, atol=0.0,
    )

    speedup = chain_s / fused_s

    payload = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {
        "workloads": {}
    }
    payload["min_fused_speedup_gate"] = MIN_FUSED_SPEEDUP
    payload.setdefault("workloads", {})["mc_stream_fused"] = {
        "draws": N_FUSED_DRAWS,
        "quick": BENCH_QUICK,
        "kernel_tier": tier,
        "numpy_chain_s": round(chain_s, 4),
        "fused_s": round(fused_s, 4),
        "numpy_draws_per_s": round(N_FUSED_DRAWS / chain_s, 1),
        "draws_per_s": round(N_FUSED_DRAWS / fused_s, 1),
        "fused_speedup": round(speedup, 2),
        "peak_rss_mb": round(fused_rss.peak_mb, 1),
        "rss_budget_mb": MC_STREAM_RSS_BUDGET_MB,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    assert speedup >= MIN_FUSED_SPEEDUP, (
        f"fused tier ({tier}) only {speedup:.2f}x over the NumPy chain "
        f"({fused_s:.3f}s vs {chain_s:.3f}s; gate {MIN_FUSED_SPEEDUP:g}x)"
    )
    assert fused_rss.peak_mb <= MC_STREAM_RSS_BUDGET_MB, (
        f"fused streaming peaked at {fused_rss.peak_mb:.0f} MB RSS "
        f"(budget {MC_STREAM_RSS_BUDGET_MB:g} MB)"
    )


def test_bench_vector_heatmap_10k(benchmark, comparator):
    """pytest-benchmark stats for the array-land 10k-cell grid."""
    result = benchmark(
        pairwise_heatmap_batch,
        comparator, BASELINE,
        "num_apps", NUM_APPS_VALUES, "lifetime", LIFETIME_VALUES,
        engine=EvaluationEngine(),
    )
    assert result.ratios.shape == (len(LIFETIME_VALUES), len(NUM_APPS_VALUES))
    assert np.all(np.isfinite(result.ratios)) and np.all(result.ratios > 0.0)


def test_bench_vector_monte_carlo_10k(benchmark, comparator):
    """pytest-benchmark stats for the columnar 10k-draw MC."""
    dists = [
        ParameterDistribution("use_intensity", 30.0, 700.0, _set_use_intensity,
                              kind="loguniform",
                              apply_column=_use_intensity_cols),
    ]
    result = benchmark(
        monte_carlo_batch, comparator, BASELINE, dists,
        n_samples=N_MC_DRAWS, seed=2024, engine=EvaluationEngine(),
    )
    assert result.n_samples == N_MC_DRAWS
    assert 0.0 <= result.fpga_win_probability <= 1.0
