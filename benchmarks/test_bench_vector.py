"""Bench: the vector kernel against the scalar per-point path.

Measures the headline workloads — a cold 100x100 heatmap grid, a
10k-draw Monte-Carlo run and a gated 1M-draw Monte-Carlo run — against
the scalar object path and the warm store, and emits
``benchmarks/BENCH_engine.json`` so the perf trajectory is tracked from
run to run (``scripts/check.sh`` surfaces it and
``scripts/bench_compare.py`` diffs it against the committed baseline).

Gates:

* the vector kernel must beat the scalar path by >= 10x on the heatmap
  grid;
* the *columnar* Monte-Carlo pipeline (draws sampled straight into
  parameter columns, no per-draw comparator objects) must beat the
  scalar path by >= 50x;
* the warm store-served grid must cost at most 2x the cold vector run
  (the warm-path inversion the sharded store exists to fix);
* the 1M-draw Monte-Carlo must complete within its wall-clock budget.

Every timed path must agree with the scalar reference to
``rtol=1e-12`` (bit-identically where asserted), so speedups can never
come at the cost of parity.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.heatmap import pairwise_heatmap, pairwise_heatmap_batch
from repro.analysis.montecarlo import ParameterDistribution, monte_carlo, monte_carlo_batch
from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.engine import EvaluationEngine
from repro.engine.vector import params as pcols
from repro.experiments.ext_uncertainty import distributions as table1_distributions
from repro.operation.model import OperationModel
from repro.units import g_per_kwh_to_kg_per_kwh

BENCH_JSON = Path(__file__).parent / "BENCH_engine.json"

BASELINE = Scenario(num_apps=5, app_lifetime_years=2.0, volume=1_000_000)

#: Dense 100 x 100 = 10k-cell grid over the Fig. 8 axes.
NUM_APPS_VALUES = tuple(range(1, 101))
LIFETIME_VALUES = tuple(float(t) for t in np.linspace(0.5, 3.0, 100))

N_MC_DRAWS = 10_000
N_MC_1M_DRAWS = 1_000_000

#: The speedup floor the vector kernel must clear on the heatmap grid.
MIN_SPEEDUP = 10.0

#: The speedup floor of the columnar Monte-Carlo pipeline over the
#: scalar object path.  The per-row object path (one perturbed
#: comparator + extraction per draw) topped out at ~11x; sampling
#: straight into parameter columns measures in the hundreds.
MIN_MC_SPEEDUP = 50.0

#: Wall-clock budget of the 1M-draw Table 1 Monte-Carlo (all five
#: knobs perturbed per draw).  Measures ~2 s on one container core;
#: the budget keeps the gate robust on slow shared machines.
MAX_MC_1M_S = 30.0

#: The warm-path gate: serving the 10k-cell grid from the sharded store
#: must cost at most twice a cold vector run.  Before the array-backed
#: store this was inverted ~35x (0.65 s warm vs 0.018 s cold) — per-cell
#: ComparisonResult materialisation and dict lookups dominating.
MAX_WARM_OVER_COLD = 2.0


def _set_use_intensity(comparator, value):
    suite = comparator.suite.with_overrides(
        operation=OperationModel(
            energy_source=value, profile=comparator.suite.operation.profile
        )
    )
    return dataclasses.replace(comparator, suite=suite)


def _use_intensity_cols(params, values):
    params.set_col(pcols.OP_CI, g_per_kwh_to_kg_per_kwh(values))


@pytest.fixture(scope="module")
def comparator(suite):
    return PlatformComparator.for_domain("dnn", suite)


def test_vector_speedup_and_emit_bench_json(comparator):
    """Cold scalar vs cold vector vs warm cache; emit BENCH_engine.json."""
    # Warm both code paths at miniature size first so one-time costs
    # (NumPy ufunc dispatch, import machinery) stay out of the timings.
    # No *results* are reused: every timed run recomputes its batch.
    dists = [
        ParameterDistribution("use_intensity", 30.0, 700.0, _set_use_intensity,
                              kind="loguniform",
                              apply_column=_use_intensity_cols),
    ]
    for warm_engine in (EvaluationEngine(cache_size=0, vectorize=False),
                        EvaluationEngine()):
        pairwise_heatmap_batch(
            comparator, BASELINE, "num_apps", (1, 2), "lifetime", (1.0, 2.0),
            engine=warm_engine,
        )
        monte_carlo_batch(comparator, BASELINE, dists, n_samples=32,
                          engine=warm_engine)

    # ------------------------------------------------------------------
    # Workload A: cold 100x100 heatmap grid.
    # ------------------------------------------------------------------
    scalar_engine = EvaluationEngine(cache_size=16384, vectorize=False)
    t0 = time.perf_counter()
    scalar_grid = pairwise_heatmap(
        comparator, BASELINE,
        "num_apps", NUM_APPS_VALUES, "lifetime", LIFETIME_VALUES,
        engine=scalar_engine,
    )
    heatmap_cold_scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    object_warm_grid = pairwise_heatmap(
        comparator, BASELINE,
        "num_apps", NUM_APPS_VALUES, "lifetime", LIFETIME_VALUES,
        engine=scalar_engine,
    )
    heatmap_warm_objects_s = time.perf_counter() - t0

    vector_engine = EvaluationEngine(cache_size=16384)
    t0 = time.perf_counter()
    vector_grid = pairwise_heatmap_batch(
        comparator, BASELINE,
        "num_apps", NUM_APPS_VALUES, "lifetime", LIFETIME_VALUES,
        engine=vector_engine,
    )
    heatmap_cold_vector_s = time.perf_counter() - t0

    # The same grid again on the now-warm engine: answered entirely by a
    # vectorised gather from the sharded store (no kernel work, no
    # per-cell objects).  This is the path the warm-cache gate guards.
    t0 = time.perf_counter()
    warm_grid = pairwise_heatmap_batch(
        comparator, BASELINE,
        "num_apps", NUM_APPS_VALUES, "lifetime", LIFETIME_VALUES,
        engine=vector_engine,
    )
    heatmap_warm_s = time.perf_counter() - t0
    assert vector_engine.rows_computed == len(NUM_APPS_VALUES) * len(LIFETIME_VALUES)

    np.testing.assert_array_equal(object_warm_grid.ratios, scalar_grid.ratios)
    np.testing.assert_array_equal(warm_grid.ratios, vector_grid.ratios)
    np.testing.assert_allclose(
        vector_grid.ratios, scalar_grid.ratios, rtol=1.0e-12, atol=0.0
    )
    # Drop the 10k cached ComparisonResult graphs before timing the next
    # workload: keeping them alive inflates the cyclic-GC pauses taken
    # during the Monte-Carlo measurement by ~60%.
    scalar_engine.clear_cache()

    # ------------------------------------------------------------------
    # Workload B: 10k-draw Monte-Carlo, columnar parameter pipeline.
    # ------------------------------------------------------------------
    t0 = time.perf_counter()
    scalar_mc = monte_carlo(
        comparator, BASELINE, dists, n_samples=N_MC_DRAWS, seed=2024,
        engine=EvaluationEngine(cache_size=0, vectorize=False),
    )
    mc_cold_scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    vector_mc = monte_carlo_batch(
        comparator, BASELINE, dists, n_samples=N_MC_DRAWS, seed=2024,
        engine=EvaluationEngine(),
    )
    mc_cold_vector_s = time.perf_counter() - t0

    assert vector_mc.samples == scalar_mc.samples  # identical RNG draws
    np.testing.assert_allclose(
        vector_mc.ratios, scalar_mc.ratios, rtol=1.0e-12, atol=0.0
    )

    # ------------------------------------------------------------------
    # Workload C: 1M-draw Monte-Carlo over all five Table 1 knobs.
    # Chunked column slices; no per-draw objects anywhere.
    # ------------------------------------------------------------------
    t0 = time.perf_counter()
    mc_1m = monte_carlo_batch(
        comparator, BASELINE, table1_distributions(),
        n_samples=N_MC_1M_DRAWS, seed=2024, engine=EvaluationEngine(),
    )
    mc_1m_s = time.perf_counter() - t0
    assert mc_1m.n_samples == N_MC_1M_DRAWS
    assert 0.0 <= mc_1m.fpga_win_probability <= 1.0

    heatmap_speedup = heatmap_cold_scalar_s / heatmap_cold_vector_s
    mc_speedup = mc_cold_scalar_s / mc_cold_vector_s

    BENCH_JSON.write_text(json.dumps({
        "generated_unix": time.time(),
        "min_speedup_gate": MIN_SPEEDUP,
        "min_mc_speedup_gate": MIN_MC_SPEEDUP,
        "max_warm_over_cold_gate": MAX_WARM_OVER_COLD,
        "max_mc_1m_s_gate": MAX_MC_1M_S,
        "workloads": {
            "heatmap_100x100": {
                "cells": len(NUM_APPS_VALUES) * len(LIFETIME_VALUES),
                "cold_scalar_s": round(heatmap_cold_scalar_s, 4),
                "cold_vector_s": round(heatmap_cold_vector_s, 4),
                "warm_cache_s": round(heatmap_warm_s, 4),
                "warm_object_path_s": round(heatmap_warm_objects_s, 4),
                "vector_speedup": round(heatmap_speedup, 1),
                "warm_speedup": round(heatmap_cold_scalar_s / heatmap_warm_s, 1),
                "warm_over_cold_vector": round(
                    heatmap_warm_s / heatmap_cold_vector_s, 2
                ),
            },
            "monte_carlo_10k": {
                "draws": N_MC_DRAWS,
                "cold_scalar_s": round(mc_cold_scalar_s, 4),
                "cold_vector_s": round(mc_cold_vector_s, 4),
                "vector_speedup": round(mc_speedup, 1),
            },
            "monte_carlo_1M": {
                "draws": N_MC_1M_DRAWS,
                "knobs": len(table1_distributions()),
                "cold_vector_s": round(mc_1m_s, 4),
                "draws_per_s": round(N_MC_1M_DRAWS / mc_1m_s, 1),
            },
        },
    }, indent=2) + "\n")

    assert heatmap_speedup >= MIN_SPEEDUP, (
        f"vector heatmap only {heatmap_speedup:.1f}x faster than scalar "
        f"({heatmap_cold_vector_s:.3f}s vs {heatmap_cold_scalar_s:.3f}s)"
    )
    assert heatmap_warm_s <= MAX_WARM_OVER_COLD * heatmap_cold_vector_s, (
        f"warm store path {heatmap_warm_s:.4f}s slower than "
        f"{MAX_WARM_OVER_COLD:g}x the cold vector run "
        f"({heatmap_cold_vector_s:.4f}s): the warm-path inversion is back"
    )
    assert mc_speedup >= MIN_MC_SPEEDUP, (
        f"columnar Monte-Carlo only {mc_speedup:.1f}x faster than scalar "
        f"({mc_cold_vector_s:.3f}s vs {mc_cold_scalar_s:.3f}s): "
        f"the parameter-space pipeline has regressed toward the "
        f"per-row object path"
    )
    assert mc_1m_s <= MAX_MC_1M_S, (
        f"1M-draw Monte-Carlo took {mc_1m_s:.1f}s "
        f"(budget {MAX_MC_1M_S:g}s)"
    )


def test_bench_vector_heatmap_10k(benchmark, comparator):
    """pytest-benchmark stats for the array-land 10k-cell grid."""
    result = benchmark(
        pairwise_heatmap_batch,
        comparator, BASELINE,
        "num_apps", NUM_APPS_VALUES, "lifetime", LIFETIME_VALUES,
        engine=EvaluationEngine(),
    )
    assert result.ratios.shape == (len(LIFETIME_VALUES), len(NUM_APPS_VALUES))
    assert np.all(np.isfinite(result.ratios)) and np.all(result.ratios > 0.0)


def test_bench_vector_monte_carlo_10k(benchmark, comparator):
    """pytest-benchmark stats for the columnar 10k-draw MC."""
    dists = [
        ParameterDistribution("use_intensity", 30.0, 700.0, _set_use_intensity,
                              kind="loguniform",
                              apply_column=_use_intensity_cols),
    ]
    result = benchmark(
        monte_carlo_batch, comparator, BASELINE, dists,
        n_samples=N_MC_DRAWS, seed=2024, engine=EvaluationEngine(),
    )
    assert result.n_samples == N_MC_DRAWS
    assert 0.0 <= result.fpga_win_probability <= 1.0
