"""Bench: regenerate Fig. 11 (industry ASIC component breakdown)."""

from repro.experiments import fig11_industry_asic


def test_bench_fig11(benchmark, suite):
    footprints = benchmark(fig11_industry_asic.assess_all, suite)
    assert set(footprints) == {"industry_asic1", "industry_asic2"}
    for key, fp in footprints.items():
        # Paper: operational dominates, then manufacturing, then design.
        assert fp.operational > fp.manufacturing > fp.design, key
        assert fp.operational > 0.5 * fp.total, key
        # ASICs are never reprogrammed: zero app-dev per the paper.
        assert fp.appdev == 0.0, key
