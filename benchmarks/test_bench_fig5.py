"""Bench: regenerate Fig. 5 (CFP vs application lifetime)."""

import pytest

from repro.experiments import fig5_lifetime


@pytest.mark.parametrize("domain", ["dnn", "imgproc", "crypto"])
def test_bench_fig5(benchmark, suite, domain):
    result, crossings = benchmark(fig5_lifetime.domain_sweep, domain, suite)
    if domain == "crypto":
        assert all(r < 1.0 for r in result.ratios), "crypto: FPGA always greener"
    elif domain == "imgproc":
        assert all(r > 1.0 for r in result.ratios), "imgproc: ASIC always greener"
    else:
        f2a = next((c for c in crossings if c.kind == "F2A"), None)
        assert f2a is not None, "dnn: F2A crossover expected"
        assert 1.6 / 3.0 <= f2a.x <= 1.6 * 3.0  # paper: ~1.6 years
