"""Bench: the async batch-serving front-end under concurrent clients.

Drives :func:`repro.engine.service.serving_benchmark` — the same harness
behind ``greenfpga serve-bench`` — over one shared cell universe in four
phases (1 serialized vs 8 concurrent clients, cold store vs
persisted-warm ``.npz``) and emits ``benchmarks/BENCH_serving.json`` so
the serving-throughput trajectory is tracked run to run
(``scripts/check.sh`` surfaces it).

Gates:

* 8 concurrent clients must achieve >= :data:`MIN_CONCURRENT_SPEEDUP` x
  the aggregate throughput of *windowed* serialized dispatch on the
  shared warm cache (the ``warm_serialized_1_windowed`` reference
  phase, ``adaptive_window=False``).  Windowed dispatch pays the
  micro-batching window plus per-dispatch overhead once per request;
  concurrent clients amortise both across fused vector dispatches;
* the default adaptive window must serve an idle-queue serialized
  client at near-eager latency: ``warm_serialized_1`` (adaptive) must
  cost at most :data:`MAX_ADAPTIVE_OVER_EAGER` x the
  ``warm_serialized_1_eager`` reference (``eager_single=True``).
  Before the adaptive window a lone client paid the 2 ms window on
  every request — 0.596 s vs 0.149 s eager, a 4x penalty for nothing;
* the persisted-warm concurrent phase must recompute *zero* rows — every
  cell is served from the ``.npz``-loaded store, proving in-flight
  deduplication plus persistence work end to end.

The latency test adds a ``latency`` section to the same JSON (p50/p99
under 8 and 64 socket clients, fault-free and with one injected worker
kill per repeat, via
:func:`repro.engine.serve.bench.latency_benchmark`); its p99 keys are
gated by ``scripts/bench_compare.py`` (>25% increase fails) and its
bit-identity-under-kill flag is asserted here.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.engine.serve.bench import latency_benchmark
from repro.engine.service import serving_benchmark

BENCH_JSON = Path(__file__).parent / "BENCH_serving.json"

CLIENTS = 8
REQUESTS_PER_CLIENT = 24
CELLS_PER_REQUEST = 100

#: Aggregate-throughput floor: 8 coalesced clients vs windowed
#: serialized dispatch on the same warm store.  Measured ~5-6x; 4x keeps
#: the gate robust on noisy machines while still failing a broken
#: micro-batcher.
MIN_CONCURRENT_SPEEDUP = 4.0

#: Adaptive-window ceiling: a lone serialized client on an idle queue
#: must run at near-eager latency (measured ~1.0x; 1.5x absorbs noise).
MAX_ADAPTIVE_OVER_EAGER = 1.5


def test_serving_throughput_and_emit_bench_json(tmp_path):
    """1 vs 8 clients, cold vs persisted-warm; emit BENCH_serving.json."""
    report = serving_benchmark(
        clients=CLIENTS,
        requests_per_client=REQUESTS_PER_CLIENT,
        cells_per_request=CELLS_PER_REQUEST,
        cache_file=tmp_path / "serving-warmth.npz",
    )

    BENCH_JSON.write_text(json.dumps({
        "generated_unix": time.time(),
        "min_concurrent_speedup_gate": MIN_CONCURRENT_SPEEDUP,
        "max_adaptive_over_eager_gate": MAX_ADAPTIVE_OVER_EAGER,
        **report,
    }, indent=2) + "\n")

    unique_cells = REQUESTS_PER_CLIENT * CELLS_PER_REQUEST
    assert report["persisted_entries"] == unique_cells
    assert report["warm_concurrent_rows_recomputed"] == 0, (
        "persisted-warm clients recomputed cells the .npz store already held"
    )

    speedup = report["speedup_concurrent_vs_windowed_serialized_warm"]
    assert speedup >= MIN_CONCURRENT_SPEEDUP, (
        f"{CLIENTS} concurrent clients only {speedup:.2f}x the windowed "
        f"serialized single-client throughput on a shared warm cache "
        f"(gate {MIN_CONCURRENT_SPEEDUP:g}x): "
        f"{report['phases']}"
    )

    adaptive_penalty = report["adaptive_serialized_over_eager_warm"]
    assert adaptive_penalty <= MAX_ADAPTIVE_OVER_EAGER, (
        f"adaptive window still charges a lone serialized client "
        f"{adaptive_penalty:.2f}x the eager reference "
        f"(gate {MAX_ADAPTIVE_OVER_EAGER:g}x): {report['phases']}"
    )


def test_serving_latency_percentiles_and_emit(tmp_path):
    """p50/p99 under 8 and 64 clients, fault-free and with one kill.

    Runs the socket-serving latency benchmark (2 supervised workers,
    real connections, pooled percentiles over 3 fresh-server repeats;
    the one-kill phases hard-kill worker 0 mid-window every repeat) and
    merges the report into ``BENCH_serving.json`` under ``latency`` —
    read-modify-write, so it composes with the throughput section the
    first test emitted.  Defined after that test on purpose: pytest
    runs tests in definition order, and the wholesale write must land
    first.

    Gates here: bit-identity across every phase including the kills,
    and at least one worker death per one-kill repeat (otherwise the
    chaos injection silently stopped firing).  The p99 trajectory gate
    lives in ``scripts/bench_compare.py``.
    """
    report = latency_benchmark(cache_file=tmp_path / "latency-warmth.npz")

    assert report["mismatches"] == 0, (
        f"served columns diverged from the in-process reference: {report}"
    )
    assert report["identical_under_kill"], report
    for name, modes in report["phases"].items():
        assert modes["one_kill"]["worker_deaths"] >= report["repeats"], (
            f"{name}: injected kill fired fewer times than repeats: {modes}"
        )
        assert modes["fault_free"]["worker_deaths"] == 0, (
            f"{name}: fault-free phase lost a worker: {modes}"
        )

    merged = {}
    if BENCH_JSON.exists():
        merged = json.loads(BENCH_JSON.read_text())
    merged["latency"] = report
    BENCH_JSON.write_text(json.dumps(merged, indent=2) + "\n")


def test_serving_warm_beats_cold_serialized(tmp_path):
    """Persisted warmth must not be slower than cold for the same drive.

    A weak (1.0x) monotonicity gate: loading the ``.npz`` store and
    serving gathers can only remove kernel work, never add it.  Kept
    separate from the throughput gate so a failure pinpoints
    persistence rather than coalescing.
    """
    report = serving_benchmark(
        clients=2,
        requests_per_client=8,
        cells_per_request=50,
        cache_file=tmp_path / "warmth.npz",
    )
    phases = report["phases"]
    assert (
        phases["warm_serialized_1"]["elapsed_s"]
        <= phases["cold_serialized_1"]["elapsed_s"] * 1.5
    ), phases
