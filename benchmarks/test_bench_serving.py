"""Bench: the async batch-serving front-end under concurrent clients.

Drives :func:`repro.engine.service.serving_benchmark` — the same harness
behind ``greenfpga serve-bench`` — over one shared cell universe in four
phases (1 serialized vs 8 concurrent clients, cold store vs
persisted-warm ``.npz``) and emits ``benchmarks/BENCH_serving.json`` so
the serving-throughput trajectory is tracked run to run
(``scripts/check.sh`` surfaces it).

Gates:

* 8 concurrent clients must achieve >= :data:`MIN_CONCURRENT_SPEEDUP` x
  the aggregate throughput of *windowed* serialized dispatch on the
  shared warm cache (the ``warm_serialized_1_windowed`` reference
  phase, ``adaptive_window=False``).  Windowed dispatch pays the
  micro-batching window plus per-dispatch overhead once per request;
  concurrent clients amortise both across fused vector dispatches;
* the default adaptive window must serve an idle-queue serialized
  client at near-eager latency: ``warm_serialized_1`` (adaptive) must
  cost at most :data:`MAX_ADAPTIVE_OVER_EAGER` x the
  ``warm_serialized_1_eager`` reference (``eager_single=True``).
  Before the adaptive window a lone client paid the 2 ms window on
  every request — 0.596 s vs 0.149 s eager, a 4x penalty for nothing;
* the persisted-warm concurrent phase must recompute *zero* rows — every
  cell is served from the ``.npz``-loaded store, proving in-flight
  deduplication plus persistence work end to end.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.engine.service import serving_benchmark

BENCH_JSON = Path(__file__).parent / "BENCH_serving.json"

CLIENTS = 8
REQUESTS_PER_CLIENT = 24
CELLS_PER_REQUEST = 100

#: Aggregate-throughput floor: 8 coalesced clients vs windowed
#: serialized dispatch on the same warm store.  Measured ~5-6x; 4x keeps
#: the gate robust on noisy machines while still failing a broken
#: micro-batcher.
MIN_CONCURRENT_SPEEDUP = 4.0

#: Adaptive-window ceiling: a lone serialized client on an idle queue
#: must run at near-eager latency (measured ~1.0x; 1.5x absorbs noise).
MAX_ADAPTIVE_OVER_EAGER = 1.5


def test_serving_throughput_and_emit_bench_json(tmp_path):
    """1 vs 8 clients, cold vs persisted-warm; emit BENCH_serving.json."""
    report = serving_benchmark(
        clients=CLIENTS,
        requests_per_client=REQUESTS_PER_CLIENT,
        cells_per_request=CELLS_PER_REQUEST,
        cache_file=tmp_path / "serving-warmth.npz",
    )

    BENCH_JSON.write_text(json.dumps({
        "generated_unix": time.time(),
        "min_concurrent_speedup_gate": MIN_CONCURRENT_SPEEDUP,
        "max_adaptive_over_eager_gate": MAX_ADAPTIVE_OVER_EAGER,
        **report,
    }, indent=2) + "\n")

    unique_cells = REQUESTS_PER_CLIENT * CELLS_PER_REQUEST
    assert report["persisted_entries"] == unique_cells
    assert report["warm_concurrent_rows_recomputed"] == 0, (
        "persisted-warm clients recomputed cells the .npz store already held"
    )

    speedup = report["speedup_concurrent_vs_windowed_serialized_warm"]
    assert speedup >= MIN_CONCURRENT_SPEEDUP, (
        f"{CLIENTS} concurrent clients only {speedup:.2f}x the windowed "
        f"serialized single-client throughput on a shared warm cache "
        f"(gate {MIN_CONCURRENT_SPEEDUP:g}x): "
        f"{report['phases']}"
    )

    adaptive_penalty = report["adaptive_serialized_over_eager_warm"]
    assert adaptive_penalty <= MAX_ADAPTIVE_OVER_EAGER, (
        f"adaptive window still charges a lone serialized client "
        f"{adaptive_penalty:.2f}x the eager reference "
        f"(gate {MAX_ADAPTIVE_OVER_EAGER:g}x): {report['phases']}"
    )


def test_serving_warm_beats_cold_serialized(tmp_path):
    """Persisted warmth must not be slower than cold for the same drive.

    A weak (1.0x) monotonicity gate: loading the ``.npz`` store and
    serving gathers can only remove kernel work, never add it.  Kept
    separate from the throughput gate so a failure pinpoints
    persistence rather than coalescing.
    """
    report = serving_benchmark(
        clients=2,
        requests_per_client=8,
        cells_per_request=50,
        cache_file=tmp_path / "warmth.npz",
    )
    phases = report["phases"]
    assert (
        phases["warm_serialized_1"]["elapsed_s"]
        <= phases["cold_serialized_1"]["elapsed_s"] * 1.5
    ), phases
