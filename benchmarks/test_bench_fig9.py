"""Bench: regenerate Fig. 9 (horizon beyond the FPGA chip lifetime)."""

import pytest

from repro.experiments import fig9_chip_lifetime


@pytest.mark.parametrize("domain", ["dnn", "imgproc", "crypto"])
def test_bench_fig9(benchmark, suite, domain):
    rows = benchmark(fig9_chip_lifetime.domain_series, domain, suite)
    assert len(rows) == fig9_chip_lifetime.MAX_YEARS
    jumps = fig9_chip_lifetime.jump_years(rows)
    # Paper: jumps at the 15- and 30-year marks in the FPGA curve.
    assert jumps == [16, 31]
    # The jump increments are embodied-sized: larger than a typical
    # operational year-over-year increment.
    increments = [
        b["fpga_total_kg"] - a["fpga_total_kg"] for a, b in zip(rows, rows[1:])
    ]
    typical = sorted(increments)[len(increments) // 2]
    jump_increment = increments[14]  # rows[14] is year 15, rows[15] year 16
    assert jump_increment > 1.5 * typical
