"""Benches for the extension experiments (GPU, fleet, uncertainty)."""

from repro.core.scenario import Scenario
from repro.experiments import ext_fleet, ext_gpu, ext_uncertainty
from repro.experiments.ext_gpu import three_way_totals


def test_bench_ext_gpu(benchmark, suite):
    totals = benchmark(three_way_totals, "dnn", None, suite)
    # GPU is the least sustainable platform at 1M units.
    assert totals["gpu"] > totals["fpga"]
    assert totals["gpu"] > totals["asic"]


def test_bench_ext_gpu_low_volume(benchmark, suite):
    scenario = Scenario(num_apps=5, app_lifetime_years=1.0, volume=100)
    totals = benchmark(three_way_totals, "dnn", scenario, suite)
    # At tiny volume the GPU's amortised design beats per-app ASIC projects.
    assert totals["gpu"] < totals["asic"]


def test_bench_ext_fleet(benchmark, suite):
    plan = benchmark(ext_fleet.plan_portfolio, suite)
    assert plan.exact
    # The mixed fleet strictly beats both uniform deployments here.
    assert plan.total_kg < plan.all_fpga_kg
    assert plan.total_kg < plan.all_asic_kg
    # The stable, high-volume flagship belongs on a dedicated ASIC.
    assert "flagship-recsys" in plan.asic_apps


def test_bench_ext_uncertainty(benchmark, suite):
    report = benchmark(ext_uncertainty.run, suite)
    summary = dict(report.tables["monte_carlo_summary"][0])
    assert 0.0 <= summary["fpga_win_probability"] <= 1.0
    assert summary["n_samples"] == ext_uncertainty.N_SAMPLES
    tornado_rows = report.tables["tornado"]
    assert len(tornado_rows) == 5
    # Use-grid intensity must be a verdict-flipping knob at this baseline.
    by_name = {row["parameter"]: row for row in tornado_rows}
    assert by_name["use_intensity_g_per_kwh"]["flips_winner"]
