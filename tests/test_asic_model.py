"""Tests for the Eq. (1) ASIC lifecycle model."""

import pytest

from repro.core.asic_model import AsicLifecycleModel
from repro.core.scenario import Scenario
from repro.devices.asic import AsicDevice


@pytest.fixture
def model(simple_asic, suite):
    return AsicLifecycleModel(device=simple_asic, suite=suite)


def test_embodied_recurs_per_application(model):
    one = model.assess(Scenario(num_apps=1, app_lifetime_years=1.0, volume=1000))
    five = model.assess(Scenario(num_apps=5, app_lifetime_years=1.0, volume=1000))
    assert five.footprint.manufacturing == pytest.approx(
        5 * one.footprint.manufacturing
    )
    assert five.footprint.design == pytest.approx(5 * one.footprint.design)


def test_per_application_decomposition(model):
    scenario = Scenario(num_apps=3, app_lifetime_years=1.0, volume=1000)
    assessment = model.assess(scenario)
    assert len(assessment.per_application) == 3
    total = sum((fp.total for fp in assessment.per_application))
    assert assessment.footprint.total == pytest.approx(total)


def test_asic_appdev_zero_by_default(model, baseline_scenario):
    """The paper sets ASIC T_FE = T_BE = 0 (folded into Eq. 4)."""
    assert model.assess(baseline_scenario).footprint.appdev == 0.0


def test_long_application_repurchases_silicon(suite):
    device = AsicDevice("a", area_mm2=100.0, node_name="10nm", peak_power_w=5.0,
                        chip_lifetime_years=8.0)
    model = AsicLifecycleModel(device=device, suite=suite)
    short = model.assess(Scenario(num_apps=1, app_lifetime_years=8.0, volume=100))
    long = model.assess(Scenario(num_apps=1, app_lifetime_years=9.0, volume=100))
    assert long.footprint.manufacturing == pytest.approx(
        2 * short.footprint.manufacturing
    )


def test_operational_linear_in_lifetime(model):
    one = model.assess(Scenario(num_apps=1, app_lifetime_years=1.0, volume=1000))
    three = model.assess(Scenario(num_apps=1, app_lifetime_years=3.0, volume=1000))
    assert three.footprint.operational == pytest.approx(3 * one.footprint.operational)


def test_volume_scales_chips_not_design(model):
    small = model.assess(Scenario(num_apps=2, app_lifetime_years=1.0, volume=500))
    large = model.assess(Scenario(num_apps=2, app_lifetime_years=1.0, volume=5000))
    assert large.footprint.manufacturing == pytest.approx(
        10 * small.footprint.manufacturing
    )
    assert large.footprint.design == pytest.approx(small.footprint.design)


def test_eol_negative_is_credit(model, small_scenario):
    footprint = model.assess(small_scenario).footprint
    # Default EOL config yields a net credit at 30% recycling.
    assert footprint.eol < 0.0
    assert abs(footprint.eol) < footprint.manufacturing


def test_total_consistency(model, baseline_scenario):
    assessment = model.assess(baseline_scenario)
    assert assessment.total_kg == pytest.approx(assessment.footprint.total)
