"""Tests for one-dimensional sweeps."""

import pytest

from repro.analysis.sweep import SWEEP_AXES, sweep
from repro.core.scenario import Scenario
from repro.errors import ParameterError


@pytest.fixture
def base():
    return Scenario(num_apps=2, app_lifetime_years=1.0, volume=10_000)


def test_axes_exposed():
    assert set(SWEEP_AXES) == {"num_apps", "lifetime", "volume"}


def test_num_apps_sweep_shape(dnn_comparator, base):
    result = sweep(dnn_comparator, base, "num_apps", [1, 2, 4])
    assert result.values == (1.0, 2.0, 4.0)
    assert len(result.comparisons) == 3
    assert len(result.fpga_totals) == 3


def test_asic_totals_monotone_in_apps(dnn_comparator, base):
    result = sweep(dnn_comparator, base, "num_apps", [1, 2, 3, 4])
    totals = result.asic_totals
    assert all(b > a for a, b in zip(totals, totals[1:]))


def test_totals_monotone_in_volume(dnn_comparator, base):
    result = sweep(dnn_comparator, base, "volume", [100, 1000, 10_000])
    assert all(b > a for a, b in zip(result.fpga_totals, result.fpga_totals[1:]))
    assert all(b > a for a, b in zip(result.asic_totals, result.asic_totals[1:]))


def test_totals_monotone_in_lifetime(dnn_comparator, base):
    result = sweep(dnn_comparator, base, "lifetime", [0.5, 1.0, 2.0])
    assert all(b > a for a, b in zip(result.fpga_totals, result.fpga_totals[1:]))


def test_rows_flat_export(dnn_comparator, base):
    rows = sweep(dnn_comparator, base, "num_apps", [1, 2]).rows()
    assert rows[0]["num_apps"] == 1.0
    assert "ratio" in rows[0] and "winner" in rows[0]


def test_sweep_point_matches_direct_compare(dnn_comparator, base):
    result = sweep(dnn_comparator, base, "lifetime", [1.5])
    direct = dnn_comparator.compare(base.with_lifetime(1.5))
    assert result.ratios[0] == pytest.approx(direct.ratio)


def test_unknown_axis(dnn_comparator, base):
    with pytest.raises(ParameterError, match="unknown sweep axis"):
        sweep(dnn_comparator, base, "temperature", [1.0])


def test_empty_values(dnn_comparator, base):
    with pytest.raises(ParameterError):
        sweep(dnn_comparator, base, "volume", [])


def test_winner_at(dnn_comparator, base):
    result = sweep(dnn_comparator, base, "num_apps", [1])
    assert result.winner_at(0) in ("fpga", "asic")


# ----------------------------------------------------------------------
# Axis edge cases: single-point and descending axes
# ----------------------------------------------------------------------


def test_single_point_axis(dnn_comparator, base):
    result = sweep(dnn_comparator, base, "lifetime", [2.0])
    assert result.values == (2.0,)
    assert len(result.comparisons) == 1
    assert result.ratios[0] == dnn_comparator.ratio(base.with_lifetime(2.0))


def test_single_point_axis_batch(dnn_comparator, base):
    from repro.analysis.sweep import sweep_batch

    batch = sweep_batch(dnn_comparator, base, "lifetime", [2.0])
    assert batch.values.shape == (1,)
    assert batch.ratios[0] == dnn_comparator.ratio(base.with_lifetime(2.0))


def test_descending_axis_preserves_order(dnn_comparator, base):
    ascending = sweep(dnn_comparator, base, "volume", [100, 10_000, 1_000_000])
    descending = sweep(dnn_comparator, base, "volume", [1_000_000, 10_000, 100])
    assert descending.values == tuple(reversed(ascending.values))
    assert descending.ratios == tuple(reversed(ascending.ratios))
    assert descending.fpga_totals == tuple(reversed(ascending.fpga_totals))


def test_descending_axis_batch_matches_classic(dnn_comparator, base):
    import numpy as np

    from repro.analysis.sweep import sweep_batch

    values = [3.0, 2.0, 0.5]
    classic = sweep(dnn_comparator, base, "lifetime", values)
    batch = sweep_batch(dnn_comparator, base, "lifetime", values)
    np.testing.assert_array_equal(batch.values, np.array(values))
    np.testing.assert_array_equal(batch.ratios, np.array(classic.ratios))
