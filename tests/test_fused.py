"""Fused kernel tier: selection, fallback, parity, allocation.

The contract under test (see ``repro/engine/vector/fused.py``): the
fused tier serves values within ``rtol <= 1e-12`` of the kernel chain
with bit-identical winners, is invariant to chunk size and worker
count, degrades silently when Numba is absent, allocates nothing
array-sized per chunk after warmup, and — in the opt-in float32 mode —
keeps summaries within ``rtol <= 1e-5`` while win counts stay exact.
"""

from __future__ import annotations

import builtins
import importlib
import sys
import tracemalloc

import numpy as np
import pytest

from repro.analysis.montecarlo import monte_carlo_reduction
from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.engine import EvaluationEngine
from repro.engine.vector import (
    MonteCarloChunkSource,
    extract_row,
    run_stream,
)
from repro.engine.vector import fused as fused_mod
from repro.engine.vector.evaluator import VectorizedEvaluator
from repro.engine.vector.fused import (
    KERNEL_TIER_ENV,
    FusedKernel,
    ScratchPool,
    kernel_tier_label,
    make_kernel,
    resolve_kernel_tier,
)
from repro.engine.vector.kernels import ratio_kernel, winner_kernel
from repro.errors import ParameterError
from repro.experiments.ext_uncertainty import distributions as table1_distributions

BASELINE = Scenario(num_apps=5, app_lifetime_years=2.0, volume=1_000_000)

RTOL = 1e-12


@pytest.fixture(scope="module")
def comparator():
    return PlatformComparator.for_domain("dnn")


def _source(comparator, n, seed=2024):
    return MonteCarloChunkSource(
        np.asarray(extract_row(comparator)),
        table1_distributions(),
        seed,
        BASELINE,
        n,
    )


# ----------------------------------------------------------------------
# Tier resolution: env var, explicit request, validation
# ----------------------------------------------------------------------


def test_resolve_tier_env_and_request(monkeypatch):
    monkeypatch.delenv(KERNEL_TIER_ENV, raising=False)
    assert resolve_kernel_tier(None) in ("numba", "numpy-fused")
    assert resolve_kernel_tier("numpy") == "chain"

    monkeypatch.setenv(KERNEL_TIER_ENV, "numpy")
    assert resolve_kernel_tier(None) == "chain"
    # An explicit request wins over the environment.
    assert resolve_kernel_tier("fused") != "chain"

    monkeypatch.setenv(KERNEL_TIER_ENV, "fused")
    assert resolve_kernel_tier(None) != "chain"


def test_resolve_tier_rejects_unknown(monkeypatch):
    with pytest.raises(ParameterError, match="kernel tier"):
        resolve_kernel_tier("bogus")
    monkeypatch.setenv(KERNEL_TIER_ENV, "bogus")
    with pytest.raises(ParameterError, match="kernel tier"):
        resolve_kernel_tier(None)


def test_tier_labels(monkeypatch):
    monkeypatch.delenv(KERNEL_TIER_ENV, raising=False)
    assert kernel_tier_label("numpy") == "numpy-chain"
    assert kernel_tier_label("fused").startswith("fused-")
    assert kernel_tier_label(None) in ("fused-numba", "fused-numpy")


def test_make_kernel_chain_is_none(monkeypatch):
    monkeypatch.delenv(KERNEL_TIER_ENV, raising=False)
    assert make_kernel("numpy") is None
    kern = make_kernel("fused")
    assert isinstance(kern, FusedKernel)
    assert kern.name in ("fused-numba", "fused-numpy")


def test_kernel_rejects_bad_backend_and_dtype():
    with pytest.raises(ParameterError, match="backend"):
        FusedKernel(backend="cuda")
    with pytest.raises(ParameterError, match="dtype"):
        FusedKernel(dtype=np.int32)


def test_engine_validates_tier_eagerly(monkeypatch):
    monkeypatch.delenv(KERNEL_TIER_ENV, raising=False)
    with pytest.raises(ParameterError, match="kernel tier"):
        EvaluationEngine(kernel_tier="bogus")
    with EvaluationEngine(kernel_tier="fused") as engine:
        assert engine.kernel_tier_name.startswith("fused-")
    # kernel_tier_name resolves live, so the env override shows up.
    monkeypatch.setenv(KERNEL_TIER_ENV, "numpy")
    with EvaluationEngine() as engine:
        assert engine.kernel_tier_name == "numpy-chain"


# ----------------------------------------------------------------------
# Missing Numba: the silent no-op contract, via import blocking
# ----------------------------------------------------------------------


def test_missing_numba_degrades_silently(comparator):
    real_import = builtins.__import__

    def blocked(name, *args, **kwargs):
        if name.split(".")[0] == "numba":
            raise ImportError("numba blocked for test")
        return real_import(name, *args, **kwargs)

    saved_numba = sys.modules.pop("numba", None)
    builtins.__import__ = blocked
    try:
        mod = importlib.reload(fused_mod)
        assert mod.NUMBA_AVAILABLE is False
        # Every fused spelling silently lands on the NumPy backend.
        assert mod.resolve_kernel_tier("numba") == "numpy-fused"
        assert mod.resolve_kernel_tier("fused") == "numpy-fused"
        kern = mod.FusedKernel(backend="numba")
        assert kern.backend == "numpy-fused"
        assert kern.name == "fused-numpy"
        # ... and still serves correct answers.
        params, batch = _source(comparator, 256).chunk(0, 256)
        result = kern.evaluate(params, batch)
        chain = VectorizedEvaluator(kernel_tier="numpy").evaluate_param_batch(
            params, batch
        )
        np.testing.assert_allclose(
            result.ratios, chain.ratios, rtol=RTOL, atol=0.0
        )
    finally:
        builtins.__import__ = real_import
        if saved_numba is not None:
            sys.modules["numba"] = saved_numba
        importlib.reload(fused_mod)


# ----------------------------------------------------------------------
# Parity vs the kernel chain
# ----------------------------------------------------------------------


def test_fused_matches_chain_values_and_winners(comparator):
    n = 4096
    params, batch = _source(comparator, n).chunk(0, n)
    chain = VectorizedEvaluator(kernel_tier="numpy").evaluate_param_batch(
        params, batch
    )
    result = FusedKernel().evaluate(params, batch)
    assert result is not None
    np.testing.assert_allclose(result.ratios, chain.ratios, rtol=RTOL, atol=0.0)
    np.testing.assert_allclose(
        result.fpga_totals, chain.fpga_totals, rtol=RTOL, atol=0.0
    )
    np.testing.assert_allclose(
        result.asic_totals, chain.asic_totals, rtol=RTOL, atol=0.0
    )
    # Winners are bit-identical, not merely close.
    np.testing.assert_array_equal(
        np.asarray(result.winners), np.asarray(chain.winners)
    )
    assert result.fpga_win_count == int(
        np.count_nonzero(np.asarray(chain.winners) == "fpga")
    )


def test_fused_ratio_and_winner_twins_match_chain():
    fpga = np.array([1.0, 0.0, 0.0, 5.0, 2.0, -1.0])
    asic = np.array([2.0, 0.0, 3.0, 0.0, 2.0, 4.0])
    pool = ScratchPool()
    np.testing.assert_array_equal(
        fused_mod.fused_ratio_kernel(fpga, asic, pool=pool),
        ratio_kernel(fpga, asic),
    )
    mask = fused_mod.fused_winner_kernel(fpga, asic, pool=pool)
    np.testing.assert_array_equal(
        np.asarray(mask, dtype=bool), winner_kernel(fpga, asic) == "fpga"
    )


# ----------------------------------------------------------------------
# Streaming: chunk-size / worker-count invariance, env override
# ----------------------------------------------------------------------


def _summary_state(reduction):
    moments = reduction["moments"].moments()
    wins = reduction["wins"]
    sample = np.sort(reduction["quantiles"].sample())
    return moments, wins.n, wins.fpga_wins, sample


@pytest.mark.parametrize("chunk", [17, 256, 1000])
def test_fused_stream_invariant_and_matches_chain(comparator, chunk):
    n = 2000
    prototype = monte_carlo_reduction(seed=11, quantile_k=n)

    def run(kernel_tier, chunk_rows):
        return run_stream(
            _source(comparator, n),
            prototype.fresh(),
            chunk_rows=chunk_rows,
            workers=1,
            kernel_tier=kernel_tier,
        )

    fused = run("fused", chunk)
    reference = run("fused", n)  # single-chunk degenerate case
    chain = run("numpy", n)

    f_m, f_n, f_w, f_s = _summary_state(fused)
    r_m, r_n, r_w, r_s = _summary_state(reference)
    c_m, c_n, c_w, c_s = _summary_state(chain)

    # Fused is bit-identical across chunk sizes ...
    assert f_m == r_m
    assert (f_n, f_w) == (r_n, r_w)
    np.testing.assert_array_equal(f_s, r_s)
    # ... and matches the chain within the tier's contract, with exact
    # counters.
    assert (f_n, f_w) == (c_n, c_w)
    for key in f_m:
        np.testing.assert_allclose(f_m[key], c_m[key], rtol=RTOL, atol=0.0)
    np.testing.assert_allclose(f_s, c_s, rtol=RTOL, atol=0.0)


def test_fused_stream_worker_invariant(comparator):
    n = 4096
    prototype = monte_carlo_reduction(seed=11, quantile_k=n)
    sequential = run_stream(
        _source(comparator, n), prototype.fresh(), chunk_rows=512,
        workers=1, kernel_tier="fused",
    )
    parallel = run_stream(
        _source(comparator, n), prototype.fresh(), chunk_rows=512,
        workers=2, kernel_tier="fused",
    )
    s_m, s_n, s_w, s_s = _summary_state(sequential)
    p_m, p_n, p_w, p_s = _summary_state(parallel)
    assert s_m == p_m
    assert (s_n, s_w) == (p_n, p_w)
    np.testing.assert_array_equal(s_s, p_s)


def test_env_override_reaches_streaming(monkeypatch, comparator):
    n = 512
    prototype = monte_carlo_reduction(seed=3, quantile_k=n)
    explicit = run_stream(
        _source(comparator, n), prototype.fresh(), chunk_rows=128,
        workers=1, kernel_tier="numpy",
    )
    monkeypatch.setenv(KERNEL_TIER_ENV, "numpy")
    via_env = run_stream(
        _source(comparator, n), prototype.fresh(), chunk_rows=128,
        workers=1,
    )
    # Both runs served the chain, so they are bit-identical.
    e_m, e_n, e_w, e_s = _summary_state(explicit)
    v_m, v_n, v_w, v_s = _summary_state(via_env)
    assert e_m == v_m
    assert (e_n, e_w) == (v_n, v_w)
    np.testing.assert_array_equal(e_s, v_s)


# ----------------------------------------------------------------------
# float32 summary mode
# ----------------------------------------------------------------------


def test_float32_mode_bounds_and_exact_winners(comparator):
    n = 8192
    params, batch = _source(comparator, n).chunk(0, n)
    f64 = FusedKernel().evaluate(params, batch)
    f32 = FusedKernel(dtype=np.float32).evaluate(params, batch)
    assert f32.ratios.dtype == np.float32
    np.testing.assert_allclose(
        np.asarray(f32.ratios, dtype=np.float64), f64.ratios,
        rtol=1e-5, atol=0.0,
    )
    # Lifecycle totals and the winner verdicts stay float64-exact.
    np.testing.assert_array_equal(f32.fpga_totals, f64.fpga_totals)
    np.testing.assert_array_equal(f32.asic_totals, f64.asic_totals)
    assert f32.fpga_win_count == f64.fpga_win_count
    np.testing.assert_array_equal(
        np.asarray(f32.winners), np.asarray(f64.winners)
    )


def test_float32_streaming_summaries_within_contract(comparator):
    n = 4096
    prototype = monte_carlo_reduction(seed=5, quantile_k=n)
    f64 = run_stream(
        _source(comparator, n), prototype.fresh(), chunk_rows=512,
        workers=1, kernel_tier="fused", kernel_dtype=np.float64,
    )
    f32 = run_stream(
        _source(comparator, n), prototype.fresh(), chunk_rows=512,
        workers=1, kernel_tier="fused", kernel_dtype=np.float32,
    )
    m64, n64, w64, s64 = _summary_state(f64)
    m32, n32, w32, s32 = _summary_state(f32)
    assert (n64, w64) == (n32, w32)  # win counts exact
    for key in m64:
        np.testing.assert_allclose(m32[key], m64[key], rtol=1e-5, atol=1e-12)
    np.testing.assert_allclose(s32, s64, rtol=1e-5, atol=0.0)


# ----------------------------------------------------------------------
# Steady-state allocation
# ----------------------------------------------------------------------


def test_steady_state_allocation_bounded(comparator):
    """After warmup the NumPy backend reuses its scratch: four more
    chunks may grow the traced heap by small-object noise only (views,
    numpy scalars) — no array-sized allocations."""
    rows = 4096
    source = _source(comparator, 8 * rows)
    chunks = [
        source.chunk(i * rows, (i + 1) * rows) for i in range(8)
    ]  # pre-materialised so sampling allocations stay out of the trace
    kern = FusedKernel()
    for params, batch in chunks[:2]:
        kern.evaluate(params, batch)

    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    for params, batch in chunks[2:6]:
        kern.evaluate(params, batch)
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()

    grown = sum(
        s.size_diff
        for s in after.compare_to(before, "lineno")
        if s.size_diff > 0
    )
    # One chunk's worth of float64 rows is 32 KB *per column*; the
    # bound catches any per-chunk array allocation sneaking back in.
    assert grown < 64 * 1024, f"steady-state fused tier grew {grown} bytes"


# ----------------------------------------------------------------------
# FusedResult surface
# ----------------------------------------------------------------------


def test_fused_result_lazy_winners_and_slices(comparator):
    n = 64
    params, batch = _source(comparator, n).chunk(0, n)
    result = FusedKernel().evaluate(params, batch)
    winners = np.asarray(result.winners)
    mask = winners == "fpga"
    assert int(np.count_nonzero(mask)) == result.fpga_win_count
    assert set(np.unique(winners)) <= {"fpga", "asic"}
