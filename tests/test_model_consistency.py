"""Cross-model consistency checks tying the subsystems together."""

import pytest

from repro.core.asic_model import AsicLifecycleModel
from repro.core.comparison import PlatformComparator
from repro.core.fpga_model import FpgaLifecycleModel
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.devices.catalog import get_domain

SUITE = ModelSuite.default()
BASE = Scenario(num_apps=5, app_lifetime_years=2.0, volume=1_000_000)


def test_crypto_identical_silicon_identical_per_chip_costs():
    """The crypto domain's FPGA and ASIC are the same die: every per-chip
    embodied component must agree between the two lifecycle models."""
    domain = get_domain("crypto")
    fpga = FpgaLifecycleModel(domain.fpga_device(), SUITE).per_chip_embodied()
    asic = AsicLifecycleModel(domain.asic_device(), SUITE).per_chip_embodied()
    assert fpga.manufacturing == pytest.approx(asic.manufacturing)
    assert fpga.packaging == pytest.approx(asic.packaging)
    assert fpga.eol == pytest.approx(asic.eol)


def test_fpga_advantage_equals_component_differences():
    """ComparisonResult's advantage must equal the sum of per-component
    differences — no CFP appears or disappears in the comparison layer."""
    comparator = PlatformComparator.for_domain("dnn", SUITE)
    result = comparator.compare(BASE)
    diff = result.asic.footprint - result.fpga.footprint
    assert result.fpga_advantage_kg == pytest.approx(diff.total)


def test_asic_n_apps_equals_repeated_single_app():
    """Eq. (1): N identical applications cost exactly N times one."""
    domain = get_domain("imgproc")
    model = AsicLifecycleModel(domain.asic_device(), SUITE)
    one = model.total_kg(BASE.with_num_apps(1))
    five = model.total_kg(BASE)
    assert five == pytest.approx(5 * one)


def test_fpga_incremental_app_cost_is_deployment_only():
    """Eq. (2): adding one application to an FPGA adds exactly one
    deployment term (operation + app-dev), no embodied carbon."""
    domain = get_domain("dnn")
    model = FpgaLifecycleModel(domain.fpga_device(), SUITE)
    five = model.assess(BASE).footprint
    six = model.assess(BASE.with_num_apps(6)).footprint
    increment = six - five
    assert increment.embodied == pytest.approx(0.0, abs=1e-6)
    assert increment.operational > 0.0
    assert increment.appdev > 0.0


def test_manufacturing_component_traces_to_act_model():
    """The lifecycle model's manufacturing component must equal the ACT
    model's per-die figure times the fleet size."""
    domain = get_domain("dnn")
    device = domain.fpga_device()
    per_die = SUITE.manufacturing.per_die_kg(device.area_mm2, device.node)
    fp = FpgaLifecycleModel(device, SUITE).assess(BASE).footprint
    assert fp.manufacturing == pytest.approx(per_die * BASE.volume)


def test_operational_component_traces_to_operation_model():
    domain = get_domain("dnn")
    device = domain.asic_device()
    per_chip_year = SUITE.operation.per_chip_year_kg(device.peak_power_w)
    fp = AsicLifecycleModel(device, SUITE).assess(BASE).footprint
    expected = per_chip_year * BASE.volume * BASE.total_application_years
    assert fp.operational == pytest.approx(expected)


def test_eol_component_traces_to_package_mass():
    domain = get_domain("dnn")
    device = domain.asic_device()
    mass = SUITE.packaging.package_mass_g(device.area_mm2)
    per_chip = SUITE.eol.per_chip_kg(mass)
    fp = AsicLifecycleModel(device, SUITE).assess(BASE.with_num_apps(1)).footprint
    assert fp.eol == pytest.approx(per_chip * BASE.volume)
