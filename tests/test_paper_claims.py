"""Integration tests: every published claim of the paper must hold.

These are the acceptance tests of the reproduction — the claim list in
:mod:`repro.experiments.calibration` mirrors Section 4 of the paper, and
this module asserts each one individually so a calibration regression
names the exact claim it broke.
"""

import pytest

from repro.experiments.calibration import evaluate_claims

CLAIMS = evaluate_claims()


@pytest.mark.parametrize("claim", CLAIMS, ids=[c.claim[:60] for c in CLAIMS])
def test_claim_holds(claim):
    assert claim.holds, (
        f"{claim.artifact}: {claim.claim} — paper {claim.paper_value}, "
        f"measured {claim.measured_value}"
    )


def test_all_artifacts_covered():
    artifacts = {c.artifact for c in CLAIMS}
    assert {"fig2", "fig4", "fig5", "fig6", "fig10", "fig11", "abstract"} <= artifacts


def test_enough_claims_checked():
    assert len(CLAIMS) >= 15
